#!/usr/bin/env python3
"""Design for failure (Sec. 7): the meeting survives broken components.

Two injected faults, one meeting each:

1. **Client stream failure** — a publisher's 720p hardware encoder path
   dies (packets never reach the wire) while its lower layers still flow.
   The control plane's liveness watchdog detects the configured-but-silent
   stream and re-plans subscribers onto live streams.
2. **Controller crash** — the GSO controller instance is killed
   mid-meeting and a fresh (stateless) one takes over, rebuilding its
   picture from the conference node.

Run it with::

    python examples/failure_recovery.py
"""

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.control.gso_controller import GsoControllerRuntime
from repro.core.types import Resolution


def broken_encoder_demo():
    print("=== fault 1: a publisher's 720p encoder silently dies ===")
    spec = MeetingSpec(
        clients=[
            ClientSpec("presenter", 3000, 3000),
            ClientSpec("viewer", 3000, 3000, publishes=False),
        ],
        subscriptions=[("viewer", "presenter", Resolution.P720)],
        mode="gso",
        duration_s=30.0,
        warmup_s=15.0,
    )
    runner = MeetingRunner(spec)
    # Fault injection: 720p frames are encoded but never packetized (as if
    # the hardware encoder wedged); lower resolutions still flow.
    runner.clients["presenter"]._video_ssrcs.pop(Resolution.P720)
    report = runner.run()
    view = report.view("viewer", "presenter")
    print(
        f"  downgrades applied by the controller: "
        f"{runner.controller.downgrades_applied}"
    )
    final = runner.controller.last_solution.policies.get("presenter", {})
    print(
        "  final plan for the presenter:",
        {str(res): e.bitrate_kbps for res, e in final.items()},
    )
    print(
        f"  viewer experience after recovery: {view.framerate:.1f} fps, "
        f"stall {view.stall_rate:.1%}, {view.playback.rendered_kbps:.0f} kbps "
        f"@ {view.top_resolution}"
    )


def controller_crash_demo():
    print("\n=== fault 2: the GSO controller crashes mid-meeting ===")
    spec = MeetingSpec(
        clients=[
            ClientSpec("a", 3000, 3000),
            ClientSpec("b", 3000, 1200),
        ],
        mode="gso",
        duration_s=30.0,
        warmup_s=15.0,
    )
    runner = MeetingRunner(spec)
    runner.sim.run_until(10.0)
    old_solves = len(runner.controller.solutions)
    runner.controller.stop()
    print(f"  controller crashed at t=10s after {old_solves} solves")
    runner.controller = GsoControllerRuntime(
        runner.sim, runner.conference, runner.executor
    )
    report = runner.run()
    print(
        f"  replacement controller performed "
        f"{len(runner.controller.solutions)} solves"
    )
    print(
        f"  meeting after recovery: {report.mean_framerate():.1f} fps, "
        f"video stall {report.mean_video_stall():.1%}, "
        f"voice stall {report.mean_voice_stall():.1%}"
    )


if __name__ == "__main__":
    broken_encoder_demo()
    controller_crash_demo()
