#!/usr/bin/env python3
"""A global meeting: participants on different continents, churn, speakers.

Exercises the media plane's multi-node topology (the paper's
"interconnected accessing nodes"), mid-meeting joins/leaves, and
active-speaker priority, all under GSO orchestration.  Run it with::

    python examples/global_meeting.py
"""

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner


def main():
    spec = MeetingSpec(
        clients=[
            ClientSpec("ava", 4000, 6000, region="america"),
            ClientSpec("ben", 3000, 4000, region="america"),
            ClientSpec("chen", 2500, 3000, region="asia"),
            ClientSpec("dara", 1200, 1500, region="asia"),
            # Emil dials in late from a hotel connection, then drops off.
            ClientSpec(
                "emil",
                900,
                1200,
                region="europe",
                join_at_s=15.0,
                leave_at_s=45.0,
            ),
        ],
        mode="gso",
        duration_s=60.0,
        warmup_s=20.0,
        inter_node_ms=70.0,
        speaker_schedule=[(2.0, "ava"), (30.0, "chen")],
    )
    runner = MeetingRunner(spec)
    report = runner.run()

    print("accessing nodes:", ", ".join(sorted(runner.nodes)))
    print(
        f"meeting: framerate={report.mean_framerate():.1f}fps  "
        f"video stall={report.mean_video_stall():.1%}  "
        f"voice stall={report.mean_voice_stall():.1%}"
    )
    print("\nper-view outcomes (measured after warmup):")
    for view in report.views:
        sub_region = next(
            c.region for c in spec.clients if c.client_id == view.subscriber
        )
        pub_region = next(
            c.region for c in spec.clients if c.client_id == view.publisher
        )
        hop = "local" if sub_region == pub_region else "cross-region"
        print(
            f"  {view.subscriber:5s} <- {view.publisher:5s} ({hop:12s}): "
            f"{view.framerate:5.1f}fps  stall={view.stall_rate:5.1%}  "
            f"{view.playback.rendered_kbps:6.0f}kbps @ {view.top_resolution}"
        )
    print(
        f"\ncontroller: {len(report.call_intervals) + 1} solves, "
        f"{runner.controller.upgrades_suppressed} upgrades damped, "
        f"{runner.controller.downgrades_applied} failure downgrades"
    )
    print("final roster:", ", ".join(runner.conference.participants()))


if __name__ == "__main__":
    main()
