#!/usr/bin/env python3
"""A full packet-level meeting with one slow participant: GSO vs non-GSO.

This is the paper's Sec. 2.2 motivating scenario run end-to-end through
the three-plane stack: RTP media over simulated links, TWCC-driven
bandwidth estimation, the GSO controller issuing TMMBR, the SFU switching
streams — versus the classic template-policy simulcast.  Run it with::

    python examples/slow_link_meeting.py
"""

from repro.conference import ClientSpec, MeetingSpec, run_meeting


def build_spec(mode: str) -> MeetingSpec:
    return MeetingSpec(
        clients=[
            ClientSpec("alice", uplink_kbps=4000, downlink_kbps=6000),
            ClientSpec("bob", uplink_kbps=3000, downlink_kbps=4000),
            # Carol is on a congested mobile link: the "slow link".
            ClientSpec("carol", uplink_kbps=800, downlink_kbps=900),
        ],
        mode=mode,
        duration_s=40.0,
        warmup_s=15.0,
        seed=7,
    )


def main():
    for mode in ("gso", "nongso"):
        report = run_meeting(build_spec(mode))
        print(f"\n=== {mode.upper()} ===")
        print(
            f"meeting averages: framerate={report.mean_framerate():.1f}fps  "
            f"video stall={report.mean_video_stall():.1%}  "
            f"quality={report.mean_quality():.1f}  "
            f"voice stall={report.mean_voice_stall():.1%}"
        )
        for view in report.views:
            print(
                f"  {view.subscriber:6s} watching {view.publisher:6s}: "
                f"{view.framerate:5.1f}fps  "
                f"stall={view.stall_rate:5.1%}  "
                f"res={view.top_resolution}  "
                f"{view.playback.rendered_kbps:6.0f}kbps"
            )
        if report.call_intervals:
            mean = sum(report.call_intervals) / len(report.call_intervals)
            print(
                f"  controller: {len(report.call_intervals) + 1} solves, "
                f"mean interval {mean:.2f}s"
            )


if __name__ == "__main__":
    main()
