#!/usr/bin/env python3
"""Transient bitrate adaptation under an abrupt bandwidth step (Fig. 7).

One publisher streams to one subscriber; at t=20 s the subscriber's
downlink is limited to 625 kbps and restored at t=57 s.  The script runs
the scenario under GSO and non-GSO orchestration and draws the delivered
bitrate as an ASCII timeline.  Run it with::

    python examples/transient_adaptation.py
"""

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.core.types import Resolution
from repro.net.trace import BandwidthTrace

LIMIT_KBPS = 625.0
INITIAL_KBPS = 2000.0


def run(mode: str):
    trace = BandwidthTrace.step_schedule(
        INITIAL_KBPS, steps=[(20.0, LIMIT_KBPS)], recover_at_s=57.0
    )
    spec = MeetingSpec(
        clients=[
            ClientSpec("pub", 5000, 5000),
            ClientSpec(
                "sub",
                5000,
                INITIAL_KBPS,
                publishes=False,
                downlink_trace=trace,
            ),
        ],
        subscriptions=[("sub", "pub", Resolution.P720)],
        mode=mode,
        duration_s=80.0,
        warmup_s=5.0,
    )
    report = MeetingRunner(spec).run()
    return report.receive_series["sub"]


def draw(series, width_kbps=1600.0, columns=64):
    """One row per 2 s bucket: delivered bitrate as a bar."""
    rows = []
    bucket = {}
    for t, kbps in series:
        bucket.setdefault(int(t // 2) * 2, []).append(kbps)
    for t in sorted(bucket):
        mean = sum(bucket[t]) / len(bucket[t])
        bar = "#" * int(columns * min(mean, width_kbps) / width_kbps)
        marker = ""
        if t == 20:
            marker = f"  <- limit to {LIMIT_KBPS:.0f} kbps"
        elif t == 56:
            marker = "  <- recover"
        rows.append(f"  {t:3d}s |{bar:<{columns}}| {mean:6.0f} kbps{marker}")
    return "\n".join(rows)


def main():
    for mode in ("gso", "nongso"):
        print(f"\n=== {mode.upper()} (downlink limited to {LIMIT_KBPS:.0f} kbps at 20s) ===")
        print(draw(run(mode)))


if __name__ == "__main__":
    main()
