#!/usr/bin/env python3
"""Narrated walk-through of the Knapsack-Merge-Reduction algorithm (Fig. 5).

Prints the paper's three-step procedure decision by decision on a Fig. 5
style meeting — three clients, three resolutions, fine bitrate rungs —
then shows how the same meeting is solved by the exact MILP and what the
decomposition's optimality gap is.  Run it with::

    python examples/algorithm_walkthrough.py
"""

from repro.core import Bandwidth, ProblemBuilder, Resolution, paper_ladder
from repro.core.explain import explain_solve
from repro.core.milp import solve_joint_milp


def build_fig5_meeting():
    """Three clients, each both publisher and subscriber (Fig. 5)."""
    builder = ProblemBuilder()
    ladder = paper_ladder()
    builder.add_client("A", Bandwidth(1800, 2400), ladder)
    builder.add_client("B", Bandwidth(5000, 3000), ladder)
    builder.add_client("C", Bandwidth(5000, 1600), ladder)
    builder.subscribe("A", "B", Resolution.P360)
    builder.subscribe("A", "C", Resolution.P720)
    builder.subscribe("B", "A", Resolution.P720)
    builder.subscribe("B", "C", Resolution.P360)
    builder.subscribe("C", "A", Resolution.P720)
    builder.subscribe("C", "B", Resolution.P180)
    return builder.build()


def main():
    problem = build_fig5_meeting()
    explained = explain_solve(problem)
    print(explained)

    optimal = solve_joint_milp(problem)
    optimal.validate(problem)
    achieved = explained.solution.total_qoe()
    best = optimal.total_qoe()
    print("\n--- exact joint optimum (MILP) ---")
    print(optimal.summary())
    gap = 1 - achieved / best if best else 0.0
    print(
        f"\nKMR achieved {achieved:.0f} QoE of the provable optimum "
        f"{best:.0f} (gap {gap:.1%})"
    )


if __name__ == "__main__":
    main()
