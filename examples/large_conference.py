#!/usr/bin/env python3
"""Orchestrating a webinar-scale conference (hundreds of participants).

The Fig. 6c claim: the control algorithm handles meetings with hundreds of
participants in real time.  This example builds a 10-presenter /
300-viewer conference with heterogeneous viewer downlinks, solves it, and
prints the solve time, per-presenter stream plan, and the viewer-side
experience distribution.  Run it with::

    python examples/large_conference.py
"""

import random
import time

from repro import Bandwidth, GsoSolver, Resolution, SolverConfig, make_ladder
from repro.core.constraints import Problem, Subscription

N_PRESENTERS = 10
N_VIEWERS = 300
BITRATE_LEVELS = 6  # per resolution -> 18-level ladders


def build_conference(seed: int = 42) -> Problem:
    rng = random.Random(seed)
    ladder = make_ladder(levels_per_resolution=BITRATE_LEVELS)
    presenters = [f"presenter{k}" for k in range(N_PRESENTERS)]
    viewers = [f"viewer{k}" for k in range(N_VIEWERS)]
    bandwidth = {}
    for p in presenters:
        bandwidth[p] = Bandwidth(uplink_kbps=4000, downlink_kbps=2000)
    for v in viewers:
        bandwidth[v] = Bandwidth(
            uplink_kbps=500,
            downlink_kbps=rng.choice([900, 1500, 2500, 4000, 8000]),
        )
    # Every viewer follows every presenter: the active one at 720p, the
    # rest as 180p thumbnails (a typical webinar layout).
    subscriptions = []
    for v in viewers:
        for i, p in enumerate(presenters):
            cap = Resolution.P720 if i == 0 else Resolution.P180
            subscriptions.append(Subscription(v, p, cap))
    return Problem(
        {p: ladder for p in presenters}, bandwidth, subscriptions
    )


def main():
    problem = build_conference()
    solver = GsoSolver(SolverConfig(granularity_kbps=25))
    start = time.perf_counter()
    solution, stats = solver.solve_with_stats(problem)
    elapsed = time.perf_counter() - start
    solution.validate(problem)

    print(
        f"solved {N_PRESENTERS} presenters x {N_VIEWERS} viewers "
        f"({len(problem.subscriptions)} subscriptions) in {elapsed * 1000:.0f} ms "
        f"({stats.iterations} KMR iteration(s))"
    )
    print("\nper-presenter stream plan:")
    for presenter in sorted(solution.policies):
        entries = solution.policies[presenter]
        parts = ", ".join(
            f"{entries[res].bitrate_kbps}kbps@{res} -> {len(entries[res].audience)} viewers"
            for res in sorted(entries, reverse=True)
        )
        print(f"  {presenter}: {parts}")

    # Viewer experience distribution.
    totals = sorted(
        sum(s.bitrate_kbps for s in per_pub.values())
        for per_pub in solution.assignments.values()
    )
    if totals:
        p50 = totals[len(totals) // 2]
        p10 = totals[len(totals) // 10]
        print(
            f"\nviewer received-bitrate distribution: "
            f"min={totals[0]}kbps  p10={p10}kbps  median={p50}kbps  "
            f"max={totals[-1]}kbps"
        )


if __name__ == "__main__":
    main()
