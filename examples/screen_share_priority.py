#!/usr/bin/env python3
"""Advanced stream management: screen share, speaker-first, priorities.

Demonstrates the Sec. 4.4 features:

* a presenter sharing a *screen* next to their camera (two publisher
  entities drawing on one uplink);
* a viewer using *speaker-first* dual subscription (a 720p close-up plus
  a 180p thumbnail of the same speaker, via a virtual publisher);
* QoE *priority weights* protecting the speaker and the screen share when
  a viewer's downlink cannot carry everything.

Run it with::

    python examples/screen_share_priority.py
"""

from repro import Bandwidth, PriorityPolicy, Resolution, paper_ladder, solve
from repro.core import ProblemBuilder, StreamClass, StreamSpec
from repro.core.constraints import Problem


def screen_ladder():
    """Screen content: one sharp 720p encoding plus a low fallback."""
    return [
        StreamSpec(1200, Resolution.P720, 1100.0),
        StreamSpec(350, Resolution.P360, 400.0),
    ]


def build(viewer_downlink_kbps: int):
    builder = ProblemBuilder()
    ladder = paper_ladder()
    builder.add_client("speaker", Bandwidth(4000, 2000), ladder)
    builder.add_client("guest", Bandwidth(3000, 3000), ladder)
    builder.add_client("viewer", Bandwidth(500, viewer_downlink_kbps))
    screen = builder.add_screen_share("speaker", screen_ladder())
    # Speaker-first: close-up + thumbnail of the speaker.
    builder.subscribe_dual(
        "viewer",
        "speaker",
        primary_max=Resolution.P720,
        secondary_max=Resolution.P180,
    )
    builder.subscribe("viewer", screen, Resolution.P720)
    builder.subscribe("viewer", "guest", Resolution.P360)
    builder.subscribe("guest", "speaker", Resolution.P720)
    builder.subscribe("guest", screen, Resolution.P720)
    builder.subscribe("speaker", "guest", Resolution.P360)
    problem = builder.build()

    # Priority weighting: the screen share and active speaker matter most.
    priority = PriorityPolicy(
        speaker="speaker",
        stream_classes={screen: StreamClass.SCREEN},
    )
    weighted = priority.apply(problem.feasible_streams)
    return Problem(
        feasible_streams=weighted,
        bandwidth=problem.bandwidth,
        subscriptions=problem.subscriptions,
        aliases=problem.aliases,
        owners=problem.owners,
    ), screen


def main():
    for downlink in (5000, 2200, 1000):
        problem, screen = build(downlink)
        solution = solve(problem)
        solution.validate(problem)
        print(f"\n--- viewer downlink = {downlink} kbps ---")
        received = solution.assignments.get("viewer", {})
        for source, stream in sorted(received.items()):
            label = "screen" if source == screen else source
            print(
                f"  viewer <- {label:28s} "
                f"{stream.bitrate_kbps:5d}kbps @ {stream.resolution}"
            )
        if not received:
            print("  viewer receives nothing (downlink too small)")
        total = sum(s.bitrate_kbps for s in received.values())
        print(f"  total: {total} kbps (budget {downlink})")
        uplink_total = solution.uplink_usage_kbps("speaker") + (
            solution.uplink_usage_kbps(screen)
        )
        print(f"  speaker's combined camera+screen uplink: {uplink_total} kbps")


if __name__ == "__main__":
    main()
