#!/usr/bin/env python3
"""Quickstart: orchestrate a three-party meeting with the GSO solver.

This reproduces Table 1 of the paper: three clients A, B, C in a mesh,
each publishing the 9-level ladder (720p/360p/180p), under three different
bandwidth situations.  Run it with::

    python examples/quickstart.py
"""

from repro import Bandwidth, ProblemBuilder, Resolution, paper_ladder, solve


def build_meeting(bandwidths):
    """The Table 1 topology: a full mesh with per-edge resolution caps."""
    builder = ProblemBuilder()
    ladder = paper_ladder()
    for client, (uplink, downlink) in bandwidths.items():
        builder.add_client(client, Bandwidth(uplink, downlink), ladder)
    builder.subscribe("A", "B", Resolution.P360)
    builder.subscribe("A", "C", Resolution.P180)
    builder.subscribe("B", "A", Resolution.P720)
    builder.subscribe("B", "C", Resolution.P360)
    builder.subscribe("C", "B", Resolution.P360)
    builder.subscribe("C", "A", Resolution.P720)
    return builder.build()


def main():
    cases = {
        "case1 (C's downlink limited to 500 kbps)": {
            "A": (5000, 1400),
            "B": (5000, 3000),
            "C": (5000, 500),
        },
        "case2 (B's uplink limited to 600 kbps)": {
            "A": (5000, 5000),
            "B": (600, 5000),
            "C": (5000, 5000),
        },
        "case3 (B limited both ways)": {
            "A": (5000, 5000),
            "B": (600, 700),
            "C": (5000, 5000),
        },
    }
    for title, bandwidths in cases.items():
        problem = build_meeting(bandwidths)
        solution = solve(problem)
        solution.validate(problem)  # all constraints hold, or it raises
        print(f"\n--- {title} ---")
        print(solution.summary())
        for subscriber in ("A", "B", "C"):
            received = solution.assignments.get(subscriber, {})
            parts = ", ".join(
                f"{pub}@{stream.resolution}/{stream.bitrate_kbps}kbps"
                for pub, stream in sorted(received.items())
            )
            print(f"  {subscriber} receives: {parts or 'nothing'}")


if __name__ == "__main__":
    main()
