"""Tests for the REMB wire format and the receiver-side estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.receiver_estimate import ReceiverEstimator, ReceiverEstimatorConfig
from repro.rtp.remb import RembPacket, is_remb
from repro.rtp.rtcp import ReceiverReport


class TestRembWire:
    def test_round_trip(self):
        p = RembPacket(sender_ssrc=7, bitrate_bps=2_500_000, media_ssrcs=(1, 2))
        parsed = RembPacket.parse(p.serialize())
        assert parsed.sender_ssrc == 7
        assert parsed.media_ssrcs == (1, 2)
        assert parsed.bitrate_bps >= 2_500_000  # round-up encoding

    def test_kbps_helper(self):
        assert RembPacket(1, 2_000_000).bitrate_kbps == 2000

    def test_is_remb(self):
        assert is_remb(RembPacket(1, 100_000).serialize())
        assert not is_remb(ReceiverReport(sender_ssrc=1).serialize())
        assert not is_remb(b"nope")

    def test_parse_rejects_non_remb(self):
        with pytest.raises(ValueError):
            RembPacket.parse(ReceiverReport(sender_ssrc=1).serialize())

    @given(st.integers(0, 10**9))
    @settings(max_examples=100, deadline=None)
    def test_never_understates(self, bitrate):
        p = RembPacket(1, bitrate)
        assert RembPacket.parse(p.serialize()).bitrate_bps >= bitrate


class TestReceiverEstimator:
    def pump(self, est, rate_kbps, start, duration, now_step=0.02):
        t = start
        size = int(rate_kbps * 1000 / 8 * now_step)
        while t < start + duration:
            est.on_packet(size, t)
            t += now_step
        return t

    def test_ramps_toward_incoming_multiple(self):
        est = ReceiverEstimator(ReceiverEstimatorConfig(initial_rate_kbps=300))
        t = self.pump(est, 1000, 0.0, 2.0)
        for k in range(45):
            est.update(0.0, t)
            t = self.pump(est, 1000, t, 0.5)
        # Converges to (and is bounded by) incoming_multiple x incoming.
        assert est.estimate_kbps() <= 1.6 * 1000 * 1.01
        assert est.estimate_kbps() > 1000

    def test_cannot_see_beyond_incoming(self):
        """The receiver-side weakness the paper cites: with only a small
        stream arriving, the estimate cannot discover spare capacity."""
        est = ReceiverEstimator(ReceiverEstimatorConfig(initial_rate_kbps=300))
        t = self.pump(est, 300, 0.0, 2.0)
        for _ in range(30):
            est.update(0.0, t)
            t = self.pump(est, 300, t, 0.5)
        assert est.estimate_kbps() <= 1.6 * 300 * 1.05

    def test_loss_backs_off(self):
        est = ReceiverEstimator(ReceiverEstimatorConfig(initial_rate_kbps=1000))
        t = self.pump(est, 1000, 0.0, 1.0)
        before = est.estimate_kbps()
        est.update(0.3, t)
        assert est.estimate_kbps() < before

    def test_bounds(self):
        cfg = ReceiverEstimatorConfig(min_rate_kbps=100, max_rate_kbps=2000)
        est = ReceiverEstimator(cfg)
        for _ in range(50):
            est.update(0.9, 1.0)
        assert est.estimate_kbps() >= 100

    def test_rejects_bad_loss(self):
        with pytest.raises(ValueError):
            ReceiverEstimator().update(1.5, 0.0)


class TestRembPipeline:
    def test_client_reports_remb_and_node_collects(self):
        from repro.conference import ClientSpec, MeetingSpec
        from repro.conference.runner import MeetingRunner

        spec = MeetingSpec(
            clients=[
                ClientSpec("pub", 4000, 4000),
                ClientSpec("sub", 4000, 1500, publishes=False),
            ],
            mode="competitor1",
            duration_s=12.0,
            warmup_s=6.0,
        )
        runner = MeetingRunner(spec)
        runner.sim.run_until(12.0)
        remb = runner.node.remb_estimate_kbps("sub")
        assert remb is not None
        assert 100 <= remb <= 2400  # bounded by 1.6x what actually arrived

    def test_gso_clients_do_not_send_remb(self):
        from repro.conference import ClientSpec, MeetingSpec
        from repro.conference.runner import MeetingRunner

        spec = MeetingSpec(
            clients=[ClientSpec("A", 3000, 3000), ClientSpec("B", 3000, 3000)],
            mode="gso",
            duration_s=8.0,
            warmup_s=4.0,
        )
        runner = MeetingRunner(spec)
        runner.sim.run_until(8.0)
        assert runner.node.remb_estimate_kbps("A") is None
