"""Unit tests for RTP packet serialization (RFC 3550 + RFC 8285 TWCC ext)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtp.packet import (
    RTP_HEADER_LEN,
    RtpPacket,
    seq_distance,
    seq_less_than,
)


class TestRoundTrip:
    def test_basic_round_trip(self):
        p = RtpPacket(ssrc=0x1234, seq=77, timestamp=90_000, payload=b"abc")
        q = RtpPacket.parse(p.serialize())
        assert q == p

    def test_marker_and_payload_type(self):
        p = RtpPacket(
            ssrc=1, seq=2, timestamp=3, payload_type=111, marker=True
        )
        q = RtpPacket.parse(p.serialize())
        assert q.marker is True
        assert q.payload_type == 111

    def test_twcc_extension_round_trip(self):
        p = RtpPacket(ssrc=9, seq=1, timestamp=5, twcc_seq=40_000)
        wire = p.serialize()
        q = RtpPacket.parse(wire)
        assert q.twcc_seq == 40_000
        assert q.payload == b""

    def test_extension_adds_eight_bytes(self):
        bare = RtpPacket(ssrc=9, seq=1, timestamp=5, payload=b"xy")
        ext = bare.with_twcc_seq(7)
        assert len(ext.serialize()) == len(bare.serialize()) + 8
        assert ext.wire_size == len(ext.serialize())

    def test_with_twcc_seq_strips_extension(self):
        p = RtpPacket(ssrc=9, seq=1, timestamp=5, twcc_seq=7)
        assert p.with_twcc_seq(None).twcc_seq is None

    def test_wire_size_matches_serialization(self):
        p = RtpPacket(ssrc=9, seq=1, timestamp=5, payload=b"x" * 100)
        assert p.wire_size == len(p.serialize()) == RTP_HEADER_LEN + 100


class TestValidation:
    def test_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError):
            RtpPacket(ssrc=2**32, seq=0, timestamp=0)
        with pytest.raises(ValueError):
            RtpPacket(ssrc=0, seq=2**16, timestamp=0)
        with pytest.raises(ValueError):
            RtpPacket(ssrc=0, seq=0, timestamp=2**32)
        with pytest.raises(ValueError):
            RtpPacket(ssrc=0, seq=0, timestamp=0, payload_type=128)
        with pytest.raises(ValueError):
            RtpPacket(ssrc=0, seq=0, timestamp=0, twcc_seq=2**16)

    def test_parse_rejects_short_input(self):
        with pytest.raises(ValueError, match="too short"):
            RtpPacket.parse(b"\x80\x60")

    def test_parse_rejects_wrong_version(self):
        data = bytearray(
            RtpPacket(ssrc=1, seq=1, timestamp=1).serialize()
        )
        data[0] = 0x00  # version 0
        with pytest.raises(ValueError, match="version"):
            RtpPacket.parse(bytes(data))

    def test_parse_rejects_truncated_extension(self):
        wire = RtpPacket(ssrc=1, seq=1, timestamp=1, twcc_seq=5).serialize()
        with pytest.raises(ValueError, match="truncated"):
            RtpPacket.parse(wire[: RTP_HEADER_LEN + 2])


class TestSeqArithmetic:
    def test_seq_less_than_simple(self):
        assert seq_less_than(1, 2)
        assert not seq_less_than(2, 1)
        assert not seq_less_than(5, 5)

    def test_seq_less_than_wraps(self):
        assert seq_less_than(65_535, 0)
        assert not seq_less_than(0, 65_535)

    def test_seq_distance(self):
        assert seq_distance(10, 15) == 5
        assert seq_distance(65_534, 2) == 4


@given(
    ssrc=st.integers(0, 2**32 - 1),
    seq=st.integers(0, 2**16 - 1),
    ts=st.integers(0, 2**32 - 1),
    pt=st.integers(0, 127),
    marker=st.booleans(),
    payload=st.binary(max_size=64),
    twcc=st.one_of(st.none(), st.integers(0, 2**16 - 1)),
)
@settings(max_examples=200, deadline=None)
def test_round_trip_property(ssrc, seq, ts, pt, marker, payload, twcc):
    p = RtpPacket(
        ssrc=ssrc,
        seq=seq,
        timestamp=ts,
        payload_type=pt,
        marker=marker,
        payload=payload,
        twcc_seq=twcc,
    )
    assert RtpPacket.parse(p.serialize()) == p
