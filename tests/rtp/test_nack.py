"""Unit tests for Generic NACK, retransmission caches, gap tracking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtp.nack import (
    GenericNack,
    NackTracker,
    RetransmissionCache,
    is_nack,
)
from repro.rtp.packet import RtpPacket
from repro.rtp.rtcp import ReceiverReport


class TestGenericNackWire:
    def test_round_trip_contiguous(self):
        nack = GenericNack(sender_ssrc=1, media_ssrc=2, seqs=(10, 11, 12))
        parsed = GenericNack.parse(nack.serialize())
        assert parsed.media_ssrc == 2
        assert sorted(parsed.seqs) == [10, 11, 12]

    def test_round_trip_sparse(self):
        seqs = (5, 9, 21, 40, 41)
        nack = GenericNack(1, 2, seqs)
        parsed = GenericNack.parse(nack.serialize())
        assert sorted(parsed.seqs) == sorted(seqs)

    def test_blp_packing_is_compact(self):
        # PID + 16-bit BLP covers 17 consecutive seqs in ONE FCI entry...
        nack = GenericNack(1, 2, tuple(range(100, 117)))
        assert len(nack.serialize()) == 4 + 8 + 4
        # ...and the 18th spills into a second entry.
        nack2 = GenericNack(1, 2, tuple(range(100, 118)))
        assert len(nack2.serialize()) == 4 + 8 + 2 * 4

    def test_wraparound_seqs(self):
        nack = GenericNack(1, 2, (65_534, 65_535, 0, 1))
        parsed = GenericNack.parse(nack.serialize())
        assert set(parsed.seqs) == {65_534, 65_535, 0, 1}

    def test_is_nack(self):
        nack = GenericNack(1, 2, (3,)).serialize()
        assert is_nack(nack)
        assert not is_nack(ReceiverReport(sender_ssrc=1).serialize())
        assert not is_nack(b"junk")

    def test_parse_rejects_non_nack(self):
        with pytest.raises(ValueError):
            GenericNack.parse(ReceiverReport(sender_ssrc=1).serialize())

    @given(st.sets(st.integers(0, 2**16 - 1), min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_round_trip_property(self, seqs):
        nack = GenericNack(1, 2, tuple(seqs))
        parsed = GenericNack.parse(nack.serialize())
        assert set(parsed.seqs) >= seqs  # BLP may include only asked seqs
        assert set(parsed.seqs) == set(nack.seqs) | (set(parsed.seqs) - set())


class TestRetransmissionCache:
    def packet(self, ssrc, seq):
        return RtpPacket(ssrc=ssrc, seq=seq, timestamp=0, payload=b"x")

    def test_store_and_lookup(self):
        cache = RetransmissionCache()
        cache.store(self.packet(1, 10))
        assert cache.lookup(1, 10) is not None
        assert cache.lookup(1, 11) is None
        assert cache.lookup(2, 10) is None
        assert cache.hits == 1 and cache.misses == 2

    def test_depth_bound_evicts_oldest(self):
        cache = RetransmissionCache(depth_per_ssrc=3)
        for seq in range(5):
            cache.store(self.packet(1, seq))
        assert cache.lookup(1, 0) is None
        assert cache.lookup(1, 4) is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            RetransmissionCache(depth_per_ssrc=0)


class TestNackTracker:
    def test_no_gaps_no_requests(self):
        tracker = NackTracker()
        for seq in range(5):
            tracker.on_packet(1, seq, now_s=seq * 0.01)
        assert tracker.due_requests(1.0) == []

    def test_gap_detected_and_requested(self):
        tracker = NackTracker(initial_delay_s=0.01)
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 3, 0.001)  # 1 and 2 missing
        assert tracker.outstanding == 2
        due = tracker.due_requests(0.05)
        assert due == [(1, [1, 2])]

    def test_initial_delay_respected(self):
        tracker = NackTracker(initial_delay_s=0.1)
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 2, 0.001)
        assert tracker.due_requests(0.05) == []
        assert tracker.due_requests(0.2) == [(1, [1])]

    def test_retry_then_give_up(self):
        tracker = NackTracker(
            initial_delay_s=0.0, retry_interval_s=0.1, max_attempts=2
        )
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 2, 0.0)
        assert tracker.due_requests(0.01) == [(1, [1])]
        assert tracker.due_requests(0.05) == []  # retry not due yet
        assert tracker.due_requests(0.15) == [(1, [1])]
        # Attempts exhausted: abandoned on the next sweep.
        assert tracker.due_requests(0.30) == []
        assert tracker.outstanding == 0

    def test_arrival_cancels_request(self):
        tracker = NackTracker(initial_delay_s=0.0)
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 2, 0.0)
        tracker.on_packet(1, 1, 0.005)  # the "lost" packet shows up
        assert tracker.due_requests(0.1) == []

    def test_reordering_widens_tolerance(self):
        tracker = NackTracker(initial_delay_s=0.01)
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 2, 0.0)  # 1 "missing"
        tracker.on_packet(1, 1, 0.08)  # ...but just reordered, 80 ms late
        assert tracker._reorder_window_s > 0.05
        # A new hole now waits out the reorder window before NACKing.
        tracker.on_packet(1, 4, 0.1)
        assert tracker.due_requests(0.12) == []
        assert tracker.due_requests(0.1 + tracker._reorder_window_s + 0.01)

    def test_wraparound_gap(self):
        tracker = NackTracker(initial_delay_s=0.0)
        tracker.on_packet(1, 65_534, 0.0)
        tracker.on_packet(1, 1, 0.0)  # 65535, 0 missing
        due = tracker.due_requests(0.1)
        assert due and set(due[0][1]) == {65_535, 0}

    def test_per_ssrc_independence(self):
        tracker = NackTracker(initial_delay_s=0.0)
        tracker.on_packet(1, 0, 0.0)
        tracker.on_packet(1, 2, 0.0)
        tracker.on_packet(2, 0, 0.0)
        tracker.on_packet(2, 1, 0.0)
        due = tracker.due_requests(0.1)
        assert due == [(1, [1])]


class TestRepairLoopIntegration:
    def test_lossy_uplink_is_repaired_end_to_end(self):
        """30% uplink loss: the node NACKs the client, the client
        retransmits from its cache, and subscribers render nearly every
        frame."""
        from repro.conference import ClientSpec, MeetingSpec, run_meeting

        spec = MeetingSpec(
            clients=[
                ClientSpec("lossy", 4000, 4000, loss_rate=0.3),
                ClientSpec("clean", 4000, 4000),
            ],
            subscriptions=[
                ("clean", "lossy", __import__("repro.core.types", fromlist=["Resolution"]).Resolution.P360),
            ],
            mode="gso",
            duration_s=20.0,
            warmup_s=10.0,
            seed=2,
        )
        report = run_meeting(spec)
        view = report.view("clean", "lossy")
        # Without repair, ~30% of packets vanish and multi-packet frames
        # mostly die; with repair the view stays watchable.
        assert view.framerate > 15.0
