"""Unit tests for the SSRC allocator."""

from repro.core.types import Resolution
from repro.rtp.ssrc import SsrcAllocator, SsrcKey


class TestSsrcAllocator:
    def test_per_resolution_ssrcs_are_distinct(self):
        alloc = SsrcAllocator()
        ssrcs = {
            alloc.allocate("A", res)
            for res in (Resolution.P720, Resolution.P360, Resolution.P180)
        }
        assert len(ssrcs) == 3

    def test_allocation_is_idempotent(self):
        alloc = SsrcAllocator()
        a = alloc.allocate("A", Resolution.P720)
        b = alloc.allocate("A", Resolution.P720)
        assert a == b

    def test_reverse_lookup(self):
        alloc = SsrcAllocator()
        ssrc = alloc.allocate("A", "audio")
        assert alloc.lookup(ssrc) == SsrcKey("A", "audio")
        assert alloc.lookup(0xDEAD) is None

    def test_forward_lookup_without_allocating(self):
        alloc = SsrcAllocator()
        assert alloc.ssrc_of("A", Resolution.P720) is None
        ssrc = alloc.allocate("A", Resolution.P720)
        assert alloc.ssrc_of("A", Resolution.P720) == ssrc

    def test_streams_of_client(self):
        alloc = SsrcAllocator()
        alloc.allocate("A", Resolution.P720)
        alloc.allocate("A", "audio")
        alloc.allocate("B", Resolution.P720)
        streams = alloc.streams_of("A")
        assert set(streams) == {Resolution.P720, "audio"}

    def test_release_client(self):
        alloc = SsrcAllocator()
        ssrc = alloc.allocate("A", Resolution.P720)
        alloc.release_client("A")
        assert alloc.lookup(ssrc) is None
        assert alloc.streams_of("A") == {}
        # Re-allocation gets a fresh SSRC (no reuse confusion).
        assert alloc.allocate("A", Resolution.P720) != ssrc

    def test_determinism(self):
        a1 = SsrcAllocator()
        a2 = SsrcAllocator()
        assert a1.allocate("X", Resolution.P360) == a2.allocate(
            "X", Resolution.P360
        )
