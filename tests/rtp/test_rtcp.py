"""Unit tests for RTCP serialization: RR, APP, TWCC feedback, compounds."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtp.rtcp import (
    PT_APP,
    PT_RR,
    PT_RTPFB,
    AppPacket,
    ReceiverReport,
    ReportBlock,
    TwccFeedback,
    parse_common_header,
    parse_compound,
)


class TestCommonHeader:
    def test_round_trip_via_app(self):
        p = AppPacket(subtype=3, ssrc=42, name=b"SEMB", data=b"\x00" * 4)
        fmt, pt, total = parse_common_header(p.serialize())
        assert fmt == 3
        assert pt == PT_APP
        assert total == len(p.serialize())

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            parse_common_header(b"\x80")

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            parse_common_header(b"\x00\xc8\x00\x00")


class TestReceiverReport:
    def test_round_trip_no_blocks(self):
        rr = ReceiverReport(sender_ssrc=7)
        assert ReceiverReport.parse(rr.serialize()) == rr

    def test_round_trip_with_blocks(self):
        rr = ReceiverReport(
            sender_ssrc=7,
            blocks=(
                ReportBlock(
                    ssrc=1,
                    fraction_lost=128,
                    cumulative_lost=1000,
                    highest_seq=55_555,
                    jitter=90,
                ),
                ReportBlock(
                    ssrc=2,
                    fraction_lost=0,
                    cumulative_lost=0,
                    highest_seq=1,
                    jitter=0,
                ),
            ),
        )
        parsed = ReceiverReport.parse(rr.serialize())
        assert parsed == rr

    def test_parse_rejects_wrong_type(self):
        app = AppPacket(subtype=0, ssrc=1, name=b"ABCD").serialize()
        with pytest.raises(ValueError, match="not an RR"):
            ReceiverReport.parse(app)


class TestAppPacket:
    def test_round_trip(self):
        p = AppPacket(subtype=1, ssrc=99, name=b"GTBR", data=b"\x01" * 8)
        assert AppPacket.parse(p.serialize()) == p

    def test_name_must_be_four_bytes(self):
        with pytest.raises(ValueError, match="4 bytes"):
            AppPacket(subtype=0, ssrc=1, name=b"ABC")

    def test_data_must_be_aligned(self):
        with pytest.raises(ValueError, match="aligned"):
            AppPacket(subtype=0, ssrc=1, name=b"ABCD", data=b"\x00" * 3)

    def test_subtype_range(self):
        with pytest.raises(ValueError):
            AppPacket(subtype=32, ssrc=1, name=b"ABCD")

    def test_parse_rejects_wrong_type(self):
        rr = ReceiverReport(sender_ssrc=1).serialize()
        with pytest.raises(ValueError, match="not an APP"):
            AppPacket.parse(rr)


class TestTwccFeedback:
    def test_round_trip(self):
        fb = TwccFeedback(
            sender_ssrc=5,
            base_seq=100,
            arrivals=((100, 1_000_000), (101, -1), (102, 1_040_000)),
        )
        assert TwccFeedback.parse(fb.serialize()) == fb

    def test_empty_arrivals(self):
        fb = TwccFeedback(sender_ssrc=5, base_seq=0, arrivals=())
        assert TwccFeedback.parse(fb.serialize()) == fb

    def test_parse_rejects_wrong_fmt(self):
        rr = ReceiverReport(sender_ssrc=1).serialize()
        with pytest.raises(ValueError):
            TwccFeedback.parse(rr)


class TestCompound:
    def test_splits_multiple_packets(self):
        rr = ReceiverReport(sender_ssrc=1).serialize()
        app = AppPacket(subtype=0, ssrc=2, name=b"SEMB", data=b"\x00" * 4).serialize()
        parts = parse_compound(rr + app)
        assert parts == [rr, app]

    def test_rejects_truncation(self):
        rr = ReceiverReport(sender_ssrc=1).serialize()
        with pytest.raises(ValueError, match="truncated"):
            parse_compound(rr[:-2])


@given(
    subtype=st.integers(0, 31),
    ssrc=st.integers(0, 2**32 - 1),
    name=st.binary(min_size=4, max_size=4),
    words=st.integers(0, 16),
)
@settings(max_examples=100, deadline=None)
def test_app_round_trip_property(subtype, ssrc, name, words):
    p = AppPacket(subtype=subtype, ssrc=ssrc, name=name, data=b"\x5a" * (4 * words))
    assert AppPacket.parse(p.serialize()) == p
