"""Unit tests for SEMB reports and GSO TMMBR/TMMBN feedback."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtp.semb import (
    SembReport,
    decode_exp_mantissa,
    encode_exp_mantissa,
)
from repro.rtp.tmmbr import (
    GsoTmmbn,
    GsoTmmbr,
    ReliableTmmbrSender,
    TmmbrEntry,
)


class TestExpMantissa:
    def test_small_values_exact(self):
        exp, mantissa = encode_exp_mantissa(100_000)
        assert exp == 0
        assert mantissa == 100_000
        assert decode_exp_mantissa(exp, mantissa) == 100_000

    def test_large_values_round_up(self):
        value = 5_000_000_000  # 5 Gbps, needs exponent
        exp, mantissa = encode_exp_mantissa(value)
        decoded = decode_exp_mantissa(exp, mantissa)
        assert decoded >= value
        assert decoded <= value * 1.001  # tight rounding

    def test_17_bit_mantissa_variant(self):
        exp18, m18 = encode_exp_mantissa(1_000_000, mantissa_bits=18)
        exp17, m17 = encode_exp_mantissa(1_000_000, mantissa_bits=17)
        assert m18 < 2**18 and m17 < 2**17
        assert decode_exp_mantissa(exp17, m17) >= 1_000_000

    def test_zero(self):
        assert encode_exp_mantissa(0) == (0, 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_exp_mantissa(-1)

    @given(st.integers(0, 10**12))
    @settings(max_examples=200, deadline=None)
    def test_never_understates(self, value):
        exp, mantissa = encode_exp_mantissa(value)
        assert decode_exp_mantissa(exp, mantissa) >= value


class TestSembReport:
    def test_round_trip(self):
        report = SembReport(
            sender_ssrc=42, bitrate_bps=2_345_678, media_ssrcs=(1, 2, 3)
        )
        parsed = SembReport.from_app_packet(report.to_app_packet())
        assert parsed.sender_ssrc == 42
        assert parsed.media_ssrcs == (1, 2, 3)
        assert parsed.bitrate_bps >= 2_345_678  # round-up encoding

    def test_kbps_helper(self):
        assert SembReport(1, 2_000_000).bitrate_kbps == 2000

    def test_rejects_wrong_app_name(self):
        from repro.rtp.rtcp import AppPacket

        other = AppPacket(subtype=0, ssrc=1, name=b"XXXX", data=b"\x00" * 4)
        with pytest.raises(ValueError, match="not a SEMB"):
            SembReport.from_app_packet(other)

    def test_full_wire_round_trip(self):
        from repro.rtp.rtcp import AppPacket

        report = SembReport(sender_ssrc=9, bitrate_bps=800_000)
        wire = report.to_app_packet().serialize()
        parsed = SembReport.from_app_packet(AppPacket.parse(wire))
        assert parsed.bitrate_bps >= 800_000
        assert parsed.sender_ssrc == 9


class TestTmmbrEntry:
    def test_round_trip(self):
        e = TmmbrEntry(ssrc=1234, bitrate_bps=1_500_000, overhead_bytes=28)
        parsed = TmmbrEntry.parse(e.serialize())
        assert parsed.ssrc == 1234
        assert parsed.overhead_bytes == 28
        assert parsed.bitrate_bps >= 1_500_000

    def test_zero_disables_stream(self):
        e = TmmbrEntry(ssrc=5, bitrate_bps=0)
        assert e.disables_stream
        assert TmmbrEntry.parse(e.serialize()).disables_stream

    def test_validation(self):
        with pytest.raises(ValueError):
            TmmbrEntry(ssrc=2**32, bitrate_bps=1)
        with pytest.raises(ValueError):
            TmmbrEntry(ssrc=1, bitrate_bps=-1)
        with pytest.raises(ValueError):
            TmmbrEntry(ssrc=1, bitrate_bps=1, overhead_bytes=512)


class TestGsoTmmbrPackets:
    def entries(self):
        return (
            TmmbrEntry(ssrc=1, bitrate_bps=1_400_000),
            TmmbrEntry(ssrc=2, bitrate_bps=0),
        )

    def test_request_round_trip(self):
        req = GsoTmmbr(sender_ssrc=7, request_id=3, entries=self.entries())
        parsed = GsoTmmbr.from_app_packet(req.to_app_packet())
        assert parsed.request_id == 3
        assert len(parsed.entries) == 2
        assert parsed.entries[1].disables_stream

    def test_notification_round_trip(self):
        note = GsoTmmbn(sender_ssrc=8, request_id=3, entries=self.entries())
        parsed = GsoTmmbn.from_app_packet(note.to_app_packet())
        assert parsed.request_id == 3

    def test_acknowledge_builds_matching_tmmbn(self):
        req = GsoTmmbr(sender_ssrc=7, request_id=9, entries=self.entries())
        note = GsoTmmbn.acknowledge(req, sender_ssrc=55)
        assert note.request_id == 9
        assert note.entries == req.entries

    def test_name_disambiguation(self):
        req = GsoTmmbr(sender_ssrc=7, request_id=1, entries=self.entries())
        with pytest.raises(ValueError, match="not a GSO TMMBN"):
            GsoTmmbn.from_app_packet(req.to_app_packet())


class TestReliability:
    def make(self, **kwargs):
        self.sent = []
        self.timers = []
        sender = ReliableTmmbrSender(
            transmit=lambda target, req: self.sent.append((target, req)),
            schedule=lambda delay, cb: self.timers.append((delay, cb)),
            **kwargs,
        )
        return sender

    def fire_timers(self):
        timers, self.timers = self.timers, []
        for _, cb in timers:
            cb()

    def test_send_transmits_immediately(self):
        sender = self.make()
        sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=100)])
        assert len(self.sent) == 1
        assert sender.pending_count == 1

    def test_tmmbn_stops_retransmission(self):
        sender = self.make()
        req = sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=100)])
        note = GsoTmmbn.acknowledge(req, sender_ssrc=2)
        assert sender.on_tmmbn("client", note) is True
        self.fire_timers()
        assert len(self.sent) == 1  # no retransmit

    def test_lost_tmmbn_triggers_retransmit(self):
        sender = self.make()
        sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=100)])
        self.fire_timers()
        assert len(self.sent) == 2  # original + retry

    def test_stale_tmmbn_ignored(self):
        sender = self.make()
        old = sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=100)])
        new = sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=200)])
        stale = GsoTmmbn.acknowledge(old, sender_ssrc=2)
        assert sender.on_tmmbn("client", stale) is False
        fresh = GsoTmmbn.acknowledge(new, sender_ssrc=2)
        assert sender.on_tmmbn("client", fresh) is True

    def test_gives_up_after_max_attempts(self):
        sender = self.make(max_attempts=3)
        sender.send("client", 1, [TmmbrEntry(ssrc=1, bitrate_bps=100)])
        for _ in range(5):
            self.fire_timers()
        assert len(self.sent) == 3
        assert sender.failed_targets == ["client"]
        assert sender.pending_count == 0

    def test_request_ids_increase(self):
        sender = self.make()
        r1 = sender.send("a", 1, [TmmbrEntry(ssrc=1, bitrate_bps=1)])
        r2 = sender.send("b", 1, [TmmbrEntry(ssrc=1, bitrate_bps=1)])
        assert r2.request_id > r1.request_id

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(retransmit_interval_s=0)
        with pytest.raises(ValueError):
            self.make(max_attempts=0)
