"""Unit tests for the incremental solve engine's building blocks."""

import pytest

from repro.core.engine import (
    EngineStats,
    MckpInstanceCache,
    instance_key,
)
from repro.core.mckp import MckpSolution, solve_mckp_dp
from repro.obs import enabled_registry
from repro.obs import names as obs_names


CLASSES = ((((100, 1.0), (200, 2.0)),), (((100, 1.0),), ((300, 3.0),)))


class TestInstanceKey:
    def test_same_instance_same_key(self):
        a = instance_key(CLASSES[0], 500, 1)
        b = instance_key(CLASSES[0], 500, 1)
        assert a == b and hash(a) == hash(b)

    def test_distinct_classes_distinct_keys(self):
        assert instance_key(CLASSES[0], 500, 1) != instance_key(
            CLASSES[1], 500, 1
        )

    def test_granularity_distinguishes(self):
        assert instance_key(CLASSES[0], 500, 1) != instance_key(
            CLASSES[0], 500, 25
        )

    def test_capacity_bucketing_shares_within_granularity(self):
        # The DP only sees capacity // granularity slots, so capacities
        # in the same bucket must collide onto one key...
        assert instance_key(CLASSES[0], 500, 25) == instance_key(
            CLASSES[0], 524, 25
        )
        # ...and the next bucket must not.
        assert instance_key(CLASSES[0], 500, 25) != instance_key(
            CLASSES[0], 525, 25
        )

    def test_bucketed_solution_is_a_legal_replay(self):
        # The heart of the equivalence argument: for every capacity in a
        # bucket, the DP returns the identical solution, and its true
        # weight respects the *smallest* capacity of the bucket.
        classes = [[(99, 10.0), (51, 6.0)], [(52, 5.0)]]
        sols = [
            solve_mckp_dp(classes, cap, granularity=50)
            for cap in (150, 151, 173, 199)
        ]
        assert all(s.picks == sols[0].picks for s in sols)
        assert sols[0].total_weight <= 150

    def test_accepts_list_input(self):
        assert instance_key(list(CLASSES[0]), 500, 1) == instance_key(
            CLASSES[0], 500, 1
        )


class TestMckpInstanceCache:
    def test_get_miss_then_hit(self):
        cache = MckpInstanceCache(capacity=4)
        key = instance_key(CLASSES[0], 500, 1)
        assert cache.get(key) is None
        sol = MckpSolution(picks=(1,), total_value=2.0, total_weight=200)
        cache.put(key, sol)
        assert cache.get(key) is sol
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = MckpInstanceCache(capacity=2)
        keys = [instance_key(CLASSES[0], cap, 1) for cap in (1, 2, 3)]
        sol = MckpSolution(picks=(None,), total_value=0.0, total_weight=0)
        cache.put(keys[0], sol)
        cache.put(keys[1], sol)
        cache.get(keys[0])  # refresh 0; 1 becomes LRU
        cache.put(keys[2], sol)  # evicts 1
        assert keys[0] in cache and keys[2] in cache
        assert keys[1] not in cache
        assert cache.stats.evictions == 1
        assert len(cache) == 2

    def test_clear_keeps_stats(self):
        cache = MckpInstanceCache(capacity=4)
        key = instance_key(CLASSES[0], 500, 1)
        sol = MckpSolution(picks=(0,), total_value=1.0, total_weight=100)
        cache.put(key, sol)
        cache.get(key)
        cache.clear()
        assert len(cache) == 0
        assert cache.get(key) is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_snapshot_shape(self):
        cache = MckpInstanceCache(capacity=8)
        snap = cache.snapshot()
        assert snap == {
            "entries": 0,
            "capacity": 8,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "hit_rate": 0.0,
        }

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MckpInstanceCache(capacity=0)

    def test_metrics_emitted_when_registry_enabled(self):
        cache = MckpInstanceCache(capacity=1)
        keys = [instance_key(CLASSES[0], cap, 1) for cap in (1, 2)]
        sol = MckpSolution(picks=(None,), total_value=0.0, total_weight=0)
        with enabled_registry() as reg:
            cache.get(keys[0])
            cache.put(keys[0], sol)
            cache.get(keys[0])
            cache.put(keys[1], sol)  # evicts keys[0]
            snap = reg.snapshot()
        counters = snap["counters"]
        assert counters[obs_names.MCKP_CACHE + '{result="miss"}'] == 1
        assert counters[obs_names.MCKP_CACHE + '{result="hit"}'] == 1
        assert counters[obs_names.MCKP_CACHE_EVICTIONS] == 1
        assert snap["gauges"][obs_names.MCKP_CACHE_ENTRIES] == 1


class TestEngineStats:
    def test_dp_solves_avoided_sums_all_layers(self):
        stats = EngineStats(
            step1_solved=10, step1_skipped=5, deduped=3, cache_hits=2
        )
        assert stats.dp_solves_avoided == 10
