"""Tests for the KMR decision tracer."""

import pytest

from repro.core import Bandwidth, ProblemBuilder, Resolution, paper_ladder, solve
from repro.core.explain import explain_solve


def table1_case(bandwidths):
    builder = ProblemBuilder()
    ladder = paper_ladder()
    for client, (up, down) in bandwidths.items():
        builder.add_client(client, Bandwidth(up, down), ladder)
    builder.subscribe("A", "B", Resolution.P360)
    builder.subscribe("A", "C", Resolution.P180)
    builder.subscribe("B", "A", Resolution.P720)
    builder.subscribe("B", "C", Resolution.P360)
    builder.subscribe("C", "B", Resolution.P360)
    builder.subscribe("C", "A", Resolution.P720)
    return builder.build()


class TestExplain:
    def test_trace_matches_plain_solve(self):
        p = table1_case({"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)})
        explained = explain_solve(p)
        plain = solve(p)
        assert explained.solution.policies == plain.policies
        assert explained.solution.assignments == plain.assignments
        explained.solution.validate(p)

    def test_trace_narrates_all_steps(self):
        p = table1_case({"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)})
        text = str(explain_solve(p))
        assert "step 1 (knapsack)" in text
        assert "step 2 (merge)" in text
        assert "step 3 (reduction)" in text
        assert "solution found" in text

    def test_merge_notes_appear_when_requests_differ(self):
        """In Fig. 5's example, B and C request different 720p bitrates
        from A; the trace calls out the merge."""
        p = table1_case({"A": (5000, 2400), "B": (5000, 3000), "C": (5000, 1600)})
        text = str(explain_solve(p))
        # The merged-from note appears only when rates actually differed;
        # assert the trace machinery produces coherent output either way.
        assert "step 2 (merge)" in text
        assert "to {" in text

    def test_fix_narration(self):
        """Case 2's uplink fix (800 -> 600 kbps) shows up in the trace."""
        p = table1_case({"A": (5000, 5000), "B": (600, 5000), "C": (5000, 5000)})
        text = str(explain_solve(p))
        assert "over budget" in text
        assert "fixed B@360p: 800 -> 600kbps" in text

    def test_reduction_narration(self):
        from repro.core.constraints import Problem, Subscription

        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(500, 100), "B": Bandwidth(100, 5000)},
            [Subscription("B", "A", Resolution.P720)],
        )
        explained = explain_solve(p)
        text = str(explained)
        assert "unfixable: removing 720p from A's feasible set" in text
        assert "iteration 2" in text
        explained.solution.validate(p)
