"""Unit tests for repro.core.constraints."""

import pytest

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.ladder import paper_ladder
from repro.core.types import Resolution, StreamSpec


def two_client_problem(**kwargs):
    ladder = paper_ladder()
    return Problem(
        feasible_streams={"A": ladder, "B": ladder},
        bandwidth={"A": Bandwidth(5000, 5000), "B": Bandwidth(5000, 5000)},
        subscriptions=[Subscription("B", "A"), Subscription("A", "B")],
        **kwargs,
    )


class TestBandwidth:
    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Bandwidth(-1, 100)
        with pytest.raises(ValueError):
            Bandwidth(100, -1)
        with pytest.raises(ValueError):
            Bandwidth(100, 100, audio_protection_kbps=-1)

    def test_audio_protection_subtracts(self):
        bw = Bandwidth(1000, 2000, audio_protection_kbps=64)
        assert bw.effective_uplink_kbps == 936
        assert bw.effective_downlink_kbps == 1936

    def test_audio_protection_floors_at_zero(self):
        bw = Bandwidth(50, 50, audio_protection_kbps=64)
        assert bw.effective_uplink_kbps == 0
        assert bw.effective_downlink_kbps == 0


class TestSubscription:
    def test_rejects_self_subscription(self):
        with pytest.raises(ValueError, match="itself"):
            Subscription("A", "A")

    def test_default_cap_is_720(self):
        assert Subscription("A", "B").max_resolution == Resolution.P720


class TestProblemValidation:
    def test_valid_problem_builds(self):
        p = two_client_problem()
        assert p.publishers == ["A", "B"]
        assert p.subscribers == ["A", "B"]

    def test_rejects_duplicate_edges(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="duplicate"):
            Problem(
                {"A": ladder},
                {"A": Bandwidth(1, 1), "B": Bandwidth(1, 1)},
                [Subscription("B", "A"), Subscription("B", "A")],
            )

    def test_rejects_unknown_publisher(self):
        with pytest.raises(ValueError, match="unknown publisher"):
            Problem(
                {},
                {"B": Bandwidth(1, 1)},
                [Subscription("B", "A")],
            )

    def test_rejects_subscriber_without_bandwidth(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="no bandwidth"):
            Problem(
                {"A": ladder},
                {"A": Bandwidth(1, 1)},
                [Subscription("B", "A")],
            )

    def test_rejects_publisher_without_bandwidth(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="no bandwidth"):
            Problem({"A": ladder}, {}, [])

    def test_rejects_alias_with_own_feasible_set(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="feasible set"):
            Problem(
                {"A": ladder, "A#v": ladder},
                {"A": Bandwidth(1, 1)},
                [],
                aliases={"A#v": "A"},
            )

    def test_rejects_alias_to_unknown_target(self):
        with pytest.raises(ValueError, match="unknown publisher"):
            Problem(
                {},
                {"A": Bandwidth(1, 1)},
                [],
                aliases={"A#v": "X"},
            )

    def test_rejects_subscribing_own_alias(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="own alias"):
            Problem(
                {"A": ladder},
                {"A": Bandwidth(1, 1)},
                [Subscription("A", "A#v")],
                aliases={"A#v": "A"},
            )

    def test_rejects_owner_without_bandwidth(self):
        ladder = paper_ladder()
        with pytest.raises(ValueError, match="no bandwidth"):
            Problem(
                {"A:screen": ladder},
                {},
                [],
                owners={"A:screen": "A"},
            )


class TestTopologyAccessors:
    def test_followed_and_served(self):
        p = two_client_problem()
        assert [e.publisher for e in p.followed_by("A")] == ["B"]
        assert [e.subscriber for e in p.served_by("A")] == ["B"]

    def test_edge_lookup(self):
        p = two_client_problem()
        assert p.edge("A", "B") is not None
        assert p.edge("A", "nope") is None

    def test_feasible_for_edge_caps_resolution(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(1, 1), "B": Bandwidth(1, 1)},
            [Subscription("B", "A", Resolution.P180)],
        )
        edge = p.edge("B", "A")
        feasible = p.feasible_for_edge(edge)
        assert all(s.resolution <= Resolution.P180 for s in feasible)

    def test_feasible_for_edge_uses_restriction(self):
        p = two_client_problem()
        edge = p.edge("B", "A")
        restricted = {"A": [], "B": []}
        assert p.feasible_for_edge(edge, restricted=restricted) == []

    def test_canonical_and_owner_identity_by_default(self):
        p = two_client_problem()
        assert p.canonical("A") == "A"
        assert p.owner("A") == "A"

    def test_alias_resolution(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(1, 1), "B": Bandwidth(1, 1)},
            [Subscription("B", "A#v")],
            aliases={"A#v": "A"},
        )
        assert p.canonical("A#v") == "A"
        assert [e.subscriber for e in p.served_by("A")] == ["B"]

    def test_owner_and_entities(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder, "A:screen": ladder},
            {"A": Bandwidth(1, 1), "B": Bandwidth(1, 1)},
            [Subscription("B", "A:screen")],
            owners={"A:screen": "A"},
        )
        assert p.owner("A:screen") == "A"
        assert p.entities_of("A") == ["A", "A:screen"]
        assert "A" in p.clients and "B" in p.clients

    def test_budgets_respect_audio_protection(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(1000, 2000, audio_protection_kbps=100)},
            [],
        )
        assert p.uplink_budget("A") == 900
        assert p.downlink_budget("A") == 1900
