"""Tests for the Solution model and its constraint validation."""

import pytest

from repro.core import Bandwidth, PolicyEntry, Resolution, Solution, StreamSpec
from repro.core.constraints import Problem, Subscription


def spec(rate, res, qoe=None):
    return StreamSpec(rate, res, float(qoe if qoe is not None else rate))


def toy_problem(downlink=5000, uplink=5000):
    ladder = [spec(1000, Resolution.P720), spec(300, Resolution.P180)]
    return Problem(
        {"P": ladder},
        {"P": Bandwidth(uplink, 100), "S": Bandwidth(100, downlink)},
        [Subscription("S", "P", Resolution.P720)],
    )


def good_solution():
    stream = spec(1000, Resolution.P720)
    return Solution(
        policies={
            "P": {
                Resolution.P720: PolicyEntry(stream, frozenset({"S"})),
            }
        },
        assignments={"S": {"P": stream}},
    )


class TestAggregates:
    def test_total_qoe_sums_assignments(self):
        s = good_solution()
        assert s.total_qoe() == pytest.approx(1000.0)

    def test_subscriber_qoe(self):
        s = good_solution()
        assert s.subscriber_qoe("S") == pytest.approx(1000.0)
        assert s.subscriber_qoe("missing") == 0.0

    def test_usage_accounting(self):
        s = good_solution()
        assert s.uplink_usage_kbps("P") == 1000
        assert s.downlink_usage_kbps("S") == 1000
        assert s.uplink_usage_kbps("missing") == 0

    def test_published_streams_high_resolution_first(self):
        hi, lo = spec(1000, Resolution.P720), spec(300, Resolution.P180)
        s = Solution(
            policies={
                "P": {
                    Resolution.P180: PolicyEntry(lo, frozenset({"S"})),
                    Resolution.P720: PolicyEntry(hi, frozenset({"S"})),
                }
            },
            assignments={"S": {"P": hi}},
        )
        assert [x.resolution for x in s.published_streams("P")] == [
            Resolution.P720,
            Resolution.P180,
        ]

    def test_summary_mentions_publishers(self):
        text = good_solution().summary()
        assert "P publishes" in text
        assert "total QoE" in text


class TestValidation:
    def test_good_solution_validates(self):
        good_solution().validate(toy_problem())

    def test_detects_downlink_violation(self):
        with pytest.raises(AssertionError, match="downlink violated"):
            good_solution().validate(toy_problem(downlink=900))

    def test_detects_uplink_violation(self):
        with pytest.raises(AssertionError, match="uplink violated"):
            good_solution().validate(toy_problem(uplink=900))

    def test_detects_non_feasible_stream(self):
        s = good_solution()
        rogue = spec(999, Resolution.P720)
        s.policies["P"][Resolution.P720] = PolicyEntry(rogue, frozenset({"S"}))
        s.assignments["S"]["P"] = rogue
        with pytest.raises(AssertionError, match="non-feasible"):
            s.validate(toy_problem())

    def test_detects_resolution_cap_violation(self):
        ladder = [spec(1000, Resolution.P720)]
        p = Problem(
            {"P": ladder},
            {"P": Bandwidth(5000, 100), "S": Bandwidth(100, 5000)},
            [Subscription("S", "P", Resolution.P180)],
        )
        with pytest.raises(AssertionError, match="exceeds"):
            good_solution().validate(p)

    def test_detects_unfollowed_assignment(self):
        ladder = [spec(1000, Resolution.P720)]
        p = Problem(
            {"P": ladder},
            {
                "P": Bandwidth(5000, 100),
                "S": Bandwidth(100, 5000),
                "T": Bandwidth(100, 5000),
            },
            [Subscription("T", "P", Resolution.P720)],
        )
        with pytest.raises(AssertionError):
            good_solution().validate(p)

    def test_detects_empty_audience(self):
        s = good_solution()
        s.policies["P"][Resolution.P720] = PolicyEntry(
            spec(1000, Resolution.P720), frozenset()
        )
        s.assignments = {}
        with pytest.raises(AssertionError, match="no audience"):
            s.validate(toy_problem())

    def test_detects_policy_assignment_mismatch(self):
        s = good_solution()
        s.assignments["S"]["P"] = spec(300, Resolution.P180)
        with pytest.raises(AssertionError):
            s.validate(toy_problem())

    def test_detects_audience_without_assignment(self):
        s = good_solution()
        s.assignments = {"S": {}}
        with pytest.raises(AssertionError, match="lacks"):
            s.validate(toy_problem())

    def test_detects_policy_keyed_by_wrong_resolution(self):
        s = good_solution()
        entry = s.policies["P"].pop(Resolution.P720)
        s.policies["P"][Resolution.P180] = entry
        with pytest.raises(AssertionError, match="keyed"):
            s.validate(toy_problem())


class TestPolicyEntryPickleCanonical:
    """Equal policy entries must pickle byte-identically — audiences are
    frozensets, whose native serialization order depends on insertion
    history (a SolvePool worker's round-tripped entry used to pickle
    differently from the parent's freshly-built one)."""

    def test_insertion_order_does_not_leak_into_bytes(self):
        import pickle

        stream = spec(1000, Resolution.P720)
        ids = [f"c{k}" for k in range(40)]
        a = PolicyEntry(stream, frozenset(ids))
        b = PolicyEntry(stream, frozenset(reversed(ids)))
        assert a == b
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_round_trip_is_byte_stable(self):
        import pickle

        stream = spec(1000, Resolution.P720)
        entry = PolicyEntry(stream, frozenset(f"c{k}" for k in range(40)))
        blob = pickle.dumps(entry)
        again = pickle.loads(blob)
        assert again == entry
        assert pickle.dumps(again) == blob
