"""Unit tests for stream priority management (Sec. 4.4)."""

import pytest

from repro.core import (
    Bandwidth,
    PriorityPolicy,
    Resolution,
    StreamClass,
    StreamSpec,
    paper_ladder,
    solve,
)
from repro.core.constraints import Problem, Subscription
from repro.core.priority import HOST_BOOST, SPEAKER_BOOST


class TestFactors:
    def test_default_camera_factor_is_one(self):
        assert PriorityPolicy().factor_for("anyone") == 1.0

    def test_speaker_boost(self):
        policy = PriorityPolicy(speaker="S")
        assert policy.factor_for("S") == pytest.approx(SPEAKER_BOOST)

    def test_host_boost(self):
        policy = PriorityPolicy(host="H")
        assert policy.factor_for("H") == pytest.approx(HOST_BOOST)

    def test_speaker_host_stack(self):
        policy = PriorityPolicy(speaker="X", host="X")
        assert policy.factor_for("X") == pytest.approx(
            SPEAKER_BOOST * HOST_BOOST
        )

    def test_screen_class_factor(self):
        policy = PriorityPolicy(stream_classes={"X": StreamClass.SCREEN})
        assert policy.factor_for("X") == pytest.approx(4.0)

    def test_thumbnail_deprioritized(self):
        policy = PriorityPolicy(stream_classes={"X": StreamClass.THUMBNAIL})
        assert policy.factor_for("X") < 1.0


class TestApply:
    def test_apply_scales_only_prioritized_publishers(self):
        ladder = paper_ladder()
        policy = PriorityPolicy(speaker="A")
        weighted = policy.apply({"A": ladder, "B": ladder})
        a_qoe = {s.bitrate_kbps: s.qoe for s in weighted["A"]}
        b_qoe = {s.bitrate_kbps: s.qoe for s in weighted["B"]}
        for rate, qoe in b_qoe.items():
            assert a_qoe[rate] == pytest.approx(qoe * SPEAKER_BOOST)

    def test_speaker_wins_contention(self):
        """With a tight downlink, the speaker's stream is preferred."""
        ladder = paper_ladder()
        policy = PriorityPolicy(speaker="speaker")
        weighted = policy.apply({"speaker": ladder, "other": ladder})
        p = Problem(
            weighted,
            {
                "speaker": Bandwidth(5000, 100),
                "other": Bandwidth(5000, 100),
                "viewer": Bandwidth(100, 900),
            },
            [
                Subscription("viewer", "speaker", Resolution.P720),
                Subscription("viewer", "other", Resolution.P720),
            ],
        )
        s = solve(p)
        s.validate(p)
        speaker_rate = s.assignments["viewer"].get("speaker")
        other_rate = s.assignments["viewer"].get("other")
        assert speaker_rate is not None
        # The speaker gets at least as much bitrate as the other publisher.
        if other_rate is not None:
            assert speaker_rate.bitrate_kbps >= other_rate.bitrate_kbps

    def test_small_streams_survive_competition(self):
        """Sec. 4.4: prefer both-at-reduced-bitrate over dropping one.

        Two publishers compete for a downlink that cannot carry two large
        streams; the concave QoE curve must keep both at reduced bitrates.
        """
        ladder = paper_ladder()
        p = Problem(
            {"P1": ladder, "P2": ladder},
            {
                "P1": Bandwidth(5000, 100),
                "P2": Bandwidth(5000, 100),
                "V": Bandwidth(100, 800),
            },
            [
                Subscription("V", "P1", Resolution.P360),
                Subscription("V", "P2", Resolution.P360),
            ],
        )
        s = solve(p)
        s.validate(p)
        assert len(s.assignments["V"]) == 2
