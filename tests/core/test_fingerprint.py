"""Canonical ``Problem.fingerprint()`` — the cluster cache key.

The solve service (``repro.cluster``) reuses cached solutions whenever two
problems share a fingerprint, so the fingerprint must be exactly as coarse
as the solver's own blindness and no coarser:

* construction-order permutations must collide (same meeting, same key);
* downlink budgets may be bucketed to the knapsack granularity — the DP
  only sees ``capacity // granularity`` slots;
* uplink budgets must stay exact — Step 3 compares raw kbps (Eq. 14/17),
  so near-miss uplinks must NOT collide after bucketing.
"""

import random

import pytest

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.ladder import make_ladder, paper_ladder
from repro.core.solver import GsoSolver, SolverConfig
from repro.core.types import Resolution


def mesh_problem(
    ladder=None,
    ups=(5000, 5000, 500),
    downs=(3000, 3000, 3000),
    protection=0,
    subscription_order=None,
):
    ladder = ladder if ladder is not None else paper_ladder()
    ids = [f"c{k}" for k in range(len(ups))]
    subs = [
        Subscription(a, b, Resolution.P720)
        for a in ids
        for b in ids
        if a != b
    ]
    if subscription_order is not None:
        subs = [subs[i] for i in subscription_order]
    return Problem(
        feasible_streams={cid: ladder for cid in ids},
        bandwidth={
            cid: Bandwidth(up, down, audio_protection_kbps=protection)
            for cid, up, down in zip(ids, ups, downs)
        },
        subscriptions=subs,
    )


class TestPermutationInvariance:
    def test_subscription_order_irrelevant(self):
        base = mesh_problem()
        n = len(base.subscriptions)
        rng = random.Random(11)
        for _ in range(5):
            order = list(range(n))
            rng.shuffle(order)
            shuffled = mesh_problem(subscription_order=order)
            assert shuffled.fingerprint() == base.fingerprint()

    def test_mapping_insertion_order_irrelevant(self):
        ladder = paper_ladder()
        fwd = Problem(
            feasible_streams={"a": ladder, "b": ladder},
            bandwidth={"a": Bandwidth(5000, 3000), "b": Bandwidth(900, 700)},
            subscriptions=[Subscription("a", "b"), Subscription("b", "a")],
        )
        rev = Problem(
            feasible_streams={"b": ladder, "a": ladder},
            bandwidth={"b": Bandwidth(900, 700), "a": Bandwidth(5000, 3000)},
            subscriptions=[Subscription("b", "a"), Subscription("a", "b")],
        )
        assert fwd.fingerprint(25) == rev.fingerprint(25)

    def test_ladder_stream_order_irrelevant(self):
        ladder = paper_ladder()
        reversed_ladder = list(reversed(ladder))
        a = mesh_problem(ladder=ladder)
        b = mesh_problem(ladder=reversed_ladder)
        assert a.fingerprint() == b.fingerprint()

    def test_alias_and_owner_maps_keyed_canonically(self):
        ladder = paper_ladder()

        def build(alias_first):
            aliases = {"a2": "a", "a3": "a"}
            items = list(aliases.items())
            if not alias_first:
                items = list(reversed(items))
            return Problem(
                feasible_streams={"a": ladder, "b": ladder},
                bandwidth={"a": Bandwidth(5000, 3000), "b": Bandwidth(5000, 3000)},
                subscriptions=[
                    Subscription("b", "a"),
                    Subscription("b", "a2", Resolution.P180),
                    Subscription("b", "a3", Resolution.P360),
                    Subscription("a", "b"),
                ],
                aliases=dict(items),
            )

        assert build(True).fingerprint() == build(False).fingerprint()


class TestDiscrimination:
    def test_different_ladders_differ(self):
        a = mesh_problem(ladder=paper_ladder())
        b = mesh_problem(ladder=make_ladder(levels_per_resolution=5))
        assert a.fingerprint() != b.fingerprint()

    def test_subscription_cap_differs(self):
        base = mesh_problem()
        ladder = paper_ladder()
        ids = ["c0", "c1", "c2"]
        subs = [
            Subscription(a, b, Resolution.P360 if (a, b) == ("c0", "c1") else Resolution.P720)
            for a in ids
            for b in ids
            if a != b
        ]
        capped = Problem(
            feasible_streams={cid: ladder for cid in ids},
            bandwidth={cid: base.bandwidth[cid] for cid in ids},
            subscriptions=subs,
        )
        assert capped.fingerprint() != base.fingerprint()

    def test_granularity_is_part_of_the_key(self):
        p = mesh_problem()
        assert p.fingerprint(1) != p.fingerprint(25)

    def test_audio_protection_folds_into_effective_budgets(self):
        # 1045 uplink with 45 kbps protection == 1000 uplink with none: the
        # solver only ever reads the effective budgets.
        raw = mesh_problem(ups=(1045, 5045, 545), downs=(3045, 3045, 3045), protection=45)
        eff = mesh_problem(ups=(1000, 5000, 500), downs=(3000, 3000, 3000))
        assert raw.fingerprint(25) == eff.fingerprint(25)


class TestBudgetBucketing:
    """Near-miss budgets: bucketing must match the solver's blindness."""

    GRANULARITY = 10

    def test_downlink_bucket_edge_does_not_collide(self):
        # 2999 vs 3000 straddle a bucket boundary at g=10 -> distinct keys.
        a = mesh_problem(downs=(2999, 3000, 3000))
        b = mesh_problem(downs=(3000, 3000, 3000))
        assert a.fingerprint(self.GRANULARITY) != b.fingerprint(self.GRANULARITY)

    def test_downlink_same_bucket_collides_and_is_lossless(self):
        # 3000 vs 3009 share the g=10 bucket; the DP sees 300 slots either
        # way, so colliding is correct -- prove it by comparing solutions.
        a = mesh_problem(downs=(3000, 3000, 3000))
        b = mesh_problem(downs=(3009, 3000, 3000))
        assert a.fingerprint(self.GRANULARITY) == b.fingerprint(self.GRANULARITY)
        solver = GsoSolver(SolverConfig(granularity_kbps=self.GRANULARITY))
        assert solver.solve(a) == solver.solve(b)

    def test_uplink_near_miss_never_collides(self):
        # Step 3 compares exact kbps sums against the uplink, so 500 vs 509
        # (same coarse bucket) must stay distinct fingerprints.
        a = mesh_problem(ups=(5000, 5000, 500))
        b = mesh_problem(ups=(5000, 5000, 509))
        assert a.fingerprint(self.GRANULARITY) != b.fingerprint(self.GRANULARITY)

    def test_uplink_straddling_a_merge_total_changes_the_solution(self):
        # The reason uplinks stay exact: budgets 1000 vs 1009 straddle
        # nothing at paper-ladder rungs, but 1490 vs 1500 straddle the 720p
        # 1500 kbps rung -- identical bucketed keys would alias two
        # different reductions.
        lo = mesh_problem(ups=(1490, 5000, 5000))
        hi = mesh_problem(ups=(1500, 5000, 5000))
        solver = GsoSolver(SolverConfig(granularity_kbps=self.GRANULARITY))
        assert solver.solve(lo) != solver.solve(hi)
        assert lo.fingerprint(self.GRANULARITY) != hi.fingerprint(self.GRANULARITY)

    def test_bad_granularity_rejected(self):
        with pytest.raises(ValueError):
            mesh_problem().fingerprint(0)


class TestSchemaShape:
    def test_prefix_and_stability(self):
        p = mesh_problem()
        fp = p.fingerprint(25)
        assert fp.startswith(Problem.FINGERPRINT_SCHEMA + ":")
        assert fp == p.fingerprint(25)  # pure function of the problem
