"""Unit tests for the upgrade damper (Sec. 7, quality oscillation)."""

import pytest

from repro.core.hysteresis import UpgradeDamper


class TestUpgradeDamper:
    def test_first_measurement_passes(self):
        d = UpgradeDamper()
        assert d.filter("A", "downlink", 1000) == 1000

    def test_downgrade_passes_immediately(self):
        d = UpgradeDamper()
        d.filter("A", "downlink", 1000)
        assert d.filter("A", "downlink", 600) == 600

    def test_upgrade_without_prior_downgrade_passes(self):
        d = UpgradeDamper()
        d.filter("A", "downlink", 1000)
        assert d.filter("A", "downlink", 1100) == 1100

    def test_small_upgrade_after_downgrade_is_clamped(self):
        d = UpgradeDamper(upgrade_margin=0.15)
        d.filter("A", "downlink", 1000)
        d.filter("A", "downlink", 600)  # downgrade marks the link
        assert d.filter("A", "downlink", 650) == 600  # +8% < 15% margin

    def test_confident_upgrade_after_downgrade_passes(self):
        d = UpgradeDamper(upgrade_margin=0.15)
        d.filter("A", "downlink", 1000)
        d.filter("A", "downlink", 600)
        assert d.filter("A", "downlink", 700) == 700  # +16.7% clears margin

    def test_mark_clears_after_confident_upgrade(self):
        d = UpgradeDamper(upgrade_margin=0.15)
        d.filter("A", "downlink", 1000)
        d.filter("A", "downlink", 600)
        d.filter("A", "downlink", 700)
        # No longer marked: small upgrades flow again.
        assert d.filter("A", "downlink", 720) == 720

    def test_oscillating_measurements_are_flattened(self):
        """A noisy 600/640 oscillation releases a constant 600."""
        d = UpgradeDamper(upgrade_margin=0.15)
        d.filter("A", "downlink", 1000)
        released = [d.filter("A", "downlink", v) for v in
                    [600, 640, 605, 638, 612, 645]]
        assert released == [600] * 6

    def test_links_are_independent(self):
        d = UpgradeDamper()
        d.filter("A", "downlink", 1000)
        d.filter("A", "downlink", 500)
        assert d.filter("A", "uplink", 800) == 800
        assert d.filter("B", "downlink", 900) == 900

    def test_reset_clears_client_state(self):
        d = UpgradeDamper()
        d.filter("A", "downlink", 1000)
        d.filter("A", "downlink", 500)
        d.reset("A")
        assert d.filter("A", "downlink", 550) == 550

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError, match="direction"):
            UpgradeDamper().filter("A", "sideways", 100)

    def test_rejects_negative_measurement(self):
        with pytest.raises(ValueError):
            UpgradeDamper().filter("A", "uplink", -1)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            UpgradeDamper(upgrade_margin=-0.1)
