"""Tests for virtual publishers and screen-share entities (Sec. 4.4)."""

import pytest

from repro.core import (
    Bandwidth,
    ProblemBuilder,
    Resolution,
    paper_ladder,
    screen_id,
    solve,
)
from repro.core.types import StreamSpec


def screen_ladder():
    return [
        StreamSpec(1200, Resolution.P720, 1100.0),
        StreamSpec(350, Resolution.P360, 400.0),
    ]


class TestBuilder:
    def test_duplicate_client_rejected(self):
        b = ProblemBuilder()
        b.add_client("A", Bandwidth(1, 1))
        with pytest.raises(ValueError, match="already added"):
            b.add_client("A", Bandwidth(1, 1))

    def test_screen_share_requires_known_client(self):
        with pytest.raises(ValueError, match="unknown client"):
            ProblemBuilder().add_screen_share("ghost", screen_ladder())

    def test_duplicate_screen_share_rejected(self):
        b = ProblemBuilder()
        b.add_client("A", Bandwidth(1, 1))
        b.add_screen_share("A", screen_ladder())
        with pytest.raises(ValueError, match="already shares"):
            b.add_screen_share("A", screen_ladder())


class TestSpeakerFirst:
    def build(self, viewer_down=2000):
        b = ProblemBuilder()
        ladder = paper_ladder()
        b.add_client("speaker", Bandwidth(5000, 100), ladder)
        b.add_client("viewer", Bandwidth(100, viewer_down))
        vid = b.subscribe_dual(
            "viewer",
            "speaker",
            primary_max=Resolution.P720,
            secondary_max=Resolution.P180,
        )
        return b.build(), vid

    def test_dual_subscription_yields_two_streams(self):
        p, vid = self.build()
        s = solve(p)
        s.validate(p)
        got = s.assignments["viewer"]
        assert set(got) == {"speaker", vid}
        resolutions = {stream.resolution for stream in got.values()}
        assert Resolution.P180 in resolutions
        assert max(resolutions) > Resolution.P180

    def test_merged_uplink_accounting(self):
        """Both streams count against the speaker's single uplink."""
        p, _ = self.build()
        s = solve(p)
        total = s.uplink_usage_kbps("speaker")
        assert total <= 5000
        # Policies live under the canonical publisher only.
        assert all("#virtual" not in pub for pub in s.policies)

    def test_tight_downlink_degrades_gracefully(self):
        p, vid = self.build(viewer_down=450)
        s = solve(p)
        s.validate(p)
        got = s.assignments["viewer"]
        assert sum(x.bitrate_kbps for x in got.values()) <= 450

    def test_same_resolution_requests_collapse(self):
        """If both edges end up at the same resolution, the audience holds
        the subscriber once and both assignments share the stream."""
        b = ProblemBuilder()
        ladder = [StreamSpec(300, Resolution.P180, 300.0)]
        b.add_client("speaker", Bandwidth(5000, 100), ladder)
        b.add_client("viewer", Bandwidth(100, 5000))
        vid = b.subscribe_dual(
            "viewer",
            "speaker",
            primary_max=Resolution.P180,
            secondary_max=Resolution.P180,
        )
        p = b.build()
        s = solve(p)
        s.validate(p)
        assert s.assignments["viewer"]["speaker"] == (
            s.assignments["viewer"][vid]
        )


class TestScreenShare:
    def build(self, uplink=5000):
        b = ProblemBuilder()
        ladder = paper_ladder()
        b.add_client("presenter", Bandwidth(uplink, 100), ladder)
        b.add_client("viewer", Bandwidth(100, 5000))
        sid = b.add_screen_share("presenter", screen_ladder())
        b.subscribe("viewer", "presenter", Resolution.P360)
        b.subscribe("viewer", sid, Resolution.P720)
        return b.build(), sid

    def test_camera_and_screen_both_published(self):
        p, sid = self.build()
        s = solve(p)
        s.validate(p)
        assert s.assignments["viewer"][sid].resolution == Resolution.P720
        assert s.assignments["viewer"]["presenter"].resolution <= Resolution.P360

    def test_screen_and_camera_share_uplink(self):
        """A tight uplink forces the camera+screen total under budget."""
        p, sid = self.build(uplink=1400)
        s = solve(p)
        s.validate(p)
        total = s.uplink_usage_kbps("presenter") + s.uplink_usage_kbps(sid)
        assert total <= 1400

    def test_screen_id_helper(self):
        assert screen_id("X") == "X:screen"
