"""The solver-internals guide and the solver must not drift apart.

``docs/SOLVER.md`` describes the KMR loop, the MCKP DP formulations,
the cache layers and the kernel registry.  Like
``tests/obs/test_docs_match.py`` for the observability guide, these
tests pin the guide's mechanical claims to the code: every backticked
config field / kernel name / metric / code reference the guide makes
must be exactly what the package ships.
"""

import dataclasses
import inspect
import re
from pathlib import Path

import pytest

import repro.core.engine as engine
import repro.core.knapsack as knapsack
import repro.core.mckp as mckp
import repro.core.reduction as reduction
import repro.core.solver as solver
from repro.core.engine import MckpInstanceCache
from repro.core.solver import SolveStats, SolverConfig
from repro.obs import names

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs" / "SOLVER.md"


@pytest.fixture(scope="module")
def guide_text():
    assert DOCS.is_file(), f"solver guide missing: {DOCS}"
    return DOCS.read_text()


class TestConfigClaims:
    def test_solverconfig_kwargs_are_real_fields(self, guide_text):
        """Every ``SolverConfig(<name>=...)`` the guide writes must be an
        actual dataclass field."""
        fields = {f.name for f in dataclasses.fields(SolverConfig)}
        mentioned = set(
            re.findall(r"SolverConfig\((\w+)=", guide_text)
        )
        assert mentioned, "guide no longer names any SolverConfig field"
        assert mentioned <= fields, (
            f"guide names unknown SolverConfig fields: {mentioned - fields}"
        )

    def test_kernel_field_and_default_documented(self, guide_text):
        assert "kernel" in {f.name for f in dataclasses.fields(SolverConfig)}
        # The documented default source must be the real env knob.
        assert mckp.KERNEL_ENV in guide_text
        assert "`default_kernel()`" in guide_text

    def test_stats_kernel_field_exists(self, guide_text):
        assert "SolveStats.kernel" in guide_text
        assert "kernel" in {f.name for f in dataclasses.fields(SolveStats)}

    def test_cache_capacity_matches_code(self, guide_text):
        m = re.search(r"MckpInstanceCache\(capacity=(\d+)\)", guide_text)
        assert m, "guide must state the cache capacity mechanically"
        documented = int(m.group(1))
        default = inspect.signature(MckpInstanceCache).parameters[
            "capacity"
        ].default
        assert documented == default, (
            f"guide says capacity={documented}, code default is {default}"
        )


class TestKernelClaims:
    def test_kernel_tuple_quoted_verbatim(self, guide_text):
        assert f"KERNELS = {mckp.KERNELS!r}".replace("'", '"') in guide_text

    def test_each_kernel_name_documented(self, guide_text):
        for kernel in mckp.KERNELS:
            assert f"`{kernel}`" in guide_text, kernel

    def test_documented_default_is_real_default(self, guide_text, monkeypatch):
        monkeypatch.delenv(mckp.KERNEL_ENV, raising=False)
        assert mckp.default_kernel() == "numpy"
        assert "**`numpy`** (default)" in guide_text

    def test_oracle_functions_exist(self, guide_text):
        for name in (
            "_solve_mckp_dp_python",
            "_solve_mckp_dp_mandatory_python",
        ):
            assert name in guide_text
            assert callable(getattr(mckp, name))


class TestCodeReferencesExist:
    #: (module, attribute) for every load-bearing code reference the
    #: guide makes.  New references belong here too.
    REFERENCES = (
        (solver, "GsoSolver"),
        (solver, "SolverConfig"),
        (solver, "_iteration_bound"),
        (knapsack, "knapsack_step"),
        (reduction, "reduction_step"),
        (reduction, "fix_owner"),
        (mckp, "solve_mckp_dp"),
        (mckp, "solve_mckp_dp_mandatory"),
        (mckp, "solve_mckp_dp_batch"),
        (mckp, "_grid_weight"),
        (mckp, "MckpSolution"),
        (mckp, "kernel_stats"),
        (engine, "instance_key"),
        (engine, "default_mckp_cache"),
        (engine, "MckpInstanceCache"),
    )

    def test_references_resolve_and_are_documented(self, guide_text):
        for module, attr in self.REFERENCES:
            assert hasattr(module, attr), f"{module.__name__}.{attr}"
            assert attr in guide_text, f"guide dropped reference to {attr}"

    def test_merge_step_exists(self, guide_text):
        from repro.core.merge import merge_step

        assert callable(merge_step)
        assert "merge_step" in guide_text

    def test_referenced_files_exist(self, guide_text):
        for rel in (
            "tests/core/test_mckp_kernel.py",
            "tests/core/test_incremental.py",
            "tests/core/test_solver_docs_match.py",
            "benchmarks/test_solver_speedup.py",
            "benchmarks/baselines/BENCH_PR5.json",
            "benchmarks/baselines/BENCH_PR6.json",
        ):
            assert Path(rel).name in guide_text, rel
            assert (REPO / rel).is_file(), rel


class TestMetricClaims:
    def test_mentioned_metrics_are_canonical(self, guide_text):
        mentioned = set(re.findall(r"\brepro_[a-z0-9_]+\b", guide_text))
        derived = {
            base + suffix
            for base, (kind, _) in names.ALL_METRICS.items()
            if kind == "histogram"
            for suffix in ("_sum", "_count")
        }
        unknown = mentioned - set(names.ALL_METRICS) - derived
        assert not unknown, f"guide mentions unknown metrics: {sorted(unknown)}"

    def test_kernel_metrics_documented(self, guide_text):
        for metric in (
            names.MCKP_KERNEL_SOLVES,
            names.MCKP_BATCHED_SOLVES,
            names.MCKP_BATCH_SIZE,
        ):
            assert metric in guide_text, metric


class TestBenchmarkClaims:
    def test_floors_match_benchmark_source(self, guide_text):
        """The guide quotes the speedup floors; the benchmark defines
        them.  Parse the constants out of the benchmark source (the
        ``benchmarks/`` tree is not importable from the test suite)."""
        src = (REPO / "benchmarks" / "test_solver_speedup.py").read_text()
        floors = {
            name: float(value)
            for name, value in re.findall(
                r"^(GALLERY_FLOOR|ROUNDS_FLOOR|KERNEL_FLOOR)"
                r"\s*=\s*([0-9.]+)",
                src,
                re.M,
            )
        }
        assert floors == {
            "GALLERY_FLOOR": 3.0,
            "ROUNDS_FLOOR": 1.5,
            "KERNEL_FLOOR": 10.0,
        }
        for claim in ("3x\ngallery", "1.5x rounds", "(10x)"):
            assert claim in guide_text, claim


class TestCrossLinks:
    def test_guide_links_to_sibling_docs(self, guide_text):
        for sibling in (
            "ARCHITECTURE.md",
            "PERFORMANCE.md",
            "OBSERVABILITY.md",
        ):
            assert f"]({sibling})" in guide_text, sibling
            assert (REPO / "docs" / sibling).is_file(), sibling

    def test_sibling_docs_link_back(self):
        for rel in ("docs/ARCHITECTURE.md", "docs/PERFORMANCE.md", "README.md"):
            text = (REPO / rel).read_text()
            assert "SOLVER.md" in text, f"{rel} does not link docs/SOLVER.md"
