"""Property-based tests of the Merge and Reduction steps in isolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_publisher
from repro.core.reduction import fix_owner, is_fixable
from repro.core.solution import PolicyEntry
from repro.core.types import Resolution, StreamSpec

RESOLUTIONS = [Resolution.P180, Resolution.P360, Resolution.P720]


@st.composite
def request_sets(draw):
    """Random (subscriber, stream) request lists for one publisher."""
    n = draw(st.integers(1, 8))
    out = []
    for k in range(n):
        res = draw(st.sampled_from(RESOLUTIONS))
        rate = draw(st.integers(100, 2000))
        out.append((f"S{k}", StreamSpec(rate, res, float(rate))))
    return out


@given(request_sets())
@settings(max_examples=150, deadline=None)
def test_merge_invariants(asked):
    merged = merge_publisher(asked)
    # One entry per distinct requested resolution.
    assert set(merged) == {s.resolution for _, s in asked}
    for res, entry in merged.items():
        same_res = [s for _, s in asked if s.resolution == res]
        # Eq. 12: the merged bitrate is the minimum requested one...
        assert entry.bitrate_kbps == min(s.bitrate_kbps for s in same_res)
        # Eq. 11: ...broadcast to exactly the requesting subscribers.
        assert entry.audience == {
            sub for sub, s in asked if s.resolution == res
        }
        # Lowering-only: no subscriber's downlink can be violated by merge.
        assert all(
            entry.bitrate_kbps <= s.bitrate_kbps for s in same_res
        )


@st.composite
def owner_entries(draw):
    """Random policy entries + matching feasible set for one owner."""
    feasible = []
    entries = []
    used = set()
    for res in draw(
        st.lists(st.sampled_from(RESOLUTIONS), min_size=1, max_size=3, unique=True)
    ):
        rungs = sorted(
            draw(
                st.lists(
                    st.integers(50, 2000), min_size=1, max_size=4, unique=True
                )
            )
        )
        specs = []
        for r in rungs:
            while r in used:
                r += 1
            used.add(r)
            specs.append(StreamSpec(r, res, float(r)))
        feasible.extend(specs)
        chosen = draw(st.sampled_from(specs))
        entries.append(
            ("pub", res, PolicyEntry(chosen, frozenset({"X"})))
        )
    budget = draw(st.integers(0, 5000))
    return entries, {"pub": feasible}, budget


@given(owner_entries())
@settings(max_examples=150, deadline=None)
def test_fix_owner_invariants(data):
    entries, feasible, budget = data
    fixable = is_fixable(entries, feasible, budget)
    fixed = fix_owner(entries, feasible, budget)
    # Eq. 17 is exactly the feasibility condition of the fix.
    assert (fixed is not None) == fixable
    if fixed is None:
        return
    # The fix keeps every (entity, resolution, audience), only lowers rates,
    # and lands within the budget.
    assert [(e, r) for e, r, _ in fixed] == [(e, r) for e, r, _ in entries]
    total = 0
    for (_, _, new), (_, _, old) in zip(fixed, entries):
        assert new.audience == old.audience
        assert new.bitrate_kbps <= old.bitrate_kbps
        assert new.resolution == old.resolution
        total += new.bitrate_kbps
    assert total <= budget
