"""Unit tests for the three KMR steps in isolation."""

import pytest

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.knapsack import knapsack_step, solve_subscriber
from repro.core.ladder import paper_ladder
from repro.core.merge import invert_requests, merge_publisher, merge_step
from repro.core.reduction import (
    check_uplink,
    fix_owner,
    highest_policy_resolution,
    is_fixable,
    reduction_step,
)
from repro.core.solution import PolicyEntry
from repro.core.types import Resolution, StreamSpec


def spec(rate, res, qoe=None):
    return StreamSpec(rate, res, float(qoe if qoe is not None else rate))


def star_problem(downlink_kbps, n_pubs=2, uplink_kbps=5000):
    """One subscriber ("sub") following n publishers with the paper ladder."""
    ladder = paper_ladder()
    pubs = [f"P{k}" for k in range(n_pubs)]
    return Problem(
        feasible_streams={p: ladder for p in pubs},
        bandwidth={
            "sub": Bandwidth(uplink_kbps, downlink_kbps),
            **{p: Bandwidth(uplink_kbps, 5000) for p in pubs},
        },
        subscriptions=[Subscription("sub", p) for p in pubs],
    )


class TestKnapsackStep:
    def test_no_edges_yields_empty(self):
        p = star_problem(1000, n_pubs=1)
        assert solve_subscriber(p, "P0") == {}

    def test_picks_best_within_downlink(self):
        p = star_problem(1600, n_pubs=1)
        requests = solve_subscriber(p, "sub")
        assert requests["P0"].bitrate_kbps == 1500

    def test_tight_downlink_downgrades(self):
        p = star_problem(450, n_pubs=1)
        requests = solve_subscriber(p, "sub")
        assert requests["P0"].bitrate_kbps == 400

    def test_zero_downlink_requests_nothing(self):
        p = star_problem(0, n_pubs=1)
        assert solve_subscriber(p, "sub") == {}

    def test_downlink_smaller_than_smallest_stream(self):
        p = star_problem(99, n_pubs=1)
        assert solve_subscriber(p, "sub") == {}

    def test_multiple_publishers_share_downlink(self):
        p = star_problem(1000, n_pubs=2)
        requests = solve_subscriber(p, "sub")
        total = sum(s.bitrate_kbps for s in requests.values())
        assert total <= 1000
        assert len(requests) == 2  # both kept at reduced bitrates

    def test_step_runs_for_all_subscribers(self):
        p = star_problem(1000, n_pubs=2)
        requests = knapsack_step(p)
        assert set(requests) == {"sub"}

    def test_exhaustive_agrees_with_dp(self):
        p = star_problem(1234, n_pubs=2)
        dp = solve_subscriber(p, "sub")
        ex = solve_subscriber(p, "sub", exhaustive=True)
        assert sum(s.qoe for s in dp.values()) == pytest.approx(
            sum(s.qoe for s in ex.values())
        )

    def test_respects_restricted_feasible_sets(self):
        p = star_problem(2000, n_pubs=1)
        restricted = {
            "P0": [s for s in paper_ladder() if s.resolution < Resolution.P720]
        }
        requests = solve_subscriber(p, "sub", feasible=restricted)
        assert requests["P0"].resolution < Resolution.P720


class TestEdgeOrdering:
    """The cached Step-1 class order and its Table-1 tie-break."""

    def tie_problem(self):
        # At 1400 kbps downlink, the assignments A@1000+B@400 and
        # A@600+B@800 tie at total QoE 10 AND total weight 1400 — the
        # DP's smallest-column rule cannot separate them, so the class
        # order must: the higher-capped edge A (the 720p speaker tile)
        # receives the larger stream, the ordering Table 1 exhibits.
        ladder_a = [
            spec(1000, Resolution.P720, qoe=8.0),
            spec(600, Resolution.P360, qoe=4.0),
        ]
        ladder_b = [
            spec(800, Resolution.P360, qoe=6.0),
            spec(400, Resolution.P180, qoe=2.0),
        ]
        return Problem(
            feasible_streams={"A": ladder_a, "B": ladder_b},
            bandwidth={
                "sub": Bandwidth(5000, 1400),
                "A": Bandwidth(5000, 5000),
                "B": Bandwidth(5000, 5000),
            },
            subscriptions=[
                Subscription("sub", "A", Resolution.P720),
                Subscription("sub", "B", Resolution.P360),
            ],
        )

    def test_ordered_followed_by_sorts_by_cap_then_publisher(self):
        p = self.tie_problem()
        order = [e.publisher for e in p.ordered_followed_by("sub")]
        assert order == ["B", "A"]  # ascending cap: P360 first

    def test_ordered_followed_by_is_cached(self):
        p = self.tie_problem()
        assert p.ordered_followed_by("sub") is p.ordered_followed_by("sub")

    def test_ordered_followed_by_matches_legacy_sort(self):
        p = star_problem(1000, n_pubs=5)
        legacy = sorted(
            p.followed_by("sub"),
            key=lambda e: (e.max_resolution, e.publisher),
        )
        assert list(p.ordered_followed_by("sub")) == legacy

    def test_table1_tiebreak_prefers_high_cap_edge(self):
        p = self.tie_problem()
        requests = solve_subscriber(p, "sub")
        assert requests["A"].bitrate_kbps == 1000
        assert requests["A"].resolution == Resolution.P720
        assert requests["B"].bitrate_kbps == 400

    def test_tiebreak_preserved_on_memoized_path(self):
        from repro.core.engine import MckpInstanceCache

        p = self.tie_problem()
        direct = knapsack_step(p)
        memoized = knapsack_step(
            p, dedup=True, cache=MckpInstanceCache(capacity=16)
        )
        assert direct == memoized
        assert memoized["sub"]["A"].resolution == Resolution.P720


class TestMergeStep:
    def test_same_resolution_requests_merge_to_min(self):
        asked = [
            ("B", spec(1400, Resolution.P720)),
            ("C", spec(1100, Resolution.P720)),
        ]
        merged = merge_publisher(asked)
        assert merged[Resolution.P720].bitrate_kbps == 1100
        assert merged[Resolution.P720].audience == frozenset({"B", "C"})

    def test_different_resolutions_kept_separate(self):
        asked = [
            ("A", spec(250, Resolution.P180)),
            ("C", spec(1400, Resolution.P720)),
        ]
        merged = merge_publisher(asked)
        assert set(merged) == {Resolution.P180, Resolution.P720}

    def test_invert_folds_aliases_to_canonical(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(5000, 5000), "B": Bandwidth(5000, 5000)},
            [Subscription("B", "A"), Subscription("B", "A#v", Resolution.P180)],
            aliases={"A#v": "A"},
        )
        requests = {
            "B": {
                "A": spec(1500, Resolution.P720),
                "A#v": spec(300, Resolution.P180),
            }
        }
        served = invert_requests(p, requests)
        assert set(served) == {"A"}
        assert len(served["A"]) == 2

    def test_unrequested_publisher_absent(self):
        p = star_problem(1600, n_pubs=2)
        requests = {"sub": {"P0": spec(1500, Resolution.P720)}}
        policies = merge_step(p, requests)
        assert "P1" not in policies


class TestReductionStep:
    def entries(self, *specs):
        return [
            ("pub", s.resolution, PolicyEntry(stream=s, audience=frozenset({"x"})))
            for s in specs
        ]

    def test_check_uplink(self):
        e = self.entries(spec(1500, Resolution.P720), spec(400, Resolution.P360))
        assert check_uplink(e, 1900)
        assert not check_uplink(e, 1899)

    def test_is_fixable_true_when_minimums_fit(self):
        e = self.entries(spec(1500, Resolution.P720), spec(800, Resolution.P360))
        feasible = {"pub": paper_ladder()}
        # minimum 720 rung = 1000, minimum 360 rung = 400 -> 1400
        assert is_fixable(e, feasible, 1400)
        assert not is_fixable(e, feasible, 1399)

    def test_is_fixable_false_when_resolution_missing(self):
        e = self.entries(spec(1500, Resolution.P720))
        assert not is_fixable(e, {"pub": []}, 10_000)

    def test_fix_lowers_bitrates_keeping_audience(self):
        e = self.entries(spec(1500, Resolution.P720), spec(800, Resolution.P360))
        fixed = fix_owner(e, {"pub": paper_ladder()}, 1500)
        assert fixed is not None
        total = sum(entry.bitrate_kbps for _, _, entry in fixed)
        assert total <= 1500
        resolutions = {res for _, res, _ in fixed}
        assert resolutions == {Resolution.P720, Resolution.P360}
        for _, _, entry in fixed:
            assert entry.audience == frozenset({"x"})

    def test_fix_returns_none_when_unfixable(self):
        e = self.entries(spec(1500, Resolution.P720), spec(800, Resolution.P360))
        assert fix_owner(e, {"pub": paper_ladder()}, 1000) is None

    def test_highest_policy_resolution(self):
        e = self.entries(spec(400, Resolution.P360), spec(1500, Resolution.P720))
        assert highest_policy_resolution(e) == ("pub", Resolution.P720)

    def test_reduction_outcome_solved_when_all_fit(self):
        p = star_problem(5000, n_pubs=1)
        policies = {
            "P0": {
                Resolution.P720: PolicyEntry(
                    spec(1500, Resolution.P720), frozenset({"sub"})
                )
            }
        }
        outcome = reduction_step(p, policies, {"P0": paper_ladder()})
        assert outcome.solved
        assert outcome.policies["P0"][Resolution.P720].bitrate_kbps == 1500

    def test_reduction_outcome_reduce_when_unfixable(self):
        p = star_problem(5000, n_pubs=1, uplink_kbps=900)
        policies = {
            "P0": {
                Resolution.P720: PolicyEntry(
                    spec(1500, Resolution.P720), frozenset({"sub"})
                ),
            }
        }
        outcome = reduction_step(p, policies, {"P0": paper_ladder()})
        assert not outcome.solved
        assert outcome.reduce == ("P0", Resolution.P720)

    def test_owner_aggregation_across_entities(self):
        """Camera + screen of one client share its uplink."""
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder, "A:screen": ladder},
            {"A": Bandwidth(1800, 5000), "B": Bandwidth(5000, 5000)},
            [Subscription("B", "A"), Subscription("B", "A:screen")],
            owners={"A:screen": "A"},
        )
        policies = {
            "A": {
                Resolution.P720: PolicyEntry(
                    spec(1500, Resolution.P720), frozenset({"B"})
                )
            },
            "A:screen": {
                Resolution.P720: PolicyEntry(
                    spec(1500, Resolution.P720), frozenset({"B"})
                )
            },
        }
        outcome = reduction_step(
            p, policies, {"A": ladder, "A:screen": ladder}
        )
        # 3000 > 1800, but both can drop to 1000-rung... 2000 > 1800 still,
        # so unfixable: the highest resolution must be reduced.
        assert not outcome.solved
        assert outcome.reduce[1] == Resolution.P720
