"""Unit tests for repro.core.types."""

import pytest

from repro.core.types import (
    PAPER_RESOLUTIONS,
    Resolution,
    StreamSpec,
    streams_at_resolution,
    streams_up_to_resolution,
    validate_feasible_set,
)


class TestResolution:
    def test_ordering_matches_scan_lines(self):
        assert Resolution.P180 < Resolution.P360 < Resolution.P720

    def test_paper_resolutions_are_the_canonical_triple(self):
        assert PAPER_RESOLUTIONS == (
            Resolution.P720,
            Resolution.P360,
            Resolution.P180,
        )

    def test_pixels_assumes_16_9(self):
        assert Resolution.P720.pixels == 1280 * 720
        assert Resolution.P180.pixels == 320 * 180

    def test_str_is_human_readable(self):
        assert str(Resolution.P360) == "360p"


class TestStreamSpec:
    def test_rejects_non_positive_bitrate(self):
        with pytest.raises(ValueError, match="bitrate"):
            StreamSpec(0, Resolution.P360, 10.0)
        with pytest.raises(ValueError, match="bitrate"):
            StreamSpec(-5, Resolution.P360, 10.0)

    def test_rejects_negative_qoe(self):
        with pytest.raises(ValueError, match="QoE"):
            StreamSpec(100, Resolution.P180, -1.0)

    def test_qoe_per_kbps(self):
        s = StreamSpec(300, Resolution.P180, 300.0)
        assert s.qoe_per_kbps == pytest.approx(1.0)

    def test_hashable_and_equality_ignores_qoe(self):
        a = StreamSpec(500, Resolution.P360, 440.0)
        b = StreamSpec(500, Resolution.P360, 440.0)
        assert a == b
        assert len({a, b}) == 1

    def test_ordering_by_bitrate(self):
        lo = StreamSpec(100, Resolution.P180, 100.0)
        hi = StreamSpec(1500, Resolution.P720, 1200.0)
        assert lo < hi


class TestValidateFeasibleSet:
    def test_sorts_descending_by_bitrate(self):
        streams = [
            StreamSpec(100, Resolution.P180, 100.0),
            StreamSpec(1500, Resolution.P720, 1200.0),
            StreamSpec(600, Resolution.P360, 530.0),
        ]
        ordered = validate_feasible_set(streams)
        assert [s.bitrate_kbps for s in ordered] == [1500, 600, 100]

    def test_rejects_duplicate_bitrates(self):
        streams = [
            StreamSpec(500, Resolution.P360, 440.0),
            StreamSpec(500, Resolution.P180, 300.0),
        ]
        with pytest.raises(ValueError, match="duplicate bitrate"):
            validate_feasible_set(streams)

    def test_rejects_non_monotone_qoe_within_resolution(self):
        streams = [
            StreamSpec(800, Resolution.P360, 100.0),
            StreamSpec(600, Resolution.P360, 530.0),
        ]
        with pytest.raises(ValueError, match="monotone"):
            validate_feasible_set(streams)

    def test_empty_set_is_valid(self):
        assert validate_feasible_set([]) == []


class TestFilters:
    STREAMS = [
        StreamSpec(1500, Resolution.P720, 1200.0),
        StreamSpec(800, Resolution.P360, 700.0),
        StreamSpec(300, Resolution.P180, 300.0),
    ]

    def test_streams_at_resolution(self):
        only = streams_at_resolution(self.STREAMS, Resolution.P360)
        assert [s.bitrate_kbps for s in only] == [800]

    def test_streams_up_to_resolution_caps_subscription(self):
        capped = streams_up_to_resolution(self.STREAMS, Resolution.P360)
        assert {s.resolution for s in capped} == {
            Resolution.P360,
            Resolution.P180,
        }

    def test_streams_up_to_resolution_with_top_cap_keeps_all(self):
        assert len(streams_up_to_resolution(self.STREAMS, Resolution.P720)) == 3
