"""Differential equivalence of the incremental solve engine.

The engine (`repro.core.engine` + the dirty-set loop in GsoSolver) must
produce **byte-identical** Solutions to the `incremental=False` path on
every workload: all benchmark problem generators, incumbent-sticky
re-solves, and every chaos soak scenario.  Equivalence is enforced by
pickle-byte comparison, not sampled spot checks.
"""

import importlib.util
import pickle
import sys
from pathlib import Path

import pytest

from repro.core.engine import MckpInstanceCache, default_mckp_cache
from repro.core.solver import GsoSolver, SolverConfig

_PROBLEMS_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "_problems.py"
)
_spec = importlib.util.spec_from_file_location(
    "_bench_problems", _PROBLEMS_PATH
)
problems = importlib.util.module_from_spec(_spec)
sys.modules["_bench_problems"] = problems
_spec.loader.exec_module(problems)

#: Every benchmark problem generator, at test-sized shapes.  Generators
#: are called fresh per solve so lazily cached Problem state never leaks
#: between the two paths.
GENERATORS = {
    "mesh_small": lambda: problems.mesh_meeting(10, 9, seed=2),
    "mesh_large": lambda: problems.mesh_meeting(16, 12, seed=5),
    "fanout": lambda: problems.fanout_meeting(6, 40, 9, seed=3),
    "gallery": lambda: problems.gallery_meeting(8, 60, 12, seed=4),
    "breakout": lambda: problems.breakout_meeting(5, 5, 12, seed=7),
}


def _solve(gen, granularity, incremental, incumbent=None):
    cfg = SolverConfig(
        granularity_kbps=granularity, incremental=incremental
    )
    return GsoSolver(cfg).solve_with_stats(gen(), incumbent=incumbent)


class TestGeneratorEquivalence:
    @pytest.mark.parametrize("granularity", [1, 25])
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_solutions_byte_identical(self, name, granularity):
        base_sol, base_stats = _solve(GENERATORS[name], granularity, False)
        inc_sol, inc_stats = _solve(GENERATORS[name], granularity, True)
        assert pickle.dumps(inc_sol) == pickle.dumps(base_sol)
        assert inc_stats.iterations == base_stats.iterations
        assert inc_stats.reductions == base_stats.reductions

    def test_incumbent_stickiness_byte_identical(self):
        gen = GENERATORS["mesh_small"]
        first = GsoSolver(SolverConfig(granularity_kbps=25)).solve(gen())
        incumbent = {
            (sub, pub): stream.resolution
            for sub, per_pub in first.assignments.items()
            for pub, stream in per_pub.items()
        }
        base_sol, _ = _solve(gen, 25, False, incumbent=incumbent)
        inc_sol, _ = _solve(gen, 25, True, incumbent=incumbent)
        assert pickle.dumps(inc_sol) == pickle.dumps(base_sol)

    def test_dirty_set_actually_skips_on_partial_followership(self):
        _, stats = _solve(GENERATORS["breakout"], 25, True)
        assert stats.iterations > 1
        assert stats.engine.step1_skipped > 0

    def test_dedup_actually_collapses_on_gallery(self):
        _, stats = _solve(GENERATORS["gallery"], 25, True)
        assert stats.engine.deduped > 0

    def test_process_cache_hits_across_solver_instances(self):
        cache = default_mckp_cache()
        cache.clear()
        _solve(GENERATORS["fanout"], 25, True)
        base_sol, _ = _solve(GENERATORS["fanout"], 25, False)
        inc_sol, stats = _solve(GENERATORS["fanout"], 25, True)
        assert stats.engine.cache_hits > 0
        assert stats.engine.cache_misses == 0
        assert pickle.dumps(inc_sol) == pickle.dumps(base_sol)

    def test_escape_hatch_bypasses_engine(self):
        _, stats = _solve(GENERATORS["breakout"], 25, False)
        assert stats.engine.step1_solved == 0
        assert stats.engine.dp_solves_avoided == 0

    def test_exhaustive_step1_bypasses_engine(self):
        cfg = SolverConfig(
            granularity_kbps=25, exhaustive_step1=True, incremental=True
        )
        problem = problems.mesh_meeting(5, 6, seed=1)
        _, stats = GsoSolver(cfg).solve_with_stats(problem)
        assert stats.engine.step1_solved == 0

    def test_memoized_step_with_private_cache_matches(self):
        # knapsack_step's memoized path with a private cache, against
        # the direct path, on every generator.
        from repro.core.knapsack import knapsack_step

        for name, gen in sorted(GENERATORS.items()):
            problem = gen()
            direct = knapsack_step(problem, granularity=25)
            memoized = knapsack_step(
                problem,
                granularity=25,
                dedup=True,
                cache=MckpInstanceCache(capacity=4096),
            )
            assert pickle.dumps(memoized) == pickle.dumps(direct), name


class TestKernelEquivalence:
    """The array kernel must not change a single Solution byte.

    ``kernel="numpy"`` (vectorized sweeps + the batched cache-miss path)
    against ``kernel="python"`` (the differential oracle), compared by
    pickle bytes on every benchmark generator.  The process cache is
    cleared before each solve so neither kernel replays the other's
    cached solutions.
    """

    def _solve_cold(self, gen, granularity, kernel):
        default_mckp_cache().clear()
        cfg = SolverConfig(granularity_kbps=granularity, kernel=kernel)
        return GsoSolver(cfg).solve_with_stats(gen())

    @pytest.mark.parametrize(
        "granularity",
        [1, 25],
        ids=["granularity1", "granularity25"],
    )
    @pytest.mark.parametrize("name", sorted(GENERATORS))
    def test_solutions_byte_identical(self, name, granularity):
        if granularity == 1 and name != "mesh_small":
            pytest.skip("exact-grid oracle runs only on the small mesh")
        py_sol, py_stats = self._solve_cold(
            GENERATORS[name], granularity, "python"
        )
        np_sol, np_stats = self._solve_cold(
            GENERATORS[name], granularity, "numpy"
        )
        assert pickle.dumps(np_sol) == pickle.dumps(py_sol)
        assert np_stats.iterations == py_stats.iterations
        assert np_stats.reductions == py_stats.reductions

    def test_kernels_also_agree_with_engine_off(self):
        for kernel in ("python", "numpy"):
            cfg = SolverConfig(
                granularity_kbps=25, incremental=False, kernel=kernel
            )
            sol = GsoSolver(cfg).solve(GENERATORS["fanout"]())
            if kernel == "python":
                reference = pickle.dumps(sol)
        assert pickle.dumps(sol) == reference

    def test_numpy_path_actually_batches(self):
        _, stats = self._solve_cold(GENERATORS["mesh_large"], 25, "numpy")
        assert stats.kernel == "numpy"
        assert stats.engine.batches >= 1
        assert stats.engine.batched_solves == stats.engine.cache_misses > 0

    def test_stats_report_configured_kernel(self):
        _, stats = self._solve_cold(GENERATORS["mesh_small"], 25, "python")
        assert stats.kernel == "python"

    def test_env_default_kernel_applies(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert SolverConfig().kernel == "python"
        monkeypatch.delenv("REPRO_KERNEL")
        assert SolverConfig().kernel == "numpy"


class TestChaosEquivalence:
    """The engine must not change a single chaos-run byte."""

    def _digest(self, scenario_name, seed):
        from repro.chaos import ChaosConfig, ChaosRunner, get_scenario

        config = ChaosConfig(
            seed=seed, meetings=2, duration_s=4.0, shards=2
        )
        scenario = get_scenario(scenario_name)
        runner = ChaosRunner(
            config, scenario.build(seed, config), scenario=scenario.name
        )
        return runner.run().digest()

    @pytest.mark.parametrize(
        "scenario",
        sorted(
            s.name
            for s in __import__(
                "repro.chaos", fromlist=["list_scenarios"]
            ).list_scenarios()
        ),
    )
    def test_scenario_digest_identical_with_engine_off(
        self, scenario, monkeypatch
    ):
        import repro.chaos.runner as chaos_runner

        engine_on = self._digest(scenario, seed=11)
        real_config = SolverConfig

        def no_engine(*args, **kwargs):
            kwargs["incremental"] = False
            return real_config(*args, **kwargs)

        monkeypatch.setattr(chaos_runner, "SolverConfig", no_engine)
        engine_off = self._digest(scenario, seed=11)
        assert engine_on == engine_off

    @pytest.mark.parametrize(
        "scenario",
        sorted(
            s.name
            for s in __import__(
                "repro.chaos", fromlist=["list_scenarios"]
            ).list_scenarios()
        ),
    )
    def test_scenario_digest_identical_with_python_kernel(
        self, scenario, monkeypatch
    ):
        # The chaos runner builds its SolverConfig internally, so the
        # oracle kernel is selected through the environment default.
        numpy_digest = self._digest(scenario, seed=11)
        monkeypatch.setenv("REPRO_KERNEL", "python")
        default_mckp_cache().clear()
        assert self._digest(scenario, seed=11) == numpy_digest

    def test_double_run_determinism_with_engine_enabled(self):
        assert self._digest("kitchen_sink", seed=13) == self._digest(
            "kitchen_sink", seed=13
        )
