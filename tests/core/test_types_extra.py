"""Extra coverage for small core types."""

import pytest

from repro.core.types import Resolution, Role, StreamClass, StreamKey


class TestRole:
    def test_both_combines_flags(self):
        assert Role.BOTH & Role.PUBLISHER
        assert Role.BOTH & Role.SUBSCRIBER
        assert not (Role.NONE & Role.PUBLISHER)


class TestStreamKey:
    def test_hashable_identity(self):
        a = StreamKey("A", Resolution.P720)
        b = StreamKey("A", Resolution.P720)
        c = StreamKey("A", Resolution.P360)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestStreamClass:
    def test_values(self):
        assert StreamClass.SCREEN.value == "screen"
        assert {c.value for c in StreamClass} == {
            "camera",
            "screen",
            "thumbnail",
        }
