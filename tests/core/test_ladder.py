"""Unit tests for repro.core.ladder."""

import pytest

from repro.core.ladder import (
    PAPER_LADDER_TABLE,
    coarse_ladder,
    make_ladder,
    paper_ladder,
    qoe_utility,
    scale_qoe,
)
from repro.core.priority import verify_small_stream_protection
from repro.core.types import Resolution


class TestPaperLadder:
    def test_has_nine_levels(self):
        assert len(paper_ladder()) == 9

    def test_matches_table1_values(self):
        by_bitrate = {s.bitrate_kbps: s for s in paper_ladder()}
        assert by_bitrate[1500].qoe == 1200.0
        assert by_bitrate[1500].resolution == Resolution.P720
        assert by_bitrate[400].qoe == 360.0
        assert by_bitrate[400].resolution == Resolution.P360
        assert by_bitrate[100].qoe == 100.0
        assert by_bitrate[100].resolution == Resolution.P180

    def test_small_stream_protection_holds(self):
        # The Sec. 4.4 property: QoE/bitrate decreases with bitrate.
        assert verify_small_stream_protection(paper_ladder())


class TestQoeUtility:
    def test_monotone_increasing(self):
        assert qoe_utility(600) > qoe_utility(300)

    def test_ratio_decreasing(self):
        assert qoe_utility(100) / 100 > qoe_utility(1500) / 1500

    def test_rejects_bad_exponent(self):
        with pytest.raises(ValueError):
            qoe_utility(100, exponent=0.0)
        with pytest.raises(ValueError):
            qoe_utility(100, exponent=1.5)

    def test_scale_factor(self):
        assert qoe_utility(100, scale=2.0) == pytest.approx(
            2 * qoe_utility(100)
        )


class TestMakeLadder:
    def test_fifteen_level_production_ladder(self):
        ladder = make_ladder(levels_per_resolution=5)
        assert len(ladder) == 15
        assert {s.resolution for s in ladder} == {
            Resolution.P720,
            Resolution.P360,
            Resolution.P180,
        }

    def test_bitrates_unique_across_resolutions(self):
        ladder = make_ladder(levels_per_resolution=8)
        rates = [s.bitrate_kbps for s in ladder]
        assert len(rates) == len(set(rates))

    def test_bitrates_within_declared_ranges(self):
        ladder = make_ladder(levels_per_resolution=3)
        for s in ladder:
            if s.resolution == Resolution.P720:
                # allow the -1kbps de-duplication nudge
                assert 890 <= s.bitrate_kbps <= 1500

    def test_protection_property_by_construction(self):
        for levels in (2, 5, 8):
            assert verify_small_stream_protection(
                make_ladder(levels_per_resolution=levels)
            )

    def test_single_level_uses_range_top(self):
        ladder = make_ladder(levels_per_resolution=1)
        p720 = [s for s in ladder if s.resolution == Resolution.P720]
        assert p720[0].bitrate_kbps == 1500

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            make_ladder(levels_per_resolution=0)

    def test_custom_resolutions(self):
        ladder = make_ladder(
            resolutions=[Resolution.P1080, Resolution.P360],
            levels_per_resolution=2,
        )
        assert {s.resolution for s in ladder} == {
            Resolution.P1080,
            Resolution.P360,
        }

    def test_custom_bitrate_range_override(self):
        ladder = make_ladder(
            resolutions=[Resolution.P360],
            levels_per_resolution=2,
            bitrate_ranges={Resolution.P360: (200, 250)},
        )
        assert sorted(s.bitrate_kbps for s in ladder) == [200, 250]


class TestCoarseLadder:
    def test_one_level_per_resolution(self):
        ladder = coarse_ladder()
        assert len(ladder) == 3
        assert len({s.resolution for s in ladder}) == 3


class TestScaleQoe:
    def test_scales_all_weights(self):
        doubled = scale_qoe(paper_ladder(), 2.0)
        base = {s.bitrate_kbps: s.qoe for s in paper_ladder()}
        for s in doubled:
            assert s.qoe == pytest.approx(2 * base[s.bitrate_kbps])

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            scale_qoe(paper_ladder(), 0.0)
