"""Integration tests of the full KMR solver, including the paper's Table 1
worked examples and the Fig. 3 motivating scenarios."""

import random

import pytest

from repro.core import (
    Bandwidth,
    GsoSolver,
    ProblemBuilder,
    Resolution,
    SolverConfig,
    StreamSpec,
    paper_ladder,
    solve,
)
from repro.core.bruteforce import solve_joint_bruteforce
from repro.core.constraints import Problem, Subscription


def table1_problem(bandwidths):
    """The Table 1 topology: A<->B<->C full mesh with the paper's caps."""
    b = ProblemBuilder()
    ladder = paper_ladder()
    for client, (up, down) in bandwidths.items():
        b.add_client(client, Bandwidth(up, down), ladder)
    b.subscribe("A", "B", Resolution.P360)
    b.subscribe("A", "C", Resolution.P180)
    b.subscribe("B", "A", Resolution.P720)
    b.subscribe("B", "C", Resolution.P360)
    b.subscribe("C", "B", Resolution.P360)
    b.subscribe("C", "A", Resolution.P720)
    return b.build()


def published(solution, pub):
    """{resolution: bitrate} for one publisher."""
    return {
        res: e.bitrate_kbps for res, e in solution.policies.get(pub, {}).items()
    }


class TestTable1:
    """The three worked examples; the paper's final solutions are matched
    stream-for-stream."""

    def test_case1_downlink_limited(self):
        p = table1_problem(
            {"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)}
        )
        s = solve(p)
        s.validate(p)
        assert published(s, "A") == {
            Resolution.P720: 1500,
            Resolution.P360: 400,
        }
        assert published(s, "B") == {
            Resolution.P360: 800,
            Resolution.P180: 100,
        }
        assert published(s, "C") == {
            Resolution.P360: 800,
            Resolution.P180: 300,
        }

    def test_case2_uplink_limited(self):
        p = table1_problem(
            {"A": (5000, 5000), "B": (600, 5000), "C": (5000, 5000)}
        )
        s = solve(p)
        s.validate(p)
        assert published(s, "A") == {Resolution.P720: 1500}
        assert published(s, "B") == {Resolution.P360: 600}
        assert published(s, "C") == {
            Resolution.P360: 800,
            Resolution.P180: 300,
        }

    def test_case3_uplink_and_downlink_limited(self):
        p = table1_problem(
            {"A": (5000, 5000), "B": (600, 700), "C": (5000, 5000)}
        )
        s = solve(p)
        s.validate(p)
        assert published(s, "A") == {
            Resolution.P720: 1500,
            Resolution.P360: 400,
        }
        assert published(s, "B") == {Resolution.P360: 600}
        assert published(s, "C") == {Resolution.P180: 300}


class TestFig3Examples:
    """The Sec. 2.3 motivating examples: GSO's solutions avoid the
    pathologies of local simulcast."""

    def test_example1_no_unsubscribed_stream_is_published(self):
        """Fig. 3a/3d: pub1 must not send the 1.5M stream nobody wants."""
        ladder = [
            StreamSpec(1500, Resolution.P720, 1200.0),
            StreamSpec(600, Resolution.P360, 530.0),
            StreamSpec(300, Resolution.P180, 300.0),
        ]
        p = Problem(
            {"pub1": ladder},
            {
                "pub1": Bandwidth(3000, 100),
                "sub1": Bandwidth(100, 320),
                "sub2": Bandwidth(100, 650),
            },
            [
                Subscription("sub1", "pub1", Resolution.P180),
                Subscription("sub2", "pub1", Resolution.P360),
            ],
        )
        s = solve(p)
        s.validate(p)
        # Only the two requested streams are configured; 720p is stopped.
        assert set(published(s, "pub1")) == {Resolution.P360, Resolution.P180}
        assert s.uplink_usage_kbps("pub1") == 900  # not 2400

    def test_example2_fine_bitrate_fits_just_under_downlink(self):
        """Fig. 3b/3e: with a 1450 kbps downlink, GSO configures ~1400 kbps
        instead of collapsing to 600 kbps."""
        fine_ladder = [
            StreamSpec(rate, Resolution.P720, float(rate))
            for rate in range(800, 1501, 100)
        ]
        p = Problem(
            {"pub1": fine_ladder},
            {"pub1": Bandwidth(3000, 100), "sub1": Bandwidth(100, 1450)},
            [Subscription("sub1", "pub1", Resolution.P720)],
        )
        s = solve(p)
        s.validate(p)
        assert published(s, "pub1") == {Resolution.P720: 1400}

    def test_example3_stream_competition_is_shared_fairly(self):
        """Fig. 3c/3f: with a 2050 kbps downlink and two publishers, both
        send ~1 Mbps instead of 1.5M + 0.3M."""
        fine_ladder = [
            StreamSpec(rate, Resolution.P720, 100.0 * (rate / 100) ** 0.5)
            for rate in range(300, 1501, 100)
        ]
        p = Problem(
            {"pub1": fine_ladder, "pub2": fine_ladder},
            {
                "pub1": Bandwidth(3000, 100),
                "pub2": Bandwidth(3000, 100),
                "sub1": Bandwidth(100, 2050),
            },
            [
                Subscription("sub1", "pub1", Resolution.P720),
                Subscription("sub1", "pub2", Resolution.P720),
            ],
        )
        s = solve(p)
        s.validate(p)
        rates = sorted(
            e.bitrate_kbps
            for pub in ("pub1", "pub2")
            for e in s.policies[pub].values()
        )
        # Concave QoE drives a fair split: both streams kept, and the gap
        # between them is at most one 100 kbps rung.
        assert len(rates) == 2
        assert rates[1] - rates[0] <= 100
        assert sum(rates) <= 2050


class TestSolverMechanics:
    def test_solution_is_deterministic(self):
        p = table1_problem(
            {"A": (900, 1100), "B": (1300, 800), "C": (700, 2500)}
        )
        s1, s2 = solve(p), solve(p)
        assert s1.policies == s2.policies
        assert s1.assignments == s2.assignments

    def test_reduction_path_is_exercised(self):
        """An uplink below the minimum 720p rung forces a Step-3 reduction."""
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(500, 100), "B": Bandwidth(100, 5000)},
            [Subscription("B", "A", Resolution.P720)],
        )
        s = solve(p)
        s.validate(p)
        assert ("A", Resolution.P720) in s.reduced
        assert s.iterations > 1
        # B still gets the best affordable lower resolution.
        assert published(s, "A") == {Resolution.P360: 500}

    def test_cascading_reductions_terminate(self):
        """Uplink below every 360p rung too: two reductions, 180p survives."""
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(350, 100), "B": Bandwidth(100, 5000)},
            [Subscription("B", "A", Resolution.P720)],
        )
        s = solve(p)
        s.validate(p)
        assert published(s, "A") == {Resolution.P180: 300}
        assert len(s.reduced) == 2

    def test_publisher_with_no_feasible_stream_publishes_nothing(self):
        ladder = paper_ladder()
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(50, 100), "B": Bandwidth(100, 5000)},
            [Subscription("B", "A", Resolution.P720)],
        )
        s = solve(p)
        s.validate(p)
        assert s.policies.get("A", {}) == {}
        assert s.assignments.get("B", {}) == {}

    def test_empty_problem(self):
        p = Problem({}, {}, [])
        s = solve(p)
        assert s.policies == {} and s.assignments == {}

    def test_stats_reports_iterations_and_time(self):
        p = table1_problem(
            {"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)}
        )
        _, stats = GsoSolver().solve_with_stats(p)
        assert stats.iterations == 1
        assert stats.wall_time_s > 0

    def test_granularity_config_still_feasible(self):
        p = table1_problem(
            {"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)}
        )
        s = GsoSolver(SolverConfig(granularity_kbps=50)).solve(p)
        s.validate(p)

    def test_config_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SolverConfig(granularity_kbps=0)
        with pytest.raises(ValueError):
            SolverConfig(max_iterations=0)

    def test_config_rejects_negative_stickiness(self):
        """Regression: stickiness is a QoE bonus and must be >= 0; a
        negative value would silently *penalize* keeping the incumbent."""
        with pytest.raises(ValueError, match="stickiness"):
            SolverConfig(stickiness=-0.1)

    def test_config_accepts_zero_stickiness(self):
        assert SolverConfig(stickiness=0.0).stickiness == 0.0


class TestAgainstJointBruteforce:
    """Randomized small meetings: KMR's Step-1 objective must stay near the
    exact joint optimum, and its solutions must always validate."""

    @staticmethod
    def random_problem(rng):
        n = rng.randint(2, 3)
        clients = [f"C{k}" for k in range(n)]
        short_ladder = [
            StreamSpec(1500, Resolution.P720, 1200.0),
            StreamSpec(600, Resolution.P360, 530.0),
            StreamSpec(300, Resolution.P180, 300.0),
        ]
        caps = [Resolution.P720, Resolution.P360, Resolution.P180]
        subs = []
        for sub in clients:
            for pub in clients:
                if sub != pub and rng.random() < 0.8:
                    subs.append(Subscription(sub, pub, rng.choice(caps)))
        return Problem(
            {c: short_ladder for c in clients},
            {
                c: Bandwidth(
                    rng.choice([400, 900, 2200, 5000]),
                    rng.choice([400, 900, 2200, 5000]),
                )
                for c in clients
            },
            subs,
        )

    def test_randomized_validity_and_near_optimality(self):
        rng = random.Random(42)
        for _ in range(40):
            p = self.random_problem(rng)
            s = solve(p)
            s.validate(p)
            exact = solve_joint_bruteforce(p)
            exact.validate(p)
            assert exact.total_qoe() >= s.total_qoe() - 1e-9
            if exact.total_qoe() > 0:
                # The KMR heuristic sacrifices optimality only through merge
                # and reduction; on these small meshes it stays close.
                assert s.total_qoe() >= 0.5 * exact.total_qoe()
