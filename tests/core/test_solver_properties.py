"""Property-based tests of the full KMR solver on random problems.

Hypothesis generates random orchestration problems — random ladders,
bandwidths, subscription graphs, priority weights, virtual publishers and
screen-share entities — and checks the solver's universal invariants:

* the solution always validates (all three constraint families);
* the iteration count respects the paper's convergence bound;
* determinism: same problem, same solution;
* monotonicity: relaxing a bandwidth never *reduces* achievable QoE by
  more than tie-break noise (checked as: strictly more budget never makes
  the solution infeasible, and the Step-1 objective is monotone).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import Bandwidth, GsoSolver, Resolution, SolverConfig, StreamSpec
from repro.core.bruteforce import step1_objective
from repro.core.constraints import Problem, Subscription
from repro.core.knapsack import knapsack_step
from repro.core.ladder import qoe_utility

RESOLUTIONS = [Resolution.P180, Resolution.P360, Resolution.P720]
RES_RANGES = {
    Resolution.P720: (900, 1500),
    Resolution.P360: (400, 800),
    Resolution.P180: (100, 300),
}


@st.composite
def ladders(draw):
    """A random valid feasible set over 1-3 resolutions."""
    chosen = draw(
        st.lists(
            st.sampled_from(RESOLUTIONS), min_size=1, max_size=3, unique=True
        )
    )
    used = set()
    streams = []
    for res in chosen:
        lo, hi = RES_RANGES[res]
        n = draw(st.integers(1, 4))
        for _ in range(n):
            rate = draw(st.integers(lo, hi))
            while rate in used:
                rate -= 1
            if rate < 1:
                continue
            used.add(rate)
            streams.append(StreamSpec(rate, res, qoe_utility(rate)))
    assume(streams)
    return streams


@st.composite
def problems(draw):
    n = draw(st.integers(2, 4))
    clients = [f"C{k}" for k in range(n)]
    feasible = {}
    bandwidth = {}
    owners = {}
    aliases = {}
    for c in clients:
        bandwidth[c] = Bandwidth(
            uplink_kbps=draw(st.integers(0, 6000)),
            downlink_kbps=draw(st.integers(0, 6000)),
            audio_protection_kbps=draw(st.sampled_from([0, 50])),
        )
        if draw(st.booleans()):
            feasible[c] = draw(ladders())
        # Occasionally attach a screen entity.
        if c in feasible and draw(st.integers(0, 4)) == 0:
            sid = f"{c}:screen"
            feasible[sid] = draw(ladders())
            owners[sid] = c
    assume(feasible)
    subs = []
    caps = [Resolution.P180, Resolution.P360, Resolution.P720]
    for sub in clients:
        for pub in list(feasible):
            if pub == sub or pub.startswith(f"{sub}:"):
                continue
            if draw(st.booleans()):
                subs.append(Subscription(sub, pub, draw(st.sampled_from(caps))))
                # Occasionally add a dual (virtual) subscription.
                if ":" not in pub and draw(st.integers(0, 5)) == 0:
                    vid = f"{pub}#v@{sub}"
                    aliases.setdefault(vid, pub)
                    subs.append(
                        Subscription(sub, vid, Resolution.P180)
                    )
    return Problem(feasible, bandwidth, subs, aliases=aliases, owners=owners)


@given(problems())
@settings(max_examples=120, deadline=None)
def test_solution_always_validates(problem):
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    solution, stats = solver.solve_with_stats(problem)
    solution.validate(problem)
    # Paper's convergence bound: publishers x resolutions (+1 slack).
    bound = (
        sum(
            len({s.resolution for s in problem.feasible_streams[p]})
            for p in problem.publishers
        )
        + 1
    )
    assert stats.iterations <= bound


@given(problems())
@settings(max_examples=60, deadline=None)
def test_solver_is_deterministic(problem):
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    a = solver.solve(problem)
    b = solver.solve(problem)
    assert a.policies == b.policies
    assert a.assignments == b.assignments


@given(problems(), st.integers(100, 2000))
@settings(max_examples=60, deadline=None)
def test_step1_objective_monotone_in_downlink(problem, extra):
    """Adding downlink budget to every client never lowers Eq. (1)."""
    base = step1_objective(knapsack_step(problem))
    relaxed_bandwidth = {
        c: Bandwidth(
            bw.uplink_kbps,
            bw.downlink_kbps + extra,
            bw.audio_protection_kbps,
        )
        for c, bw in problem.bandwidth.items()
    }
    relaxed = Problem(
        problem.feasible_streams,
        relaxed_bandwidth,
        problem.subscriptions,
        aliases=problem.aliases,
        owners=problem.owners,
    )
    assert step1_objective(knapsack_step(relaxed)) >= base - 1e-9


@given(problems())
@settings(max_examples=60, deadline=None)
def test_fallback_solution_always_validates(problem):
    from repro.control.failover import single_stream_fallback

    solution = single_stream_fallback(problem)
    solution.validate(problem)


@given(problems(), st.floats(0.0, 0.5))
@settings(max_examples=60, deadline=None)
def test_stickiness_preserves_validity(problem, stickiness):
    """Any incumbent map + stickiness still yields a valid solution."""
    solver = GsoSolver(
        SolverConfig(granularity_kbps=10, stickiness=stickiness)
    )
    first = solver.solve(problem)
    incumbent = {
        (sub, pub): stream.resolution
        for sub, per_pub in first.assignments.items()
        for pub, stream in per_pub.items()
    }
    second = solver.solve(problem, incumbent=incumbent)
    second.validate(problem)
    # With an incumbent from the same problem, the solution is stable.
    assert second.assignments == first.assignments
