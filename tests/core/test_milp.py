"""Tests for the exact MILP oracle and the KMR optimality gap."""

import random

import pytest

from repro.core import Bandwidth, GsoSolver, Resolution, SolverConfig, StreamSpec
from repro.core.bruteforce import solve_joint_bruteforce
from repro.core.constraints import Problem, Subscription
from repro.core.ladder import make_ladder, paper_ladder
from repro.core.milp import solve_joint_milp


def random_mesh(rng, n_clients, ladder):
    clients = [f"C{k}" for k in range(n_clients)]
    subs = [
        Subscription(a, b, rng.choice([Resolution.P720, Resolution.P360]))
        for a in clients
        for b in clients
        if a != b and rng.random() < 0.85
    ]
    return Problem(
        {c: ladder for c in clients},
        {
            c: Bandwidth(
                rng.choice([600, 1500, 3000, 5000]),
                rng.choice([500, 1000, 2000, 4000]),
            )
            for c in clients
        },
        subs,
    )


class TestMilpCorrectness:
    def test_matches_bruteforce_on_toy_instances(self):
        short = [
            StreamSpec(1500, Resolution.P720, 1200.0),
            StreamSpec(600, Resolution.P360, 530.0),
            StreamSpec(300, Resolution.P180, 300.0),
        ]
        rng = random.Random(8)
        for trial in range(10):
            problem = random_mesh(rng, 3, short)
            milp_sol = solve_joint_milp(problem)
            milp_sol.validate(problem)
            brute = solve_joint_bruteforce(problem)
            assert milp_sol.total_qoe() == pytest.approx(
                brute.total_qoe(), abs=1e-6
            ), f"trial {trial}"

    def test_empty_problem(self):
        s = solve_joint_milp(Problem({}, {}, []))
        assert s.policies == {}

    def test_no_wasted_encodings(self):
        """The activation penalty switches off unsubscribed streams."""
        ladder = paper_ladder()
        problem = Problem(
            {"P": ladder},
            {"P": Bandwidth(5000, 100), "S": Bandwidth(100, 700)},
            [Subscription("S", "P", Resolution.P360)],
        )
        s = solve_joint_milp(problem)
        s.validate(problem)
        assert len(s.policies.get("P", {})) == 1

    def test_handles_aliases_and_owners(self):
        from repro.core import ProblemBuilder, screen_id

        builder = ProblemBuilder()
        ladder = paper_ladder()
        builder.add_client("host", Bandwidth(2500, 100), ladder)
        builder.add_client("viewer", Bandwidth(100, 4000))
        screen = builder.add_screen_share(
            "host",
            [
                StreamSpec(1200, Resolution.P720, 1100.0),
                StreamSpec(350, Resolution.P360, 400.0),
            ],
        )
        builder.subscribe_dual("viewer", "host")
        builder.subscribe("viewer", screen)
        problem = builder.build()
        s = solve_joint_milp(problem)
        s.validate(problem)
        # Camera + screen respect the shared 2500 kbps uplink.
        total = sum(
            e.bitrate_kbps
            for pub in s.policies
            for e in s.policies[pub].values()
        )
        assert total <= 2500


class TestKmrOptimalityGap:
    def test_kmr_stays_near_the_global_optimum(self):
        """On random 5-client meshes with the 9-level ladder, KMR's final
        QoE stays within ~20% of the proven joint optimum (measured: mean
        ~0.84, min ~0.81 — the gap is Step-2's merge-to-minimum, which a
        globally coordinated optimum avoids by aligning subscribers on one
        bitrate up front).  Note the paper's "QoE optimality ~ 1" metric is
        the *Step-1* objective, which the DP does solve exactly."""
        ladder = paper_ladder()
        rng = random.Random(21)
        solver = GsoSolver(SolverConfig(granularity_kbps=10))
        ratios = []
        for _ in range(8):
            problem = random_mesh(rng, 5, ladder)
            optimal = solve_joint_milp(problem).total_qoe()
            if optimal <= 0:
                continue
            achieved = solver.solve(problem).total_qoe()
            assert achieved <= optimal + 1e-6
            ratios.append(achieved / optimal)
        assert ratios, "degenerate sample"
        assert min(ratios) > 0.70
        assert sum(ratios) / len(ratios) > 0.80
