"""Unit and property tests for the MCKP solvers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mckp import (
    _solve_mckp_dp_mandatory_python,
    _solve_mckp_dp_python,
    solve_mckp_dp,
    solve_mckp_dp_mandatory,
    solve_mckp_exhaustive,
)


def total_of(classes, picks):
    weight = sum(
        classes[ci][i][0] for ci, i in enumerate(picks) if i is not None
    )
    value = sum(
        classes[ci][i][1] for ci, i in enumerate(picks) if i is not None
    )
    return weight, value


class TestDpBasics:
    def test_empty_instance(self):
        sol = solve_mckp_dp([], 100)
        assert sol.picks == ()
        assert sol.total_value == 0

    def test_zero_capacity_picks_nothing(self):
        sol = solve_mckp_dp([[(10, 5.0)]], 0)
        assert sol.picks == (None,)

    def test_single_item_fits(self):
        sol = solve_mckp_dp([[(10, 5.0)]], 10)
        assert sol.picks == (0,)
        assert sol.total_weight == 10

    def test_single_item_does_not_fit(self):
        sol = solve_mckp_dp([[(11, 5.0)]], 10)
        assert sol.picks == (None,)

    def test_picks_best_item_within_class(self):
        sol = solve_mckp_dp([[(5, 1.0), (6, 9.0), (7, 3.0)]], 10)
        assert sol.picks == (1,)

    def test_at_most_one_per_class(self):
        # Two great items in one class; only one may be taken.
        sol = solve_mckp_dp([[(3, 10.0), (3, 10.0)]], 10)
        assert sol.total_value == 10.0

    def test_spreads_across_classes(self):
        classes = [[(4, 4.0)], [(4, 4.0)], [(4, 4.0)]]
        sol = solve_mckp_dp(classes, 8)
        assert sol.total_value == 8.0
        assert sum(1 for p in sol.picks if p is not None) == 2

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            solve_mckp_dp([[(1, 1.0)]], -1)

    def test_rejects_zero_weight_items(self):
        with pytest.raises(ValueError):
            solve_mckp_dp([[(0, 1.0)]], 5)

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            solve_mckp_dp([[(1, -1.0)]], 5)

    def test_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            solve_mckp_dp([[(1, 1.0)]], 5, granularity=0)


class TestGranularity:
    def test_coarse_grid_never_violates_capacity(self):
        classes = [[(99, 10.0), (51, 6.0)], [(52, 5.0)]]
        sol = solve_mckp_dp(classes, 150, granularity=50)
        assert sol.total_weight <= 150

    def test_exact_grid_matches_exhaustive(self):
        rng = random.Random(7)
        for _ in range(25):
            classes = [
                [
                    (rng.randint(1, 40), rng.randint(0, 50) * 1.0)
                    for _ in range(rng.randint(1, 4))
                ]
                for _ in range(rng.randint(1, 4))
            ]
            cap = rng.randint(0, 100)
            dp = solve_mckp_dp(classes, cap)
            ex = solve_mckp_exhaustive(classes, cap)
            assert dp.total_value == pytest.approx(ex.total_value)
            assert dp.total_weight <= cap


class TestPythonReferenceParity:
    def test_numpy_and_python_paths_agree(self):
        rng = random.Random(11)
        for _ in range(30):
            classes = [
                [
                    (rng.randint(1, 60), rng.random() * 100)
                    for _ in range(rng.randint(1, 5))
                ]
                for _ in range(rng.randint(0, 5))
            ]
            cap = rng.randint(0, 200)
            g = rng.choice([1, 1, 7])
            a = solve_mckp_dp(classes, cap, granularity=g)
            b = _solve_mckp_dp_python(classes, cap, granularity=g)
            assert a.total_value == pytest.approx(b.total_value)
            assert a.total_weight <= cap and b.total_weight <= cap


class TestMandatory:
    def test_all_classes_must_pick(self):
        sol = solve_mckp_dp_mandatory([[(5, 1.0)], [(5, 1.0)]], 10)
        assert sol is not None
        assert sol.picks == (0, 0)

    def test_infeasible_returns_none(self):
        assert solve_mckp_dp_mandatory([[(6, 1.0)], [(6, 1.0)]], 10) is None

    def test_empty_class_is_infeasible(self):
        assert solve_mckp_dp_mandatory([[(1, 1.0)], []], 10) is None

    def test_no_classes_is_trivially_solved(self):
        sol = solve_mckp_dp_mandatory([], 10)
        assert sol is not None
        assert sol.picks == ()

    def test_maximizes_value_among_feasible(self):
        classes = [[(3, 1.0), (6, 5.0)], [(4, 2.0), (7, 9.0)]]
        sol = solve_mckp_dp_mandatory(classes, 10)
        assert sol is not None
        # (6,5)+(4,2)=w10 v7  beats (3,1)+(7,9)=w10 v10? no: v10 > v7.
        assert sol.total_value == 10.0
        assert sol.total_weight == 10

    def test_matches_exhaustive_filtered(self):
        rng = random.Random(3)
        for _ in range(30):
            classes = [
                [
                    (rng.randint(1, 30), rng.random() * 10)
                    for _ in range(rng.randint(1, 4))
                ]
                for _ in range(rng.randint(1, 3))
            ]
            cap = rng.randint(0, 60)
            dp = solve_mckp_dp_mandatory(classes, cap)
            # Exhaustive reference with mandatory filter.
            import itertools

            best = None
            for combo in itertools.product(
                *[range(len(c)) for c in classes]
            ):
                w = sum(classes[ci][i][0] for ci, i in enumerate(combo))
                v = sum(classes[ci][i][1] for ci, i in enumerate(combo))
                if w <= cap and (best is None or v > best):
                    best = v
            if best is None:
                assert dp is None
            else:
                assert dp is not None
                assert dp.total_value == pytest.approx(best)


class TestMandatoryPythonReferenceParity:
    """The mandatory-pick variant against its pure-Python oracle.

    The oracle mirrors the vectorized solver decision-for-decision, so
    the comparison is on *picks*, not just objective values.
    """

    def test_numpy_and_python_paths_agree_exactly(self):
        rng = random.Random(17)
        for _ in range(60):
            classes = [
                [
                    (rng.randint(1, 60), rng.random() * 100)
                    for _ in range(rng.randint(1, 5))
                ]
                for _ in range(rng.randint(0, 4))
            ]
            cap = rng.randint(0, 200)
            g = rng.choice([1, 1, 7, 25])
            a = solve_mckp_dp_mandatory(classes, cap, granularity=g)
            b = _solve_mckp_dp_mandatory_python(classes, cap, granularity=g)
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert a.picks == b.picks
                assert a.total_value == pytest.approx(b.total_value)
                assert a.total_weight == b.total_weight

    def test_duplicate_values_same_tiebreak(self):
        # Equal-value items force the argmax tie rule to decide; both
        # implementations must pick the same column.
        classes = [[(4, 5.0), (6, 5.0)], [(4, 5.0), (2, 5.0)]]
        for cap in range(0, 14):
            a = solve_mckp_dp_mandatory(classes, cap)
            b = _solve_mckp_dp_mandatory_python(classes, cap)
            assert (a is None) == (b is None)
            if a is not None:
                assert a.picks == b.picks

    def test_empty_class_infeasible_both(self):
        classes = [[(1, 1.0)], []]
        assert solve_mckp_dp_mandatory(classes, 10) is None
        assert _solve_mckp_dp_mandatory_python(classes, 10) is None

    def test_no_classes_trivially_solved_both(self):
        for cap in (0, 10):
            a = solve_mckp_dp_mandatory([], cap)
            b = _solve_mckp_dp_mandatory_python([], cap)
            assert a is not None and b is not None
            assert a.picks == b.picks == ()

    def test_grid_weight_exceeds_slots_for_all_items(self):
        # capacity // granularity = 2 slots but every item rounds up to
        # >= 3 slots: no item fits, mandatory pick impossible.
        classes = [[(101, 5.0), (120, 9.0)]]
        assert solve_mckp_dp_mandatory(classes, 100, granularity=50) is None
        assert (
            _solve_mckp_dp_mandatory_python(classes, 100, granularity=50)
            is None
        )

    def test_capacity_zero_with_classes_is_infeasible(self):
        classes = [[(1, 1.0)]]
        assert solve_mckp_dp_mandatory(classes, 0) is None
        assert _solve_mckp_dp_mandatory_python(classes, 0) is None

    def test_exact_fit_on_grid_boundary(self):
        # total_weight == capacity must be accepted, one unit over must
        # not — exercised through both implementations.
        classes = [[(50, 1.0)], [(50, 2.0)]]
        for cap, feasible in ((100, True), (99, False)):
            a = solve_mckp_dp_mandatory(classes, cap)
            b = _solve_mckp_dp_mandatory_python(classes, cap)
            assert (a is not None) == feasible
            assert (b is not None) == feasible

    def test_oracle_rejects_bad_granularity(self):
        with pytest.raises(ValueError):
            _solve_mckp_dp_mandatory_python([[(1, 1.0)]], 5, granularity=0)


# --------------------------------------------------------------------- #
# Property-based tests
# --------------------------------------------------------------------- #

items = st.tuples(
    st.integers(min_value=1, max_value=50),
    st.floats(min_value=0, max_value=100, allow_nan=False),
)
instances = st.tuples(
    st.lists(st.lists(items, min_size=1, max_size=4), min_size=0, max_size=4),
    st.integers(min_value=0, max_value=120),
)


@given(instances)
@settings(max_examples=150, deadline=None)
def test_dp_solution_is_feasible_and_consistent(instance):
    classes, cap = instance
    sol = solve_mckp_dp(classes, cap)
    weight, value = total_of(classes, sol.picks)
    assert weight == sol.total_weight <= cap
    assert value == pytest.approx(sol.total_value)


@given(instances)
@settings(max_examples=100, deadline=None)
def test_dp_matches_exhaustive_value(instance):
    classes, cap = instance
    dp = solve_mckp_dp(classes, cap)
    ex = solve_mckp_exhaustive(classes, cap)
    assert dp.total_value == pytest.approx(ex.total_value)


@given(instances, st.integers(min_value=2, max_value=25))
@settings(max_examples=100, deadline=None)
def test_coarse_granularity_is_feasible_and_bounded(instance, granularity):
    classes, cap = instance
    sol = solve_mckp_dp(classes, cap, granularity=granularity)
    assert sol.total_weight <= cap
    exact = solve_mckp_dp(classes, cap)
    # A coarser grid can only lose value, never gain it.
    assert sol.total_value <= exact.total_value + 1e-9
