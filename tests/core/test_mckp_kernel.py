"""Edge cases and dispatch semantics of the MCKP execution kernels.

The array kernel (``"numpy"``) must match the pure-Python differential
oracle (``"python"``) *bit-for-bit* — compared by pickle bytes, not
objective values — on exactly the shapes where vectorized DP sweeps
classically go wrong: empty classes, grids with zero or one slot,
exact value+weight ties (the Table-1 tie-break), and weights sitting
on granularity-bucket boundaries.  The batched entry point must be
indistinguishable from a per-instance loop, including when instances
share one DP table (same class structure, different capacities).
"""

import pickle
import random

import pytest

from repro.core.mckp import (
    KERNELS,
    _solve_mckp_dp_mandatory_python,
    _solve_mckp_dp_python,
    default_kernel,
    kernel_stats,
    solve_mckp_dp,
    solve_mckp_dp_batch,
    solve_mckp_dp_mandatory,
)


def both_optional(classes, cap, g=1):
    a = solve_mckp_dp(classes, cap, granularity=g, kernel="numpy")
    b = _solve_mckp_dp_python(classes, cap, granularity=g)
    assert pickle.dumps(a) == pickle.dumps(b), (classes, cap, g)
    return a


def both_mandatory(classes, cap, g=1):
    a = solve_mckp_dp_mandatory(classes, cap, granularity=g, kernel="numpy")
    b = _solve_mckp_dp_mandatory_python(classes, cap, granularity=g)
    assert pickle.dumps(a) == pickle.dumps(b), (classes, cap, g)
    return a


class TestKernelDispatch:
    def test_kernel_names_are_registered(self):
        assert KERNELS == ("numpy", "python")

    def test_default_kernel_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert default_kernel() == "numpy"

    def test_env_selects_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert default_kernel() == "python"

    def test_env_rejects_unknown_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fortran")
        with pytest.raises(ValueError, match="fortran"):
            default_kernel()

    def test_explicit_kernel_rejects_unknown(self):
        with pytest.raises(ValueError, match="cuda"):
            solve_mckp_dp([[(1, 1.0)]], 5, kernel="cuda")
        with pytest.raises(ValueError, match="cuda"):
            solve_mckp_dp_mandatory([[(1, 1.0)]], 5, kernel="cuda")
        with pytest.raises(ValueError, match="cuda"):
            solve_mckp_dp_batch([([[(1, 1.0)]], 5)], kernel="cuda")

    def test_explicit_kernel_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        stats = kernel_stats()
        before = stats.solves["python"]
        solve_mckp_dp([[(1, 1.0)]], 5, kernel="python")
        assert stats.solves["python"] == before + 1

    def test_kernel_stats_count_batches(self):
        stats = kernel_stats()
        calls, insts = stats.batch_calls, stats.batched_instances
        solve_mckp_dp_batch(
            [([[(1, 1.0)]], 5), ([[(2, 2.0)]], 5)], kernel="numpy"
        )
        assert stats.batch_calls == calls + 1
        assert stats.batched_instances == insts + 2

    def test_kernel_stats_snapshot_shape(self):
        snap = kernel_stats().snapshot()
        assert set(snap) == {"solves", "batch_calls", "batched_instances"}
        assert set(snap["solves"]) == set(KERNELS)


class TestOptionalEdgeCases:
    def test_no_classes(self):
        for cap in (0, 1, 100):
            sol = both_optional([], cap)
            assert sol.picks == ()

    def test_empty_grid_zero_capacity(self):
        sol = both_optional([[(5, 3.0)], [(2, 1.0)]], 0)
        assert sol.picks == (None, None)

    def test_single_slot_grid(self):
        # capacity == granularity: exactly one usable slot; only items
        # whose grid weight rounds to 1 can be taken, and only one of them.
        classes = [[(9, 4.0), (10, 5.0), (11, 6.0)], [(10, 7.0)]]
        sol = both_optional(classes, 10, g=10)
        assert sol.picks == (None, 0)
        assert sol.total_weight == 10

    def test_capacity_smaller_than_every_item(self):
        sol = both_optional([[(50, 9.0)], [(60, 9.0)]], 49)
        assert sol.picks == (None, None)

    def test_exact_value_and_weight_ties_prefer_lower_index(self):
        # Identical (weight, value) items: the sequential strict-> update
        # keeps the first item; argmax must agree.
        classes = [[(4, 5.0), (4, 5.0), (4, 5.0)]]
        sol = both_optional(classes, 10)
        assert sol.picks == (0,)

    def test_skip_beats_equal_valued_item(self):
        # A zero-value item never displaces the skip row on a tie.
        sol = both_optional([[(1, 0.0)]], 5)
        assert sol.picks == (None,)

    def test_cross_class_tie_columns(self):
        # Two ways to reach the same total value at different weights; the
        # backtrack column choice (smallest maximizing column) must match.
        classes = [[(2, 3.0), (5, 3.0)], [(3, 3.0), (2, 3.0)]]
        for cap in range(0, 9):
            both_optional(classes, cap)

    def test_grid_weight_boundaries(self):
        # Weights at granularity multiples and one off either side: the
        # ceil-rounding must agree between kernels everywhere.
        g = 25
        weights = [24, 25, 26, 49, 50, 51, 74, 75, 76]
        classes = [[(w, float(w)) for w in weights]]
        for cap in (0, 24, 25, 26, 50, 75, 100, 149, 150):
            both_optional(classes, cap, g=g)

    def test_float_values_at_int_weights(self):
        # Values whose float sums differ by rounding order would betray a
        # different accumulation order between the kernels.
        classes = [
            [(10, 0.1), (20, 0.2)],
            [(10, 0.1), (20, 0.30000000000000004)],
            [(10, 0.7), (20, 1.1)],
        ]
        for cap in (0, 10, 20, 30, 40, 50):
            both_optional(classes, cap)

    def test_fuzz_byte_identity(self):
        rng = random.Random(23)
        for _ in range(200):
            classes = [
                [
                    (rng.randint(1, 70), rng.choice([0.0, 1.0, rng.random() * 50]))
                    for _ in range(rng.randint(1, 5))
                ]
                for _ in range(rng.randint(0, 5))
            ]
            both_optional(
                classes, rng.randint(0, 250), g=rng.choice([1, 7, 25])
            )


class TestMandatoryEdgeCases:
    def test_no_classes_is_trivially_feasible(self):
        for cap in (0, 10):
            sol = both_mandatory([], cap)
            assert sol is not None and sol.picks == ()

    def test_empty_class_list_infeasible(self):
        assert both_mandatory([[], [(1, 1.0)]], 100) is None
        assert both_mandatory([[]], 100) is None

    def test_capacity_below_smallest_mandatory_pick(self):
        # The lightest feasible combination weighs 7; one unit less must
        # be infeasible through both kernels.
        classes = [[(3, 1.0), (5, 9.0)], [(4, 1.0), (6, 9.0)]]
        assert both_mandatory(classes, 6) is None
        assert both_mandatory(classes, 7) is not None

    def test_single_slot_grid_mandatory(self):
        # One slot and two classes that must both pick: infeasible (each
        # pick needs at least one slot).
        classes = [[(10, 1.0)], [(10, 1.0)]]
        assert both_mandatory(classes, 10, g=10) is None
        assert both_mandatory(classes, 20, g=10) is not None

    def test_exact_ties_match_oracle_bit_for_bit(self):
        classes = [[(4, 5.0), (6, 5.0)], [(4, 5.0), (2, 5.0)]]
        for cap in range(0, 14):
            both_mandatory(classes, cap)

    def test_grid_weight_boundaries_mandatory(self):
        g = 50
        classes = [[(49, 1.0), (50, 2.0), (51, 3.0)], [(99, 1.0), (100, 2.0)]]
        for cap in (0, 99, 100, 101, 149, 150, 151, 200):
            both_mandatory(classes, cap, g=g)

    def test_post_hoc_capacity_rejection(self):
        # Grid slots admit the combination but true weights exceed the
        # capacity — both kernels must reject after backtracking.
        classes = [[(51, 9.0)], [(51, 9.0)]]
        assert both_mandatory(classes, 100, g=50) is None

    def test_fuzz_byte_identity(self):
        rng = random.Random(29)
        for _ in range(200):
            classes = [
                [
                    (rng.randint(1, 70), rng.choice([0.0, 1.0, rng.random() * 50]))
                    for _ in range(rng.randint(0, 4))
                ]
                for _ in range(rng.randint(0, 4))
            ]
            both_mandatory(
                classes, rng.randint(0, 250), g=rng.choice([1, 7, 25])
            )


class TestBatchedEntryPoint:
    def _reference(self, instances, g):
        return [
            solve_mckp_dp(c, cap, granularity=g, kernel="python")
            for c, cap in instances
        ]

    def test_empty_batch(self):
        assert solve_mckp_dp_batch([], kernel="numpy") == []

    def test_batch_with_empty_and_zero_capacity_instances(self):
        instances = [
            ([], 100),
            ([[(5, 1.0)]], 0),
            ([[(5, 1.0)]], 100),
        ]
        got = solve_mckp_dp_batch(instances, kernel="numpy")
        assert pickle.dumps(got) == pickle.dumps(self._reference(instances, 1))

    def test_heterogeneous_capacities_share_the_common_grid(self):
        # Wildly different slot counts in one batch: the padded columns of
        # small instances must not leak into their argmax.
        classes = [[(3, 2.0), (7, 5.0)], [(4, 3.0)]]
        instances = [(classes, cap) for cap in (0, 3, 4, 7, 11, 500)]
        got = solve_mckp_dp_batch(instances, kernel="numpy")
        assert pickle.dumps(got) == pickle.dumps(self._reference(instances, 1))

    def test_python_kernel_batches_through_the_oracle(self):
        instances = [([[(3, 2.0)]], 10), ([[(4, 9.0), (2, 1.0)]], 4)]
        got = solve_mckp_dp_batch(instances, kernel="python")
        assert pickle.dumps(got) == pickle.dumps(self._reference(instances, 1))

    def test_shared_class_structure_one_table_many_capacities(self):
        # The batch's core trick: instances differing only in capacity
        # share one DP table.  Every capacity from empty grid to far
        # beyond the heaviest combination must match the scalar oracle.
        rng = random.Random(31)
        classes = [
            [
                (rng.randint(1, 60), rng.random() * 40)
                for _ in range(rng.randint(1, 4))
            ]
            for _ in range(4)
        ]
        for g in (1, 7):
            instances = [(classes, cap) for cap in range(0, 260, 13)]
            got = solve_mckp_dp_batch(instances, g, kernel="numpy")
            assert pickle.dumps(got) == pickle.dumps(
                self._reference(instances, g)
            )

    def test_mixed_class_structures_group_independently(self):
        # Two structures interleaved in one batch: grouping must not
        # reorder or cross-contaminate the results.
        a = [[(3, 2.0), (7, 5.0)]]
        b = [[(4, 3.0)], [(2, 1.0), (6, 8.0)]]
        instances = [(a, 10), (b, 5), (a, 3), (b, 20), (a, 7)]
        got = solve_mckp_dp_batch(instances, kernel="numpy")
        assert pickle.dumps(got) == pickle.dumps(self._reference(instances, 1))

    def test_ragged_class_counts_in_one_batch(self):
        # Instances with different class counts: shorter instances must
        # ride along untouched through the extra class steps.
        instances = [
            ([[(2, 1.0)]], 10),
            ([[(2, 1.0)], [(3, 4.0)], [(4, 2.0)]], 10),
            ([], 10),
        ]
        got = solve_mckp_dp_batch(instances, kernel="numpy")
        assert pickle.dumps(got) == pickle.dumps(self._reference(instances, 1))

    def test_fuzz_batch_equals_scalar(self):
        rng = random.Random(37)
        for _ in range(40):
            g = rng.choice([1, 7, 25])
            instances = [
                (
                    [
                        [
                            (rng.randint(1, 80), rng.random() * 100)
                            for _ in range(rng.randint(1, 6))
                        ]
                        for _ in range(rng.randint(0, 6))
                    ],
                    rng.randint(0, 400),
                )
                for _ in range(rng.randint(0, 10))
            ]
            got = solve_mckp_dp_batch(instances, g, kernel="numpy")
            assert pickle.dumps(got) == pickle.dumps(
                self._reference(instances, g)
            )
