"""Tests for the brute-force comparators."""

import pytest

from repro.core import Bandwidth, Resolution, StreamSpec, paper_ladder
from repro.core.bruteforce import (
    solve_joint_bruteforce,
    solve_step1_bruteforce,
    step1_objective,
)
from repro.core.constraints import Problem, Subscription
from repro.core.knapsack import knapsack_step


def small_problem():
    short = [
        StreamSpec(1500, Resolution.P720, 1200.0),
        StreamSpec(600, Resolution.P360, 530.0),
        StreamSpec(300, Resolution.P180, 300.0),
    ]
    return Problem(
        {"A": short, "B": short},
        {
            "A": Bandwidth(2000, 1000),
            "B": Bandwidth(2000, 800),
            "C": Bandwidth(100, 700),
        },
        [
            Subscription("A", "B", Resolution.P720),
            Subscription("B", "A", Resolution.P360),
            Subscription("C", "A", Resolution.P720),
            Subscription("C", "B", Resolution.P360),
        ],
    )


class TestStep1Bruteforce:
    def test_matches_dp_objective(self):
        p = small_problem()
        brute = solve_step1_bruteforce(p)
        dp = knapsack_step(p)
        assert step1_objective(brute) == pytest.approx(step1_objective(dp))

    def test_objective_of_empty_requests_is_zero(self):
        assert step1_objective({}) == 0.0
        assert step1_objective({"A": {}}) == 0.0


class TestJointBruteforce:
    def test_solution_validates(self):
        p = small_problem()
        s = solve_joint_bruteforce(p)
        s.validate(p)

    def test_joint_optimum_dominates_any_single_assignment(self):
        p = small_problem()
        s = solve_joint_bruteforce(p)
        assert s.total_qoe() > 0

    def test_publisher_side_codec_constraint_enforced(self):
        """Two subscribers that could each afford different 720p bitrates
        must end up on the same encoding."""
        ladder = [
            StreamSpec(1500, Resolution.P720, 1200.0),
            StreamSpec(1000, Resolution.P720, 750.0),
        ]
        p = Problem(
            {"P": ladder},
            {
                "P": Bandwidth(1600, 100),
                "S1": Bandwidth(100, 1600),
                "S2": Bandwidth(100, 1100),
            },
            [
                Subscription("S1", "P", Resolution.P720),
                Subscription("S2", "P", Resolution.P720),
            ],
        )
        s = solve_joint_bruteforce(p)
        s.validate(p)
        entries = s.policies["P"]
        assert len(entries) == 1  # single encoding at 720p
        # Serving both at 1000 beats serving only S1 at 1500.
        assert entries[Resolution.P720].bitrate_kbps == 1000
        assert entries[Resolution.P720].audience == frozenset({"S1", "S2"})

    def test_guards_against_explosive_instances(self):
        ladder = paper_ladder()
        clients = [f"C{k}" for k in range(6)]
        subs = [
            Subscription(a, b)
            for a in clients
            for b in clients
            if a != b
        ]
        p = Problem(
            {c: ladder for c in clients},
            {c: Bandwidth(5000, 5000) for c in clients},
            subs,
        )
        with pytest.raises(ValueError, match="too large"):
            solve_joint_bruteforce(p)
