"""Latency profiles: stats, quantiles, seeded sampling, roundtrip."""

import math

import pytest

from repro.obs.tracing import (
    DEFAULT_SAMPLES,
    PROFILE_SCHEMA,
    STAGE_SOLVE,
    LatencyProfile,
    assemble_trees,
    build_profile,
)

from .conftest import decision_chain


def solve_profile(values, **kwargs):
    profile = LatencyProfile(source="test", **kwargs)
    for v in values:
        profile.observe(STAGE_SOLVE, v)
    return profile


class TestStats:
    def test_count_mean_track_every_observation(self):
        profile = solve_profile([0.1, 0.2, 0.3])
        assert profile.count(STAGE_SOLVE) == 3
        assert math.isclose(profile.mean(STAGE_SOLVE), 0.2)
        assert profile.stages() == [STAGE_SOLVE]

    def test_unknown_stage_is_empty(self):
        profile = solve_profile([0.1])
        assert profile.count("delivery") == 0
        assert profile.mean("delivery") == 0.0
        assert profile.quantile("delivery", 0.5) == 0.0

    def test_quantile_interpolates_order_statistics(self):
        profile = solve_profile([0.0, 1.0])
        assert math.isclose(profile.quantile(STAGE_SOLVE, 0.5), 0.5)
        assert profile.quantile(STAGE_SOLVE, 0.0) == 0.0
        assert profile.quantile(STAGE_SOLVE, 1.0) == 1.0

    def test_reservoir_is_bounded_but_count_exact(self):
        profile = solve_profile(
            [i / 1000.0 for i in range(5000)], samples_per_stage=64
        )
        payload = profile.to_dict()["stages"][STAGE_SOLVE]
        assert profile.count(STAGE_SOLVE) == 5000
        assert len(payload["samples"]) <= 64
        assert payload["min_s"] == 0.0
        assert math.isclose(payload["max_s"], 4.999)


class TestSampling:
    def test_same_key_always_draws_the_same_value(self):
        profile = solve_profile([0.1, 0.5, 0.9, 1.3])
        a = profile.sample(STAGE_SOLVE, key="m0#1", seed=7)
        b = profile.sample(STAGE_SOLVE, key="m0#1", seed=7)
        assert a == b

    def test_draws_are_call_order_independent(self):
        profile = solve_profile([0.1, 0.5, 0.9, 1.3])
        first = [
            profile.sample(STAGE_SOLVE, key=k, seed=1)
            for k in ("a", "b", "c")
        ]
        second = [
            profile.sample(STAGE_SOLVE, key=k, seed=1)
            for k in ("c", "b", "a")
        ]
        assert first == list(reversed(second))

    def test_seed_and_key_vary_the_draw(self):
        profile = solve_profile([i / 100.0 for i in range(100)])
        draws = {
            profile.sample(STAGE_SOLVE, key=f"m0#{n}", seed=0)
            for n in range(50)
        }
        assert len(draws) > 10
        assert profile.sample(STAGE_SOLVE, "k", 0) != profile.sample(
            STAGE_SOLVE, "k", 1
        )

    def test_draws_stay_inside_the_observed_range(self):
        profile = solve_profile([0.2, 0.4, 0.8])
        for n in range(100):
            drawn = profile.sample(STAGE_SOLVE, key=str(n))
            assert 0.2 <= drawn <= 0.8


class TestRoundtrip:
    def test_dict_roundtrip_preserves_digest(self):
        profile = solve_profile([0.1, 0.2, 0.3])
        clone = LatencyProfile.from_dict(profile.to_dict())
        assert clone.digest() == profile.digest()
        assert clone.sample(STAGE_SOLVE, "k") == profile.sample(
            STAGE_SOLVE, "k"
        )

    def test_json_file_roundtrip(self, tmp_path):
        profile = solve_profile([0.1, 0.2])
        path = profile.write_json(tmp_path / "profile.json")
        clone = LatencyProfile.read_json(path)
        assert clone.digest() == profile.digest()
        assert clone.source == "test"

    def test_schema_is_stamped_and_validated(self):
        payload = solve_profile([0.1]).to_dict()
        assert payload["schema"] == PROFILE_SCHEMA
        payload["schema"] = "repro.latency_profile/v0"
        with pytest.raises(ValueError, match="schema"):
            LatencyProfile.from_dict(payload)


class TestBuildProfile:
    def test_profile_covers_every_critical_path_span(self):
        events = decision_chain() + decision_chain(cid="m0#2", t0=1.0)
        traces = assemble_trees(events)
        profile = build_profile(traces.trees(), source="unit")
        span_count = sum(
            len(node.critical_path())
            for tree in traces.trees()
            for node in tree.walk()
        )
        assert sum(profile.count(s) for s in profile.stages()) == span_count
        assert profile.samples_per_stage == DEFAULT_SAMPLES

    def test_build_is_deterministic(self):
        events = decision_chain() + decision_chain(cid="m0#2", t0=1.0)
        a = build_profile(assemble_trees(events).trees())
        b = build_profile(assemble_trees(events).trees())
        assert a.digest() == b.digest()
