"""Trace assembly: linking rules, bounded memory, the conservation ledger."""

import random

from repro.obs import events as ek
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry
from repro.obs.tracing import (
    LINK_COALESCED,
    LINK_LINEAGE,
    TraceAssembler,
    assemble_trees,
)

from .conftest import decision_chain, ev


def conserved(assembler):
    c = assembler.counters()
    return c["assembled"] == c["exported"] + c["evicted"] + c["live"]


class TestChainGrouping:
    def test_one_tree_per_cid(self):
        events = decision_chain() + decision_chain(cid="m0#2", t0=1.0)
        traces = assemble_trees(events)
        assert [t.cid for t in traces.trees()] == ["m0#1", "m0#2"]
        assert all(t.complete for t in traces.trees())

    def test_terminal_marks_complete_open_chain_stays_incomplete(self):
        events = decision_chain()
        events += decision_chain(cid="m0#2", t0=1.0)[:-1]  # no delivery
        traces = assemble_trees(events)
        by_cid = {t.cid: t for t in traces.trees()}
        assert by_cid["m0#1"].complete
        assert not by_cid["m0#2"].complete  # flushed by finish()

    def test_out_of_order_feed_matches_sorted_feed(self):
        events = decision_chain() + decision_chain(cid="m0#2", t0=1.0)
        shuffled = list(events)
        random.Random(7).shuffle(shuffled)
        assert (
            assemble_trees(events).digest()
            == assemble_trees(shuffled).digest()
        )

    def test_double_assembly_is_byte_deterministic(self):
        events = decision_chain() + [ev(0.1, ek.FAULT_INJECTED, meeting="")]
        assert (
            assemble_trees(events).digest()
            == assemble_trees(events).digest()
        )


class TestCoalescedFanIn:
    def events_with_batch(self):
        return [
            ev(0.00, ek.INGRESS_ENQUEUED, cid="m0#1"),
            ev(0.05, ek.INGRESS_ENQUEUED, cid="m0#2"),
            ev(0.10, ek.INGRESS_ENQUEUED, cid="m0#3"),
            ev(0.20, ek.INGRESS_DEQUEUED, cid="m0#3", batch=3),
            ev(0.30, ek.SOLVE_SERVED, cid="m0#3"),
            ev(0.35, ek.TMMBR_PUSH, cid="m0#3"),
        ]

    def test_batch_absorbs_oldest_pending_envelopes(self):
        traces = assemble_trees(self.events_with_batch())
        roots = traces.trees()
        assert [t.cid for t in roots] == ["m0#3"]
        children = roots[0].children
        assert [c.cid for c in children] == ["m0#1", "m0#2"]
        assert all(c.link == LINK_COALESCED for c in children)
        assert all(c.parent_cid == "m0#3" for c in children)

    def test_batch_one_claims_nothing(self):
        events = decision_chain() + decision_chain(cid="m0#2", t0=1.0)
        traces = assemble_trees(events)
        assert all(not t.children for t in traces.trees())

    def test_claim_capped_by_batch_size(self):
        events = self.events_with_batch()
        events[3] = ev(0.20, ek.INGRESS_DEQUEUED, cid="m0#3", batch=2)
        traces = assemble_trees(events)
        roots = {t.cid: t for t in traces.trees()}
        assert [c.cid for c in roots["m0#3"].children] == ["m0#1"]
        assert "m0#2" in roots  # unclaimed envelope stands alone

    def test_fan_in_is_scoped_per_meeting(self):
        events = [
            ev(0.0, ek.INGRESS_ENQUEUED, meeting="m1", cid="m1#1"),
            ev(0.1, ek.INGRESS_ENQUEUED, meeting="m0", cid="m0#1"),
            ev(0.2, ek.INGRESS_DEQUEUED, meeting="m0", cid="m0#1", batch=3),
            ev(0.3, ek.TMMBR_PUSH, meeting="m0", cid="m0#1"),
        ]
        traces = assemble_trees(events)
        m0 = traces.trees("m0")[0]
        assert not m0.children  # m1's envelope is not claimable


class TestLineage:
    def test_parent_cid_attaches_refresh_under_predecessor(self):
        events = decision_chain()
        events += [
            ev(5.0, ek.TIME_TRIGGER, cid="m0#2", parent_cid="m0#1"),
            ev(5.2, ek.TMMBR_PUSH, cid="m0#2"),
        ]
        traces = assemble_trees(events)
        roots = traces.trees()
        assert [t.cid for t in roots] == ["m0#1"]
        child = roots[0].children[0]
        assert child.cid == "m0#2"
        assert child.link == LINK_LINEAGE

    def test_unknown_parent_stands_alone(self):
        events = [
            ev(5.0, ek.TIME_TRIGGER, cid="m0#2", parent_cid="m0#9"),
            ev(5.2, ek.TMMBR_PUSH, cid="m0#2"),
        ]
        traces = assemble_trees(events)
        assert [t.cid for t in traces.trees()] == ["m0#2"]
        assert traces.trees()[0].link == ""

    def test_self_parent_is_ignored(self):
        events = [
            ev(5.0, ek.TIME_TRIGGER, cid="m0#2", parent_cid="m0#2"),
            ev(5.2, ek.TMMBR_PUSH, cid="m0#2"),
        ]
        traces = assemble_trees(events)
        assert [t.cid for t in traces.trees()] == ["m0#2"]

    def test_non_root_kind_ignores_parent_cid(self):
        events = decision_chain()
        events.append(
            ev(9.0, ek.SOLVE_SERVED, cid="m0#9", parent_cid="m0#1")
        )
        traces = assemble_trees(events)
        assert {t.cid for t in traces.trees()} == {"m0#1", "m0#9"}


class TestOrphans:
    def test_ambient_events_are_counted_and_retained(self):
        events = decision_chain()
        events.append(ev(0.5, ek.SHARD_KILLED, meeting="", shard="s0"))
        traces = assemble_trees(events)
        assert traces.orphan_events == 1
        ambient = [t for t in traces.trees() if t.cid == ""]
        assert len(ambient) == 1
        assert ambient[0].events[0].kind == ek.SHARD_KILLED
        assert conserved(traces)


class TestBoundedMemory:
    def test_reservoir_eviction_under_small_retention(self):
        events = []
        for n in range(1, 33):
            events += decision_chain(cid=f"m0#{n}", t0=float(n))
        traces = assemble_trees(events, retention=4)
        c = traces.counters()
        assert c["assembled"] == 32
        assert c["live"] <= 4
        assert c["evicted"] == 32 - c["live"]
        assert conserved(traces)

    def test_max_open_force_finalizes_oldest(self):
        events = [
            ev(float(n), ek.INGRESS_ENQUEUED, cid=f"m0#{n}")
            for n in range(1, 12)
        ]
        assembler = TraceAssembler(max_open=4)
        assembler.assemble(events)
        assert assembler.open_count() <= 4
        assembler.finish()
        assert assembler.open_count() == 0
        assert assembler.assembled == 11
        assert conserved(assembler)

    def test_export_drains_and_counts(self):
        traces = assemble_trees(decision_chain())
        drained = traces.export()
        assert [t.cid for t in drained] == ["m0#1"]
        c = traces.counters()
        assert c["exported"] == 1 and c["live"] == 0
        assert conserved(traces)
        assert traces.trees() == []

    def test_conservation_across_mixed_churn(self):
        events = []
        for n in range(1, 25):
            events += decision_chain(cid=f"m0#{n}", t0=float(n))
            events.append(ev(float(n) + 0.5, ek.FAULT_INJECTED, meeting=""))
        traces = assemble_trees(events, retention=3)
        traces.export()
        # Feed a second wave after the export to keep churning.
        assembler_total = traces.counters()
        assert (
            assembler_total["assembled"]
            == assembler_total["exported"]
            + assembler_total["evicted"]
            + assembler_total["live"]
        )


class TestRegistryCounters:
    def test_counters_emitted_when_registry_enabled(self):
        events = []
        for n in range(1, 10):
            events += decision_chain(cid=f"m0#{n}", t0=float(n))
        events.append(ev(0.5, ek.FAULT_INJECTED, meeting=""))
        with enabled_registry() as reg:
            traces = assemble_trees(events, retention=2)
            traces.export()
            assembled = reg.counter(obs_names.TRACE_TREES_ASSEMBLED).value
            evicted = reg.counter(obs_names.TRACE_TREES_EVICTED).value
            exported = reg.counter(obs_names.TRACE_TREES_EXPORTED).value
            orphans = reg.counter(obs_names.TRACE_ORPHAN_EVENTS).value
        assert assembled == traces.assembled
        assert evicted == traces.evicted
        assert exported == traces.exported
        assert orphans == 1

    def test_stage_histogram_observed_per_span(self):
        with enabled_registry() as reg:
            traces = assemble_trees(decision_chain())
            span_count = sum(
                len(node.critical_path())
                for tree in traces.trees()
                for node in tree.walk()
            )
            observed = sum(
                reg.histogram(
                    obs_names.TRACE_STAGE_SECONDS, stage=stage
                ).count
                for stage in ("mailbox_dwell", "solve", "delivery")
            )
            assert observed == span_count == 3

    def test_assembly_span_recorded(self):
        with enabled_registry() as reg:
            assemble_trees(decision_chain())
            hist = reg.histogram(
                obs_names.SPAN_SECONDS, span=obs_names.SPAN_TRACE_ASSEMBLE
            )
            assert hist.count == 1


class TestStageLatencies:
    def test_samples_cover_every_walked_span(self):
        events = decision_chain()
        events += [
            ev(5.0, ek.TIME_TRIGGER, cid="m0#2", parent_cid="m0#1"),
            ev(5.2, ek.TMMBR_PUSH, cid="m0#2"),
        ]
        traces = assemble_trees(events)
        samples = traces.stage_latencies()
        span_count = sum(
            len(node.critical_path())
            for tree in traces.trees()
            for node in tree.walk()
        )
        assert sum(len(v) for v in samples.values()) == span_count
        for stage_samples in samples.values():
            assert stage_samples == sorted(stage_samples)
