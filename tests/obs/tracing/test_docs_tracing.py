"""``docs/TRACING.md`` is pinned to the trace plane it documents.

Same discipline as ``tests/obs/test_docs_match.py`` and
``tests/ingress/test_docs_ingress.py``: every canonical tracing name
(schemas, stages, link kinds, metrics, span, CLI commands) must appear
verbatim in the operator doc, and the cross-links must hold.
"""

from pathlib import Path

from repro.obs import names as obs_names
from repro.obs.tracing import (
    ALL_STAGES,
    LINK_COALESCED,
    LINK_LINEAGE,
    PROFILE_SCHEMA,
    TRACE_SCHEMA,
)

REPO = Path(__file__).resolve().parents[3]
DOC = REPO / "docs" / "TRACING.md"

TRACE_METRICS = sorted(
    name for name in obs_names.ALL_METRICS
    if name.startswith("repro_trace_")
)


def _doc() -> str:
    assert DOC.exists(), "docs/TRACING.md is part of the subsystem"
    return DOC.read_text()


class TestTracingDocPins:
    def test_schemas_pinned(self):
        text = _doc()
        assert TRACE_SCHEMA in text
        assert PROFILE_SCHEMA in text

    def test_every_stage_documented(self):
        text = _doc()
        for stage in ALL_STAGES:
            assert f"`{stage}`" in text, f"{stage} missing from TRACING.md"

    def test_link_kinds_documented(self):
        text = _doc()
        assert f"`{LINK_COALESCED}`" in text
        assert f"`{LINK_LINEAGE}`" in text

    def test_every_trace_metric_documented(self):
        text = _doc()
        assert TRACE_METRICS, "trace metrics must be registered"
        for name in TRACE_METRICS:
            assert name in text, f"{name} missing from TRACING.md"

    def test_span_and_conservation_ledger_documented(self):
        text = _doc()
        assert obs_names.SPAN_TRACE_ASSEMBLE in text
        assert "assembled == exported + evicted + live" in text

    def test_cli_commands_documented(self):
        text = _doc()
        for command in ("record", "show", "export", "profile"):
            assert f"repro trace {command}" in text

    def test_cross_links_hold(self):
        text = _doc()
        assert "OBSERVABILITY.md" in text
        assert (REPO / "docs" / "OBSERVABILITY.md").exists()
        observability = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        assert "TRACING.md" in observability


class TestStageBudgetsMatchDoc:
    def test_budgets_cover_every_stage(self):
        from repro.obs.slo import STAGE_BUDGETS_S

        assert set(STAGE_BUDGETS_S) == set(ALL_STAGES)
        assert "STAGE_BUDGETS_S" in _doc()
