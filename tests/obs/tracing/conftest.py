"""Shared helpers for the trace-plane suite: hand-built event chains."""

from repro.obs.events import Event

_SEQ = {"n": 0}


def ev(t, kind, meeting="m0", cid="", seq=None, shard="", **attrs):
    """One event with an auto-assigned sequence number.

    Tests that care about ordering pass ``seq`` explicitly; everything
    else gets a fresh monotonic number so ``(t, seq)`` sorts are stable.
    """
    if seq is None:
        _SEQ["n"] += 1
        seq = _SEQ["n"]
    return Event(
        t=t, seq=seq, kind=kind, meeting=meeting, cid=cid,
        shard=shard, attrs=attrs,
    )


def decision_chain(cid="m0#1", meeting="m0", t0=0.0):
    """A full ingress decision chain: enqueue -> dequeue -> solve -> push."""
    from repro.obs import events as ek

    return [
        ev(t0 + 0.0, ek.INGRESS_ENQUEUED, meeting, cid),
        ev(t0 + 0.2, ek.INGRESS_DEQUEUED, meeting, cid, batch=1),
        ev(t0 + 0.3, ek.SOLVE_SERVED, meeting, cid),
        ev(t0 + 0.35, ek.TMMBR_PUSH, meeting, cid),
    ]
