"""Property tests: structural invariants of trace assembly.

Hypothesis drives the assembler with arbitrary interleaved, duplicated
and out-of-order event logs — including adversarial ``parent_cid`` /
``batch`` attributes the real instrumentation never emits — and checks
the invariants the rest of the plane relies on:

1. **Acyclicity** — every assembled forest is finite: each node is
   visited exactly once by ``walk()``.
2. **Single ownership** — every fed event lands in exactly one tree
   (with eviction disabled, total events across the forest equals the
   number fed).
3. **Attribution exactness** — per tree, critical-path stage durations
   sum to the chain's end-to-end latency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import events as ek
from repro.obs.events import Event
from repro.obs.tracing import assemble_trees

MEETINGS = ("m0", "m1")
CIDS = tuple(f"{m}#{n}" for m in MEETINGS for n in range(1, 5))

KINDS = (
    ek.INGRESS_ENQUEUED,
    ek.INGRESS_DEQUEUED,
    ek.INGRESS_SHED,
    ek.SEMB_REPORT,
    ek.TIME_TRIGGER,
    ek.MEETING_REHOMED,
    ek.SOLVE_SERVED,
    ek.TMMBR_PUSH,
    ek.TMMBR_LOST,
    ek.SUBSCRIPTION_CHANGE,
    ek.FAULT_INJECTED,
)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(KINDS))
    meeting = draw(st.sampled_from(MEETINGS))
    cid = draw(st.sampled_from(("",) + CIDS))
    t = draw(
        st.floats(
            min_value=0.0, max_value=100.0,
            allow_nan=False, allow_infinity=False,
        )
    )
    attrs = {}
    if draw(st.booleans()):
        attrs["parent_cid"] = draw(st.sampled_from(CIDS))
    if kind == ek.INGRESS_DEQUEUED:
        attrs["batch"] = draw(st.integers(min_value=0, max_value=5))
    if kind == ek.SEMB_REPORT and draw(st.booleans()):
        attrs["due_at_s"] = draw(
            st.floats(
                min_value=-10.0, max_value=200.0,
                allow_nan=False, allow_infinity=False,
            )
        )
    return (t, kind, meeting, cid, attrs)


def materialize(rows):
    return [
        Event(t=t, seq=seq, kind=kind, meeting=meeting, cid=cid,
              attrs=dict(attrs))
        for seq, (t, kind, meeting, cid, attrs) in enumerate(rows)
    ]


event_logs = st.lists(events(), min_size=0, max_size=60)


@settings(max_examples=200, deadline=None)
@given(event_logs)
def test_forest_is_acyclic_and_every_node_unique(rows):
    traces = assemble_trees(materialize(rows), retention=10_000)
    seen = set()
    for tree in traces.trees():
        for node in tree.walk():  # would not terminate on a cycle
            assert id(node) not in seen, "node reachable twice"
            seen.add(id(node))


@settings(max_examples=200, deadline=None)
@given(event_logs)
def test_every_event_lands_in_exactly_one_tree(rows):
    fed = materialize(rows)
    traces = assemble_trees(fed, retention=10_000, max_open=10_000)
    held = [
        event
        for tree in traces.trees()
        for node in tree.walk()
        for event in node.events
    ]
    assert len(held) == len(fed)
    assert {id(e) for e in held} == {id(e) for e in fed}


@settings(max_examples=200, deadline=None)
@given(event_logs)
def test_stage_durations_sum_to_chain_latency(rows):
    traces = assemble_trees(materialize(rows), retention=10_000)
    for tree in traces.trees():
        for node in tree.walk():
            total = sum(s.duration_s for s in node.critical_path())
            assert abs(total - node.latency_s) < 1e-9


@settings(max_examples=100, deadline=None)
@given(event_logs, st.randoms())
def test_digest_invariant_under_feed_order(rows, rng):
    fed = materialize(rows)
    shuffled = list(fed)
    rng.shuffle(shuffled)
    assert (
        assemble_trees(fed, retention=10_000).digest()
        == assemble_trees(shuffled, retention=10_000).digest()
    )


@settings(max_examples=100, deadline=None)
@given(event_logs)
def test_conservation_ledger_holds(rows):
    traces = assemble_trees(materialize(rows), retention=2)
    c = traces.counters()
    assert c["assembled"] == c["exported"] + c["evicted"] + c["live"]
    traces.export()
    c = traces.counters()
    assert c["assembled"] == c["exported"] + c["evicted"] + c["live"]
