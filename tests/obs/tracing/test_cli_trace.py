"""Tests for the ``repro trace`` CLI subcommands."""

import json

import pytest

from repro.cli import build_parser, main

SMALL = ["--meetings", "2", "--duration", "6", "--seed", "3"]


class TestParser:
    def test_trace_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_record_defaults(self):
        args = build_parser().parse_args(["trace", "record"])
        assert args.scenario == "bandwidth_collapse"
        assert args.seed == 1
        assert args.out == "events.jsonl"

    def test_show_defaults(self):
        args = build_parser().parse_args(["trace", "show"])
        assert args.limit == 10
        assert args.meeting is None
        assert args.events is None


class TestRecord:
    def test_writes_events_and_prints_digests(self, tmp_path, capsys):
        out = tmp_path / "events.jsonl"
        rc = main(["trace", "record", "--out", str(out)] + SMALL)
        assert rc == 0
        captured = capsys.readouterr().out
        assert "trace digest:" in captured
        assert "report trace digest:" in captured
        rows = [
            json.loads(line) for line in out.read_text().splitlines()
        ]
        assert rows[0]["record"] == "meta"
        assert any(r.get("record") == "event" for r in rows)

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            ["trace", "record", "--scenario", "nope",
             "--out", str(tmp_path / "e.jsonl")]
        )
        assert rc == 2

    def test_assembled_digest_matches_report(self, tmp_path, capsys):
        main(["trace", "record", "--out", str(tmp_path / "e.jsonl")] + SMALL)
        out = capsys.readouterr().out
        digests = {
            line.split()[-1]
            for line in out.splitlines()
            if "digest:" in line
        }
        assert len(digests) == 1, "CLI and report digests must agree"


class TestShow:
    def test_waterfall_from_recorded_events(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        main(["trace", "record", "--out", str(events)] + SMALL)
        capsys.readouterr()
        rc = main(["trace", "show", "--events", str(events), "--limit", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace waterfall" in out
        assert "#" in out

    def test_missing_events_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(
            ["trace", "show", "--events", str(tmp_path / "missing.jsonl")]
        )
        assert rc == 2


class TestExport:
    def test_chrome_trace_artifact(self, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        rc = main(["trace", "export", "--out", str(out)] + SMALL)
        assert rc == 0
        assert "perfetto" in capsys.readouterr().out.lower()
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]


class TestProfile:
    def test_prints_stage_table(self, capsys):
        rc = main(["trace", "profile"] + SMALL)
        assert rc == 0
        out = capsys.readouterr().out
        assert "latency profile" in out
        assert "solve" in out
        assert "profile digest:" in out

    def test_json_payload_and_artifact(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        rc = main(
            ["trace", "profile", "--json", "--out", str(out)] + SMALL
        )
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        assert printed["schema"] == "repro.latency_profile/v1"
        assert json.loads(out.read_text()) == printed
