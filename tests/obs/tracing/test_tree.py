"""Trace trees: stage rules, critical-path exactness, canonical encoding."""

import math

from repro.obs import events as ek
from repro.obs.tracing import (
    ALL_STAGES,
    STAGE_DELIVERY,
    STAGE_MAILBOX_DWELL,
    STAGE_SCHED_WAIT,
    STAGE_SHED,
    STAGE_SOLVE,
    TraceTree,
)

from .conftest import decision_chain, ev


def tree_of(events, cid="m0#1", meeting="m0"):
    return TraceTree(cid=cid, meeting=meeting, events=list(events))


class TestChain:
    def test_chain_orders_by_time_then_seq(self):
        events = decision_chain()
        tree = tree_of(list(reversed(events)))
        assert [e.kind for e in tree.chain()] == [
            ek.INGRESS_ENQUEUED,
            ek.INGRESS_DEQUEUED,
            ek.SOLVE_SERVED,
            ek.TMMBR_PUSH,
        ]

    def test_chain_truncates_at_first_terminal(self):
        events = decision_chain()
        events.append(ev(0.9, ek.SOLVE_SERVED, cid="m0#1"))
        tree = tree_of(events)
        assert tree.chain()[-1].kind == ek.TMMBR_PUSH
        assert tree.closed_at_s == 0.35

    def test_non_chain_kinds_are_context_only(self):
        events = decision_chain()
        events.append(ev(0.31, ek.SUBSCRIPTION_CHANGE, cid="m0#1"))
        tree = tree_of(events)
        assert len(tree.chain()) == 4
        assert len(tree.events) == 5

    def test_latency_is_root_to_terminal(self):
        tree = tree_of(decision_chain(t0=2.0))
        assert math.isclose(tree.opened_at_s, 2.0)
        assert math.isclose(tree.closed_at_s, 2.35)
        assert math.isclose(tree.latency_s, 0.35)


class TestStageRules:
    def test_enqueue_to_dequeue_is_mailbox_dwell(self):
        tree = tree_of(decision_chain())
        stages = [s.stage for s in tree.critical_path()]
        assert stages == [STAGE_MAILBOX_DWELL, STAGE_SOLVE, STAGE_DELIVERY]

    def test_shed_chain_names_the_shed_stage(self):
        tree = tree_of([
            ev(0.0, ek.INGRESS_ENQUEUED, cid="m0#1"),
            ev(0.4, ek.INGRESS_SHED, cid="m0#1"),
            ev(0.5, ek.TMMBR_PUSH, cid="m0#1"),
        ])
        assert [s.stage for s in tree.critical_path()] == [
            STAGE_SHED, STAGE_DELIVERY,
        ]

    def test_semb_report_due_splits_wait_and_solve(self):
        tree = tree_of([
            ev(0.0, ek.SEMB_REPORT, cid="m0#1", due_at_s=0.3),
            ev(1.0, ek.SOLVE_SERVED, cid="m0#1"),
            ev(1.1, ek.TMMBR_PUSH, cid="m0#1"),
        ])
        spans = tree.critical_path()
        assert [s.stage for s in spans] == [
            STAGE_SCHED_WAIT, STAGE_SOLVE, STAGE_DELIVERY,
        ]
        assert math.isclose(spans[0].duration_s, 0.3)
        assert math.isclose(spans[1].duration_s, 0.7)

    def test_due_is_clamped_into_the_gap(self):
        # A due time after the solve (late serve) collapses solve to 0.
        tree = tree_of([
            ev(0.0, ek.SEMB_REPORT, cid="m0#1", due_at_s=5.0),
            ev(1.0, ek.SOLVE_SERVED, cid="m0#1"),
            ev(1.1, ek.TMMBR_PUSH, cid="m0#1"),
        ])
        spans = tree.critical_path()
        assert math.isclose(spans[0].duration_s, 1.0)
        assert math.isclose(spans[1].duration_s, 0.0)

    def test_terminal_without_solve_event_is_solve_time(self):
        # Modeled backends emit no explicit solve event: the whole gap
        # from the root to the terminal is service time.
        tree = tree_of([
            ev(0.0, ek.TIME_TRIGGER, cid="m0#1"),
            ev(0.25, ek.TMMBR_PUSH, cid="m0#1"),
        ])
        spans = tree.critical_path()
        assert [s.stage for s in spans] == [STAGE_SOLVE]
        assert math.isclose(spans[0].duration_s, 0.25)

    def test_lost_delivery_still_attributes(self):
        events = decision_chain()[:-1]
        events.append(ev(0.35, ek.TMMBR_LOST, cid="m0#1"))
        tree = tree_of(events)
        assert [s.stage for s in tree.critical_path()][-1] == STAGE_DELIVERY


class TestCriticalPathExactness:
    def test_spans_partition_the_chain(self):
        tree = tree_of([
            ev(0.0, ek.SEMB_REPORT, cid="m0#1", due_at_s=0.2),
            ev(0.5, ek.SOLVE_SERVED, cid="m0#1"),
            ev(0.65, ek.TMMBR_PUSH, cid="m0#1"),
        ])
        spans = tree.critical_path()
        assert spans[0].start_s == tree.opened_at_s
        assert spans[-1].end_s == tree.closed_at_s
        for left, right in zip(spans, spans[1:]):
            assert left.end_s == right.start_s

    def test_durations_sum_to_latency(self):
        tree = tree_of(decision_chain())
        total = sum(s.duration_s for s in tree.critical_path())
        assert abs(total - tree.latency_s) < 1e-9

    def test_stage_durations_aggregates_and_sorts(self):
        tree = tree_of(decision_chain())
        durations = tree.stage_durations()
        assert list(durations) == sorted(durations)
        assert abs(sum(durations.values()) - tree.latency_s) < 1e-9
        assert set(durations) <= set(ALL_STAGES)

    def test_single_event_chain_has_no_spans(self):
        tree = tree_of([ev(0.0, ek.INGRESS_ENQUEUED, cid="m0#1")])
        assert tree.critical_path() == []
        assert tree.latency_s == 0.0


class TestCanonicalEncoding:
    def test_children_sorted_in_to_dict(self):
        tree = tree_of(decision_chain())
        late = tree_of(decision_chain(cid="m0#3", t0=5.0), cid="m0#3")
        early = tree_of(decision_chain(cid="m0#2", t0=1.0), cid="m0#2")
        tree.children = [late, early]
        encoded = tree.to_dict()
        assert [c["cid"] for c in encoded["children"]] == ["m0#2", "m0#3"]

    def test_walk_visits_every_node_once(self):
        tree = tree_of(decision_chain())
        child = tree_of(decision_chain(cid="m0#2", t0=1.0), cid="m0#2")
        grand = tree_of(decision_chain(cid="m0#3", t0=2.0), cid="m0#3")
        child.children = [grand]
        tree.children = [child]
        nodes = tree.walk()
        assert [n.cid for n in nodes] == ["m0#1", "m0#2", "m0#3"]
        assert tree.event_count() == 12
