"""Regression: successor chains stamp ``parent_cid`` (satellite 1).

Time-trigger refreshes and degraded re-homes mint a *new* correlation id;
before this PR they stood alone in the trace plane.  These tests pin the
instrumented call sites — ``SolveScheduler.due`` (cluster),
``IngressPlane`` time triggers, and ``ControllerCluster.migrate_meeting``
— to the lineage contract: the new chain's root event carries the
predecessor's cid, and the assembled tree hangs under it.
"""

from repro.cluster import ClusterConfig, ControllerCluster
from repro.ingress.faults import DROP_SEMB, StreamFault
from repro.ingress.run import IngressRunConfig, run_ingress
from repro.obs import events as ek
from repro.obs.events import EventLog, record_events
from repro.obs.tracing import LINK_LINEAGE, assemble_trees

from tests.cluster.conftest import mesh_problem


def make_cluster(**overrides):
    defaults = dict(shards=3)
    defaults.update(overrides)
    return ControllerCluster(ClusterConfig(**defaults))


class TestTimeTriggerLineage:
    def test_scheduler_refresh_links_to_previous_decision(self):
        log = EventLog()
        with record_events(log):
            with make_cluster() as cluster:
                cluster.submit("m0", mesh_problem(), 0.0)
                cluster.tick(0.0)
                # Idle long past max_interval_s: the scheduler must
                # synthesize a time-trigger refresh.
                cluster.tick(60.0)
        triggers = [
            e for e in log.events if e.kind == ek.TIME_TRIGGER
        ]
        assert triggers, "idle meeting must refresh on the Fig. 12 ceiling"
        for trigger in triggers:
            assert trigger.attrs.get("parent_cid"), (
                "time-trigger refresh must link to its predecessor chain"
            )
            assert trigger.attrs["parent_cid"] != trigger.cid

    def test_refresh_tree_hangs_under_predecessor(self):
        log = EventLog()
        with record_events(log):
            with make_cluster() as cluster:
                cluster.submit("m0", mesh_problem(), 0.0)
                cluster.tick(0.0)
                cluster.tick(60.0)
        traces = assemble_trees(log.events)
        links = [
            node.link
            for tree in traces.trees()
            for node in tree.walk()
            if node.parent_cid
        ]
        assert LINK_LINEAGE in links


class TestMigrationLineage:
    def migrated_log(self):
        log = EventLog()
        with record_events(log):
            with make_cluster() as cluster:
                cluster.submit("m0", mesh_problem(), 0.0)
                cluster.tick(0.0)
                source = cluster.meeting("m0").shard
                target = next(
                    s for s in cluster.live_shards if s != source
                )
                cluster.migrate_meeting("m0", target, 1.0, reason="drain")
        return log

    def test_degraded_rehome_links_to_previous_decision(self):
        log = self.migrated_log()
        rehomes = [e for e in log.events if e.kind == ek.MEETING_REHOMED]
        assert len(rehomes) == 1
        assert rehomes[0].cid, "degraded re-home mints a cid"
        assert rehomes[0].attrs.get("parent_cid"), (
            "degraded re-home must link to the chain it degrades"
        )

    def test_rehome_tree_is_a_lineage_child(self):
        traces = assemble_trees(self.migrated_log().events)
        rehomed = [
            node
            for tree in traces.trees()
            for node in tree.walk()
            if any(e.kind == ek.MEETING_REHOMED for e in node.events)
        ]
        assert rehomed and rehomed[0].link == LINK_LINEAGE

    def test_seamless_move_stays_unthreaded(self):
        log = EventLog()
        with record_events(log):
            with make_cluster() as cluster:
                cluster.submit("m0", mesh_problem(), 0.0)
                cluster.tick(0.0)
                source = cluster.meeting("m0").shard
                target = next(
                    s for s in cluster.live_shards if s != source
                )
                cluster.migrate_meeting(
                    "m0", target, 1.0, reason="drain", degrade=False
                )
        rehomes = [e for e in log.events if e.kind == ek.MEETING_REHOMED]
        assert rehomes[0].cid == ""
        assert "parent_cid" not in rehomes[0].attrs


class TestIngressPlaneLineage:
    def test_plane_time_triggers_carry_parents(self):
        log = EventLog(capacity=65536)
        # Drop every SEMB report mid-run: the idle meetings must refresh
        # from their last snapshot once max_interval_s passes.
        run_ingress(
            IngressRunConfig(seed=3, meetings=4, duration_s=20.0),
            faults=[StreamFault(DROP_SEMB, start_s=4.0, end_s=16.0)],
            events_out=log,
        )
        triggers = [e for e in log.events if e.kind == ek.TIME_TRIGGER]
        # Refreshes for meetings that decided before must link back; a
        # refresh before any decision legitimately has no parent.
        linked = [e for e in triggers if e.attrs.get("parent_cid")]
        assert triggers, "idle_refresh workload must synthesize refreshes"
        assert linked, "refreshes after a first decision must link back"
        for e in linked:
            assert e.attrs["parent_cid"].startswith(e.meeting + "#")
