"""Trace exports: Chrome trace-event JSON and the text waterfall."""

import json

from repro.obs import events as ek
from repro.obs.tracing import (
    assemble_trees,
    chrome_trace,
    format_waterfall,
    waterfall,
    write_chrome_trace,
)

from .conftest import decision_chain, ev


def sample_trees():
    events = decision_chain()
    events += decision_chain(cid="m0#2", t0=1.0)
    events += [
        ev(5.0, ek.TIME_TRIGGER, cid="m0#3", parent_cid="m0#2"),
        ev(5.2, ek.TMMBR_PUSH, cid="m0#3"),
    ]
    events += decision_chain(cid="m1#1", meeting="m1", t0=2.0)
    return assemble_trees(events).trees()


class TestChromeTrace:
    def test_one_process_per_meeting(self):
        payload = chrome_trace(sample_trees())
        metas = [
            e for e in payload["traceEvents"] if e["ph"] == "M"
        ]
        assert [m["args"]["name"] for m in metas] == [
            "meeting m0", "meeting m1",
        ]
        assert payload["displayTimeUnit"] == "ms"

    def test_stage_slices_are_complete_events_in_microseconds(self):
        payload = chrome_trace(sample_trees())
        stages = [
            e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "stage"
        ]
        assert stages, "stage slices must be emitted"
        dwell = next(s for s in stages if s["name"] == "mailbox_dwell")
        assert dwell["ts"] == 0.0
        assert dwell["dur"] == 0.2 * 1e6

    def test_children_render_in_the_parent_lane(self):
        payload = chrome_trace(sample_trees())
        decisions = {
            e["args"]["cid"]: e
            for e in payload["traceEvents"]
            if e["ph"] == "X" and e["cat"] == "decision"
        }
        # m0#3 is a lineage child of m0#2: same pid/tid lane.
        assert decisions["m0#3"]["pid"] == decisions["m0#2"]["pid"]
        assert decisions["m0#3"]["tid"] == decisions["m0#2"]["tid"]
        assert decisions["m0#3"]["args"]["link"] == "lineage"

    def test_export_bytes_are_deterministic(self, tmp_path):
        a = write_chrome_trace(sample_trees(), tmp_path / "a.json")
        b = write_chrome_trace(sample_trees(), tmp_path / "b.json")
        assert a.read_bytes() == b.read_bytes()
        parsed = json.loads(a.read_text())
        assert "traceEvents" in parsed


class TestWaterfall:
    def test_renders_stages_with_bars(self):
        tree = sample_trees()[0]
        lines = waterfall(tree)
        assert tree.cid in lines[0]
        assert any("mailbox_dwell" in line and "#" in line for line in lines)

    def test_children_are_indented(self):
        trees = sample_trees()
        parent = next(t for t in trees if t.children)
        lines = waterfall(parent)
        child_line = next(
            line for line in lines if parent.children[0].cid in line
        )
        assert child_line.startswith("  ")
        assert "[lineage]" in child_line

    def test_format_waterfall_limits_and_reports_overflow(self):
        trees = sample_trees()
        text = format_waterfall(trees, limit=1)
        assert "more trees not shown" in text
        assert format_waterfall(trees).count("(complete)") >= 3

    def test_zero_latency_tree_renders_without_division(self):
        events = [
            ev(1.0, ek.INGRESS_ENQUEUED, cid="m0#1"),
            ev(1.0, ek.TMMBR_PUSH, cid="m0#1"),
        ]
        tree = assemble_trees(events).trees()[0]
        assert any("|" in line for line in waterfall(tree))
