"""Tests for the KMR solver trace: collector plumbing, JSONL output, and a
golden-file schema test on a small 3-publisher meeting."""

import json
from pathlib import Path

import pytest

from repro.core import (
    Bandwidth,
    GsoSolver,
    ProblemBuilder,
    Resolution,
    paper_ladder,
)
from repro.obs.registry import enabled_registry
from repro.obs.trace import (
    REASON_ITERATION_CAP,
    REASON_SOLVED,
    TRACE_SCHEMA,
    IterationRecord,
    SolveTrace,
    TraceCollector,
    active_collector,
    collect_traces,
    set_collector,
)


def three_publisher_problem():
    """A<->B<->C full mesh on the paper ladder, with A's uplink below the
    720p rung so the KMR loop needs a Step-3 reduction to converge."""
    b = ProblemBuilder()
    ladder = paper_ladder()
    b.add_client("A", Bandwidth(500, 3000), ladder)
    b.add_client("B", Bandwidth(5000, 3000), ladder)
    b.add_client("C", Bandwidth(5000, 3000), ladder)
    b.subscribe("A", "B", Resolution.P360)
    b.subscribe("A", "C", Resolution.P180)
    b.subscribe("B", "A", Resolution.P720)
    b.subscribe("B", "C", Resolution.P360)
    b.subscribe("C", "B", Resolution.P360)
    b.subscribe("C", "A", Resolution.P720)
    return b.build()


class TestCollectorPlumbing:
    def test_disabled_by_default(self):
        assert active_collector() is None

    def test_collect_traces_installs_and_restores(self):
        with collect_traces() as collector:
            assert active_collector() is collector
            assert collector.last is None
        assert active_collector() is None

    def test_collect_traces_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with collect_traces():
                raise RuntimeError("boom")
        assert active_collector() is None

    def test_nested_collectors_restore_previous(self):
        with collect_traces() as outer:
            with collect_traces() as inner:
                assert active_collector() is inner
            assert active_collector() is outer

    def test_set_collector_explicit(self):
        collector = TraceCollector()
        set_collector(collector)
        try:
            assert active_collector() is collector
        finally:
            set_collector(None)
        assert active_collector() is None

    def test_begin_solve_retains_trace(self):
        collector = TraceCollector()
        trace = collector.begin_solve(publishers=3, subscribers=3,
                                      granularity_kbps=10)
        assert collector.traces == [trace]
        assert collector.last is trace


class TestSolverIntegration:
    def test_no_tracing_without_collector(self):
        # Plain solves must not leave a collector installed or crash.
        solution = GsoSolver().solve(three_publisher_problem())
        solution.validate(three_publisher_problem())
        assert active_collector() is None

    def test_solver_fills_trace(self):
        problem = three_publisher_problem()
        with collect_traces() as collector:
            solution, stats = GsoSolver().solve_with_stats(problem)
        trace = collector.last
        assert trace is not None
        assert trace.publishers == 3 and trace.subscribers == 3
        assert trace.convergence_reason == REASON_SOLVED
        assert trace.total_iterations == stats.iterations
        assert len(trace.iterations) == stats.iterations
        assert trace.wall_time_s > 0.0
        # Every non-final iteration carries the Step-3 deletion that forced
        # another loop; the reductions list mirrors them in order.
        deletions = [it.deletion for it in trace.iterations if it.deletion]
        assert deletions == trace.reductions
        assert trace.reductions == [
            (str(pub), res.name) for pub, res in stats.reductions
        ]
        # A's 500 kbps uplink forces the P720 rung to be reduced away.
        assert ("A", "P720") in trace.reductions

    def test_iteration_records_are_structured(self):
        problem = three_publisher_problem()
        with collect_traces() as collector:
            GsoSolver().solve(problem)
        first = collector.last.iterations[0]
        assert first.iteration == 1
        assert set(first.knapsack_values) == {"A", "B", "C"}
        assert all(v >= 0 for v in first.knapsack_values.values())
        assert first.requests_total == 6
        assert set(first.merged_ladders) == {"A", "B", "C"}
        for ladder in first.merged_ladders.values():
            for res_name, kbps in ladder.items():
                assert res_name.startswith("P")
                assert kbps > 0
        assert set(first.step_seconds) >= {"knapsack", "merge", "reduction"}

    def test_collector_accumulates_across_solves(self):
        problem = three_publisher_problem()
        with collect_traces() as collector:
            GsoSolver().solve(problem)
            GsoSolver().solve(problem)
        assert len(collector.traces) == 2

    def test_tracing_composes_with_metrics(self):
        problem = three_publisher_problem()
        with enabled_registry() as reg, collect_traces() as collector:
            GsoSolver().solve(problem)
        assert collector.last is not None
        assert reg.counter("repro_kmr_solves_total").value == 1


class TestGoldenSchema:
    """Pin the ``repro.kmr_trace/v1`` JSONL schema on the 3-publisher
    meeting.  If this test fails because the shape changed, bump
    ``TRACE_SCHEMA`` and update ``docs/OBSERVABILITY.md``."""

    HEADER_KEYS = {
        "record", "schema", "publishers", "subscribers", "granularity_kbps",
    }
    ITERATION_KEYS = {
        "record", "iteration", "knapsack_values", "requests_total",
        "merged_ladders", "deletion", "step_seconds",
    }
    RESULT_KEYS = {
        "record", "convergence_reason", "total_iterations", "reductions",
        "wall_time_s",
    }

    def _trace_rows(self):
        with collect_traces() as collector:
            GsoSolver().solve(three_publisher_problem())
        return [json.loads(line) for line in collector.last.to_jsonl_lines()]

    def test_jsonl_structure(self):
        rows = self._trace_rows()
        assert len(rows) >= 3  # header + >=1 iteration + trailer
        header, iterations, result = rows[0], rows[1:-1], rows[-1]

        assert header["record"] == "solve"
        assert header["schema"] == TRACE_SCHEMA == "repro.kmr_trace/v1"
        assert set(header) == self.HEADER_KEYS
        assert header["publishers"] == 3
        assert header["subscribers"] == 3

        for i, row in enumerate(iterations, start=1):
            assert row["record"] == "iteration"
            assert set(row) == self.ITERATION_KEYS
            assert row["iteration"] == i
            assert isinstance(row["knapsack_values"], dict)
            assert isinstance(row["merged_ladders"], dict)
            assert row["deletion"] is None or (
                isinstance(row["deletion"], list) and len(row["deletion"]) == 2
            )

        assert result["record"] == "result"
        assert set(result) == self.RESULT_KEYS
        assert result["convergence_reason"] in (
            REASON_SOLVED, REASON_ITERATION_CAP,
        )
        assert result["total_iterations"] == len(iterations)
        assert all(len(r) == 2 for r in result["reductions"])

    def test_trace_is_deterministic(self):
        assert self._trace_rows_without_timing() == \
            self._trace_rows_without_timing()

    def _trace_rows_without_timing(self):
        rows = self._trace_rows()
        for row in rows:
            row.pop("step_seconds", None)
            row.pop("wall_time_s", None)
        return rows

    def test_write_jsonl_round_trips(self, tmp_path):
        with collect_traces() as collector:
            GsoSolver().solve(three_publisher_problem())
        path = collector.last.write_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["record"] == "solve"
        assert json.loads(lines[-1])["record"] == "result"

    def test_collector_write_jsonl_concatenates(self, tmp_path):
        with collect_traces() as collector:
            GsoSolver().solve(three_publisher_problem())
            GsoSolver().solve(three_publisher_problem())
        path = collector.write_jsonl(tmp_path / "all.jsonl")
        records = [json.loads(l)["record"] for l in path.read_text().splitlines()]
        assert records.count("solve") == 2
        assert records.count("result") == 2


class TestRecordShapes:
    def test_iteration_to_dict_rounds_and_sorts(self):
        rec = IterationRecord(
            iteration=2,
            knapsack_values={"b": 1.23456789, "a": 2.0},
            requests_total=4,
            merged_ladders={"b": {"P360": 800}, "a": {"P720": 1500}},
            deletion=("a", "P720"),
            step_seconds={"merge": 0.000123456789},
        )
        d = rec.to_dict()
        assert list(d["knapsack_values"]) == ["a", "b"]
        assert d["knapsack_values"]["b"] == 1.234568
        assert list(d["merged_ladders"]) == ["a", "b"]
        assert d["deletion"] == ["a", "P720"]
        assert d["step_seconds"]["merge"] == 0.000123

    def test_empty_trace_serializes(self):
        trace = SolveTrace(publishers=0, subscribers=0, granularity_kbps=1)
        lines = trace.to_jsonl_lines()
        assert len(lines) == 2  # header + trailer, no iterations


class TestGoldenRoundTrip:
    """The committed golden file pins the ``repro.kmr_trace/v1`` schema:
    parsing it and re-serializing must reproduce the bytes exactly."""

    GOLDEN = Path(__file__).parent / "golden" / "kmr_trace.jsonl"

    def test_golden_file_round_trips_byte_identically(self):
        text = self.GOLDEN.read_text()
        trace = SolveTrace.from_jsonl(text)
        assert trace.to_jsonl() == text

    def test_golden_header_fields(self):
        trace = SolveTrace.read_jsonl(self.GOLDEN)
        assert trace.publishers == 3
        assert trace.subscribers == 3
        assert trace.convergence_reason == REASON_SOLVED
        assert trace.total_iterations == len(trace.iterations) == 2
        assert trace.reductions == [("A", "P720")]

    def test_live_trace_round_trips(self):
        with collect_traces() as collector:
            GsoSolver().solve(three_publisher_problem())
        trace = collector.last
        # Byte-level identity is the contract; object identity would not
        # hold because serialization rounds wall-clock floats to 6 dp.
        again = SolveTrace.from_jsonl(trace.to_jsonl())
        assert again.to_jsonl() == trace.to_jsonl()

    def test_wrong_schema_rejected(self):
        lines = self.GOLDEN.read_text().splitlines()
        bad = lines[0].replace("repro.kmr_trace/v1", "repro.kmr_trace/v9")
        with pytest.raises(ValueError):
            SolveTrace.from_jsonl_lines([bad] + lines[1:])

    def test_unknown_record_rejected(self):
        lines = self.GOLDEN.read_text().splitlines()
        with pytest.raises(ValueError):
            SolveTrace.from_jsonl_lines(lines + ['{"record": "mystery"}'])

    def test_missing_result_rejected(self):
        lines = self.GOLDEN.read_text().splitlines()
        body = [l for l in lines if '"record": "result"' not in l]
        with pytest.raises(ValueError):
            SolveTrace.from_jsonl_lines(body)
