"""Tests for timeline reconstruction and report rendering — including
the end-to-end acceptance path: a bandwidth-collapse chaos run whose
per-meeting timeline reads SEMB report -> solve -> TMMBR push ->
subscription change under one correlation id."""

import pytest

from repro.obs.events import (
    SEMB_REPORT,
    SOLVE_SERVED,
    SUBSCRIPTION_CHANGE,
    TMMBR_PUSH,
    Event,
    EventLog,
)
from repro.obs.report import (
    correlation_chains,
    format_report,
    format_slo_verdicts,
    format_timeline,
    meeting_timeline,
    report_dict,
    timeline_dict,
)
from repro.obs.slo import SloVerdict


def _verdict(name="kmr_iteration_bound", value=0.4, ok=True):
    return SloVerdict(
        name=name, description="", measure="stat:k", threshold=1.0,
        comparator="<=", unit="ratio", deterministic=True,
        paper_ref="Sec. 5", value=value, recent_value=value, ok=ok,
        fast_burn=False,
    )


def _chain(log: EventLog, meeting: str, t: float):
    cid = log.mint(meeting)
    log.emit(SEMB_REPORT, t=t, meeting=meeting, cid=cid, shard="s0",
             trigger="event")
    log.emit(SOLVE_SERVED, t=t + 0.25, meeting=meeting, cid=cid,
             shard="s0", source="solve")
    log.emit(TMMBR_PUSH, t=t + 0.25, meeting=meeting, cid=cid,
             publishers=3)
    log.emit(SUBSCRIPTION_CHANGE, t=t + 0.25, meeting=meeting, cid=cid,
             changed=2)
    return cid


class TestTimeline:
    def test_meeting_timeline_filters_and_orders(self):
        log = EventLog()
        _chain(log, "b", 2.0)
        _chain(log, "a", 1.0)
        rows = meeting_timeline(log.events, "a")
        assert [e.meeting for e in rows] == ["a"] * 4
        assert [e.t for e in rows] == [1.0, 1.25, 1.25, 1.25]

    def test_equal_times_ordered_by_seq(self):
        events = [
            Event(t=1.0, seq=5, kind=TMMBR_PUSH, meeting="m"),
            Event(t=1.0, seq=2, kind=SOLVE_SERVED, meeting="m"),
        ]
        rows = meeting_timeline(events, "m")
        assert [e.seq for e in rows] == [2, 5]

    def test_correlation_chains_group_by_cid(self):
        log = EventLog()
        c1 = _chain(log, "m", 1.0)
        c2 = _chain(log, "m", 2.0)
        chains = correlation_chains(log.events)
        assert set(chains) == {c1, c2}
        assert [e.kind for e in chains[c1]] == [
            SEMB_REPORT, SOLVE_SERVED, TMMBR_PUSH, SUBSCRIPTION_CHANGE,
        ]

    def test_format_timeline_renders_chain_blocks(self):
        log = EventLog()
        c1 = _chain(log, "m", 1.0)
        c2 = _chain(log, "m", 2.0)
        text = format_timeline(log.events, "m")
        assert f"[{c1}]" in text
        assert f"[{c2}]" in text
        assert "\n\n" in text  # blank line between chains
        assert "trigger=event" in text

    def test_format_timeline_empty(self):
        assert "no events" in format_timeline([], "ghost")

    def test_timeline_dict_shapes(self):
        log = EventLog()
        cid = _chain(log, "m", 1.0)
        out = timeline_dict(log.events, "m")
        assert out["meeting"] == "m"
        assert len(out["events"]) == 4
        (chain,) = out["chains"]
        assert chain["cid"] == cid
        assert chain["kinds"][0] == SEMB_REPORT
        assert chain["t_first"] == 1.0
        assert chain["t_last"] == 1.25


class TestSloRendering:
    def test_format_verdicts_table(self):
        text = format_slo_verdicts([
            _verdict(),
            _verdict(name="degraded_serve_rate", value=0.9, ok=False),
        ])
        assert "PASS" in text
        assert "FAIL" in text
        assert "(Sec. 5)" in text

    def test_format_verdicts_empty(self):
        assert format_slo_verdicts([]) == "no SLOs evaluated"

    def test_skip_rendered_for_missing_data(self):
        verdict = _verdict()
        verdict.value = None
        text = format_slo_verdicts([verdict])
        assert "SKIP" in text
        assert "no data" in text


class TestReport:
    def test_report_dict_includes_event_stats(self):
        log = EventLog()
        _chain(log, "m", 1.0)
        out = report_dict("healthy", 3, [_verdict()], log=log)
        assert out["scenario"] == "healthy"
        assert out["slo_ok"] is True
        assert out["events"]["emitted"] == 4
        assert out["events"]["digest"] == log.digest()

    def test_report_dict_flags_failures(self):
        out = report_dict("s", 1, [_verdict(ok=False)])
        assert out["slo_ok"] is False

    def test_format_report_sections(self):
        log = EventLog()
        _chain(log, "m", 1.0)
        text = format_report("s", 1, [_verdict()], log=log,
                             summary="run summary line")
        assert "run summary line" in text
        assert "slo verdicts:" in text
        assert "events: emitted=4" in text


class TestEndToEndTimeline:
    """Acceptance: the slowlink-style scenario's reconstructed timeline."""

    @pytest.fixture(scope="class")
    def runner(self):
        from repro.chaos import ChaosConfig, ChaosRunner, get_scenario

        config = ChaosConfig(seed=1, meetings=4, duration_s=10.0)
        scenario = get_scenario("bandwidth_collapse")
        runner = ChaosRunner(
            config, scenario.build(1, config), scenario=scenario.name
        )
        runner.run()
        return runner

    def test_causal_chain_reconstructed(self, runner):
        chains = correlation_chains(runner.events.for_meeting("chaos-0"))
        full = [
            kinds for kinds in (
                [e.kind for e in chain] for chain in chains.values()
            )
            if kinds[:1] == [SEMB_REPORT]
            and SOLVE_SERVED in kinds
            and TMMBR_PUSH in kinds
            and SUBSCRIPTION_CHANGE in kinds
        ]
        assert full, "no complete report->solve->push->change chain"

    def test_cids_intact_across_chain(self, runner):
        for event in runner.events.for_meeting("chaos-0"):
            if event.kind in (SEMB_REPORT, SOLVE_SERVED, TMMBR_PUSH,
                              SUBSCRIPTION_CHANGE):
                assert event.cid.startswith("chaos-0#"), event

    def test_fault_appears_in_timeline_text(self, runner):
        text = format_timeline(runner.events.events, "chaos-0")
        assert "fault_injected" in text
        assert "downlink_collapse" in text
