"""Tests for the in-memory time-series store: ring bounds, windowed
percentiles/rates, the registry bridge, and determinism."""

import pytest

from repro.obs import names
from repro.obs.registry import MetricsRegistry, enabled_registry
from repro.obs.timeseries import (
    DEFAULT_SERIES_CAPACITY,
    Series,
    TimeSeriesStore,
    WindowStats,
    active_store,
    record_timeseries,
    set_store,
)


class TestSeries:
    def test_window_stats(self):
        series = Series("s", (), capacity=16)
        for t, v in enumerate([1.0, 2.0, 3.0, 4.0]):
            series.record(float(t), v)
        stats = series.window()
        assert stats.count == 4
        assert (stats.min, stats.max) == (1.0, 4.0)
        assert stats.mean == pytest.approx(2.5)
        assert stats.p50 == 2.0
        assert stats.p95 == 4.0
        # cumulative 1->4 over 3 seconds: 1/s average slope
        assert stats.rate_per_s == pytest.approx(1.0)

    def test_window_respects_bounds(self):
        series = Series("s", (), capacity=16)
        for t in range(10):
            series.record(float(t), float(t))
        stats = series.window(t0=3.0, t1=6.0)
        assert stats.count == 4
        assert (stats.min, stats.max) == (3.0, 6.0)

    def test_empty_window_is_zero(self):
        series = Series("s", (), capacity=4)
        stats = series.window()
        assert stats == WindowStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def test_ring_bound(self):
        series = Series("s", (), capacity=3)
        for t in range(10):
            series.record(float(t), float(t))
        assert len(series) == 3
        assert [t for t, _ in series.points] == [7.0, 8.0, 9.0]


class TestStore:
    def test_record_and_window_by_labels(self):
        store = TimeSeriesStore()
        store.record("m", 1.0, 5.0, shard="a")
        store.record("m", 1.0, 9.0, shard="b")
        assert store.window("m", shard="a").max == 5.0
        assert store.window("m", shard="b").max == 9.0
        assert store.window("m", shard="absent").count == 0
        assert len(store) == 2

    def test_series_keys_sorted_and_label_order_independent(self):
        store = TimeSeriesStore()
        s1 = store.series("m", a="1", b="2")
        s2 = store.series("m", b="2", a="1")
        assert s1 is s2
        store.record("a_first", 0.0, 1.0)
        assert store.series_keys()[0][0] == "a_first"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(capacity=0)

    def test_to_dict_deterministic(self):
        store = TimeSeriesStore()
        store.record("m", 1.0, 2.0, shard="a")
        store.record("m", 2.0, 4.0, shard="a")
        out = store.to_dict()
        assert out["points_recorded"] == 2
        assert out["series"][0]["name"] == "m"
        assert out["series"][0]["window"]["count"] == 2


class TestRegistryBridge:
    def test_sample_registry_captures_all_instrument_kinds(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total", kind="a").inc(3)
        reg.gauge("repro_g").set(7.0)
        reg.histogram("repro_h").observe(0.5)
        store = TimeSeriesStore()
        recorded = store.sample_registry(reg, t=1.0)
        assert recorded == 3
        assert store.window("repro_x_total", kind="a").max == 3.0
        assert store.window("repro_g").max == 7.0
        assert store.window("repro_h:count").max == 1.0

    def test_sample_none_or_disabled_registry_is_noop(self):
        store = TimeSeriesStore()
        assert store.sample_registry(None, t=0.0) == 0
        from repro.obs.registry import NullRegistry

        assert store.sample_registry(NullRegistry(), t=0.0) == 0
        assert store.points_recorded == 0

    def test_sampling_rates_from_counter(self):
        reg = MetricsRegistry()
        store = TimeSeriesStore()
        counter = reg.counter("repro_x_total")
        for t in range(5):
            counter.inc(2)
            store.sample_registry(reg, t=float(t))
        # 2 -> 10 over 4 simulated seconds: 2 events per second.
        assert store.window("repro_x_total").rate_per_s == pytest.approx(2.0)

    def test_sampling_records_meta_metrics(self):
        store = TimeSeriesStore()
        with enabled_registry() as reg:
            reg.counter("repro_x_total").inc()
            store.sample_registry(reg, t=1.0)
            snap = reg.snapshot()
        assert snap["counters"][names.TIMESERIES_POINTS] >= 1
        assert snap["gauges"][names.TIMESERIES_SERIES] >= 1.0


class TestSlot:
    def test_off_by_default(self):
        assert active_store() is None

    def test_record_timeseries_installs_and_restores(self):
        with record_timeseries() as store:
            assert active_store() is store
            assert store.capacity == DEFAULT_SERIES_CAPACITY
        assert active_store() is None

    def test_set_store_explicit(self):
        store = TimeSeriesStore()
        set_store(store)
        try:
            assert active_store() is store
        finally:
            set_store(None)
        assert active_store() is None


class TestDeterminism:
    def test_same_seed_chaos_runs_produce_identical_stores(self):
        from repro.chaos import ChaosConfig, get_scenario, ChaosRunner

        def one_run():
            config = ChaosConfig(seed=3, meetings=2, duration_s=5.0)
            scenario = get_scenario("feedback_loss")
            runner = ChaosRunner(
                config, scenario.build(3, config), scenario=scenario.name
            )
            with enabled_registry(), record_timeseries() as store:
                runner.run()
            return store.to_dict()

        assert one_run() == one_run()
