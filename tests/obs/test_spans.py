"""Tests for the span/timer API: nesting, disabled mode, registry wiring."""

import threading

import pytest

from repro.obs import names
from repro.obs.registry import enabled_registry
from repro.obs.spans import (
    _NULL_SPAN,
    current_span,
    format_span_tree,
    last_root_span,
    reset_spans,
    span,
)


@pytest.fixture(autouse=True)
def _clean_span_state():
    reset_spans()
    yield
    reset_spans()


class TestDisabledMode:
    def test_span_is_shared_null_object(self):
        assert span("kmr.solve") is _NULL_SPAN
        assert span("anything.else") is _NULL_SPAN

    def test_null_span_yields_none_and_records_nothing(self):
        with span("kmr.solve") as record:
            assert record is None
        assert current_span() is None
        assert last_root_span() is None


class TestEnabledMode:
    def test_span_records_duration(self):
        with enabled_registry() as reg:
            with span("kmr.solve") as record:
                assert current_span() is record
            assert record.duration_s >= 0.0
            hist = reg.histogram(names.SPAN_SECONDS, span="kmr.solve")
            assert hist.count == 1

    def test_nesting_builds_tree(self):
        with enabled_registry():
            with span("kmr.solve") as root:
                with span("kmr.knapsack") as a:
                    pass
                with span("kmr.merge") as b:
                    with span("kmr.merge.pub") as c:
                        pass
        assert root.depth == 0
        assert [child.name for child in root.children] == [
            "kmr.knapsack",
            "kmr.merge",
        ]
        assert a.depth == 1 and b.depth == 1 and c.depth == 2
        assert b.children == [c]
        assert [r.name for r in root.flatten()] == [
            "kmr.solve",
            "kmr.knapsack",
            "kmr.merge",
            "kmr.merge.pub",
        ]

    def test_last_root_span_tracks_roots_only(self):
        with enabled_registry():
            with span("first"):
                with span("first.child"):
                    pass
            assert last_root_span().name == "first"
            with span("second"):
                pass
            assert last_root_span().name == "second"

    def test_stack_empty_after_exit(self):
        with enabled_registry():
            with span("kmr.solve"):
                pass
        assert current_span() is None

    def test_spans_are_thread_local(self):
        seen = {}

        def worker():
            with enabled_registry():
                with span("worker.root"):
                    seen["inner"] = current_span().name
            seen["root"] = last_root_span().name

        with enabled_registry():
            with span("main.root"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
                # The worker's span never nested under ours.
                assert current_span().name == "main.root"
                assert not current_span().children
        assert seen == {"inner": "worker.root", "root": "worker.root"}

    def test_exception_still_closes_span(self):
        with enabled_registry() as reg:
            with pytest.raises(ValueError):
                with span("kmr.solve"):
                    raise ValueError("boom")
            assert current_span() is None
            assert reg.histogram(names.SPAN_SECONDS, span="kmr.solve").count == 1


class TestFormatting:
    def test_format_span_tree(self):
        with enabled_registry():
            with span("kmr.solve") as root:
                with span("kmr.knapsack"):
                    pass
        text = format_span_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("kmr.solve")
        assert lines[1].startswith("  kmr.knapsack")
        assert all(line.rstrip().endswith("ms") for line in lines)
