"""Tests for the structured event log: emission, correlation ids, ring
eviction, JSONL round-trips, and byte-identical seeded chaos runs."""

import json

import pytest

from repro.obs import names
from repro.obs.events import (
    ALL_EVENT_KINDS,
    DEFAULT_CAPACITY,
    EVENTS_SCHEMA,
    SEMB_REPORT,
    SOLVE_SERVED,
    TMMBR_PUSH,
    Event,
    EventLog,
    active_event_log,
    correlation_scope,
    current_correlation,
    record_events,
    set_event_log,
)
from repro.obs.registry import enabled_registry


class TestEventEncoding:
    def test_to_dict_sorts_attrs_and_rounds_time(self):
        event = Event(
            t=1.23456789, seq=3, kind=SEMB_REPORT, meeting="m", cid="m#1",
            shard="s0", attrs={"zeta": 1, "alpha": "x"},
        )
        row = event.to_dict()
        assert row["record"] == "event"
        assert row["t"] == 1.234568
        assert list(row["attrs"]) == ["alpha", "zeta"]

    def test_round_trip(self):
        event = Event(
            t=2.5, seq=0, kind=TMMBR_PUSH, meeting="m", cid="m#2",
            shard="s1", attrs={"publishers": 4},
        )
        again = Event.from_dict(json.loads(json.dumps(event.to_dict())))
        assert again == event


class TestEventLog:
    def test_emit_assigns_monotonic_seq(self):
        log = EventLog()
        first = log.emit(SEMB_REPORT, t=1.0, meeting="m")
        second = log.emit(SOLVE_SERVED, t=1.0, meeting="m")
        assert (first.seq, second.seq) == (0, 1)
        assert log.emitted == 2

    def test_mint_is_per_meeting_and_deterministic(self):
        log = EventLog()
        assert log.mint("a") == "a#1"
        assert log.mint("b") == "b#1"
        assert log.mint("a") == "a#2"

    def test_ring_eviction_counts_dropped(self):
        log = EventLog(capacity=2)
        for k in range(5):
            log.emit(SEMB_REPORT, t=float(k))
        assert len(log) == 2
        assert log.dropped == 3
        assert log.emitted == 5
        assert [e.t for e in log.events] == [3.0, 4.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_for_meeting_and_kinds(self):
        log = EventLog()
        log.emit(SEMB_REPORT, t=1.0, meeting="a")
        log.emit(SEMB_REPORT, t=2.0, meeting="b")
        log.emit(SOLVE_SERVED, t=3.0, meeting="a")
        assert [e.t for e in log.for_meeting("a")] == [1.0, 3.0]
        assert log.kinds() == {SEMB_REPORT: 2, SOLVE_SERVED: 1}

    def test_metrics_recorded_when_registry_enabled(self):
        log = EventLog(capacity=1)
        with enabled_registry() as reg:
            log.emit(SEMB_REPORT, t=1.0)
            log.emit(SOLVE_SERVED, t=2.0)  # evicts the first
            snap = reg.snapshot()["counters"]
        emitted = {
            key: value for key, value in snap.items()
            if key.startswith(names.EVENTS_EMITTED)
        }
        assert sum(emitted.values()) == 2
        assert snap[names.EVENTS_DROPPED] == 1


class TestJsonlRoundTrip:
    def _sample(self) -> EventLog:
        log = EventLog()
        cid = log.mint("m")
        log.emit(SEMB_REPORT, t=1.0, meeting="m", cid=cid, shard="s0",
                 trigger="event")
        log.emit(SOLVE_SERVED, t=1.5, meeting="m", cid=cid, shard="s0",
                 source="solve", iterations=3)
        log.emit(TMMBR_PUSH, t=1.5, meeting="m", cid=cid, publishers=2)
        return log

    def test_header_carries_schema(self):
        header = self._sample().header_dict()
        assert header["record"] == "meta"
        assert header["schema"] == EVENTS_SCHEMA
        assert header["events"] == 3

    def test_round_trip_is_byte_identical(self):
        log = self._sample()
        again = EventLog.from_jsonl_lines(log.to_jsonl_lines())
        assert again.to_jsonl() == log.to_jsonl()
        assert again.digest() == log.digest()
        assert again.emitted == log.emitted

    def test_read_write_file(self, tmp_path):
        log = self._sample()
        path = log.write_jsonl(tmp_path / "events.jsonl")
        again = EventLog.read_jsonl(path)
        assert again.to_jsonl() == log.to_jsonl()

    def test_rejects_unknown_schema(self):
        line = json.dumps({"record": "meta", "schema": "bogus/v9"})
        with pytest.raises(ValueError):
            EventLog.from_jsonl_lines([line])

    def test_digest_changes_with_content(self):
        log = self._sample()
        other = self._sample()
        other.emit(SOLVE_SERVED, t=9.0, meeting="m")
        assert log.digest() != other.digest()


class TestSlot:
    def test_off_by_default(self):
        assert active_event_log() is None

    def test_record_events_installs_and_restores(self):
        with record_events() as log:
            assert active_event_log() is log
        assert active_event_log() is None

    def test_record_events_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with record_events():
                raise RuntimeError("boom")
        assert active_event_log() is None

    def test_nested_logs_restore_previous(self):
        with record_events() as outer:
            with record_events() as inner:
                assert active_event_log() is inner
            assert active_event_log() is outer

    def test_set_event_log_explicit(self):
        log = EventLog()
        set_event_log(log)
        try:
            assert active_event_log() is log
        finally:
            set_event_log(None)
        assert active_event_log() is None

    def test_default_capacity(self):
        with record_events() as log:
            assert log.capacity == DEFAULT_CAPACITY


class TestCorrelationScope:
    def test_empty_by_default(self):
        assert current_correlation() == ""

    def test_scope_binds_and_restores(self):
        with correlation_scope("m#1"):
            assert current_correlation() == "m#1"
            with correlation_scope("m#2"):
                assert current_correlation() == "m#2"
            assert current_correlation() == "m#1"
        assert current_correlation() == ""


class TestVocabulary:
    def test_kinds_are_unique(self):
        assert len(set(ALL_EVENT_KINDS)) == len(ALL_EVENT_KINDS)

    def test_kinds_are_snake_case(self):
        for kind in ALL_EVENT_KINDS:
            assert kind == kind.lower()
            assert " " not in kind


class TestSeededDeterminism:
    """Two same-seed chaos runs must produce byte-identical event logs."""

    def test_same_seed_byte_identical(self):
        from repro.chaos import ChaosConfig, run_scenario

        config = ChaosConfig(seed=5, meetings=3, duration_s=6.0)
        logs = []
        for _ in range(2):
            report = run_scenario("bandwidth_collapse", 5, config)
            assert report.event_digest
            logs.append(report.event_digest)
        assert logs[0] == logs[1]
