"""Tests for the metrics registry: instruments, snapshot, merge, export."""

import json
import math
import time

import pytest

from repro.obs.registry import (
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable,
    enable,
    enabled_registry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("repro_x_total") is reg.counter("repro_x_total")

    def test_labels_split_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_msgs_total", kind="semb")
        b = reg.counter("repro_msgs_total", kind="tmmbr")
        a.inc()
        assert a is not b
        assert b.value == 0

    def test_label_order_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_t_total", x="1", y="2")
        b = reg.counter("repro_t_total", y="2", x="1")
        assert a is b

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_t_total").inc(-1)

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name!")

    def test_rejects_bad_label_name(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_ok_total", **{"bad-label": "x"})


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricsRegistry().gauge("repro_g")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == pytest.approx(11.5)


class TestHistogram:
    def test_empty_percentile_is_nan(self):
        h = MetricsRegistry().histogram("repro_h")
        assert math.isnan(h.percentile(50))
        assert math.isnan(h.mean)

    def test_single_observation(self):
        h = MetricsRegistry().histogram("repro_h")
        h.observe(7.0)
        assert h.percentile(0) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(100) == 7.0
        assert h.count == 1 and h.sum == 7.0
        assert h.min == 7.0 and h.max == 7.0

    def test_percentile_interpolates(self):
        h = MetricsRegistry().histogram("repro_h")
        for v in (0.0, 10.0):
            h.observe(v)
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(90) == pytest.approx(9.0)

    def test_percentile_range_checked(self):
        h = MetricsRegistry().histogram("repro_h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_exact_stats_unaffected_by_reservoir_bound(self):
        reg = MetricsRegistry(reservoir_size=8)
        h = reg.histogram("repro_h")
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert h.sum == sum(range(1000))
        assert h.min == 0.0 and h.max == 999.0
        assert len(h.reservoir) <= 8

    def test_reservoir_stays_evenly_spaced(self):
        reg = MetricsRegistry(reservoir_size=8)
        h = reg.histogram("repro_h")
        for v in range(100):
            h.observe(float(v))
        res = h.reservoir
        gaps = [b - a for a, b in zip(res, res[1:])]
        assert len(set(gaps)) == 1  # evenly spaced subsample

    def test_deterministic(self):
        def fill():
            h = Histogram(("repro_h", ()), reservoir_size=16)
            for v in range(500):
                h.observe(v * 0.5)
            return h.reservoir, h.percentile(90)

        assert fill() == fill()

    def test_bounded_percentile_tracks_distribution(self):
        reg = MetricsRegistry(reservoir_size=64)
        h = reg.histogram("repro_h")
        for v in range(10000):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(5000, rel=0.1)
        assert h.percentile(99) == pytest.approx(9900, rel=0.1)


class TestSnapshotAndExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("repro_events_total", kind="a").inc(3)
        reg.gauge("repro_level").set(1.5)
        h = reg.histogram("repro_latency_seconds")
        h.observe(0.1)
        h.observe(0.3)
        return reg

    def test_snapshot_shape(self):
        snap = self._populated().snapshot()
        assert snap["counters"]['repro_events_total{kind="a"}'] == 3
        assert snap["gauges"]["repro_level"] == 1.5
        hist = snap["histograms"]["repro_latency_seconds"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.4)
        assert hist["p50"] == pytest.approx(0.2)

    def test_metric_names(self):
        assert self._populated().metric_names() == [
            "repro_events_total",
            "repro_latency_seconds",
            "repro_level",
        ]

    def test_prometheus_text(self):
        text = self._populated().to_prometheus_text()
        assert "# TYPE repro_events_total counter" in text
        assert 'repro_events_total{kind="a"} 3' in text
        assert "# TYPE repro_level gauge" in text
        assert "# TYPE repro_latency_seconds summary" in text
        assert "repro_latency_seconds_count 2" in text
        assert 'quantile="0.5"' in text
        assert text.endswith("\n")

    def test_json_round_trips(self):
        parsed = json.loads(self._populated().to_json())
        assert parsed["gauges"]["repro_level"] == 1.5

    def test_reset(self):
        reg = self._populated()
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestMerge:
    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_c_total").inc(2)
        b.counter("repro_c_total").inc(5)
        a.histogram("repro_h").observe(1.0)
        b.histogram("repro_h").observe(3.0)
        b.gauge("repro_g").set(9)
        a.merge(b)
        assert a.counter("repro_c_total").value == 7
        h = a.histogram("repro_h")
        assert h.count == 2 and h.sum == 4.0
        assert h.min == 1.0 and h.max == 3.0
        assert a.gauge("repro_g").value == 9

    def test_merge_rebounds_reservoir(self):
        a = MetricsRegistry(reservoir_size=4)
        b = MetricsRegistry(reservoir_size=4)
        for v in range(10):
            a.histogram("repro_h").observe(float(v))
            b.histogram("repro_h").observe(float(v + 100))
        a.merge(b)
        assert len(a.histogram("repro_h").reservoir) <= 4
        assert a.histogram("repro_h").count == 20


class TestNullRegistryAndGlobalState:
    def test_default_registry_is_disabled(self):
        assert isinstance(get_registry(), (NullRegistry, MetricsRegistry))

    def test_null_registry_records_nothing(self):
        reg = NullRegistry()
        reg.counter("repro_c_total").inc()
        reg.gauge("repro_g").set(5)
        reg.histogram("repro_h").observe(1.0)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
        assert not reg.enabled

    def test_null_instruments_shared(self):
        reg = NullRegistry()
        assert reg.counter("repro_a_total") is reg.counter("repro_b_total")

    def test_enable_disable_cycle(self):
        previous = get_registry()
        try:
            reg = enable()
            assert reg.enabled and get_registry() is reg
            assert enable() is reg  # idempotent
            disable()
            assert not get_registry().enabled
        finally:
            set_registry(previous)

    def test_enabled_registry_restores(self):
        previous = get_registry()
        with enabled_registry() as reg:
            assert get_registry() is reg
            assert reg.enabled
        assert get_registry() is previous

    def test_enabled_registry_restores_on_error(self):
        previous = get_registry()
        with pytest.raises(RuntimeError):
            with enabled_registry():
                raise RuntimeError("boom")
        assert get_registry() is previous

    def test_noop_mode_overhead_smoke(self):
        """Disabled instruments must be no-op cheap: 100k counter incs,
        histogram observes and gauge sets in well under a second."""
        reg = NullRegistry()
        counter = reg.counter("repro_smoke_total")
        hist = reg.histogram("repro_smoke")
        gauge = reg.gauge("repro_smoke_g")
        start = time.perf_counter()
        for _ in range(100_000):
            counter.inc()
            hist.observe(1.0)
            gauge.set(1.0)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"no-op instruments too slow: {elapsed:.3f}s"
