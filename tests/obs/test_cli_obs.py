"""Tests for the ``repro obs`` CLI subcommands."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import names
from repro.obs.registry import get_registry
from repro.obs.trace import active_collector


class TestParser:
    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_solve_defaults(self):
        args = build_parser().parse_args(["obs", "solve", "A:1:2", "B:3:4"])
        assert args.format == "prom"
        assert args.metrics_out is None
        assert args.trace_out is None

    def test_obs_solve_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["obs", "solve", "A:1:2", "B:3:4", "--format", "xml"]
            )


class TestObsSolve:
    def test_prints_all_sections(self, capsys):
        rc = main(["obs", "solve", "A:500:3000", "B:5000:3000", "C:5000:3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "publishes" in out
        assert "span timings" in out
        assert "kmr.solve" in out
        assert "kmr trace" in out
        assert '"record": "solve"' in out
        assert "repro_kmr_solves_total 1" in out

    def test_instrumentation_restored_afterwards(self, capsys):
        main(["obs", "solve", "A:500:3000", "B:5000:3000"])
        assert not get_registry().enabled
        assert active_collector() is None

    def test_json_format(self, capsys):
        rc = main(
            ["obs", "solve", "A:500:3000", "B:5000:3000", "--format", "json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"counters"' in out

    def test_writes_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "obs", "solve", "A:500:3000", "B:5000:3000", "C:5000:3000",
                "--metrics-out", str(metrics), "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        assert names.KMR_SOLVES in metrics.read_text()
        rows = [json.loads(l) for l in trace.read_text().splitlines()]
        assert rows[0]["record"] == "solve"
        assert rows[-1]["record"] == "result"

    def test_rejects_single_client(self, capsys):
        assert main(["obs", "solve", "A:500:3000"]) == 2


class TestObsExample:
    def test_missing_example_errors(self, capsys):
        rc = main(["obs", "example", "no_such_example"])
        assert rc == 2
        assert "no_such_example" in capsys.readouterr().err

    def test_runs_script_under_instrumentation(self, tmp_path, capsys):
        # A miniature "example": one KMR solve, written as a script so the
        # test exercises the same runpy path as examples/*.py.
        script = tmp_path / "tiny_meeting.py"
        script.write_text(
            "from repro.core import (Bandwidth, GsoSolver, ProblemBuilder,\n"
            "                        Resolution, paper_ladder)\n"
            "b = ProblemBuilder()\n"
            "b.add_client('A', Bandwidth(500, 3000), paper_ladder())\n"
            "b.add_client('B', Bandwidth(5000, 3000), paper_ladder())\n"
            "b.subscribe('A', 'B', Resolution.P360)\n"
            "b.subscribe('B', 'A', Resolution.P720)\n"
            "print(GsoSolver().solve(b.build()).summary())\n"
        )
        rc = main(["obs", "example", str(script)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmr trace" in out
        assert "repro_kmr_solves_total 1" in out
        assert not get_registry().enabled


class TestObsNames:
    def test_lists_every_metric_and_span(self, capsys):
        rc = main(["obs", "names"])
        assert rc == 0
        out = capsys.readouterr().out
        for metric in names.ALL_METRICS:
            assert metric in out
        for span_name in names.ALL_SPANS:
            assert span_name in out
