"""Tests for the ``repro obs`` CLI subcommands."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import names
from repro.obs.registry import get_registry
from repro.obs.trace import active_collector


class TestParser:
    def test_obs_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_solve_defaults(self):
        args = build_parser().parse_args(["obs", "solve", "A:1:2", "B:3:4"])
        assert args.format == "prom"
        assert args.metrics_out is None
        assert args.trace_out is None

    def test_obs_solve_format_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["obs", "solve", "A:1:2", "B:3:4", "--format", "xml"]
            )


class TestObsSolve:
    def test_prints_all_sections(self, capsys):
        rc = main(["obs", "solve", "A:500:3000", "B:5000:3000", "C:5000:3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "publishes" in out
        assert "span timings" in out
        assert "kmr.solve" in out
        assert "kmr trace" in out
        assert '"record": "solve"' in out
        assert "repro_kmr_solves_total 1" in out

    def test_instrumentation_restored_afterwards(self, capsys):
        main(["obs", "solve", "A:500:3000", "B:5000:3000"])
        assert not get_registry().enabled
        assert active_collector() is None

    def test_json_format(self, capsys):
        rc = main(
            ["obs", "solve", "A:500:3000", "B:5000:3000", "--format", "json"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"counters"' in out

    def test_writes_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.jsonl"
        rc = main(
            [
                "obs", "solve", "A:500:3000", "B:5000:3000", "C:5000:3000",
                "--metrics-out", str(metrics), "--trace-out", str(trace),
            ]
        )
        assert rc == 0
        assert names.KMR_SOLVES in metrics.read_text()
        rows = [json.loads(l) for l in trace.read_text().splitlines()]
        assert rows[0]["record"] == "solve"
        assert rows[-1]["record"] == "result"

    def test_rejects_single_client(self, capsys):
        assert main(["obs", "solve", "A:500:3000"]) == 2


class TestObsExample:
    def test_missing_example_errors(self, capsys):
        rc = main(["obs", "example", "no_such_example"])
        assert rc == 2
        assert "no_such_example" in capsys.readouterr().err

    def test_runs_script_under_instrumentation(self, tmp_path, capsys):
        # A miniature "example": one KMR solve, written as a script so the
        # test exercises the same runpy path as examples/*.py.
        script = tmp_path / "tiny_meeting.py"
        script.write_text(
            "from repro.core import (Bandwidth, GsoSolver, ProblemBuilder,\n"
            "                        Resolution, paper_ladder)\n"
            "b = ProblemBuilder()\n"
            "b.add_client('A', Bandwidth(500, 3000), paper_ladder())\n"
            "b.add_client('B', Bandwidth(5000, 3000), paper_ladder())\n"
            "b.subscribe('A', 'B', Resolution.P360)\n"
            "b.subscribe('B', 'A', Resolution.P720)\n"
            "print(GsoSolver().solve(b.build()).summary())\n"
        )
        rc = main(["obs", "example", str(script)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmr trace" in out
        assert "repro_kmr_solves_total 1" in out
        assert not get_registry().enabled


class TestObsNames:
    def test_lists_every_metric_and_span(self, capsys):
        rc = main(["obs", "names"])
        assert rc == 0
        out = capsys.readouterr().out
        for metric in names.ALL_METRICS:
            assert metric in out
        for span_name in names.ALL_SPANS:
            assert span_name in out


CHAOS_ARGS = ["--meetings", "3", "--duration", "6"]


class TestObsReport:
    def test_text_report_sections(self, capsys):
        rc = main(["obs", "report", "--seed", "1"] + CHAOS_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "slo verdicts:" in out
        assert "kmr_iteration_bound" in out
        assert "events: emitted=" in out
        assert "timeseries:" in out

    def test_json_report_payload(self, capsys):
        rc = main(["obs", "report", "--json", "--seed", "1"] + CHAOS_ARGS)
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "bandwidth_collapse"
        assert payload["slo_ok"] is True
        assert payload["events"]["emitted"] > 0
        assert payload["chaos"]["ok"] is True
        assert payload["timeseries"]["points_recorded"] > 0

    def test_events_out_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "events.jsonl"
        rc = main(
            ["obs", "report", "--events-out", str(target), "--seed", "2"]
            + CHAOS_ARGS
        )
        assert rc == 0
        from repro.obs import EventLog

        log = EventLog.read_jsonl(target)
        assert len(log) > 0

    def test_unknown_scenario_errors(self, capsys):
        rc = main(["obs", "report", "--scenario", "bogus"])
        assert rc == 2
        assert "bogus" in capsys.readouterr().err

    def test_instrumentation_restored(self, capsys):
        main(["obs", "report", "--seed", "1"] + CHAOS_ARGS)
        assert not get_registry().enabled


class TestObsTimeline:
    def test_timeline_reconstructs_causal_chain(self, capsys):
        rc = main(["obs", "timeline", "chaos-0", "--seed", "1"] + CHAOS_ARGS)
        assert rc == 0
        out = capsys.readouterr().out
        assert "semb_report" in out
        assert "solve_served" in out
        assert "tmmbr_push" in out
        assert "[chaos-0#1]" in out

    def test_timeline_json(self, capsys):
        rc = main(
            ["obs", "timeline", "chaos-0", "--json", "--seed", "1"]
            + CHAOS_ARGS
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meeting"] == "chaos-0"
        assert payload["chains"]
        assert payload["chains"][0]["kinds"][0] == "semb_report"

    def test_timeline_from_events_file(self, tmp_path, capsys):
        target = tmp_path / "events.jsonl"
        main(
            ["obs", "report", "--events-out", str(target), "--seed", "1"]
            + CHAOS_ARGS
        )
        capsys.readouterr()
        rc = main(
            ["obs", "timeline", "chaos-1", "--events", str(target)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos-1" in out
        assert "semb_report" in out

    def test_unknown_meeting_prints_no_events(self, capsys):
        rc = main(["obs", "timeline", "ghost", "--seed", "1"] + CHAOS_ARGS)
        assert rc == 0
        assert "no events" in capsys.readouterr().out

    def test_unreadable_events_file_errors_cleanly(self, tmp_path, capsys):
        rc = main(
            ["obs", "timeline", "m", "--events", str(tmp_path / "nope")]
        )
        assert rc == 2
        assert "cannot read" in capsys.readouterr().err

    def test_bad_schema_events_file_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record":"meta","schema":"bogus/v9"}\n')
        rc = main(["obs", "timeline", "m", "--events", str(bad)])
        assert rc == 2
        assert "unsupported event schema" in capsys.readouterr().err
