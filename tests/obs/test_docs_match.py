"""The operator guide and the instrumentation must not drift apart.

``docs/OBSERVABILITY.md`` promises that every metric and span name it
documents is exactly what the registry emits.  These tests enforce both
directions: every canonical name (``repro.obs.names``) appears verbatim
in the guide, and everything a fully-instrumented end-to-end run emits is
a canonical name.
"""

import re
from pathlib import Path

import pytest

from repro.obs import names
from repro.obs.registry import enabled_registry

DOCS = Path(__file__).resolve().parents[2] / "docs" / "OBSERVABILITY.md"


@pytest.fixture(scope="module")
def guide_text():
    assert DOCS.is_file(), f"operator guide missing: {DOCS}"
    return DOCS.read_text()


class TestDocsCoverNames:
    def test_every_metric_documented(self, guide_text):
        missing = [m for m in names.ALL_METRICS if m not in guide_text]
        assert not missing, f"metrics absent from docs/OBSERVABILITY.md: {missing}"

    def test_every_span_documented(self, guide_text):
        missing = [s for s in names.ALL_SPANS if s not in guide_text]
        assert not missing, f"spans absent from docs/OBSERVABILITY.md: {missing}"

    def test_every_label_documented(self, guide_text):
        for metric, (_, labels) in names.ALL_METRICS.items():
            for label in labels:
                # The label must be named in the guide (tables write them
                # as `label` ∈ {...} or a bare column entry).
                assert re.search(rf"\b{label}\b", guide_text), (
                    f"label {label!r} of {metric} not documented"
                )

    def test_docs_name_no_unknown_repro_metrics(self, guide_text):
        """Any repro_* token the guide mentions must be canonical (or a
        summary-derived _sum/_count series of a canonical histogram)."""
        mentioned = set(re.findall(r"\brepro_[a-z0-9_]+\b", guide_text))
        derived = {
            base + suffix
            for base, (kind, _) in names.ALL_METRICS.items()
            if kind == "histogram"
            for suffix in ("_sum", "_count")
        }
        unknown = mentioned - set(names.ALL_METRICS) - derived
        assert not unknown, f"docs mention unknown metrics: {sorted(unknown)}"


class TestNamesRegistryConsistency:
    def test_counters_end_in_total(self):
        for metric, (kind, _) in names.ALL_METRICS.items():
            if kind == "counter":
                assert metric.endswith("_total"), metric
            else:
                assert not metric.endswith("_total"), metric

    def test_all_metrics_namespaced(self):
        for metric in names.ALL_METRICS:
            assert metric.startswith("repro_"), metric

    def test_registry_accepts_every_canonical_series(self):
        """Every documented (name, labels) combination is a valid series."""
        with enabled_registry() as reg:
            for metric, (kind, labels) in names.ALL_METRICS.items():
                labelset = {label: "x" for label in labels}
                if kind == "counter":
                    reg.counter(metric, **labelset).inc()
                elif kind == "gauge":
                    reg.gauge(metric, **labelset).set(1.0)
                else:
                    reg.histogram(metric, **labelset).observe(1.0)
            assert set(reg.metric_names()) == set(names.ALL_METRICS)


class TestEmittedNamesAreCanonical:
    def test_end_to_end_emission_subset_of_canonical(self):
        """Drive the solver + controller surface and check everything the
        registry saw is in ALL_METRICS."""
        from repro.core import (
            Bandwidth,
            GsoSolver,
            ProblemBuilder,
            Resolution,
            paper_ladder,
        )
        from repro.obs import collect_traces

        b = ProblemBuilder()
        ladder = paper_ladder()
        b.add_client("A", Bandwidth(500, 3000), ladder)
        b.add_client("B", Bandwidth(5000, 3000), ladder)
        b.subscribe("A", "B", Resolution.P360)
        b.subscribe("B", "A", Resolution.P720)
        with enabled_registry() as reg, collect_traces():
            GsoSolver().solve(b.build())
        emitted = set(reg.metric_names())
        assert emitted  # the run actually recorded something
        unknown = emitted - set(names.ALL_METRICS)
        assert not unknown, f"uncatalogued metrics emitted: {sorted(unknown)}"

    def test_emitted_spans_are_canonical(self):
        from repro.core import (
            Bandwidth,
            GsoSolver,
            ProblemBuilder,
            Resolution,
            paper_ladder,
        )

        b = ProblemBuilder()
        ladder = paper_ladder()
        b.add_client("A", Bandwidth(5000, 3000), ladder)
        b.add_client("B", Bandwidth(5000, 3000), ladder)
        b.subscribe("A", "B", Resolution.P360)
        b.subscribe("B", "A", Resolution.P720)
        with enabled_registry() as reg:
            GsoSolver().solve(b.build())
        snap = reg.snapshot()
        seen_spans = {
            m.group(1)
            for key in snap["histograms"]
            for m in [re.search(r'span="([^"]+)"', key)]
            if m
        }
        assert seen_spans  # spans were recorded
        assert seen_spans <= set(names.ALL_SPANS)


class TestTelemetryNamesCovered:
    """The telemetry pipeline's names are canonical and documented."""

    TELEMETRY_METRICS = (
        names.EVENTS_EMITTED,
        names.EVENTS_DROPPED,
        names.TIMESERIES_POINTS,
        names.TIMESERIES_SERIES,
        names.SLO_EVALUATIONS,
        names.SLO_BREACHES,
    )

    def test_telemetry_metrics_are_canonical(self):
        registered = {
            m
            for m in names.ALL_METRICS
            if m.startswith(("repro_events_", "repro_timeseries_",
                             "repro_slo_"))
        }
        assert registered == set(self.TELEMETRY_METRICS)

    def test_telemetry_spans_are_canonical(self):
        assert {names.SPAN_POOL_SOLVE, names.SPAN_SLO_EVALUATE} <= set(
            names.ALL_SPANS
        )

    def test_telemetry_metrics_documented(self, guide_text):
        for metric in self.TELEMETRY_METRICS:
            assert metric in guide_text, metric
        for span in (names.SPAN_POOL_SOLVE, names.SPAN_SLO_EVALUATE):
            assert span in guide_text, span

    def test_event_vocabulary_documented(self, guide_text):
        from repro.obs.events import ALL_EVENT_KINDS, EVENTS_SCHEMA

        assert EVENTS_SCHEMA in guide_text
        for kind in ALL_EVENT_KINDS:
            assert re.search(rf"\b{kind}\b", guide_text), (
                f"event kind {kind!r} not documented"
            )

    def test_slo_catalog_documented(self, guide_text):
        from repro.obs.slo import DEFAULT_SLOS

        for slo in DEFAULT_SLOS:
            assert re.search(rf"\b{slo.name}\b", guide_text), (
                f"SLO {slo.name!r} not documented"
            )

    def test_telemetry_run_emits_only_canonical_names(self):
        from repro.chaos import ChaosConfig, run_scenario
        from repro.obs.events import record_events
        from repro.obs.timeseries import TimeSeriesStore, record_timeseries

        store = TimeSeriesStore()
        with enabled_registry() as reg, record_events(), \
                record_timeseries(store):
            run_scenario(
                "bandwidth_collapse",
                seed=1,
                config=ChaosConfig(seed=1, meetings=2, duration_s=4.0),
            )
            emitted = set(reg.metric_names())
        assert {
            names.EVENTS_EMITTED,
            names.SLO_EVALUATIONS,
        } <= emitted
        assert emitted <= set(names.ALL_METRICS)


class TestChaosNamesCovered:
    """The chaos subsystem's names are canonical and documented."""

    CHAOS_METRICS = (
        names.CHAOS_FAULTS,
        names.CHAOS_CHECKS,
        names.CHAOS_VIOLATIONS,
        names.CHAOS_RUNS,
        names.CHAOS_RECOVERY_TICKS,
    )

    def test_chaos_metrics_are_canonical(self):
        registered = {
            m for m in names.ALL_METRICS if m.startswith("repro_chaos_")
        }
        assert registered == set(self.CHAOS_METRICS)

    def test_chaos_spans_are_canonical(self):
        assert {names.SPAN_CHAOS_RUN, names.SPAN_CHAOS_TICK} <= set(
            names.ALL_SPANS
        )

    def test_chaos_metrics_documented(self, guide_text):
        for metric in self.CHAOS_METRICS:
            assert metric in guide_text, metric
        for span in (names.SPAN_CHAOS_RUN, names.SPAN_CHAOS_TICK):
            assert span in guide_text, span

    def test_chaos_run_emits_only_canonical_names(self):
        from repro.chaos import ChaosConfig, run_scenario

        with enabled_registry() as reg:
            run_scenario(
                "unfixable",
                seed=1,
                config=ChaosConfig(seed=1, meetings=2, duration_s=4.0),
            )
            emitted = set(reg.metric_names())
        assert {
            names.CHAOS_FAULTS,
            names.CHAOS_CHECKS,
            names.CHAOS_RUNS,
        } <= emitted
        assert emitted <= set(names.ALL_METRICS)
