"""Tests for the SLO engine: the paper-pinned catalog, measure dispatch,
and burn-rate verdict semantics."""

import pytest

from repro.obs import names
from repro.obs.registry import MetricsRegistry, enabled_registry
from repro.obs.slo import (
    DEFAULT_SLOS,
    Slo,
    SloContext,
    SloEngine,
    SloVerdict,
    default_slos,
)


def serve(t, meeting="m", source="solve", delivered=True):
    return {"t": t, "meeting": meeting, "source": source,
            "delivered": delivered}


class TestCatalog:
    def test_default_catalog_names(self):
        assert [s.name for s in DEFAULT_SLOS] == [
            "solve_latency_p95",
            "kmr_iteration_bound",
            "degraded_serve_rate",
            "stream_interruption_s",
        ]

    def test_only_solve_latency_is_wall_clock(self):
        wall = [s.name for s in DEFAULT_SLOS if not s.deterministic]
        assert wall == ["solve_latency_p95"]

    def test_every_objective_cites_the_paper(self):
        for slo in DEFAULT_SLOS:
            assert slo.paper_ref, slo.name

    def test_default_slos_overrides(self):
        catalog = default_slos(stream_interruption_s=10.0)
        by_name = {s.name: s for s in catalog}
        assert by_name["stream_interruption_s"].threshold == 10.0
        assert by_name["degraded_serve_rate"].threshold == 0.5

    def test_default_slos_rejects_unknown_names(self):
        with pytest.raises(ValueError):
            default_slos(nonsense=1.0)

    def test_comparator_validated(self):
        with pytest.raises(ValueError):
            Slo(name="x", description="", measure="stat:k",
                threshold=1.0, comparator="<")


class TestMeasures:
    def test_degraded_fraction(self):
        ctx = SloContext(
            serves=[serve(1.0), serve(2.0, source="fallback"),
                    serve(3.0, source="shed"), serve(4.0)],
            duration_s=5.0,
        )
        engine = SloEngine([s for s in DEFAULT_SLOS
                            if s.name == "degraded_serve_rate"])
        verdict = engine.evaluate(ctx)[0]
        assert verdict.value == pytest.approx(0.5)
        assert verdict.ok

    def test_interruption_recovered(self):
        # Degraded at t=2, recovered at t=5 -> 3 s interruption.
        ctx = SloContext(
            serves=[serve(1.0), serve(2.0, source="fallback"),
                    serve(5.0)],
            duration_s=10.0,
        )
        engine = SloEngine([s for s in DEFAULT_SLOS
                            if s.name == "stream_interruption_s"])
        verdict = engine.evaluate(ctx)[0]
        assert verdict.value == pytest.approx(3.0)
        assert verdict.ok

    def test_interruption_unrecovered_charged_to_run_end(self):
        # Degraded at t=2, never recovers in a 10 s run -> 8 s.
        ctx = SloContext(
            serves=[serve(1.0), serve(2.0, source="fallback")],
            duration_s=10.0,
        )
        engine = SloEngine([s for s in DEFAULT_SLOS
                            if s.name == "stream_interruption_s"])
        verdict = engine.evaluate(ctx)[0]
        assert verdict.value == pytest.approx(8.0)
        assert not verdict.ok
        assert verdict.verdict_word() in ("FAIL", "BURN")

    def test_stat_measure(self):
        ctx = SloContext(stats={"kmr_iteration_ratio_max": 0.4},
                         duration_s=1.0)
        engine = SloEngine([s for s in DEFAULT_SLOS
                            if s.name == "kmr_iteration_bound"])
        verdict = engine.evaluate(ctx)[0]
        assert verdict.value == pytest.approx(0.4)
        assert verdict.ok

    def test_histogram_measure_from_registry(self):
        reg = MetricsRegistry()
        h = reg.histogram(names.CLUSTER_SOLVE_SECONDS, shard="s0")
        for v in (0.01, 0.02, 0.9):
            h.observe(v)
        ctx = SloContext(registry=reg, duration_s=1.0)
        engine = SloEngine([s for s in DEFAULT_SLOS
                            if s.name == "solve_latency_p95"])
        verdict = engine.evaluate(ctx)[0]
        # The registry histogram interpolates within its buckets, so the
        # p95 lands near (not exactly on) the 0.9 s outlier.
        assert verdict.value is not None
        assert 0.25 < verdict.value <= 0.9
        assert not verdict.ok

    def test_missing_inputs_yield_skip(self):
        verdicts = SloEngine().evaluate(SloContext(duration_s=1.0))
        assert all(v.value is None for v in verdicts)
        assert all(v.ok for v in verdicts)  # vacuously true
        assert all(v.verdict_word() == "SKIP" for v in verdicts)

    def test_unknown_measure_raises(self):
        engine = SloEngine([Slo(name="x", description="",
                                measure="bogus", threshold=1.0)])
        with pytest.raises(ValueError):
            engine.evaluate(SloContext(duration_s=1.0))


class TestBurnRate:
    def _engine(self):
        return SloEngine([s for s in DEFAULT_SLOS
                          if s.name == "degraded_serve_rate"])

    def test_transient_breach_is_fail_not_burn(self):
        # Early fallback storm, healthy tail: full window breaches but
        # the trailing 25 % window is clean.
        serves = [serve(t, source="fallback")
                  for t in (1.0, 2.0, 3.0, 4.0)]
        serves += [serve(t) for t in (8.0, 9.0, 9.5)]
        ctx = SloContext(serves=serves, duration_s=10.0)
        verdict = self._engine().evaluate(ctx)[0]
        assert not verdict.ok
        assert not verdict.fast_burn
        assert verdict.verdict_word() == "FAIL"

    def test_ongoing_breach_is_burn(self):
        serves = [serve(t, source="fallback")
                  for t in (1.0, 3.0, 8.0, 9.0, 9.5)]
        ctx = SloContext(serves=serves, duration_s=10.0)
        verdict = self._engine().evaluate(ctx)[0]
        assert not verdict.ok
        assert verdict.fast_burn
        assert verdict.verdict_word() == "BURN"
        assert verdict.windows["recent"] == pytest.approx(1.0)

    def test_recent_fraction_validated(self):
        with pytest.raises(ValueError):
            SloEngine(recent_fraction=0.0)


class TestVerdictEncoding:
    def test_to_dict_rounds_and_keeps_flags(self):
        verdict = SloVerdict(
            name="x", description="", measure="stat:k", threshold=1.0,
            comparator="<=", unit="ratio", deterministic=True,
            paper_ref="", value=0.1234567, recent_value=None, ok=True,
            fast_burn=False,
        )
        row = verdict.to_dict()
        assert row["value"] == 0.123457
        assert row["recent_value"] is None
        assert row["deterministic"] is True

    def test_engine_records_evaluation_metrics(self):
        with enabled_registry() as reg:
            SloEngine().evaluate(SloContext(
                serves=[serve(1.0, source="shed")], duration_s=1.0,
            ))
            snap = reg.snapshot()["counters"]
        evaluated = [k for k in snap if k.startswith(names.SLO_EVALUATIONS)]
        assert len(evaluated) == len(DEFAULT_SLOS)
        breached = [k for k in snap if k.startswith(names.SLO_BREACHES)]
        assert any("degraded_serve_rate" in k for k in breached)
