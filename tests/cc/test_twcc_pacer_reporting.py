"""Unit tests for TWCC bookkeeping, the pacer, and report scheduling."""

import pytest

from repro.cc.pacer import Pacer, PacerConfig
from repro.cc.reporting import ReportScheduler, ReportSchedulerConfig
from repro.cc.twcc import TwccReceiver, TwccSender
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.rtp.rtcp import TwccFeedback


class TestTwccSender:
    def test_sequences_increase(self):
        tx = TwccSender()
        assert tx.register_send(100, 0.0) == 0
        assert tx.register_send(100, 0.1) == 1

    def test_feedback_matching(self):
        tx = TwccSender()
        s0 = tx.register_send(500, 0.0)
        s1 = tx.register_send(500, 0.01)
        fb = TwccFeedback(
            sender_ssrc=1,
            base_seq=s0,
            arrivals=((s0, 30_000), (s1, 45_000)),
        )
        samples = tx.on_feedback(fb)
        assert len(samples) == 2
        assert samples[0].send_time_s == 0.0
        assert samples[0].arrival_time_s == pytest.approx(0.030)
        assert tx.acked_reported == 2

    def test_lost_packets_counted(self):
        tx = TwccSender()
        s0 = tx.register_send(500, 0.0)
        s1 = tx.register_send(500, 0.01)
        fb = TwccFeedback(1, s0, ((s0, 30_000), (s1, -1)))
        samples = tx.on_feedback(fb)
        assert len(samples) == 1
        assert tx.lost_reported == 1
        assert tx.loss_fraction() == pytest.approx(0.5)

    def test_unknown_seq_ignored(self):
        tx = TwccSender()
        fb = TwccFeedback(1, 100, ((100, 30_000),))
        assert tx.on_feedback(fb) == []

    def test_history_bounded(self):
        tx = TwccSender(history_limit=100)
        for k in range(250):
            tx.register_send(100, k * 0.001)
        assert len(tx._history) <= 100 + 1

    def test_loss_fraction_zero_when_no_reports(self):
        assert TwccSender().loss_fraction() == 0.0


class TestTwccReceiver:
    def test_batches_arrivals(self):
        rx = TwccReceiver(sender_ssrc=7)
        rx.on_packet(0, 0.010)
        rx.on_packet(1, 0.020)
        fb = rx.build_feedback()
        assert fb is not None
        assert fb.sender_ssrc == 7
        assert fb.arrivals == ((0, 10_000), (1, 20_000))
        assert rx.build_feedback() is None  # drained

    def test_gaps_reported_as_losses(self):
        rx = TwccReceiver()
        rx.on_packet(0, 0.01)
        rx.on_packet(3, 0.02)  # 1 and 2 missing
        fb = rx.build_feedback()
        seqs = dict(fb.arrivals)
        assert seqs[1] == -1 and seqs[2] == -1
        assert seqs[3] == 20_000


class TestPacer:
    def make(self, target=1000, **cfg):
        self.sim = Simulator()
        self.sent = []
        pacer = Pacer(
            self.sim,
            send=self.sent.append,
            target_kbps=target,
            config=PacerConfig(**cfg) if cfg else None,
        )
        return pacer

    def pkt(self, size=1000):
        return Packet(payload=b"", size_bytes=size)

    def test_first_packet_sends_immediately(self):
        pacer = self.make()
        pacer.enqueue(self.pkt())
        self.sim.run_until(0.0)
        assert len(self.sent) == 1

    def test_pacing_spreads_packets(self):
        pacer = self.make(target=1000)  # paced at 1.5 Mbps
        for _ in range(4):
            pacer.enqueue(self.pkt(1000))  # 8000 bits each
        self.sim.run_until(0.001)
        early = len(self.sent)
        self.sim.run_until(1.0)
        assert early < 4
        assert len(self.sent) == 4

    def test_rate_change_affects_gap(self):
        pacer = self.make(target=1000)
        pacer.set_target_kbps(100)
        for _ in range(3):
            pacer.enqueue(self.pkt(1000))
        self.sim.run_until(0.01)
        assert len(self.sent) == 1  # 53 ms gaps at 150 kbps pace rate
        self.sim.run_until(1.0)
        assert len(self.sent) == 3

    def test_rejects_bad_rate(self):
        pacer = self.make()
        with pytest.raises(ValueError):
            pacer.set_target_kbps(0)

    def test_probe_cluster_sends_n_packets(self):
        pacer = self.make(probe_packets=5)
        launched = pacer.maybe_probe(
            1000, make_probe=lambda k: self.pkt(500)
        )
        assert launched
        self.sim.run_until(1.0)
        assert pacer.sent_probe_packets == 5

    def test_probe_redundancy_is_limited(self):
        pacer = self.make(probe_min_interval_s=5.0)
        assert pacer.maybe_probe(1000, lambda k: self.pkt())
        assert not pacer.maybe_probe(1000, lambda k: self.pkt())
        self.sim.run_until(6.0)
        assert pacer.maybe_probe(1000, lambda k: self.pkt())


class TestReportScheduler:
    def test_first_measurement_reports(self):
        sched = ReportScheduler()
        assert sched.should_report(0.0, 1000)

    def test_time_trigger(self):
        sched = ReportScheduler(ReportSchedulerConfig(period_s=1.0))
        sched.should_report(0.0, 1000)
        assert not sched.should_report(0.5, 1010)
        assert sched.should_report(1.1, 1010)

    def test_event_trigger_on_significant_change(self):
        sched = ReportScheduler(
            ReportSchedulerConfig(period_s=10.0, significant_change=0.10)
        )
        sched.should_report(0.0, 1000)
        assert not sched.should_report(0.5, 1050)  # +5%
        assert sched.should_report(0.6, 800)  # -20%

    def test_min_spacing_floor(self):
        sched = ReportScheduler(
            ReportSchedulerConfig(min_spacing_s=0.2, significant_change=0.01)
        )
        sched.should_report(0.0, 1000)
        assert not sched.should_report(0.1, 1)  # huge change but too soon

    def test_counters(self):
        sched = ReportScheduler()
        sched.should_report(0.0, 1000)
        sched.should_report(0.3, 1001)
        assert sched.reports_sent == 1
        assert sched.reports_suppressed == 1
        assert sched.last_reported_kbps == 1000

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ReportSchedulerConfig(period_s=0)
        with pytest.raises(ValueError):
            ReportSchedulerConfig(significant_change=0)
        with pytest.raises(ValueError):
            ReportSchedulerConfig(min_spacing_s=2.0, period_s=1.0)
