"""Unit tests for the GCC-like bandwidth estimator."""

import pytest

from repro.cc.gcc import (
    FeedbackSample,
    GccConfig,
    GccEstimator,
    TrendlineFilter,
)


def steady_samples(n, rate_kbps, start=0.0, size=1000, base_delay=0.02):
    """Packets sent and received at exactly rate_kbps: zero queue growth."""
    gap = size * 8.0 / (rate_kbps * 1000.0)
    return [
        FeedbackSample(
            send_time_s=start + k * gap,
            arrival_time_s=start + k * gap + base_delay,
            size_bytes=size,
        )
        for k in range(n)
    ]


def congested_samples(n, rate_kbps, queue_growth_s=0.004, start=0.0, size=1000):
    """Each packet queues a bit longer than the last: growing delay."""
    gap = size * 8.0 / (rate_kbps * 1000.0)
    return [
        FeedbackSample(
            send_time_s=start + k * gap,
            arrival_time_s=start + k * gap + 0.02 + k * queue_growth_s,
            size_bytes=size,
        )
        for k in range(n)
    ]


class TestTrendlineFilter:
    def test_needs_two_points(self):
        f = TrendlineFilter()
        assert f.slope() is None
        f.update(FeedbackSample(0.0, 0.02, 100))
        assert f.slope() is None

    def test_flat_delay_gives_near_zero_slope(self):
        f = TrendlineFilter()
        for s in steady_samples(20, 1000):
            f.update(s)
        assert abs(f.slope()) < 1e-6

    def test_growing_delay_gives_positive_slope(self):
        f = TrendlineFilter()
        for s in congested_samples(20, 1000):
            f.update(s)
        assert f.slope() > 0.01

    def test_shrinking_delay_gives_negative_slope(self):
        f = TrendlineFilter()
        for s in congested_samples(20, 1000, queue_growth_s=-0.004):
            f.update(s)
        assert f.slope() < -0.01

    def test_rejects_tiny_window(self):
        with pytest.raises(ValueError):
            TrendlineFilter(window=1)


class TestGccEstimator:
    def test_initial_estimate(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=777))
        assert est.estimate_kbps() == 777

    def test_increases_without_congestion(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=500))
        for batch_start in range(10):
            est.on_feedback(steady_samples(20, 600, start=batch_start * 1.0))
        assert est.estimate_kbps() > 500
        assert est.state == "normal"

    def test_backs_off_on_delay_growth(self):
        """Backoff requires *sustained* overuse (persistence >= 2 batches)."""
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        growing = congested_samples(45, 1000)
        est.on_feedback(growing[:15])
        assert est.state == "overuse"
        assert est.estimate_kbps() == 1000  # first detection: no backoff yet
        est.on_feedback(growing[15:30])
        est.on_feedback(growing[30:])
        assert est.state == "overuse"
        assert est.estimate_kbps() < 1000

    def test_single_overuse_blip_does_not_back_off(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_feedback(congested_samples(15, 1000))
        est.on_feedback(steady_samples(20, 1000, start=0.5))
        assert est.estimate_kbps() >= 1000

    def test_heavy_loss_backs_off(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_loss_report(0.3)
        assert est.estimate_kbps() <= 1000 * (1 - 0.5 * 0.3) + 1e-9

    def test_mild_loss_holds(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        before = est.estimate_kbps()
        est.on_loss_report(0.05)
        assert est.estimate_kbps() == pytest.approx(before)

    def test_loss_report_validates(self):
        with pytest.raises(ValueError):
            GccEstimator().on_loss_report(1.5)

    def test_respects_min_and_max(self):
        cfg = GccConfig(min_rate_kbps=100, max_rate_kbps=2000, initial_rate_kbps=1000)
        est = GccEstimator(cfg)
        for _ in range(50):
            est.on_loss_report(0.5)
        assert est.estimate_kbps() >= 100
        est2 = GccEstimator(cfg)
        for k in range(100):
            est2.on_feedback(steady_samples(20, 3000, start=k * 1.0))
        assert est2.estimate_kbps() <= 2000

    def test_small_stream_overestimation_bias(self):
        """Sec. 7: with a small stream (low rate, no queue buildup) the
        estimate creeps far above the actual sending rate."""
        est = GccEstimator(GccConfig(initial_rate_kbps=300))
        for k in range(30):
            est.on_feedback(steady_samples(10, 300, start=k * 0.3))
            est.on_loss_report(0.0)
        assert est.estimate_kbps() > 450  # grew well past the real 300 kbps

    def test_probe_congested_caps_estimate(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_probe_result(delivered_kbps=600, congested=True)
        assert est.estimate_kbps() <= 600

    def test_probe_clean_raises_estimate(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=300))
        est.on_probe_result(delivered_kbps=2000, congested=False)
        assert est.estimate_kbps() >= 0.85 * 2000

    def test_probe_cap_clears_on_clean_probe(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_probe_result(500, congested=True)
        est.on_probe_result(1500, congested=False)
        assert est.estimate_kbps() > 500

    def test_empty_feedback_is_noop(self):
        est = GccEstimator()
        before = est.estimate_kbps()
        est.on_feedback([])
        assert est.estimate_kbps() == before
