"""Tests for the estimator mechanisms added for closed-loop stability:
adaptive threshold, windowed-min queuing detection, loss discrimination,
probe evaluation signals."""

import pytest

from repro.cc.gcc import FeedbackSample, GccConfig, GccEstimator


def steady(n, rate_kbps, start=0.0, size=1000, delay=0.02):
    gap = size * 8.0 / (rate_kbps * 1000.0)
    return [
        FeedbackSample(start + k * gap, start + k * gap + delay, size)
        for k in range(n)
    ]


def jittered(n, rate_kbps, rng, start=0.0, size=1000, jitter_s=0.08):
    gap = size * 8.0 / (rate_kbps * 1000.0)
    return [
        FeedbackSample(
            start + k * gap,
            start + k * gap + 0.02 + rng.random() * jitter_s,
            size,
        )
        for k in range(n)
    ]


def pinned_queue(n, rate_kbps, start=0.0, size=1000, standing_s=0.3):
    """A tail-drop queue pinned at its cap: every packet carries the same
    large delay — zero slope, maximal congestion."""
    gap = size * 8.0 / (rate_kbps * 1000.0)
    return [
        FeedbackSample(
            start + k * gap, start + k * gap + 0.02 + standing_s, size
        )
        for k in range(n)
    ]


class TestAdaptiveThreshold:
    def test_jitter_raises_threshold_and_avoids_collapse(self):
        import random

        rng = random.Random(1)
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        for k in range(60):
            est.on_feedback(jittered(10, 1000, rng, start=k * 0.1))
        assert est._threshold > est.config.overuse_threshold
        # Despite constant jitter the estimate does not collapse.
        assert est.estimate_kbps() > 500

    def test_threshold_decays_when_calm(self):
        import random

        rng = random.Random(2)
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        for k in range(40):
            est.on_feedback(jittered(10, 1000, rng, start=k * 0.1))
        raised = est._threshold
        for k in range(200):
            est.on_feedback(steady(10, 1000, start=10 + k * 0.1))
        assert est._threshold < raised

    def test_threshold_never_exceeds_ceiling(self):
        import random

        rng = random.Random(3)
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        for k in range(100):
            est.on_feedback(jittered(10, 1000, rng, start=k * 0.1, jitter_s=0.5))
        assert est._threshold <= est.config.overuse_threshold_max


class TestPinnedQueueDetection:
    def test_flat_but_high_delay_is_overuse(self):
        """Zero slope + standing queue must still be congestion."""
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        # Establish the base delay first.
        est.on_feedback(steady(10, 1000))
        for k in range(4):
            est.on_feedback(pinned_queue(40, 1000, start=0.5 + 0.35 * k))
        assert est.state == "overuse"
        assert est.estimate_kbps() < 1000

    def test_queuing_delay_ignores_jitter(self):
        """The windowed-min measure reads ~0 under pure jitter."""
        import random

        rng = random.Random(4)
        est = GccEstimator()
        est.on_feedback(steady(5, 1000))
        est.on_feedback(jittered(40, 1000, rng, start=0.2))
        assert est.queuing_delay_s() < 0.03

    def test_queuing_delay_reads_standing_queue(self):
        est = GccEstimator()
        est.on_feedback(steady(5, 1000))
        # Long enough that the pre-congestion samples age out of the
        # trailing measurement window.
        for k in range(5):
            est.on_feedback(pinned_queue(40, 1000, start=0.2 + 0.35 * k))
        assert est.queuing_delay_s() > 0.2


class TestLossDiscrimination:
    def test_random_loss_is_softened(self):
        """High loss with clean delay: backoff limited to 20%."""
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_feedback(steady(20, 1000))
        est.on_loss_report(0.5)
        assert est.estimate_kbps() >= 0.75 * 1000

    def test_congestion_loss_cuts_hard(self):
        est = GccEstimator(GccConfig(initial_rate_kbps=1000))
        est.on_feedback(steady(5, 1000))
        est.on_feedback(pinned_queue(30, 1000, start=0.1))
        before = est.estimate_kbps()
        est.on_loss_report(0.5)
        assert est.estimate_kbps() <= 0.8 * before

    def test_congestion_loss_cuts_are_spaced(self):
        """Ten loss reports in a row must not compound to the floor."""
        est = GccEstimator(GccConfig(initial_rate_kbps=2000))
        est.on_feedback(steady(5, 2000))
        est.on_feedback(pinned_queue(30, 2000, start=0.05))
        for _ in range(10):
            est.on_loss_report(0.4)
        # One spaced cut, not ten compounding ones.
        assert est.estimate_kbps() > 400


class TestProbeSignals:
    def test_peak_queuing_delay_sees_bursts(self):
        est = GccEstimator()
        est.on_feedback(steady(10, 1000))
        # A short burst with a 60 ms spike.
        spike = [
            FeedbackSample(0.2 + k * 0.005, 0.2 + k * 0.005 + 0.08, 500)
            for k in range(5)
        ]
        est.on_feedback(spike)
        assert est.peak_queuing_delay_s() > 0.04
        # The min-based standing-queue measure stays calm.
        assert est.queuing_delay_s() < 0.03

    def test_receive_rate_accessor(self):
        est = GccEstimator()
        assert est.receive_rate_kbps() is None
        est.on_feedback(steady(20, 800))
        assert est.receive_rate_kbps() == pytest.approx(800, rel=0.15)
