"""Tests for the ``repro ingress {run,stats}`` CLI subcommands."""

import argparse
import json

import pytest

from repro.cli import _parse_stream_fault, build_parser, main
from repro.ingress.faults import DELAY_SEMB, DROP_SEMB
from repro.ingress.report import REPORT_SCHEMA

ARGS = ["--seed", "7", "--meetings", "2", "--duration", "4"]


class TestFaultSpecParsing:
    def test_drop_spec(self):
        fault = _parse_stream_fault("drop:chaos-0:2:5")
        assert fault.kind == DROP_SEMB
        assert fault.meeting == "chaos-0"
        assert (fault.start_s, fault.end_s) == (2.0, 5.0)

    def test_delay_spec_with_wildcard_meeting(self):
        fault = _parse_stream_fault("delay:*:1:3:1.5")
        assert fault.kind == DELAY_SEMB
        assert fault.meeting == ""  # wildcard -> every meeting
        assert fault.delay_s == 1.5

    def test_rejects_malformed_specs(self):
        for spec in (
            "drop",
            "drop:m",
            "drop:m:1",
            "delay:m:1:3",  # delay needs a delay_s operand
            "explode:m:1:3",
            "drop:m:late:5",
        ):
            with pytest.raises(argparse.ArgumentTypeError):
                _parse_stream_fault(spec)


class TestParserWiring:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingress"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["ingress", "run"])
        assert args.seed == 0
        assert args.fault == []
        assert args.json is False

    def test_fault_flag_repeats(self):
        args = build_parser().parse_args(
            ["ingress", "run", "--fault", "drop:a:0:1",
             "--fault", "delay:b:1:2:0.5"]
        )
        assert len(args.fault) == 2


class TestIngressRunCommand:
    def test_run_prints_summary(self, capsys):
        rc = main(["ingress", "run", *ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingress run: seed=7" in out
        assert "decisions:" in out

    def test_run_json_is_canonical_report(self, capsys):
        rc = main(["ingress", "run", *ARGS, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA
        assert payload["ok"] is True
        assert payload["totals"]["decisions"] > 0
        assert payload["event_digest"]

    def test_run_with_fault_counts_drops(self, capsys):
        rc = main(
            ["ingress", "run", *ARGS, "--fault", "drop:*:0:10", "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["dropped"] > 0


class TestIngressStatsCommand:
    def test_stats_prints_per_meeting_lines(self, capsys):
        rc = main(["ingress", "stats", *ARGS])
        assert rc == 0
        out = capsys.readouterr().out
        assert "chaos-0" in out
        assert "event digest" in out

    def test_stats_json_payload(self, capsys):
        rc = main(["ingress", "stats", *ARGS, "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["seed"] == 7
        assert payload["report_digest"]
        assert payload["event_digest"]
        assert "chaos-0" in payload["meetings"]
