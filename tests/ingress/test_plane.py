"""Tests for the ingress plane itself (``repro.ingress.plane``).

A test-local :class:`FakeBackend` isolates the plane mechanics —
mailboxes, backpressure windows, coalescing, shedding, the executor —
from the real cluster, so decisions are cheap and the virtual-time
arithmetic is exact.  Includes the PR's coalescing property test over
out-of-order / duplicate SEMB timestamps.
"""

from repro.cluster.scheduler import SolveScheduler
from repro.ingress.aio import SimRuntime
from repro.ingress.events import LinkEstimate, SembReport
from repro.ingress.faults import (
    DELAY_SEMB,
    DROP_SEMB,
    StreamFault,
    StreamFaultInjector,
)
from repro.ingress.plane import (
    BackendDecision,
    IngressBackend,
    IngressConfig,
    IngressPlane,
    SHED_ADMISSION,
    SHED_OVERFLOW,
)
from repro.obs import events as obs_events
from repro.obs.events import EventLog


class FakeBackend(IngressBackend):
    """A content-free decision engine with an exact virtual cost model."""

    min_interval_s = 0.5
    max_interval_s = 1.5

    def __init__(self, service_s=0.01, budget=None):
        self.applied = []
        self.decided = []
        self.shed_calls = []
        self._service = service_s
        self._budget = budget  # None = never over budget
        self._pacer = SolveScheduler(
            min_interval_s=self.min_interval_s,
            max_interval_s=self.max_interval_s,
        )

    def apply_event(self, event):
        self.applied.append(event)

    def payload(self, meeting):
        return meeting

    def service_s(self, meeting, payload):
        return self._service

    def backpressure_window_s(self, meeting, depth, capacity):
        return self._pacer.backpressure_window_s(depth, capacity)

    def over_budget(self, meeting, in_flight):
        return self._budget is not None and in_flight >= self._budget

    def decide(self, meeting, payload, now_s, trigger, cid):
        self.decided.append((meeting, now_s, trigger, cid))
        return BackendDecision(
            source="solve", digest=f"{meeting}:{len(self.decided)}"
        )

    def shed(self, meeting, payload, now_s, trigger, cid):
        self.shed_calls.append((meeting, now_s, trigger, cid))
        return BackendDecision(source="shed", digest="shed")


def _plane(backend=None, **cfg):
    runtime = SimRuntime()
    backend = backend or FakeBackend()
    defaults = dict(
        mailbox_capacity=4, solve_slots=2, idle_refresh=False, drain_s=3.0
    )
    defaults.update(cfg)
    plane = IngressPlane(runtime, backend, IngressConfig(**defaults))
    return plane, backend


def _semb(at_s, meeting="m", seq=0):
    return SembReport(at_s=at_s, meeting=meeting, seq=seq)


class TestPlaneBasics:
    def test_single_event_decides_after_min_interval(self):
        plane, backend = _plane()
        plane.run_stream([_semb(0.0)], duration_s=1.0)
        assert len(plane.decisions) == 1
        d = plane.decisions[0]
        # window = min_interval (depth 1) + virtual service time
        assert abs(d.decided_at_s - 0.51) < 1e-9
        assert d.opened_at_s == 0.0
        assert d.trigger == "event"
        assert d.source == "solve"
        assert d.batch == 1

    def test_burst_coalesces_into_one_decision(self):
        plane, backend = _plane()
        events = [_semb(0.0, seq=i) for i in range(3)]
        plane.run_stream(events, duration_s=1.0)
        assert len(plane.decisions) == 1
        assert plane.decisions[0].batch == 3
        assert plane.stats.coalesced == 2
        assert len(backend.decided) == 1

    def test_backpressure_widens_the_window_with_depth(self):
        # Burst of 4 into capacity 4: worker sees depth 4 -> the window
        # stretches toward max_interval instead of the min floor.
        plane, _ = _plane()
        plane.run_stream([_semb(0.0, seq=i) for i in range(4)],
                         duration_s=1.0)
        assert len(plane.decisions) == 1
        window = plane.decisions[0].decided_at_s - 0.01
        assert window > FakeBackend.min_interval_s + 1e-9
        assert window <= FakeBackend.max_interval_s + 1e-9

    def test_decisions_keep_min_interval_spacing(self):
        plane, _ = _plane()
        events = [_semb(round(0.1 * i, 3), seq=i) for i in range(30)]
        plane.run_stream(events, duration_s=3.0)
        decided = [d.decided_at_s for d in plane.decisions]
        assert len(decided) >= 2
        for a, b in zip(decided, decided[1:]):
            assert b - a >= FakeBackend.min_interval_s - 1e-9

    def test_mutations_apply_at_offer_time(self):
        plane, backend = _plane()
        events = [
            LinkEstimate(at_s=0.0, meeting="m", client="c", seq=0),
            _semb(0.2, seq=1),
        ]
        plane.run_stream(events, duration_s=1.0)
        assert [e.kind for e in backend.applied] == ["link_estimate", "semb"]

    def test_meetings_get_independent_mailboxes(self):
        plane, _ = _plane()
        events = [_semb(0.0, meeting="a", seq=0),
                  _semb(0.0, meeting="b", seq=1)]
        plane.run_stream(events, duration_s=1.0)
        assert plane.meetings == ["a", "b"]
        assert len(plane.decisions) == 2
        assert {d.meeting for d in plane.decisions} == {"a", "b"}


class TestShedding:
    def test_overflow_sheds_to_fallback(self):
        plane, backend = _plane(mailbox_capacity=2)
        events = [_semb(0.0, seq=i) for i in range(6)]
        plane.run_stream(events, duration_s=1.0)
        assert plane.stats.evicted > 0
        assert plane.stats.shed_overflow >= 1
        assert backend.shed_calls, "overflow must degrade via backend.shed"
        shed = [d for d in plane.decisions if d.source == "shed"]
        assert shed and shed[0].trigger == "event"

    def test_admission_over_budget_sheds(self):
        plane, backend = _plane(backend=FakeBackend(budget=0))
        plane.run_stream([_semb(0.0)], duration_s=1.0)
        assert plane.stats.shed_admission == 1
        assert plane.stats.shed_overflow == 0
        assert not backend.decided
        assert plane.decisions[0].source == "shed"

    def test_shed_reasons_land_in_the_event_log(self):
        log = EventLog()
        with obs_events.record_events(log):
            plane, _ = _plane(backend=FakeBackend(budget=0))
            plane.run_stream([_semb(0.0)], duration_s=1.0)
        sheds = [e for e in log.events
                 if e.kind == obs_events.INGRESS_SHED]
        assert len(sheds) == 1
        assert sheds[0].attrs["reason"] == SHED_ADMISSION
        assert SHED_OVERFLOW != SHED_ADMISSION


class TestCorrelationIds:
    def test_decision_carries_oldest_batched_cid(self):
        log = EventLog()
        with obs_events.record_events(log):
            plane, _ = _plane()
            plane.run_stream([_semb(0.0, seq=0), _semb(0.1, seq=1)],
                             duration_s=1.0)
        assert len(plane.decisions) == 1
        assert plane.decisions[0].cid == "m#1"

    def test_tmmbr_push_closes_the_cid_chain(self):
        log = EventLog()
        with obs_events.record_events(log):
            plane, _ = _plane(idle_refresh=True)
            events = [_semb(round(0.4 * i, 3), seq=i) for i in range(8)]
            plane.run_stream(events, duration_s=3.0)
        minted = {
            e.cid
            for e in log.events
            if e.kind in (obs_events.INGRESS_ENQUEUED,
                          obs_events.TIME_TRIGGER)
        }
        pushes = [e for e in log.events if e.kind == obs_events.TMMBR_PUSH]
        assert pushes
        assert all(p.cid in minted for p in pushes)
        assert len(pushes) == len(plane.decisions)

    def test_idle_refresh_mints_time_trigger_cids(self):
        log = EventLog()
        with obs_events.record_events(log):
            plane, _ = _plane(idle_refresh=True)
            # One event, then a long silent horizon: the Fig. 12 ceiling
            # keeps re-deciding from the last snapshot.
            plane.run_stream([_semb(0.0)], duration_s=6.0)
        time_triggers = [e for e in log.events
                         if e.kind == obs_events.TIME_TRIGGER]
        refreshes = [d for d in plane.decisions if d.trigger == "time"]
        assert plane.stats.idle_refreshes == len(refreshes)
        assert refreshes, "drain window should produce an idle refresh"
        assert {e.cid for e in time_triggers} == {d.cid for d in refreshes}


class TestStreamFaultsInThePlane:
    def test_dropped_semb_never_reaches_a_mailbox(self):
        plane, backend = _plane()
        injector = StreamFaultInjector(
            [StreamFault(DROP_SEMB, start_s=0.0, end_s=10.0)]
        )
        plane.run_stream([_semb(0.5), _semb(1.0, seq=1)], injector,
                         duration_s=2.0)
        assert plane.stats.dropped == 2
        assert plane.stats.enqueued == 0
        assert not plane.decisions

    def test_delayed_semb_is_offered_late(self):
        plane, _ = _plane()
        injector = StreamFaultInjector(
            [StreamFault(DELAY_SEMB, start_s=0.0, end_s=1.0, delay_s=2.0)]
        )
        plane.run_stream([_semb(0.5)], injector, duration_s=4.0)
        assert plane.stats.delayed == 1
        assert len(plane.decisions) == 1
        # Offered at 2.5 (0.5 + 2.0 hold): the commit lands after that,
        # and the reported latency charges the fault's hold time.
        d = plane.decisions[0]
        assert d.opened_at_s == 0.5
        assert d.decided_at_s >= 2.5 + FakeBackend.min_interval_s
        assert d.latency_s >= 2.0


class TestCoalescingProperty:
    def test_coalescing_under_out_of_order_duplicate_timestamps(self):
        """Property: for any (possibly out-of-order, duplicated) SEMB
        timestamp multiset, the plane stays FIFO per meeting, keeps the
        min-interval spacing between committed decisions, conserves
        envelopes (enqueued = dequeued + evicted + left over), and is
        byte-deterministic across a double run."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        timestamps = st.lists(
            st.floats(min_value=0.0, max_value=5.0).map(
                lambda x: round(x, 3)
            ),
            min_size=1,
            max_size=30,
        )

        @settings(max_examples=60, deadline=None)
        @given(times=timestamps)
        def run(times):
            def one_run():
                plane, _ = _plane()
                events = [
                    _semb(t, seq=i) for i, t in enumerate(times)
                ]
                plane.run_stream(events, duration_s=5.0)
                return plane

            plane = one_run()
            assert plane.stats.decisions >= 1
            # FIFO per meeting: windows open in offer order.
            opened = [d.opened_at_s for d in plane.decisions
                      if d.trigger == "event"]
            assert opened == sorted(opened)
            # Fig. 12 floor between consecutive commits.
            decided = [d.decided_at_s for d in plane.decisions]
            for a, b in zip(decided, decided[1:]):
                assert b - a >= FakeBackend.min_interval_s - 1e-9
            # Envelope conservation.
            stats = plane.mailbox_stats()["m"]
            left_over = plane._mailboxes["m"].depth
            assert stats["enqueued"] == (
                stats["dequeued"] + stats["evicted"] + left_over
            )
            assert plane.stats.enqueued == stats["enqueued"]
            # Every committed batch is accounted once.
            batched = sum(d.batch for d in plane.decisions)
            assert batched <= stats["dequeued"]
            # Double-run byte determinism.
            replay = one_run()
            key = lambda p: [  # noqa: E731
                (d.meeting, d.cid, d.opened_at_s, d.decided_at_s,
                 d.batch, d.trigger, d.source, d.digest)
                for d in p.decisions
            ]
            assert key(plane) == key(replay)

        run()
