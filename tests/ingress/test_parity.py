"""Parity: the event-driven plane reproduces the synchronous decisions.

On a fault-free stream the ingress plane must agree with the
round/continuous cluster path it fronts:

* with a frozen world (SEMB only), every decision serves exactly the
  configuration a direct ``solve_request`` of the same snapshot serves;
* with world mutations, the plane's per-meeting sequence of *distinct*
  solution digests is a subsequence of the snapshot-by-snapshot solve
  trajectory (coalescing may skip intermediate snapshots, never invent
  one), and both end on the same final configuration.
"""

from repro.chaos.report import solution_digest
from repro.chaos.world import ChaosWorld
from repro.cluster import ClusterConfig, ControllerCluster
from repro.core.engine import default_mckp_cache
from repro.core.solver import SolverConfig
from repro.ingress.events import StreamConfig, generate_stream
from repro.ingress.plane import ClusterBackend
from repro.ingress.run import IngressRunConfig, run_ingress

CFG = IngressRunConfig(seed=11, meetings=3, mean_size=4.0, duration_s=6.0)


def _snapshot_trajectory(cfg: IngressRunConfig) -> dict:
    """Distinct solution digests per meeting, solving after every event.

    Replays the identical seeded stream synchronously: apply each event
    to a fresh world (the same offer-time mutation rules the plane's
    backend uses), then serve that snapshot through the same cluster
    solve path the plane calls.
    """
    default_mckp_cache().clear()
    world = ChaosWorld(
        seed=cfg.seed, meetings=cfg.meetings, mean_size=cfg.mean_size
    )
    cluster = ControllerCluster(
        ClusterConfig(
            shards=cfg.shards,
            min_interval_s=cfg.report_interval_s,
            max_interval_s=3.0 * cfg.report_interval_s,
            cache_capacity=cfg.cache_capacity,
            max_solves_per_round=cfg.max_solves_per_round,
            pool_workers=0,
            solver=SolverConfig(granularity_kbps=25),
        )
    )
    stream = generate_stream(
        cfg.seed,
        world,
        StreamConfig(
            duration_s=cfg.duration_s,
            report_interval_s=cfg.report_interval_s,
            mutations_per_meeting=cfg.mutations_per_meeting,
        ),
    )
    backend = ClusterBackend(cluster, world)
    trajectory: dict = {m: [] for m in world.meeting_ids}
    try:
        for event in stream:
            backend.apply_event(event)
            served = cluster.solve_request(
                event.meeting,
                world.current_problem(event.meeting),
                event.at_s,
                trigger="event",
            )
            digests = trajectory[event.meeting]
            digest = solution_digest(served.solution)
            if not digests or digests[-1] != digest:
                digests.append(digest)
    finally:
        cluster.close()
    return trajectory


def _is_subsequence(needle, haystack) -> bool:
    it = iter(haystack)
    return all(any(x == y for y in it) for x in needle)


class TestFrozenWorldParity:
    def test_event_path_equals_sync_path_exactly(self):
        cfg = IngressRunConfig(
            seed=11, meetings=3, mean_size=4.0, duration_s=6.0,
            mutations_per_meeting=0.0,
        )
        report = run_ingress(cfg)
        trajectory = _snapshot_trajectory(cfg)
        assert report.totals["shed"] == 0
        assert set(report.meetings) == set(trajectory)
        for meeting, expected in trajectory.items():
            # A frozen world has exactly one configuration per meeting;
            # the plane must serve it and nothing else.
            assert len(expected) == 1
            assert report.meetings[meeting]["digests"] == expected


class TestMutatingWorldParity:
    def test_distinct_digests_are_a_snapshot_subsequence(self):
        report = run_ingress(CFG)
        trajectory = _snapshot_trajectory(CFG)
        assert report.totals["shed"] == 0, (
            "parity sizing must not shed (sheds serve the fallback, "
            "which is outside the snapshot trajectory)"
        )
        assert report.totals["decisions"] > 0
        for meeting, expected in trajectory.items():
            got = report.meetings[meeting]["digests"]
            assert got, f"{meeting} committed no configuration"
            assert _is_subsequence(got, expected), (
                f"{meeting}: ingress digests {got} are not a "
                f"subsequence of the snapshot trajectory {expected}"
            )
            assert got[-1] == expected[-1], (
                f"{meeting}: final configuration diverged"
            )

    def test_sources_are_solver_sources(self):
        report = run_ingress(CFG)
        assert set(report.decisions_by_source) <= {"solve", "cache"}
