"""``docs/INGRESS.md`` is pinned to the code it documents.

Same discipline as ``tests/obs/test_docs_match.py``: every canonical
ingress name (metrics, spans, event kinds, stream kinds, shed reasons,
report schema) must appear verbatim in the operator doc, every
``repro_ingress_*`` token in the doc must be canonical, and the
cross-links (README, ARCHITECTURE, OBSERVABILITY) must hold.
"""

import re
from pathlib import Path

from repro.ingress.events import ALL_STREAM_KINDS
from repro.ingress.faults import STREAM_FAULT_KINDS
from repro.ingress.plane import SHED_ADMISSION, SHED_OVERFLOW
from repro.ingress.report import REPORT_SCHEMA
from repro.obs import events as obs_events
from repro.obs import names as obs_names

REPO = Path(__file__).resolve().parents[2]
DOC = REPO / "docs" / "INGRESS.md"

INGRESS_METRICS = sorted(
    name for name in obs_names.ALL_METRICS
    if name.startswith("repro_ingress_")
)


def _doc() -> str:
    assert DOC.exists(), "docs/INGRESS.md is part of the subsystem"
    return DOC.read_text()


class TestIngressDocPins:
    def test_every_ingress_metric_is_documented(self):
        text = _doc()
        assert INGRESS_METRICS, "ingress metrics must be registered"
        for name in INGRESS_METRICS:
            assert name in text, f"{name} missing from docs/INGRESS.md"

    def test_documented_metric_tokens_are_canonical(self):
        text = _doc()
        for token in set(re.findall(r"repro_ingress_\w+", text)):
            base = re.sub(r"_(sum|count|bucket)$", "", token)
            assert base in obs_names.ALL_METRICS, (
                f"docs/INGRESS.md names unknown metric {token}"
            )

    def test_spans_are_documented_and_canonical(self):
        text = _doc()
        for span_name in (
            obs_names.SPAN_INGRESS_RUN,
            obs_names.SPAN_INGRESS_DECIDE,
        ):
            assert span_name in obs_names.ALL_SPANS
            assert span_name in text

    def test_event_kinds_are_documented_and_canonical(self):
        text = _doc()
        for kind in (
            obs_events.INGRESS_ENQUEUED,
            obs_events.INGRESS_DEQUEUED,
            obs_events.INGRESS_SHED,
        ):
            assert kind in obs_events.ALL_EVENT_KINDS
            assert re.search(rf"\b{kind}\b", text), (
                f"event kind {kind} missing from docs/INGRESS.md"
            )

    def test_stream_vocabulary_is_documented(self):
        text = _doc()
        for kind in ALL_STREAM_KINDS:
            assert f"`{kind}`" in text, (
                f"stream kind {kind} missing from the vocabulary table"
            )
        for kind in STREAM_FAULT_KINDS:
            assert kind in text

    def test_shed_reasons_and_schema_are_documented(self):
        text = _doc()
        assert f"`{SHED_OVERFLOW}`" in text
        assert f"`{SHED_ADMISSION}`" in text
        assert REPORT_SCHEMA in text

    def test_referenced_repo_paths_exist(self):
        text = _doc()
        for rel in re.findall(r"`((?:tests|benchmarks|src)/[\w/.]+)`", text):
            assert (REPO / rel).exists(), (
                f"docs/INGRESS.md references missing path {rel}"
            )


class TestCrossLinks:
    def test_readme_links_the_subsystem(self):
        readme = (REPO / "README.md").read_text()
        assert "docs/INGRESS.md" in readme
        assert "ingress/" in readme
        assert "test_ingress_throughput" in readme

    def test_architecture_links_the_subsystem(self):
        arch = (REPO / "docs" / "ARCHITECTURE.md").read_text()
        assert "repro.ingress" in arch
        assert "INGRESS.md" in arch

    def test_observability_carries_the_ingress_section(self):
        obs = (REPO / "docs" / "OBSERVABILITY.md").read_text()
        for name in INGRESS_METRICS:
            assert name in obs
        for kind in (
            obs_events.INGRESS_ENQUEUED,
            obs_events.INGRESS_DEQUEUED,
            obs_events.INGRESS_SHED,
        ):
            assert re.search(rf"\b{kind}\b", obs)

    def test_cli_examples_match_the_parser(self):
        from repro.cli import build_parser

        text = _doc()
        assert "ingress run" in text
        assert "ingress stats" in text
        parser = build_parser()
        args = parser.parse_args(["ingress", "run", "--seed", "7"])
        assert args.ingress_command == "run"
        args = parser.parse_args(["ingress", "stats", "--json"])
        assert args.ingress_command == "stats"
