"""Tests for stream-level fault injection (``repro.ingress.faults``)."""

import pytest

from repro.chaos import faults as chaos_faults
from repro.chaos.faults import Fault, FaultSchedule
from repro.ingress.events import LinkEstimate, SembReport
from repro.ingress.faults import (
    DELAY,
    DELAY_SEMB,
    DELIVER,
    DROP,
    DROP_SEMB,
    StreamFault,
    StreamFaultInjector,
    from_fault_schedule,
)


def _semb(at_s, meeting="m"):
    return SembReport(at_s=at_s, meeting=meeting)


class TestStreamFault:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamFault("explode")
        with pytest.raises(ValueError):
            StreamFault(DROP_SEMB, start_s=5.0, end_s=1.0)
        with pytest.raises(ValueError):
            StreamFault(DELAY_SEMB, delay_s=0.0)

    def test_window_is_half_open(self):
        fault = StreamFault(DROP_SEMB, start_s=1.0, end_s=3.0)
        assert not fault.matches(_semb(0.999))
        assert fault.matches(_semb(1.0))
        assert fault.matches(_semb(2.999))
        assert not fault.matches(_semb(3.0))

    def test_only_semb_matches(self):
        fault = StreamFault(DROP_SEMB)
        assert fault.matches(_semb(1.0))
        assert not fault.matches(LinkEstimate(at_s=1.0, meeting="m"))

    def test_meeting_filter(self):
        fault = StreamFault(DROP_SEMB, meeting="a")
        assert fault.matches(_semb(1.0, meeting="a"))
        assert not fault.matches(_semb(1.0, meeting="b"))
        wildcard = StreamFault(DROP_SEMB, meeting="")
        assert wildcard.matches(_semb(1.0, meeting="b"))


class TestStreamFaultInjector:
    def test_deliver_by_default(self):
        injector = StreamFaultInjector()
        assert injector.disposition(_semb(1.0)) == (DELIVER, 0.0)

    def test_drop_wins_over_delay(self):
        injector = StreamFaultInjector(
            [
                StreamFault(DROP_SEMB, start_s=0.0, end_s=10.0),
                StreamFault(DELAY_SEMB, start_s=0.0, end_s=10.0, delay_s=2.0),
            ]
        )
        assert injector.disposition(_semb(1.0)) == (DROP, 0.0)
        assert injector.dropped == 1
        assert injector.delayed == 0

    def test_overlapping_delays_compound(self):
        injector = StreamFaultInjector(
            [
                StreamFault(DELAY_SEMB, start_s=0.0, end_s=10.0, delay_s=1.5),
                StreamFault(DELAY_SEMB, start_s=0.0, end_s=5.0, delay_s=0.5),
            ]
        )
        assert injector.disposition(_semb(1.0)) == (DELAY, 2.0)
        assert injector.disposition(_semb(7.0)) == (DELAY, 1.5)
        assert injector.delayed == 2


class TestFromFaultSchedule:
    def test_maps_report_faults_only(self):
        schedule = FaultSchedule(
            [
                Fault(at_s=2.0, kind=chaos_faults.DROP_REPORT,
                      target="chaos-0", factor=3.0),
                Fault(at_s=4.0, kind=chaos_faults.DELAY_REPORT,
                      target="chaos-1", factor=2.0),
                Fault(at_s=5.0, kind=chaos_faults.DOWNLINK_COLLAPSE,
                      target="chaos-0", factor=0.5),
            ]
        )
        out = from_fault_schedule(schedule, report_interval_s=1.0)
        assert len(out) == 2
        drop, delay = out
        assert drop.kind == DROP_SEMB
        assert drop.meeting == "chaos-0"
        assert (drop.start_s, drop.end_s) == (2.0, 5.0)
        assert delay.kind == DELAY_SEMB
        assert delay.meeting == "chaos-1"
        assert (delay.start_s, delay.end_s) == (4.0, 5.0)
        assert delay.delay_s == 2.0

    def test_factor_floors_at_one_interval(self):
        schedule = FaultSchedule(
            [
                Fault(at_s=1.0, kind=chaos_faults.DROP_REPORT,
                      target="m", factor=0.0),
            ]
        )
        (drop,) = from_fault_schedule(schedule, report_interval_s=2.0)
        assert (drop.start_s, drop.end_s) == (1.0, 3.0)
