"""End-to-end determinism + chaos tests for ``repro.ingress.run``.

The PR's acceptance criteria live here: same seed => byte-identical
report digest *and* event-log digest; delayed/dropped SEMB injected into
the event stream run with zero invariant violations; the correlation id
minted at enqueue reaches the ``tmmbr_push`` completion event.
"""

from repro.ingress.faults import DELAY_SEMB, DROP_SEMB, StreamFault
from repro.ingress.run import IngressRunConfig, run_ingress
from repro.obs import events as obs_events
from repro.obs.events import EventLog

#: Small-but-real sizing shared by the tests (seconds of wall clock).
CFG = IngressRunConfig(seed=7, meetings=3, mean_size=4.0, duration_s=6.0)


class TestByteDeterminism:
    def test_double_run_is_byte_identical(self):
        first = run_ingress(CFG)
        second = run_ingress(CFG)
        assert first.digest() == second.digest()
        assert first.event_digest == second.event_digest
        assert first.to_json() == second.to_json()
        assert first.totals["decisions"] > 0
        assert first.ok

    def test_different_seed_diverges(self):
        other = IngressRunConfig(
            seed=8, meetings=3, mean_size=4.0, duration_s=6.0
        )
        assert run_ingress(CFG).digest() != run_ingress(other).digest()

    def test_report_counts_are_consistent(self):
        report = run_ingress(CFG)
        totals = report.totals
        assert totals["offered"] == (
            totals["stream_events"] - totals["dropped"]
        )
        assert totals["decisions"] == len(report.decisions)
        assert totals["decisions"] == sum(
            report.decisions_by_source.values()
        )
        per_meeting = sum(
            row["decisions"] for row in report.meetings.values()
        )
        assert per_meeting == totals["decisions"]
        assert sum(report.checks.values()) >= totals["decisions"]


class TestChaosThroughTheStream:
    def test_dropped_semb_zero_violations(self):
        faults = [
            StreamFault(DROP_SEMB, meeting="chaos-0", start_s=1.0,
                        end_s=4.0),
        ]
        first = run_ingress(CFG, faults=faults)
        second = run_ingress(CFG, faults=faults)
        assert first.totals["dropped"] > 0
        assert first.ok, first.violations
        assert first.digest() == second.digest()
        assert first.event_digest == second.event_digest

    def test_delayed_semb_zero_violations(self):
        faults = [
            StreamFault(DELAY_SEMB, meeting="", start_s=1.0, end_s=3.0,
                        delay_s=1.5),
        ]
        first = run_ingress(CFG, faults=faults)
        second = run_ingress(CFG, faults=faults)
        assert first.totals["delayed"] > 0
        assert first.ok, first.violations
        assert first.digest() == second.digest()

    def test_fault_set_changes_the_run(self):
        faults = [StreamFault(DROP_SEMB, start_s=0.0, end_s=6.0)]
        assert run_ingress(CFG, faults=faults).digest() != (
            run_ingress(CFG).digest()
        )

    def test_semb_blackout_degrades_to_time_triggers(self):
        # Sec. 7 posture: after the first reports land, a total SEMB
        # blackout degrades to Fig. 12 ceiling refreshes, not silence.
        faults = [StreamFault(DROP_SEMB, start_s=1.2, end_s=100.0)]
        cfg = IngressRunConfig(
            seed=7, meetings=2, mean_size=4.0, duration_s=8.0,
            mutations_per_meeting=0.0,
        )
        report = run_ingress(cfg, faults=faults)
        assert report.totals["dropped"] > 0
        time_triggered = [
            row for row in report.decisions if row["trigger"] == "time"
        ]
        assert time_triggered, "blackout must fall back to time triggers"
        assert report.totals["idle_refreshes"] == len(time_triggered)
        assert report.ok


class TestCidEndToEnd:
    def test_every_tmmbr_push_traces_to_a_mint(self):
        log = EventLog()
        report = run_ingress(CFG, events_out=log)
        minted = {
            e.cid
            for e in log.events
            if e.kind in (obs_events.INGRESS_ENQUEUED,
                          obs_events.TIME_TRIGGER)
        }
        pushes = [e for e in log.events if e.kind == obs_events.TMMBR_PUSH]
        assert pushes
        assert all(p.cid in minted for p in pushes)
        assert len(pushes) == report.totals["decisions"]

    def test_solve_served_carries_the_same_cid(self):
        log = EventLog()
        run_ingress(CFG, events_out=log)
        served_cids = {
            e.cid for e in log.events
            if e.kind == obs_events.SOLVE_SERVED and e.cid
        }
        push_cids = {
            e.cid for e in log.events if e.kind == obs_events.TMMBR_PUSH
        }
        assert served_cids
        assert served_cids <= push_cids

    def test_report_cids_match_the_event_log(self):
        log = EventLog()
        report = run_ingress(CFG, events_out=log)
        push_cids = [
            e.cid for e in log.events if e.kind == obs_events.TMMBR_PUSH
        ]
        assert [row["cid"] for row in report.decisions] == push_cids
