"""Tests for the deterministic coroutine runtime (``repro.ingress.aio``)."""

import pytest

from repro.ingress.aio import SimFuture, SimRuntime, VirtualSemaphore


class TestSimFuture:
    def test_first_result_wins(self):
        runtime = SimRuntime()
        fut = runtime.future()
        assert fut.set_result(1) is True
        assert fut.set_result(2) is False
        assert fut.set_exception(RuntimeError("late")) is False
        assert fut.result() == 1

    def test_exception_is_raised_from_result(self):
        runtime = SimRuntime()
        fut = runtime.future()
        fut.set_exception(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_done_callback_runs_immediately_when_done(self):
        runtime = SimRuntime()
        fut = runtime.future()
        fut.set_result("x")
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == ["x"]

    def test_result_before_done_raises(self):
        runtime = SimRuntime()
        with pytest.raises(RuntimeError):
            runtime.future().result()


class TestSimRuntime:
    def test_sleep_advances_virtual_time(self):
        runtime = SimRuntime()
        times = []

        async def sleeper():
            await runtime.sleep(1.5)
            times.append(runtime.now)
            await runtime.sleep(0.5)
            times.append(runtime.now)

        runtime.spawn(sleeper())
        runtime.run_until(10.0)
        assert times == [1.5, 2.0]

    def test_equal_time_wakeups_run_in_spawn_order(self):
        def one_run():
            runtime = SimRuntime()
            local = []

            async def task(name):
                await runtime.sleep(1.0)
                local.append(name)

            for name in ("a", "b", "c"):
                runtime.spawn(task(name))
            runtime.run_until(5.0)
            return local

        first = one_run()
        order = [one_run() for _ in range(3)]
        assert first == ["a", "b", "c"]
        assert all(o == first for o in order)

    def test_task_result_is_awaitable(self):
        runtime = SimRuntime()
        results = []

        async def child():
            await runtime.sleep(1.0)
            return 42

        async def parent():
            task = runtime.spawn(child())
            results.append(await task)

        runtime.spawn(parent())
        runtime.run_until(5.0)
        assert results == [42]

    def test_raise_task_errors_propagates(self):
        runtime = SimRuntime()

        async def bad():
            await runtime.sleep(0.1)
            raise RuntimeError("worker died")

        runtime.spawn(bad())
        runtime.run_until(1.0)
        with pytest.raises(RuntimeError, match="worker died"):
            runtime.raise_task_errors()

    def test_awaiting_foreign_object_fails_loudly(self):
        runtime = SimRuntime()

        class Foreign:
            def __await__(self):
                yield "not-a-sim-future"

        async def bad():
            await Foreign()

        runtime.spawn(bad())
        runtime.run_until(1.0)
        with pytest.raises(TypeError, match="only SimFuture"):
            runtime.raise_task_errors()

    def test_call_at_runs_at_absolute_time(self):
        runtime = SimRuntime()
        seen = []
        runtime.call_at(2.0, lambda: seen.append(runtime.now))
        runtime.call_at(1.0, lambda: seen.append(runtime.now))
        runtime.run_until(5.0)
        assert seen == [1.0, 2.0]


class TestVirtualSemaphore:
    def test_bounds_concurrency(self):
        runtime = SimRuntime()
        sem = VirtualSemaphore(runtime, slots=2)
        active = []
        peak = []

        async def job(name):
            await sem.acquire()
            active.append(name)
            peak.append(len(active))
            await runtime.sleep(1.0)
            active.remove(name)
            sem.release()

        for i in range(5):
            runtime.spawn(job(f"j{i}"))
        runtime.run_until(10.0)
        runtime.raise_task_errors()
        assert max(peak) <= 2
        assert sem.in_use == 0
        assert sem.waiting == 0

    def test_waiters_resume_fifo(self):
        runtime = SimRuntime()
        sem = VirtualSemaphore(runtime, slots=1)
        done = []

        async def job(name, hold_s):
            await sem.acquire()
            await runtime.sleep(hold_s)
            done.append(name)
            sem.release()

        for i in range(4):
            runtime.spawn(job(f"j{i}", 0.5))
        runtime.run_until(10.0)
        runtime.raise_task_errors()
        assert done == ["j0", "j1", "j2", "j3"]

    def test_release_without_hold_raises(self):
        runtime = SimRuntime()
        sem = VirtualSemaphore(runtime, slots=1)
        with pytest.raises(RuntimeError):
            sem.release()

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            VirtualSemaphore(SimRuntime(), slots=0)
