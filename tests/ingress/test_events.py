"""Tests for the typed event stream (``repro.ingress.events``)."""

import pytest

from repro.chaos.world import ChaosWorld
from repro.ingress.events import (
    ALL_STREAM_KINDS,
    KIND_SEMB,
    LinkEstimate,
    SembReport,
    StreamConfig,
    generate_stream,
    sort_stream,
)


class TestStreamConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            StreamConfig(duration_s=0)
        with pytest.raises(ValueError):
            StreamConfig(report_interval_s=0)
        with pytest.raises(ValueError):
            StreamConfig(report_jitter=1.0)
        with pytest.raises(ValueError):
            StreamConfig(mutations_per_meeting=-1)


class TestGenerateStream:
    def _stream(self, seed=3, **kw):
        world = ChaosWorld(seed=seed, meetings=3, mean_size=4.0)
        return generate_stream(
            seed, world, StreamConfig(duration_s=8.0, **kw)
        ), world

    def test_same_seed_same_stream(self):
        a, _ = self._stream(seed=3)
        b, _ = self._stream(seed=3)
        assert a == b

    def test_different_seed_different_stream(self):
        a, _ = self._stream(seed=3)
        b, _ = self._stream(seed=4)
        assert a != b

    def test_sequence_numbers_are_total_order(self):
        stream, _ = self._stream()
        assert [e.seq for e in stream] == list(range(len(stream)))
        keyed = [(e.at_s, e.meeting, e.kind) for e in stream]
        assert keyed == sorted(keyed)

    def test_events_stay_inside_the_horizon(self):
        stream, world = self._stream()
        assert stream, "seeded stream must not be empty"
        assert all(0.0 <= e.at_s <= 8.0 for e in stream)
        assert {e.kind for e in stream} <= set(ALL_STREAM_KINDS)
        assert {e.meeting for e in stream} <= set(world.meeting_ids)

    def test_every_meeting_reports(self):
        stream, world = self._stream(mutations_per_meeting=0.0)
        assert all(e.kind == KIND_SEMB for e in stream)
        reporters = {e.meeting for e in stream}
        assert reporters == set(world.meeting_ids)

    def test_stream_independent_of_meeting_iteration_order(self):
        # Per-meeting RNGs are keyed by (seed, meeting): each meeting's
        # own sub-stream must not depend on how many meetings exist.
        small = ChaosWorld(seed=5, meetings=2, mean_size=4.0)
        large = ChaosWorld(seed=5, meetings=4, mean_size=4.0)
        cfg = StreamConfig(duration_s=6.0, mutations_per_meeting=0.0)
        a = [
            (e.at_s, e.meeting)
            for e in generate_stream(5, small, cfg)
            if e.meeting == "chaos-0"
        ]
        b = [
            (e.at_s, e.meeting)
            for e in generate_stream(5, large, cfg)
            if e.meeting == "chaos-0"
        ]
        assert a == b


class TestSortStream:
    def test_orders_by_time_then_sequence(self):
        events = [
            SembReport(at_s=2.0, meeting="m", seq=3),
            LinkEstimate(at_s=1.0, meeting="m", seq=2),
            SembReport(at_s=1.0, meeting="m", seq=1),
        ]
        assert [e.seq for e in sort_stream(events)] == [1, 2, 3]
