"""Tests for the bounded per-meeting mailbox (``repro.ingress.mailbox``).

Includes the PR's property test: FIFO-per-meeting order and
oldest-evicted overflow under arbitrary put sequences.
"""

import pytest

from repro.ingress.aio import SimRuntime
from repro.ingress.events import SembReport
from repro.ingress.mailbox import Envelope, Mailbox


def _env(i, meeting="m"):
    return Envelope(
        event=SembReport(at_s=float(i), meeting=meeting, seq=i),
        cid=f"{meeting}#{i}",
    )


class TestMailboxBasics:
    def test_put_then_drain_is_fifo(self):
        box = Mailbox(SimRuntime(), capacity=8)
        for i in range(5):
            assert box.put(_env(i)) is None
        assert [e.event.seq for e in box.drain()] == [0, 1, 2, 3, 4]
        assert box.depth == 0
        assert box.stats.enqueued == 5
        assert box.stats.dequeued == 5
        assert box.stats.max_depth == 5

    def test_overflow_evicts_oldest(self):
        box = Mailbox(SimRuntime(), capacity=2)
        assert box.put(_env(0)) is None
        assert box.put(_env(1)) is None
        evicted = box.put(_env(2))
        assert evicted is not None and evicted.event.seq == 0
        assert [e.event.seq for e in box.drain()] == [1, 2]
        assert box.stats.evicted == 1

    def test_overflow_flag_is_read_and_clear(self):
        box = Mailbox(SimRuntime(), capacity=1)
        box.put(_env(0))
        box.put(_env(1))
        assert box.take_overflow() is True
        assert box.take_overflow() is False

    def test_get_wakes_on_put(self):
        runtime = SimRuntime()
        box = Mailbox(runtime, capacity=4)
        got = []

        async def consumer():
            got.append(await box.get())

        runtime.spawn(consumer())
        runtime.call_at(1.0, lambda: box.put(_env(7)))
        runtime.run_until(5.0)
        runtime.raise_task_errors()
        assert [e.event.seq for e in got] == [7]

    def test_get_times_out_to_none(self):
        runtime = SimRuntime()
        box = Mailbox(runtime, capacity=4)
        got = []

        async def consumer():
            got.append(await box.get(timeout_s=2.0))
            got.append(runtime.now)

        runtime.spawn(consumer())
        runtime.run_until(5.0)
        runtime.raise_task_errors()
        assert got == [None, 2.0]

    def test_second_waiter_rejected(self):
        runtime = SimRuntime()
        box = Mailbox(runtime, capacity=4)

        async def consumer():
            await box.get()

        runtime.spawn(consumer())
        runtime.spawn(consumer())
        runtime.run_until(1.0)
        with pytest.raises(RuntimeError, match="waiting consumer"):
            runtime.raise_task_errors()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Mailbox(SimRuntime(), capacity=0)


class TestMailboxFifoProperty:
    def test_fifo_and_oldest_eviction_property(self):
        """Property: survivors are the newest ``capacity`` puts, in put
        order; everything older was evicted oldest-first; the overflow
        flag is set iff an eviction happened."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=120, deadline=None)
        @given(
            n=st.integers(min_value=1, max_value=50),
            capacity=st.integers(min_value=1, max_value=8),
        )
        def run(n, capacity):
            box = Mailbox(SimRuntime(), capacity=capacity)
            evicted = []
            for i in range(n):
                out = box.put(_env(i))
                if out is not None:
                    evicted.append(out.event.seq)
            survivors = [e.event.seq for e in box.drain()]
            keep = min(n, capacity)
            assert survivors == list(range(n - keep, n))
            assert evicted == list(range(n - keep))
            assert box.stats.evicted == n - keep
            assert box.stats.enqueued == n
            assert box.stats.dequeued == keep
            assert box.stats.max_depth == keep
            assert box.take_overflow() is (n > capacity)
            assert box.take_overflow() is False

        run()
