"""Unit tests for the network packet model."""

import pytest

from repro.net.packet import IP_UDP_OVERHEAD_BYTES, Packet, packet_for_bytes


class TestPacket:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Packet(payload=b"", size_bytes=0)

    def test_unique_ids(self):
        a = Packet(payload=b"", size_bytes=1)
        b = Packet(payload=b"", size_bytes=1)
        assert a.packet_id != b.packet_id

    def test_packet_for_bytes_adds_overhead(self):
        p = packet_for_bytes(b"x" * 100, src="a", dst="b")
        assert p.size_bytes == 100 + IP_UDP_OVERHEAD_BYTES
        assert p.src == "a" and p.dst == "b"
        assert p.payload == b"x" * 100

    def test_defaults(self):
        p = Packet(payload=None, size_bytes=5)
        assert p.ecn_marked is False
        assert p.sent_at == 0.0
