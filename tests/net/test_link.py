"""Unit tests for the link model."""

import random

import pytest

from repro.net.link import FaultyLink, Link, make_duplex
from repro.net.packet import Packet
from repro.net.simulator import Simulator


def collect(link):
    received = []
    link.connect(lambda p, t: received.append((p, t)))
    return received


def pkt(size=1000):
    return Packet(payload=b"", size_bytes=size)


class TestLinkBasics:
    def test_delivery_includes_serialization_and_propagation(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=1000, propagation_ms=20)
        received = collect(link)
        link.send(pkt(1000))  # 8000 bits / 1 Mbps = 8 ms
        sim.run_until(1.0)
        assert len(received) == 1
        assert received[0][1] == pytest.approx(0.008 + 0.020)

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=1000, propagation_ms=0)
        received = collect(link)
        link.send(pkt(1000))
        link.send(pkt(1000))
        sim.run_until(1.0)
        assert [t for _, t in received] == [
            pytest.approx(0.008),
            pytest.approx(0.016),
        ]

    def test_fifo_order_without_jitter(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=500, propagation_ms=10)
        received = collect(link)
        for k in range(5):
            link.send(Packet(payload=k, size_bytes=500))
        sim.run_until(2.0)
        assert [p.payload for p, _ in received] == [0, 1, 2, 3, 4]

    def test_send_before_connect_raises(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=1000)
        with pytest.raises(RuntimeError):
            link.send(pkt())

    def test_queue_overflow_drops(self):
        sim = Simulator()
        # 100 kbps with 100 ms queue: 1000-byte packet = 80 ms each.
        link = Link(sim, bandwidth_kbps=100, queue_ms=100)
        received = collect(link)
        results = [link.send(pkt(1000)) for _ in range(5)]
        sim.run_until(10.0)
        assert results[0] is True
        assert False in results  # later packets tail-dropped
        assert link.stats.queue_dropped_packets > 0
        assert len(received) < 5

    def test_random_loss(self):
        sim = Simulator()
        rng = random.Random(1)
        link = Link(sim, bandwidth_kbps=10_000, loss_rate=0.5, rng=rng)
        received = collect(link)
        for _ in range(400):
            link.send(pkt(100))
        sim.run_until(60.0)
        assert 100 < len(received) < 300  # ~50% loss
        assert link.stats.lost_packets + link.stats.delivered_packets == 400

    def test_jitter_adds_delay(self):
        sim = Simulator()
        rng = random.Random(2)
        link = Link(
            sim, bandwidth_kbps=10_000, propagation_ms=10, jitter_ms=50, rng=rng
        )
        received = collect(link)
        for _ in range(200):
            link.send(pkt(100))
        sim.run_until(120.0)
        delays = [t - p.sent_at for p, t in received]
        mean_extra = sum(delays) / len(delays) - 0.010
        # Mean exponential jitter ~ 50 ms.
        assert 0.030 < mean_extra < 0.080

    def test_requires_rng_with_loss_or_jitter(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 1000, loss_rate=0.1)
        with pytest.raises(ValueError):
            Link(sim, 1000, jitter_ms=10)

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Link(sim, 0)
        with pytest.raises(ValueError):
            Link(sim, 100, loss_rate=1.0, rng=random.Random(0))


class TestBandwidthChange:
    def test_set_bandwidth_affects_subsequent_packets(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=1000, propagation_ms=0)
        received = collect(link)
        link.send(pkt(1000))  # 8 ms at 1 Mbps
        sim.run_until(0.5)
        link.set_bandwidth_kbps(100)
        link.send(pkt(1000))  # 80 ms at 100 kbps
        sim.run_until(2.0)
        assert received[1][1] - 0.5 == pytest.approx(0.080)

    def test_rejects_non_positive(self):
        sim = Simulator()
        link = Link(sim, 100)
        with pytest.raises(ValueError):
            link.set_bandwidth_kbps(0)


class TestStatsAndHelpers:
    def test_loss_rate_property(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=100, queue_ms=50)
        collect(link)
        for _ in range(10):
            link.send(pkt(1000))
        sim.run_until(10.0)
        assert 0 < link.stats.loss_rate < 1

    def test_queue_delay_reflects_backlog(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=100)
        collect(link)
        assert link.queue_delay_s() == 0.0
        link.send(pkt(1000))
        assert link.queue_delay_s() == pytest.approx(0.080)

    def test_make_duplex_names_directions(self):
        sim = Simulator()
        duplex = make_duplex(sim, up_kbps=500, down_kbps=2000, name="cli")
        assert duplex.forward.bandwidth_kbps == 500
        assert duplex.backward.bandwidth_kbps == 2000
        assert duplex.forward.name == "cli:up"


class TestFaultyLink:
    def test_delegates_when_no_fault_active(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        received = collect(faulty)
        assert faulty.send(pkt()) is True
        sim.run_until(1.0)
        assert len(received) == 1
        assert faulty.injected_drops == 0

    def test_blackout_drops_everything_in_window(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        faulty.add_blackout(1.0, 2.0)
        received = collect(faulty)
        for when in (0.5, 1.5, 2.5):
            sim.schedule_at(when, lambda: faulty.send(pkt()))
        sim.run_until(5.0)
        assert len(received) == 2  # the 1.5 s packet was injected away
        assert faulty.injected_drops == 1

    def test_blackout_window_is_half_open(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        faulty.add_blackout(1.0, 2.0)
        assert not faulty.in_blackout(0.999)
        assert faulty.in_blackout(1.0)
        assert faulty.in_blackout(1.999)
        assert not faulty.in_blackout(2.0)

    def test_multiple_blackouts(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        faulty.add_blackout(1.0, 2.0)
        faulty.add_blackout(3.0, 4.0)
        assert faulty.in_blackout(1.5)
        assert not faulty.in_blackout(2.5)
        assert faulty.in_blackout(3.5)

    def test_rejects_inverted_blackout(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        with pytest.raises(ValueError):
            faulty.add_blackout(2.0, 1.0)

    def test_drop_predicate_is_selective(self):
        sim = Simulator()
        faulty = FaultyLink(
            sim,
            Link(sim, bandwidth_kbps=1000),
            drop_predicate=lambda p: p.src == "high",
        )
        received = collect(faulty)
        assert faulty.send(Packet(payload=b"", size_bytes=100, src="high")) is False
        assert faulty.send(Packet(payload=b"", size_bytes=100, src="low")) is True
        sim.run_until(1.0)
        assert [p.src for p, _ in received] == ["low"]
        assert faulty.injected_drops == 1

    def test_injected_drops_bypass_link_stats(self):
        sim = Simulator()
        inner = Link(sim, bandwidth_kbps=1000)
        faulty = FaultyLink(sim, inner, drop_predicate=lambda p: True)
        collect(faulty)
        faulty.send(pkt())
        assert faulty.injected_drops == 1
        assert inner.stats.sent_packets == 0
        assert faulty.stats is inner.stats

    def test_presents_link_surface(self):
        sim = Simulator()
        inner = Link(sim, bandwidth_kbps=1000, name="inner")
        faulty = FaultyLink(sim, inner)
        assert faulty.name == "inner"


class TestFaultyLinkDelay:
    def test_delay_window_holds_and_releases(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=10_000, propagation_ms=0))
        faulty.add_delay_window(0.0, 1.0, 0.5)
        received = collect(faulty)
        assert faulty.send(pkt(100)) is True
        sim.run_until(0.4)
        assert received == []  # still held
        sim.run_until(2.0)
        assert len(received) == 1
        assert received[0][1] >= 0.5
        assert faulty.injected_delays == 1

    def test_outside_window_passes_through(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=10_000, propagation_ms=0))
        faulty.add_delay_window(1.0, 2.0, 0.5)
        received = collect(faulty)
        faulty.send(pkt(100))
        sim.run_until(0.5)
        assert len(received) == 1
        assert faulty.injected_delays == 0

    def test_equal_release_times_keep_offer_order(self):
        """Regression: two deliveries sharing a release timestamp must
        replay in (time, sequence) order — the order they were offered."""
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=10_000, propagation_ms=0))
        # Packet A offered at t=0.1 held 0.4 s, packet B offered at
        # t=0.3 held 0.2 s: both release at exactly t=0.5.
        faulty.add_delay_window(0.0, 0.2, 0.4)
        faulty.add_delay_window(0.2, 0.4, 0.2)
        received = collect(faulty)
        sim.schedule_at(0.1, lambda: faulty.send(Packet(payload="A", size_bytes=100)))
        sim.schedule_at(0.3, lambda: faulty.send(Packet(payload="B", size_bytes=100)))
        sim.run_until(2.0)
        assert [p.payload for p, _ in received] == ["A", "B"]

    def test_equal_release_order_is_replay_stable(self):
        def run_once():
            sim = Simulator()
            faulty = FaultyLink(
                sim, Link(sim, bandwidth_kbps=10_000, propagation_ms=0)
            )
            faulty.add_delay_window(0.0, 1.0, 0.25)
            received = collect(faulty)
            for k in range(8):
                payload = k
                sim.schedule_at(
                    0.5,
                    lambda p=payload: faulty.send(
                        Packet(payload=p, size_bytes=100)
                    ),
                )
            sim.run_until(5.0)
            return [p.payload for p, _ in received]

        first, second = run_once(), run_once()
        assert first == list(range(8))
        assert first == second

    def test_overlapping_windows_compound(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=10_000, propagation_ms=0))
        faulty.add_delay_window(0.0, 1.0, 0.3)
        faulty.add_delay_window(0.0, 1.0, 0.2)
        assert faulty.delay_at(0.5) == pytest.approx(0.5)
        assert faulty.delay_at(1.5) is None

    def test_rejects_bad_delay_window(self):
        sim = Simulator()
        faulty = FaultyLink(sim, Link(sim, bandwidth_kbps=1000))
        with pytest.raises(ValueError):
            faulty.add_delay_window(2.0, 1.0, 0.1)
        with pytest.raises(ValueError):
            faulty.add_delay_window(1.0, 2.0, -0.1)
