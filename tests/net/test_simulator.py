"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import PeriodicTask, Simulator


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.run_until(10.0)
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run_until(1.0)
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run_until(5.0)
        assert seen == [1.5]
        assert sim.now == 5.0

    def test_run_until_is_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        sim.run_until(2.0)
        assert fired == [1]

    def test_events_beyond_horizon_wait(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run_until(4.9)
        assert fired == []
        sim.run_until(5.1)
        assert fired == [1]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []

        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))

        sim.schedule(1.0, outer)
        sim.run_until(3.0)
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run_until(2.0)
        assert fired == []

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.run_until(3.0)
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run_until(6.0)
        assert seen == [5.0]

    def test_rejects_past_scheduling(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_run_drains_everything(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(100.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]


class TestPeriodicTask:
    def test_fires_at_interval(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 0.5, lambda: times.append(sim.now))
        sim.run_until(2.0)
        assert times == [0.0, 0.5, 1.0, 1.5, 2.0]

    def test_start_offset(self):
        sim = Simulator()
        times = []
        PeriodicTask(sim, 1.0, lambda: times.append(sim.now), start_offset=0.3)
        sim.run_until(2.5)
        assert times == [0.3, 1.3, 2.3]

    def test_stop_ceases_rescheduling(self):
        sim = Simulator()
        times = []
        task = PeriodicTask(sim, 1.0, lambda: times.append(sim.now))
        sim.schedule(1.5, task.stop)
        sim.run_until(5.0)
        assert times == [0.0, 1.0]

    def test_no_drift(self):
        """1000 iterations of a 0.033 s task land exactly on multiples."""
        sim = Simulator()
        times = []
        PeriodicTask(sim, 0.033, lambda: times.append(sim.now))
        sim.run_until(33.01)
        assert len(times) == 1001
        assert times[-1] == pytest.approx(33.0, abs=1e-6)

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            PeriodicTask(Simulator(), 0.0, lambda: None)


class TestScheduleWindow:
    def test_fires_start_then_end(self):
        sim = Simulator()
        events = []
        sim.schedule_window(
            1.0, 2.0, lambda: events.append(("start", sim.now)),
            lambda: events.append(("end", sim.now)),
        )
        sim.run_until(5.0)
        assert events == [("start", 1.0), ("end", 3.0)]

    def test_zero_duration_is_instantaneous(self):
        sim = Simulator()
        events = []
        sim.schedule_window(
            2.0, 0.0, lambda: events.append("start"),
            lambda: events.append("end"),
        )
        sim.run_until(3.0)
        assert events == ["start", "end"]

    def test_handles_are_cancellable(self):
        sim = Simulator()
        events = []
        start, end = sim.schedule_window(
            1.0, 2.0, lambda: events.append("start"),
            lambda: events.append("end"),
        )
        sim.cancel(end)
        sim.run_until(5.0)
        assert events == ["start"]

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Simulator().schedule_window(1.0, -1.0, lambda: None, lambda: None)
