"""Unit tests for bandwidth traces."""

import pytest

from repro.net.link import Link
from repro.net.simulator import Simulator
from repro.net.trace import BandwidthStep, BandwidthTrace


class TestBandwidthStep:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            BandwidthStep(-1.0, 100)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(ValueError):
            BandwidthStep(1.0, 0)


class TestBandwidthTrace:
    def test_steps_sorted_by_time(self):
        trace = BandwidthTrace(
            [BandwidthStep(5.0, 100), BandwidthStep(1.0, 200)]
        )
        assert [s.time_s for s in trace.steps] == [1.0, 5.0]

    def test_fig7_schedule_shape(self):
        trace = BandwidthTrace.step_schedule(
            initial_kbps=1500, steps=[(20.0, 750.0)], recover_at_s=57.0
        )
        assert trace.value_at(10.0, 1500) == 1500
        assert trace.value_at(30.0, 1500) == 750
        assert trace.value_at(60.0, 1500) == 1500

    def test_apply_drives_the_link(self):
        sim = Simulator()
        link = Link(sim, bandwidth_kbps=1500)
        trace = BandwidthTrace.step_schedule(
            initial_kbps=1500, steps=[(20.0, 750.0)], recover_at_s=57.0
        )
        trace.apply(sim, link)
        sim.run_until(25.0)
        assert link.bandwidth_kbps == 750
        sim.run_until(60.0)
        assert link.bandwidth_kbps == 1500

    def test_no_recover_when_zero(self):
        trace = BandwidthTrace.step_schedule(1000, [(5.0, 100.0)])
        assert len(trace.steps) == 1
