"""Tests for the baseline orchestrators over the real media plane."""

import pytest

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.core.types import Resolution


def run_short(mode, clients=None, **kwargs):
    spec = MeetingSpec(
        clients=clients
        or [ClientSpec("A", 3000, 3000), ClientSpec("B", 3000, 3000)],
        mode=mode,
        duration_s=kwargs.pop("duration_s", 15.0),
        warmup_s=kwargs.pop("warmup_s", 8.0),
        **kwargs,
    )
    runner = MeetingRunner(spec)
    report = runner.run()
    return runner, report


class TestNonGso:
    def test_publishers_use_coarse_layers_only(self):
        runner, _ = run_short("nongso")
        for client in runner.clients.values():
            for res, kbps in client.encoder.active_encodings.items():
                assert kbps in (1500, 600, 300)  # the template table

    def test_forwarding_installed_locally(self):
        runner, report = run_short("nongso")
        assert runner.node.video_selection("A", "B") is not None

    def test_unwanted_streams_still_pushed(self):
        """The Fig. 3a pathology: with one low-downlink subscriber, the
        publisher keeps sending layers nobody can use."""
        runner, _ = run_short(
            "nongso",
            clients=[
                ClientSpec("pub", 5000, 5000),
                ClientSpec("viewer", 3000, 700),
            ],
            subscriptions=[("viewer", "pub", Resolution.P720)],
        )
        pub = runner.clients["pub"]
        total = pub.encoder.total_target_kbps
        selected = runner.node.video_selection("viewer", "pub")
        from repro.rtp.ssrc import SsrcKey

        # The publisher pushes far more than the one selected stream.
        key = runner.ssrc_alloc.lookup(selected)
        forwarded_kbps = pub.encoder.active_encodings.get(key.kind, 0)
        assert total > forwarded_kbps  # wasted uplink

    def test_gso_stops_unwanted_streams_in_same_scenario(self):
        runner, _ = run_short(
            "gso",
            clients=[
                ClientSpec("pub", 5000, 5000),
                ClientSpec("viewer", 3000, 700),
            ],
            subscriptions=[("viewer", "pub", Resolution.P720)],
        )
        pub = runner.clients["pub"]
        enc = pub.encoder.active_encodings
        # Exactly the streams someone subscribes to (one subscriber -> at
        # most one stream after merge).
        assert len(enc) <= 1


class TestCompetitor1:
    def test_pushes_all_affordable_coarse_layers(self):
        runner, _ = run_short("competitor1")
        for client in runner.clients.values():
            assert client.encoder.active_encodings  # always pushing

    def test_runs_and_reports(self):
        _, report = run_short("competitor1")
        assert report.views


class TestCompetitor2:
    def test_single_stream_per_publisher(self):
        runner, _ = run_short("competitor2")
        for client in runner.clients.values():
            enc = client.encoder.active_encodings
            assert list(enc) == [Resolution.P720]

    def test_slow_downlink_suffers(self):
        """The slow-link problem embodied: one slow receiver gets a stream
        sized for the publisher's uplink, not its own downlink."""
        _, report = run_short(
            "competitor2",
            clients=[
                ClientSpec("pub", 4000, 4000),
                ClientSpec("slow", 3000, 500),
            ],
            subscriptions=[("slow", "pub", Resolution.P720)],
            duration_s=20.0,
            warmup_s=10.0,
        )
        view = report.view("slow", "pub")
        assert view.stall_rate > 0.3  # heavily stalled
