"""End-to-end meeting harness tests (kept short — benchmarks do long runs)."""

import pytest

from repro.conference import (
    ClientSpec,
    MeetingSpec,
    full_mesh_meeting,
    run_meeting,
    vmaf_proxy,
)
from repro.conference.runner import MeetingRunner
from repro.core.types import Resolution


def short_spec(mode="gso", **kwargs):
    defaults = dict(duration_s=12.0, warmup_s=6.0)
    defaults.update(kwargs)
    return MeetingSpec(
        clients=[
            ClientSpec("A", 3000, 3000),
            ClientSpec("B", 3000, 3000),
        ],
        mode=mode,
        **defaults,
    )


class TestSpecValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown mode"):
            short_spec(mode="magic")

    def test_rejects_duration_below_warmup(self):
        with pytest.raises(ValueError, match="exceed"):
            short_spec(duration_s=3.0, warmup_s=6.0)

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            MeetingSpec(
                clients=[ClientSpec("A"), ClientSpec("A")],
                duration_s=10,
                warmup_s=1,
            )

    def test_full_mesh_subscriptions(self):
        spec = full_mesh_meeting(3, duration_s=10.0, warmup_s=1.0)
        subs = spec.resolved_subscriptions()
        assert len(subs) == 6

    def test_explicit_subscriptions_respected(self):
        spec = short_spec(
            subscriptions=[("B", "A", Resolution.P360)],
        )
        assert spec.resolved_subscriptions() == [("B", "A", Resolution.P360)]

    def test_non_publisher_excluded_from_mesh(self):
        spec = MeetingSpec(
            clients=[ClientSpec("A"), ClientSpec("B", publishes=False)],
            duration_s=10,
            warmup_s=1,
        )
        subs = spec.resolved_subscriptions()
        assert all(pub == "A" for _, pub, _ in subs)
        assert ("A", "B", Resolution.P720) not in subs


class TestGsoMeeting:
    def test_two_party_meeting_delivers_video(self):
        report = run_meeting(short_spec())
        assert len(report.views) == 2
        for view in report.views:
            assert view.framerate > 20
            assert view.playback.rendered_kbps > 100

    def test_report_structure(self):
        report = run_meeting(short_spec())
        assert set(report.voice_stall) == {"A", "B"}
        assert set(report.publisher_send_kbps) == {"A", "B"}
        assert report.call_intervals  # controller ran
        assert report.receive_series["A"]

    def test_view_lookup(self):
        report = run_meeting(short_spec())
        view = report.view("A", "B")
        assert view.subscriber == "A"
        with pytest.raises(KeyError):
            report.view("A", "ghost")

    def test_determinism(self):
        r1 = run_meeting(short_spec(seed=5))
        r2 = run_meeting(short_spec(seed=5))
        assert r1.mean_framerate() == r2.mean_framerate()
        assert r1.mean_video_stall() == r2.mean_video_stall()

    def test_controller_intervals_within_policy(self):
        report = run_meeting(short_spec())
        for gap in report.call_intervals:
            assert 1.0 - 1e-6 <= gap <= 3.0 + 1e-6


class TestBaselineMeetings:
    @pytest.mark.parametrize("mode", ["nongso", "competitor1", "competitor2"])
    def test_baseline_modes_run(self, mode):
        report = run_meeting(short_spec(mode=mode))
        assert report.views
        assert report.mean_framerate() >= 0

    def test_slow_link_gso_beats_nongso_on_quality(self):
        """The headline comparison on a slow-downlink meeting."""
        def spec(mode):
            return MeetingSpec(
                clients=[
                    ClientSpec("fast", 3000, 4000),
                    ClientSpec("slow", 3000, 900),
                ],
                mode=mode,
                duration_s=25.0,
                warmup_s=12.0,
                seed=3,
            )

        gso = run_meeting(spec("gso"))
        nongso = run_meeting(spec("nongso"))
        # GSO must not stall more, and must deliver at least as much QoE.
        assert gso.mean_video_stall() <= nongso.mean_video_stall() + 0.05
        assert gso.mean_quality() >= nongso.mean_quality() - 1.0


class TestVmafProxy:
    def test_monotone_in_bitrate(self):
        assert vmaf_proxy(Resolution.P360, 600) > vmaf_proxy(Resolution.P360, 300)

    def test_zero_bitrate_zero_quality(self):
        assert vmaf_proxy(Resolution.P720, 0) == 0.0

    def test_higher_resolution_higher_ceiling(self):
        assert vmaf_proxy(Resolution.P720, 5000) > vmaf_proxy(
            Resolution.P180, 5000
        )


class TestRegionsAndChurnSpec:
    def test_regions_in_first_appearance_order(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("a", region="asia"),
                ClientSpec("b", region="eu"),
                ClientSpec("c", region="asia"),
            ],
            duration_s=10,
            warmup_s=2,
        )
        assert spec.regions == ["asia", "eu"]

    def test_join_leave_validation(self):
        with pytest.raises(ValueError, match="join_at_s"):
            MeetingSpec(
                clients=[ClientSpec("a", join_at_s=-1.0)],
                duration_s=10,
                warmup_s=2,
            )
        with pytest.raises(ValueError, match="follow"):
            MeetingSpec(
                clients=[ClientSpec("a", join_at_s=5.0, leave_at_s=4.0)],
                duration_s=10,
                warmup_s=2,
            )

    def test_inter_node_validation(self):
        with pytest.raises(ValueError, match="inter-node"):
            MeetingSpec(
                clients=[ClientSpec("a")],
                duration_s=10,
                warmup_s=2,
                inter_node_kbps=0,
            )

    def test_runner_presence_accounting(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("a"),
                ClientSpec("b", join_at_s=4.0, leave_at_s=9.0),
            ],
            duration_s=12,
            warmup_s=2,
        )
        runner = MeetingRunner(spec)
        assert runner._presence("a") == (0.0, 12.0)
        assert runner._presence("b") == (4.0, 9.0)
        assert runner._presence("ghost") == (0.0, 12.0)
