"""Tests for the Table 2 scenario matrix."""

import pytest

from repro.conference.scenarios import (
    DUT,
    HEALTHY_DOWN_KBPS,
    HEALTHY_UP_KBPS,
    SlowLinkCase,
    affected_views,
    slow_link_cases,
    slow_link_meeting,
)
from repro.core.types import Resolution


class TestMatrix:
    def test_full_matrix_has_15_cases(self):
        cases = slow_link_cases()
        assert len(cases) == 15  # normal + 7 per direction

    def test_paper_case_names_present(self):
        names = {c.name for c in slow_link_cases()}
        for expected in (
            "normal",
            "up-30%", "up-50%", "up-50ms", "up-100ms",
            "up-0.5M", "up-1M", "up-1.5M",
            "down-30%", "down-50%", "down-50ms", "down-100ms",
            "down-0.5M", "down-1M", "down-1.5M",
        ):
            assert expected in names

    def test_case_parameters(self):
        cases = {c.name: c for c in slow_link_cases()}
        assert cases["up-30%"].loss_rate == 0.30
        assert cases["down-100ms"].jitter_ms == 100.0
        assert cases["up-0.5M"].bandwidth_kbps == 500.0
        assert cases["down-1.5M"].direction == "downlink"


class TestMeetingConstruction:
    def test_uplink_limit_applies_to_dut_uplink_only(self):
        case = SlowLinkCase("up-1M", "uplink", bandwidth_kbps=1000.0)
        spec = slow_link_meeting(case, "gso")
        dut = next(c for c in spec.clients if c.client_id == DUT)
        assert dut.uplink_kbps == 1000.0
        assert dut.downlink_kbps == HEALTHY_DOWN_KBPS

    def test_downlink_limit_applies_to_dut_downlink_only(self):
        case = SlowLinkCase("down-1M", "downlink", bandwidth_kbps=1000.0)
        spec = slow_link_meeting(case, "gso")
        dut = next(c for c in spec.clients if c.client_id == DUT)
        assert dut.downlink_kbps == 1000.0
        assert dut.uplink_kbps == HEALTHY_UP_KBPS

    def test_peers_are_healthy(self):
        case = SlowLinkCase("up-50%", "uplink", loss_rate=0.5)
        spec = slow_link_meeting(case, "nongso", n_peers=3)
        peers = [c for c in spec.clients if c.client_id != DUT]
        assert len(peers) == 3
        assert all(p.loss_rate == 0.0 for p in peers)

    def test_modes_pass_through(self):
        case = slow_link_cases()[0]
        assert slow_link_meeting(case, "competitor1").mode == "competitor1"


class TestAffectedViews:
    def test_uplink_cases_hit_views_of_dut(self):
        case = SlowLinkCase("up-30%", "uplink", loss_rate=0.3)
        hit = affected_views(case)
        assert hit("peer0", DUT)
        assert not hit(DUT, "peer0")

    def test_downlink_cases_hit_duts_views(self):
        case = SlowLinkCase("down-30%", "downlink", loss_rate=0.3)
        hit = affected_views(case)
        assert hit(DUT, "peer0")
        assert not hit("peer0", DUT)

    def test_normal_hits_everything(self):
        case = SlowLinkCase("normal", "downlink")
        hit = affected_views(case)
        assert hit("a", "b") and hit(DUT, "peer0")
