"""Unit tests for meeting-level metrics and report aggregation."""

import pytest

from repro.conference.metrics import MeetingReport, ViewReport, vmaf_proxy
from repro.core.types import Resolution
from repro.media.jitter_buffer import PlaybackMetrics


def view(sub, pub, fps=30.0, stall=0.0, quality=50.0, kbps=800.0):
    playback = PlaybackMetrics(
        duration_s=10.0,
        rendered_frames=int(fps * 10),
        stall_intervals=int(stall * 10),
        total_intervals=10,
        rendered_kbps=kbps,
    )
    return ViewReport(
        subscriber=sub,
        publisher=pub,
        playback=playback,
        top_resolution=Resolution.P360,
        quality_score=quality,
    )


class TestViewReport:
    def test_passthrough_properties(self):
        v = view("a", "b", fps=24.0, stall=0.3)
        assert v.framerate == pytest.approx(24.0)
        assert v.stall_rate == pytest.approx(0.3)


class TestMeetingReport:
    def build(self):
        report = MeetingReport(duration_s=30.0)
        report.views = [
            view("a", "b", fps=30, stall=0.0, quality=60),
            view("b", "a", fps=20, stall=0.4, quality=30),
        ]
        report.voice_stall = {"a": 0.1, "b": 0.3}
        return report

    def test_mean_aggregates(self):
        r = self.build()
        assert r.mean_framerate() == pytest.approx(25.0)
        assert r.mean_video_stall() == pytest.approx(0.2)
        assert r.mean_quality() == pytest.approx(45.0)
        assert r.mean_voice_stall() == pytest.approx(0.2)

    def test_empty_report_is_zero(self):
        r = MeetingReport(duration_s=1.0)
        assert r.mean_framerate() == 0.0
        assert r.mean_video_stall() == 0.0
        assert r.mean_quality() == 0.0
        assert r.mean_voice_stall() == 0.0

    def test_view_lookup_raises_on_miss(self):
        r = self.build()
        assert r.view("a", "b").framerate == 30
        with pytest.raises(KeyError):
            r.view("x", "y")


class TestVmafProxy:
    def test_saturates_toward_ceiling(self):
        nearly = vmaf_proxy(Resolution.P360, 100_000)
        assert 75 < nearly <= 80  # the 360p ceiling is 80

    def test_half_point(self):
        # At the half-point bitrate the score is half the ceiling.
        assert vmaf_proxy(Resolution.P720, 1200) == pytest.approx(
            95 / 2, rel=0.01
        )

    def test_every_resolution_defined(self):
        for res in Resolution:
            assert vmaf_proxy(res, 500) > 0
