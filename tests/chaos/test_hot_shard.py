"""The hot_shard scenario: skewed growth, live drain, budget invariant."""

from repro.chaos import ChaosConfig, ChaosRunner, get_scenario, run_scenario
from repro.chaos.invariants import INV_SHARD_BUDGET

SEEDS = (0, 1, 2, 3)


def scenario_config(seed):
    scenario = get_scenario("hot_shard")
    params = {**ChaosConfig().to_dict(), "seed": seed}
    params.update(scenario.config_overrides)
    return scenario, ChaosConfig(**params)


class TestScenario:
    def test_overrides_pin_placement_and_budget(self):
        scenario = get_scenario("hot_shard")
        assert scenario.config_overrides["placement"] == "best_fit"
        assert scenario.config_overrides["shard_cost_budget"] > 0

    def test_runs_clean_with_zero_violations(self):
        for seed in SEEDS:
            report = run_scenario("hot_shard", seed)
            assert report.ok, report.summary()
            assert report.violations == []
            assert report.checks.get(INV_SHARD_BUDGET, 0) > 0, seed

    def test_detector_migrations_restore_the_budget(self):
        drained = 0
        for seed in SEEDS:
            scenario, config = scenario_config(seed)
            runner = ChaosRunner(
                config, scenario.build(seed, config), scenario=scenario.name
            )
            report = runner.run()
            assert report.ok, report.summary()
            drained += runner.cluster.migrations.get("hot_shard", 0)
            # End state: every live shard fits the budget, or is stuck at
            # an undrainable fixpoint the invariant explicitly tolerates.
            loads = runner.cluster.load_model.loads(
                runner.cluster.live_shards
            )
            for shard, load in loads.items():
                assert load <= runner.detector.budget or not (
                    runner.detector.drainable(runner.cluster, shard)
                ), (seed, shard, load)
        # The overload faults actually forced live migrations somewhere.
        assert drained > 0

    def test_byte_deterministic_across_replays(self):
        for seed in SEEDS[:2]:
            a = run_scenario("hot_shard", seed)
            b = run_scenario("hot_shard", seed)
            assert a.digest() == b.digest()

    def test_caller_sizing_survives_unrelated_fields(self):
        # run_scenario merges overrides on top of the caller's config:
        # pinned fields win, everything else is preserved.
        config = ChaosConfig(duration_s=6.0, tick_interval_s=1.0)
        scenario, merged = scenario_config(5)
        assert merged.placement == "best_fit"
        report = run_scenario("hot_shard", 5, config)
        assert report.ok
