"""Unit tests for the invariant checker."""

from repro.chaos.invariants import (
    ALL_INVARIANTS,
    INV_AVAILABILITY,
    INV_CONSTRAINTS,
    INV_CONVERGENCE,
    INV_DETERMINISM,
    InvariantChecker,
    kmr_iteration_bound,
)
from repro.core import Bandwidth, GsoSolver, Resolution, paper_ladder
from repro.core.constraints import Problem, Subscription
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry


def mesh(n=3, up=5000, down=3000):
    ids = [f"c{k}" for k in range(n)]
    ladder = paper_ladder()
    return Problem(
        {cid: ladder for cid in ids},
        {cid: Bandwidth(up, down) for cid in ids},
        [
            Subscription(a, b, Resolution.P720)
            for a in ids
            for b in ids
            if a != b
        ],
    )


class TestIterationBound:
    def test_counts_distinct_resolutions_per_publisher(self):
        p = mesh(2)
        distinct = len({s.resolution for s in paper_ladder()})
        assert kmr_iteration_bound(p) == 2 * distinct + 1

    def test_real_solves_stay_inside_bound(self):
        p = mesh(3)
        solution = GsoSolver().solve(p)
        assert solution.iterations <= kmr_iteration_bound(p)


class TestCheckSolution:
    def test_valid_solution_passes(self):
        p = mesh()
        s = GsoSolver().solve(p)
        checker = InvariantChecker()
        assert checker.check_solution("m", p, s, at_s=1.0)
        assert checker.ok
        assert checker.checks[INV_CONSTRAINTS] == 1
        assert checker.checks[INV_CONVERGENCE] == 1

    def test_constraint_violation_is_caught(self):
        p = mesh()
        s = GsoSolver().solve(p)
        # Sabotage: a subscriber receives a stream nobody publishes at
        # that bitrate -> Solution.validate must fail.
        sub = next(iter(s.assignments))
        pub = next(iter(s.assignments[sub]))
        stream = s.assignments[sub][pub]
        s.assignments[sub][pub] = type(stream)(
            bitrate_kbps=stream.bitrate_kbps + 1,
            resolution=stream.resolution,
            qoe=stream.qoe,
        )
        checker = InvariantChecker()
        assert not checker.check_solution("m", p, s, at_s=2.0)
        assert [v.invariant for v in checker.violations] == [INV_CONSTRAINTS]
        assert checker.violations[0].meeting_id == "m"
        assert checker.violations[0].at_s == 2.0

    def test_convergence_violation_is_caught(self):
        p = mesh()
        s = GsoSolver().solve(p)
        s.iterations = kmr_iteration_bound(p) + 1
        checker = InvariantChecker()
        assert not checker.check_solution("m", p, s, at_s=3.0)
        assert [v.invariant for v in checker.violations] == [INV_CONVERGENCE]


class TestCheckAvailability:
    def test_all_held_passes(self):
        checker = InvariantChecker()
        assert checker.check_availability(
            ["m0", "m1"], {"m0": True, "m1": True}, at_s=1.0
        )
        assert checker.checks[INV_AVAILABILITY] == 2

    def test_missing_configuration_fails(self):
        checker = InvariantChecker()
        assert not checker.check_availability(
            ["m0", "m1"], {"m0": True}, at_s=4.0
        )
        assert checker.violations[0].invariant == INV_AVAILABILITY
        assert checker.violations[0].meeting_id == "m1"


class TestCheckDeterminism:
    def test_identical_digests_pass(self):
        checker = InvariantChecker()
        assert checker.check_determinism("abc", "abc", seed=1)
        assert checker.checks[INV_DETERMINISM] == 1

    def test_divergent_digests_fail(self):
        checker = InvariantChecker()
        assert not checker.check_determinism("abc", "abd", seed=9)
        v = checker.violations[0]
        assert v.invariant == INV_DETERMINISM
        assert "seed 9" in v.detail


class TestExportAndMetrics:
    def test_to_dict_shape(self):
        checker = InvariantChecker()
        checker.check_availability(["m0"], {}, at_s=1.0)
        d = checker.to_dict()
        assert set(d["checks"]) == set(ALL_INVARIANTS)
        assert d["violations"][0]["invariant"] == INV_AVAILABILITY

    def test_counters_emitted_when_registry_enabled(self):
        p = mesh()
        s = GsoSolver().solve(p)
        with enabled_registry() as reg:
            checker = InvariantChecker()
            checker.check_solution("m", p, s, at_s=1.0)
            checker.check_availability(["m0"], {}, at_s=1.0)
            snap = reg.snapshot()["counters"]
        checks = {
            k: v for k, v in snap.items() if obs_names.CHAOS_CHECKS in k
        }
        violations = {
            k: v for k, v in snap.items() if obs_names.CHAOS_VIOLATIONS in k
        }
        assert sum(checks.values()) == 3  # constraints + convergence + avail
        assert sum(violations.values()) == 1
