"""Chaos x telemetry integration: every run carries SLO verdicts, an
event log digest, and correlated serve rows — deterministically."""

from repro.chaos import ChaosConfig, ChaosRunner, get_scenario, run_scenario
from repro.obs.registry import enabled_registry
from repro.obs.slo import SloEngine, default_slos


def _config(seed=1, **overrides):
    base = dict(seed=seed, meetings=3, duration_s=8.0, shards=2)
    base.update(overrides)
    return ChaosConfig(**base)


class TestReportSloFields:
    def test_every_run_reports_deterministic_verdicts(self):
        report = run_scenario("healthy", 1, _config())
        names = [v["name"] for v in report.slo]
        assert names == [
            "kmr_iteration_bound",
            "degraded_serve_rate",
            "stream_interruption_s",
            "stage_delivery_p95",
            "stage_mailbox_dwell_p95",
            "stage_sched_wait_p95",
            "stage_shed_p95",
            "stage_solve_p95",
        ]
        assert all(v["deterministic"] for v in report.slo)
        assert report.slo_ok

    def test_wall_clock_verdicts_stay_out_of_digest(self):
        # With no registry the latency SLO is SKIP but still reported
        # informationally; either way it must never enter `slo`.
        report = run_scenario("healthy", 1, _config())
        info_names = [v["name"] for v in report.slo_informational]
        assert info_names == ["solve_latency_p95"]
        assert "slo_informational" not in report.to_dict()

    def test_solve_latency_measured_with_registry(self):
        with enabled_registry():
            report = run_scenario("healthy", 1, _config())
        (latency,) = report.slo_informational
        assert latency["value"] is not None
        assert latency["value"] > 0.0

    def test_event_log_embedded_in_report(self):
        report = run_scenario("bandwidth_collapse", 2, _config(seed=2))
        assert report.events_total > 0
        assert len(report.event_digest) == 64

    def test_serves_carry_correlation_ids(self):
        report = run_scenario("healthy", 1, _config())
        assert report.serves
        for row in report.serves:
            assert row["cid"].startswith(row["meeting"] + "#")

    def test_summary_renders_slo_verdicts(self):
        report = run_scenario("healthy", 1, _config())
        summary = report.summary()
        assert "SLO PASS kmr_iteration_bound" in summary
        assert "(wall-clock)" in summary
        assert "events:" in summary


class TestDeterminism:
    def test_same_seed_same_digest_and_verdicts(self):
        runs = [run_scenario("kitchen_sink", 7, _config(seed=7))
                for _ in range(2)]
        assert runs[0].digest() == runs[1].digest()
        assert runs[0].event_digest == runs[1].event_digest
        assert runs[0].slo == runs[1].slo

    def test_registry_does_not_change_digest(self):
        plain = run_scenario("feedback_loss", 3, _config(seed=3))
        with enabled_registry():
            instrumented = run_scenario(
                "feedback_loss", 3, _config(seed=3)
            )
        assert plain.digest() == instrumented.digest()


class TestCustomEngine:
    def test_runner_accepts_custom_slo_engine(self):
        config = _config()
        scenario = get_scenario("unfixable")
        engine = SloEngine(default_slos(degraded_serve_rate=0.0))
        runner = ChaosRunner(
            config, scenario.build(1, config),
            scenario=scenario.name, slo_engine=engine,
        )
        report = runner.run()
        by_name = {v["name"]: v for v in report.slo}
        # The unfixable scenario forces fallbacks, so a zero-tolerance
        # degraded-rate objective must fail.
        assert not by_name["degraded_serve_rate"]["ok"]
        assert not report.slo_ok
        # SLO breaches are observability, not invariant violations.
        assert report.ok

    def test_runner_keeps_verdict_objects(self):
        config = _config()
        runner = ChaosRunner(
            config, get_scenario("healthy").build(1, config),
            scenario="healthy",
        )
        report = runner.run()
        assert len(runner.slo_verdicts) == (
            len(report.slo) + len(report.slo_informational)
        )
        assert {v.name for v in runner.slo_verdicts} == (
            {v["name"] for v in report.slo}
            | {v["name"] for v in report.slo_informational}
        )
