"""Tests for the named scenario registry."""

import pytest

from repro.chaos import faults as F
from repro.chaos.runner import ChaosConfig
from repro.chaos.scenarios import get_scenario, list_scenarios

EXPECTED = {
    "healthy",
    "shard_churn",
    "feedback_loss",
    "bandwidth_collapse",
    "publisher_churn",
    "stale_snapshot",
    "unfixable",
    "hot_shard",
    "kitchen_sink",
}


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert {s.name for s in list_scenarios()} == EXPECTED

    def test_listing_is_sorted(self):
        names = [s.name for s in list_scenarios()]
        assert names == sorted(names)

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="healthy"):
            get_scenario("earthquake")

    def test_descriptions_are_present(self):
        assert all(s.description for s in list_scenarios())


class TestBuilders:
    def test_healthy_is_empty(self):
        config = ChaosConfig()
        assert len(get_scenario("healthy").build(1, config)) == 0

    def test_builders_are_deterministic(self):
        config = ChaosConfig()
        for scenario in list_scenarios():
            a = scenario.build(5, config)
            b = scenario.build(5, config)
            assert a.to_dicts() == b.to_dicts(), scenario.name

    def test_faults_land_inside_the_run(self):
        config = ChaosConfig(duration_s=8.0)
        for scenario in list_scenarios():
            for fault in scenario.build(3, config):
                assert 0.0 <= fault.at_s <= config.duration_s, scenario.name

    def test_unfixable_is_a_lone_uncleared_solver_fault(self):
        schedule = get_scenario("unfixable").build(1, ChaosConfig())
        kinds = [f.kind for f in schedule]
        assert kinds == [F.SOLVER_FAULT]

    def test_targets_stay_inside_the_world(self):
        config = ChaosConfig(meetings=3)
        valid = {f"chaos-{k}" for k in range(config.meetings)}
        for scenario in list_scenarios():
            for fault in scenario.build(2, config):
                if fault.kind not in F.SHARD_KINDS and fault.target:
                    assert fault.target in valid, (scenario.name, fault)
