"""Tests for the soak sweep and its JSONL verdict stream."""

import json

import pytest

from repro.chaos.report import REPORT_SCHEMA
from repro.chaos.runner import ChaosConfig
from repro.chaos.soak import run_scenario, soak


def fast_config():
    return ChaosConfig(meetings=2, duration_s=4.0)


class TestRunScenario:
    def test_overrides_seed_in_config(self):
        report = run_scenario("healthy", seed=9, config=fast_config())
        assert report.seed == 9
        assert report.config["seed"] == 9

    def test_accepts_scenario_objects(self):
        from repro.chaos.scenarios import get_scenario

        report = run_scenario(
            get_scenario("healthy"), seed=1, config=fast_config()
        )
        assert report.scenario == "healthy"


class TestSoak:
    def test_sweep_is_green_and_sized(self):
        result = soak(
            seeds=2,
            scenarios=["healthy", "unfixable"],
            config=fast_config(),
        )
        assert result.ok
        assert result.runs == 4
        assert result.violations == 0
        assert not result.determinism_failures

    def test_jsonl_output(self, tmp_path):
        out = tmp_path / "verdicts.jsonl"
        result = soak(
            seeds=1, scenarios=["healthy"], config=fast_config(), out=out
        )
        lines = out.read_text().splitlines()
        assert len(lines) == result.runs == 1
        record = json.loads(lines[0])
        assert record["schema"] == REPORT_SCHEMA
        assert record["ok"] is True
        assert record["scenario"] == "healthy"

    def test_base_seed_shifts_the_sweep(self):
        a = soak(
            seeds=1,
            scenarios=["healthy"],
            config=fast_config(),
            base_seed=0,
        )
        b = soak(
            seeds=1,
            scenarios=["healthy"],
            config=fast_config(),
            base_seed=5,
        )
        assert a.reports[0].seed == 0
        assert b.reports[0].seed == 5
        assert a.reports[0].digest() != b.reports[0].digest()

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            soak(seeds=1, scenarios=["nope"], config=fast_config())

    def test_zero_seeds_rejected(self):
        with pytest.raises(ValueError):
            soak(seeds=0)

    def test_summary_mentions_each_scenario(self):
        result = soak(
            seeds=1,
            scenarios=["healthy", "unfixable"],
            config=fast_config(),
        )
        text = result.summary()
        assert "healthy" in text and "unfixable" in text
        assert "OK" in text
