"""Integration tests: the chaos runner against the real cluster."""

import pytest

from repro.chaos import faults as F
from repro.chaos.faults import Fault, FaultSchedule
from repro.chaos.runner import ChaosConfig, ChaosRunner
from repro.cluster.cluster import (
    SOURCE_CACHE,
    SOURCE_FALLBACK,
    SOURCE_SOLVE,
)
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry


def small_config(**overrides):
    base = dict(seed=1, meetings=2, duration_s=6.0, shards=2)
    base.update(overrides)
    return ChaosConfig(**base)


def run(schedule=None, **overrides):
    return ChaosRunner(small_config(**overrides), schedule).run()


class TestHealthyRun:
    def test_no_faults_no_violations(self):
        report = run()
        assert report.ok
        assert report.faults == []
        assert report.serves

    def test_every_meeting_converges_to_full_solutions(self):
        report = run()
        for meeting, summary in report.meetings.items():
            assert summary["applied_source"] in (SOURCE_SOLVE, SOURCE_CACHE)
            assert summary["fallbacks"] == 0

    def test_invariants_checked_on_every_serve(self):
        report = run()
        assert report.checks["constraints"] == len(report.serves)
        assert report.checks["kmr_convergence"] == len(report.serves)
        assert report.checks["fallback_availability"] > 0

    def test_same_seed_byte_identical_reports(self):
        a, b = run(), run()
        assert a.to_json() == b.to_json()
        assert a.digest() == b.digest()

    def test_different_seeds_differ(self):
        assert run(seed=1).digest() != run(seed=2).digest()


class TestSolverFault:
    def schedule(self, at=2.2, target="chaos-0"):
        return FaultSchedule().add(Fault(at, F.SOLVER_FAULT, target=target))

    def test_poisoned_meeting_degrades_within_one_tick(self):
        report = run(self.schedule())
        assert report.ok
        fallbacks = [
            s
            for s in report.serves
            if s["meeting"] == "chaos-0" and s["source"] == SOURCE_FALLBACK
        ]
        assert fallbacks
        assert fallbacks[0]["t"] <= 2.2 + 1.0  # one tick_interval_s

    def test_poisoned_meeting_stays_on_fallback(self):
        report = run(self.schedule())
        after = [
            s
            for s in report.serves
            if s["meeting"] == "chaos-0" and s["t"] > 2.2
        ]
        assert after
        assert all(s["source"] == SOURCE_FALLBACK for s in after)
        assert report.meetings["chaos-0"]["applied_source"] == SOURCE_FALLBACK

    def test_unfixable_fault_is_deterministic(self):
        a = run(self.schedule())
        b = run(self.schedule())
        assert a.digest() == b.digest()

    def test_clear_heals_and_counts_recovery(self):
        schedule = self.schedule(at=2.2).add(
            Fault(3.8, F.CLEAR_SOLVER_FAULT, target="chaos-0")
        )
        report = run(schedule)
        assert report.ok
        assert report.meetings["chaos-0"]["applied_source"] in (
            SOURCE_SOLVE,
            SOURCE_CACHE,
        )
        assert report.meetings["chaos-0"]["fallback_recoveries"] == 1

    def test_other_meetings_unaffected(self):
        report = run(self.schedule())
        other = [s for s in report.serves if s["meeting"] == "chaos-1"]
        assert all(s["source"] != SOURCE_FALLBACK for s in other)


class TestShardFaults:
    def test_kill_shard_rehomes_and_recovers(self):
        schedule = FaultSchedule().add(Fault(2.7, F.KILL_SHARD))
        report = run(schedule)
        assert report.ok
        event = report.faults[0]
        assert event["outcome"] == "applied"
        # Re-homed meetings were served a fallback during handover, then
        # re-converged to full solutions.
        if event["rehomed"]:
            assert any(
                s["source"] == SOURCE_FALLBACK for s in report.serves
            )
        for summary in report.meetings.values():
            assert summary["applied_source"] in (SOURCE_SOLVE, SOURCE_CACHE)

    def test_kill_last_shard_is_skipped_not_fatal(self):
        schedule = FaultSchedule().add(Fault(2.0, F.KILL_SHARD))
        report = run(schedule, shards=1)
        assert report.ok
        assert report.faults[0]["outcome"] == "skipped"

    def test_restart_after_kill(self):
        schedule = (
            FaultSchedule()
            .add(Fault(2.0, F.KILL_SHARD))
            .add(Fault(4.0, F.RESTART_SHARD))
        )
        report = run(schedule)
        assert report.ok
        assert [f["outcome"] for f in report.faults] == ["applied", "applied"]

    def test_restart_without_dead_shard_is_skipped(self):
        schedule = FaultSchedule().add(Fault(2.0, F.RESTART_SHARD))
        report = run(schedule)
        assert report.faults[0]["outcome"] == "skipped"

    def test_add_shard_grows_ring(self):
        schedule = FaultSchedule().add(Fault(2.0, F.ADD_SHARD))
        report = run(schedule)
        assert report.ok
        assert report.faults[0]["outcome"] == "applied"

    def test_add_existing_live_shard_is_skipped(self):
        schedule = FaultSchedule().add(
            Fault(2.0, F.ADD_SHARD, target="shard-0")
        )
        report = run(schedule)
        assert report.faults[0]["outcome"] == "skipped"


class TestFeedbackFaults:
    def test_drop_report_suppresses_submissions(self):
        schedule = FaultSchedule().add(
            Fault(1.0, F.DROP_REPORT, target="chaos-0", factor=2)
        )
        report = run(schedule)
        assert report.ok
        assert report.meetings["chaos-0"]["reports_dropped"] == 2

    def test_lose_tmmbr_skips_application_then_heals(self):
        schedule = FaultSchedule().add(
            Fault(1.0, F.LOSE_TMMBR, target="chaos-0")
        )
        report = run(schedule)
        assert report.ok
        assert report.meetings["chaos-0"]["tmmbr_lost"] == 1
        undelivered = [s for s in report.serves if not s["delivered"]]
        assert len(undelivered) == 1
        # A later delivery healed the lost push.
        later = [
            s
            for s in report.serves
            if s["meeting"] == "chaos-0" and s["t"] > undelivered[0]["t"]
        ]
        assert any(s["delivered"] for s in later)

    def test_delay_report_defers_but_recovers(self):
        schedule = FaultSchedule().add(
            Fault(1.0, F.DELAY_REPORT, target="chaos-0", factor=1.5)
        )
        report = run(schedule)
        assert report.ok
        assert report.faults[0]["outcome"] == "applied"


class TestWorldFaults:
    def test_bandwidth_collapse_and_recovery(self):
        schedule = (
            FaultSchedule()
            .add(Fault(1.5, F.DOWNLINK_COLLAPSE, target="chaos-0", factor=0.1))
            .add(Fault(4.0, F.BANDWIDTH_RECOVER, target="chaos-0"))
        )
        report = run(schedule)
        assert report.ok
        assert [f["outcome"] for f in report.faults] == ["applied", "applied"]

    def test_publisher_churn(self):
        schedule = (
            FaultSchedule()
            .add(Fault(1.5, F.PUBLISHER_JOIN, target="chaos-0"))
            .add(Fault(3.5, F.PUBLISHER_LEAVE, target="chaos-0"))
        )
        report = run(schedule)
        assert report.ok

    def test_stale_snapshot_still_satisfies_invariants(self):
        schedule = (
            FaultSchedule()
            .add(Fault(1.5, F.UPLINK_COLLAPSE, target="chaos-0", factor=0.3))
            .add(Fault(3.5, F.STALE_SNAPSHOT, target="chaos-0", factor=1))
        )
        report = run(schedule)
        assert report.ok
        stale = [f for f in report.faults if f["kind"] == F.STALE_SNAPSHOT]
        assert stale[0]["outcome"] == "applied"


class TestObsIntegration:
    def test_fault_and_run_counters_emitted(self):
        schedule = FaultSchedule().add(
            Fault(1.0, F.LOSE_TMMBR, target="chaos-0")
        )
        with enabled_registry() as reg:
            report = ChaosRunner(small_config(), schedule).run()
            snap = reg.snapshot()["counters"]
        assert report.ok
        assert any(obs_names.CHAOS_FAULTS in key for key in snap)
        assert any(
            obs_names.CHAOS_RUNS in key and 'verdict="pass"' in key
            for key in snap
        )

    def test_recovery_histogram_observed(self):
        schedule = (
            FaultSchedule()
            .add(Fault(2.2, F.SOLVER_FAULT, target="chaos-0"))
            .add(Fault(3.8, F.CLEAR_SOLVER_FAULT, target="chaos-0"))
        )
        with enabled_registry() as reg:
            ChaosRunner(small_config(), schedule).run()
            snap = reg.snapshot()["histograms"]
        assert any(obs_names.CHAOS_RECOVERY_TICKS in key for key in snap)


class TestConfigValidation:
    def test_rejects_bad_durations(self):
        with pytest.raises(ValueError):
            ChaosConfig(duration_s=0)
        with pytest.raises(ValueError):
            ChaosConfig(tick_interval_s=-1.0)
        with pytest.raises(ValueError):
            ChaosConfig(meetings=0)
