"""Unit tests for the fault vocabulary and schedule composition."""

import pytest

from repro.chaos import faults as F
from repro.chaos.faults import Fault, FaultSchedule


class TestFault:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            Fault(-1.0, F.KILL_SHARD)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Fault(1.0, "meteor_strike")

    def test_rejects_negative_factor(self):
        with pytest.raises(ValueError):
            Fault(1.0, F.DELAY_REPORT, factor=-0.5)

    def test_shifted_moves_time_only(self):
        f = Fault(2.0, F.LOSE_TMMBR, target="m1")
        g = f.shifted(3.5)
        assert g.at_s == 5.5
        assert (g.kind, g.target) == (f.kind, f.target)
        assert f.at_s == 2.0  # original untouched (frozen)

    def test_to_dict_round_trips_fields(self):
        f = Fault(1.5, F.DOWNLINK_COLLAPSE, target="m0", client="A", factor=0.2)
        assert f.to_dict() == {
            "at_s": 1.5,
            "kind": F.DOWNLINK_COLLAPSE,
            "target": "m0",
            "client": "A",
            "factor": 0.2,
        }

    def test_every_kind_is_constructible(self):
        for kind in F.FAULT_KINDS:
            assert Fault(0.0, kind).kind == kind


class TestFaultSchedule:
    def test_add_keeps_timeline_sorted(self):
        s = (
            FaultSchedule()
            .add(Fault(5.0, F.KILL_SHARD))
            .add(Fault(1.0, F.LOSE_TMMBR))
            .add(Fault(3.0, F.DROP_REPORT))
        )
        assert [f.at_s for f in s] == [1.0, 3.0, 5.0]

    def test_merge_combines_without_mutating(self):
        a = FaultSchedule([Fault(1.0, F.LOSE_TMMBR)])
        b = FaultSchedule([Fault(0.5, F.KILL_SHARD)])
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(a) == 1 and len(b) == 1
        assert merged.faults[0].at_s == 0.5

    def test_shifted_schedule(self):
        s = FaultSchedule([Fault(1.0, F.LOSE_TMMBR)]).shifted(2.0)
        assert s.faults[0].at_s == 3.0

    def test_until_truncates(self):
        s = FaultSchedule(
            [Fault(1.0, F.LOSE_TMMBR), Fault(9.0, F.KILL_SHARD)]
        ).until(5.0)
        assert [f.at_s for f in s] == [1.0]

    def test_deterministic_order_for_same_time(self):
        faults = [
            Fault(1.0, F.LOSE_TMMBR, target="m1"),
            Fault(1.0, F.DROP_REPORT, target="m0"),
            Fault(1.0, F.LOSE_TMMBR, target="m0"),
        ]
        a = FaultSchedule(faults)
        b = FaultSchedule(reversed(faults))
        assert a.to_dicts() == b.to_dicts()


class TestSeededSchedule:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            duration_s=10.0,
            meeting_ids=["m0", "m1"],
            shard_names=["shard-0", "shard-1"],
        )
        a = FaultSchedule.seeded(7, **kwargs)
        b = FaultSchedule.seeded(7, **kwargs)
        assert a.to_dicts() == b.to_dicts()
        assert len(a) == 8

    def test_different_seeds_differ(self):
        kwargs = dict(
            duration_s=10.0,
            meeting_ids=["m0", "m1"],
            shard_names=["shard-0", "shard-1"],
        )
        a = FaultSchedule.seeded(1, **kwargs)
        b = FaultSchedule.seeded(2, **kwargs)
        assert a.to_dicts() != b.to_dicts()

    def test_single_shard_never_draws_shard_death(self):
        s = FaultSchedule.seeded(
            3,
            duration_s=10.0,
            meeting_ids=["m0"],
            shard_names=["shard-0"],
            faults=40,
        )
        kinds = {f.kind for f in s}
        assert F.KILL_SHARD not in kinds
        assert F.RESTART_SHARD not in kinds

    def test_kind_restriction(self):
        s = FaultSchedule.seeded(
            5,
            duration_s=10.0,
            meeting_ids=["m0"],
            shard_names=[],
            faults=10,
            kinds=[F.LOSE_TMMBR],
        )
        assert {f.kind for f in s} == {F.LOSE_TMMBR}

    def test_faults_land_inside_duration(self):
        s = FaultSchedule.seeded(
            9,
            duration_s=6.0,
            meeting_ids=["m0"],
            shard_names=["shard-0", "shard-1"],
            faults=30,
        )
        assert all(0.0 < f.at_s < 6.0 for f in s)
