"""Unit tests for the deterministic chaos world."""

import pytest

from repro.chaos.world import SNAPSHOT_HISTORY, ChaosWorld


def problem_signature(problem):
    return sorted(
        (cid, bw.uplink_kbps, bw.downlink_kbps)
        for cid, bw in problem.bandwidth.items()
    )


class TestWorldConstruction:
    def test_same_seed_same_world(self):
        a = ChaosWorld(seed=4, meetings=3)
        b = ChaosWorld(seed=4, meetings=3)
        assert a.meeting_ids == b.meeting_ids
        for mid in a.meeting_ids:
            assert problem_signature(
                a.current_problem(mid)
            ) == problem_signature(b.current_problem(mid))

    def test_different_seeds_differ(self):
        a = ChaosWorld(seed=1, meetings=2)
        b = ChaosWorld(seed=2, meetings=2)
        assert any(
            problem_signature(a.current_problem(m))
            != problem_signature(b.current_problem(m))
            for m in a.meeting_ids
        )

    def test_meeting_ids_are_stable(self):
        w = ChaosWorld(seed=1, meetings=3)
        assert w.meeting_ids == ["chaos-0", "chaos-1", "chaos-2"]

    def test_rejects_zero_meetings(self):
        with pytest.raises(ValueError):
            ChaosWorld(seed=1, meetings=0)

    def test_problems_are_full_mesh(self):
        w = ChaosWorld(seed=5, meetings=1)
        p = w.current_problem("chaos-0")
        n = len(p.bandwidth)
        assert len(p.subscriptions) == n * (n - 1)


class TestBandwidthFaults:
    def test_collapse_scales_budget(self):
        w = ChaosWorld(seed=3, meetings=1)
        before = w.current_problem("chaos-0")
        cid = w.scale_bandwidth("chaos-0", "", down_scale=0.1)
        after = w.current_problem("chaos-0")
        assert cid == min(before.bandwidth)
        assert (
            after.bandwidth[cid].downlink_kbps
            < before.bandwidth[cid].downlink_kbps
        )

    def test_recover_restores_nominal(self):
        w = ChaosWorld(seed=3, meetings=1)
        nominal = problem_signature(w.current_problem("chaos-0"))
        cid = w.scale_bandwidth("chaos-0", "", down_scale=0.1, up_scale=0.1)
        w.scale_bandwidth("chaos-0", cid, down_scale=1.0, up_scale=1.0)
        assert problem_signature(w.current_problem("chaos-0")) == nominal

    def test_collapse_never_reaches_zero(self):
        w = ChaosWorld(seed=3, meetings=1)
        cid = w.scale_bandwidth("chaos-0", "", down_scale=0.0, up_scale=0.0)
        state = w.meeting("chaos-0").clients[cid]
        assert state.uplink_kbps > 0
        assert state.downlink_kbps > 0


class TestMembershipChurn:
    def test_remove_client_shrinks_meeting(self):
        w = ChaosWorld(seed=8, meetings=1)
        while w.meeting("chaos-0").size < 3:
            w.add_client("chaos-0")
        before = w.meeting("chaos-0").size
        cid = w.remove_client("chaos-0")
        assert cid != ""
        assert w.meeting("chaos-0").size == before - 1
        assert cid not in w.current_problem("chaos-0").bandwidth

    def test_remove_keeps_a_meeting_a_meeting(self):
        w = ChaosWorld(seed=8, meetings=1)
        while w.meeting("chaos-0").size > 2:
            assert w.remove_client("chaos-0") != ""
        assert w.remove_client("chaos-0") == ""
        assert w.meeting("chaos-0").size == 2

    def test_add_client_is_deterministic(self):
        a = ChaosWorld(seed=6, meetings=1)
        b = ChaosWorld(seed=6, meetings=1)
        ca, cb = a.add_client("chaos-0"), b.add_client("chaos-0")
        assert ca == cb
        assert problem_signature(
            a.current_problem("chaos-0")
        ) == problem_signature(b.current_problem("chaos-0"))

    def test_joined_ids_never_collide(self):
        w = ChaosWorld(seed=6, meetings=1)
        first = w.add_client("chaos-0")
        w.remove_client("chaos-0", first)
        second = w.add_client("chaos-0")
        assert first != second


class TestSnapshots:
    def test_versions_advance_on_mutation(self):
        w = ChaosWorld(seed=2, meetings=1)
        v0 = w.meeting("chaos-0").version
        w.scale_bandwidth("chaos-0", "", down_scale=0.5)
        assert w.meeting("chaos-0").version == v0 + 1

    def test_stale_problem_reaches_back(self):
        w = ChaosWorld(seed=2, meetings=1)
        old = problem_signature(w.current_problem("chaos-0"))
        w.scale_bandwidth("chaos-0", "", down_scale=0.5)
        version, stale = w.stale_problem("chaos-0", age=1)
        assert problem_signature(stale) == old
        assert version < w.meeting("chaos-0").version

    def test_stale_age_clamps_to_oldest(self):
        w = ChaosWorld(seed=2, meetings=1)
        version, _ = w.stale_problem("chaos-0", age=99)
        assert version == w.meeting("chaos-0").snapshots[0][0]

    def test_history_is_bounded(self):
        w = ChaosWorld(seed=2, meetings=1)
        for _ in range(SNAPSHOT_HISTORY * 2):
            w.scale_bandwidth("chaos-0", "", down_scale=0.5)
        assert len(w.meeting("chaos-0").snapshots) == SNAPSHOT_HISTORY

    def test_problems_are_solvable(self):
        from repro.core import GsoSolver, SolverConfig

        w = ChaosWorld(seed=11, meetings=2)
        solver = GsoSolver(SolverConfig(granularity_kbps=25))
        for mid in w.meeting_ids:
            p = w.current_problem(mid)
            solver.solve(p).validate(p)
