"""Tests for the ``repro chaos`` CLI surface."""

import json

from repro.cli import build_parser, main

FAST = ["--meetings", "2", "--duration", "4"]


class TestParser:
    def test_chaos_requires_subcommand(self):
        import pytest

        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["chaos", "run"])
        assert args.scenario == "kitchen_sink"
        assert args.seed == 1
        assert args.shards == 2

    def test_soak_defaults(self):
        args = build_parser().parse_args(["chaos", "soak"])
        assert args.seeds == 20
        assert args.scenario is None


class TestScenariosCommand:
    def test_lists_registry(self, capsys):
        assert main(["chaos", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "healthy" in out
        assert "unfixable" in out


class TestRunCommand:
    def test_healthy_run_exits_zero(self, capsys):
        rc = main(["chaos", "run", "--scenario", "healthy", *FAST])
        assert rc == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "report digest" in out

    def test_json_output_is_canonical(self, capsys):
        rc = main(
            ["chaos", "run", "--scenario", "unfixable", "--json", *FAST]
        )
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["ok"] is True
        assert record["scenario"] == "unfixable"
        assert record["served_by_source"].get("fallback", 0) > 0

    def test_unknown_scenario_exits_two(self, capsys):
        rc = main(["chaos", "run", "--scenario", "nope", *FAST])
        assert rc == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestSoakCommand:
    def test_short_soak_green(self, capsys, tmp_path):
        out_path = tmp_path / "soak.jsonl"
        rc = main(
            [
                "chaos",
                "soak",
                "--seeds",
                "1",
                "--scenario",
                "healthy",
                "--scenario",
                "unfixable",
                "--out",
                str(out_path),
                *FAST,
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "OK" in text
        lines = out_path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["ok"] for line in lines)

    def test_metrics_out_written(self, capsys, tmp_path):
        metrics = tmp_path / "chaos.prom"
        rc = main(
            [
                "chaos",
                "soak",
                "--seeds",
                "1",
                "--scenario",
                "healthy",
                "--metrics-out",
                str(metrics),
                *FAST,
            ]
        )
        assert rc == 0
        assert "repro_chaos_runs_total" in metrics.read_text()

    def test_unknown_scenario_exits_two(self, capsys):
        rc = main(["chaos", "soak", "--seeds", "1", "--scenario", "nope", *FAST])
        assert rc == 2
