"""Tests for the conference client endpoint (wired to a loopback node)."""

import pytest

from repro.client.client import ClientConfig, ConferenceClient
from repro.core.types import Resolution
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator
from repro.rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket
from repro.rtp.rtcp import AppPacket
from repro.rtp.semb import SEMB_NAME, SembReport
from repro.rtp.tmmbr import GSO_TMMBN_NAME, GsoTmmbn, GsoTmmbr, TmmbrEntry
from repro.media.sfu import is_rtcp

SSRCS = {Resolution.P720: 0x10, Resolution.P360: 0x11, Resolution.P180: 0x12}


class Loopback:
    """Captures everything the client puts on its uplink."""

    def __init__(self, sim):
        self.sim = sim
        self.uplink = Link(sim, bandwidth_kbps=10_000, propagation_ms=1)
        self.rtp = []
        self.rtcp = []
        self.uplink.connect(self._receive)

    def _receive(self, packet, now):
        data = packet.payload
        if is_rtcp(data):
            self.rtcp.append(data)
        else:
            self.rtp.append(RtpPacket.parse(data))


def make_client(**cfg):
    sim = Simulator()
    loop = Loopback(sim)
    client = ConferenceClient(
        sim,
        "alice",
        uplink=loop.uplink,
        ssrcs=SSRCS,
        audio_ssrc=0x20,
        rtcp_ssrc=0x21,
        config=ClientConfig(**cfg) if cfg else None,
    )
    return sim, loop, client


class TestPublishPath:
    def test_unconfigured_client_sends_audio_only(self):
        sim, loop, client = make_client()
        client.start_media()
        sim.run_until(1.0)
        assert loop.rtp
        assert all(p.payload_type == AUDIO_PAYLOAD_TYPE for p in loop.rtp)

    def test_configured_encodings_produce_video_per_ssrc(self):
        sim, loop, client = make_client()
        client.encoder.configure({Resolution.P720: 1000, Resolution.P180: 200})
        client.start_media()
        sim.run_until(2.0)
        video_ssrcs = {
            p.ssrc for p in loop.rtp if p.payload_type != AUDIO_PAYLOAD_TYPE
        }
        assert SSRCS[Resolution.P720] in video_ssrcs
        assert SSRCS[Resolution.P180] in video_ssrcs
        assert SSRCS[Resolution.P360] not in video_ssrcs

    def test_video_rate_tracks_configuration(self):
        sim, loop, client = make_client()
        client.encoder.configure({Resolution.P360: 600})
        client.start_media()
        sim.run_until(5.0)
        video_bytes = sum(
            len(p.payload)
            for p in loop.rtp
            if p.ssrc == SSRCS[Resolution.P360]
        )
        kbps = video_bytes * 8 / 5.0 / 1000
        assert kbps == pytest.approx(600, rel=0.15)

    def test_all_uplink_packets_carry_twcc(self):
        sim, loop, client = make_client()
        client.encoder.configure({Resolution.P180: 200})
        client.start_media()
        sim.run_until(1.0)
        assert all(p.twcc_seq is not None for p in loop.rtp)
        seqs = [p.twcc_seq for p in loop.rtp]
        assert len(set(seqs)) == len(seqs)


class TestTmmbrExecution:
    def request(self, entries, request_id=1):
        return GsoTmmbr(sender_ssrc=9, request_id=request_id, entries=tuple(entries))

    def test_apply_configures_encoder(self):
        sim, loop, client = make_client()
        note = client.apply_tmmbr(
            self.request(
                [
                    TmmbrEntry(SSRCS[Resolution.P720], 1_200_000),
                    TmmbrEntry(SSRCS[Resolution.P180], 150_000),
                ]
            )
        )
        enc = client.encoder.active_encodings
        assert enc[Resolution.P720] in (1200, 1201)  # round-up encoding
        assert Resolution.P180 in enc
        assert note.request_id == 1

    def test_zero_entry_stops_stream(self):
        sim, loop, client = make_client()
        client.apply_tmmbr(
            self.request([TmmbrEntry(SSRCS[Resolution.P720], 1_000_000)])
        )
        client.apply_tmmbr(
            self.request([TmmbrEntry(SSRCS[Resolution.P720], 0)], request_id=2)
        )
        assert client.encoder.active_encodings == {}

    def test_unknown_ssrc_ignored(self):
        sim, loop, client = make_client()
        client.apply_tmmbr(self.request([TmmbrEntry(0xDEAD, 1_000_000)]))
        assert client.encoder.active_encodings == {}

    def test_wire_tmmbr_produces_wire_tmmbn(self):
        sim, loop, client = make_client()
        request = self.request([TmmbrEntry(SSRCS[Resolution.P360], 500_000)])
        wire = Packet(
            payload=request.to_app_packet().serialize(), size_bytes=100
        )
        client.on_downlink_packet(wire, now=0.5)
        sim.run_until(1.0)
        notes = [
            AppPacket.parse(d)
            for d in loop.rtcp
            if AppPacket.parse(d).name == GSO_TMMBN_NAME
        ]
        assert len(notes) == 1
        assert GsoTmmbn.from_app_packet(notes[0]).request_id == 1


class TestSembReporting:
    def test_semb_reports_flow_upstream(self):
        sim, loop, client = make_client()
        client.start_media()
        sim.run_until(3.0)
        reports = []
        for data in loop.rtcp:
            try:
                app = AppPacket.parse(data)
            except ValueError:
                continue
            if app.name == SEMB_NAME:
                reports.append(SembReport.from_app_packet(app))
        assert reports
        assert all(r.bitrate_bps > 0 for r in reports)

    def test_estimate_cap_follows_send_rate(self):
        sim, loop, client = make_client()
        client.encoder.configure({Resolution.P180: 100})
        # Force the raw estimate absurdly high.
        client.uplink_estimator._rate_kbps = 9000
        assert client.uplink_estimate_kbps() <= 600

    def test_uncapped_when_not_sending(self):
        sim, loop, client = make_client()
        client.uplink_estimator._rate_kbps = 900
        assert client.uplink_estimate_kbps() == pytest.approx(900)


class TestReceivePath:
    def test_received_video_fills_jitter_buffer(self):
        sim, loop, client = make_client()
        from repro.media.codec import EncodedFrame, packetize

        frame = EncodedFrame(Resolution.P360, 0, 2000, False, 0.5)
        for rtp in packetize(frame, ssrc=0x99, seq_start=0):
            client.on_downlink_packet(
                Packet(payload=rtp.serialize(), size_bytes=100), now=0.5
            )
        assert 0x99 in client.jitter_buffers
        assert len(client.jitter_buffers[0x99].render_times) == 1

    def test_received_audio_counted(self):
        sim, loop, client = make_client()
        rtp = RtpPacket(
            ssrc=0x50,
            seq=0,
            timestamp=0,
            payload_type=AUDIO_PAYLOAD_TYPE,
            payload=bytes(80),
        )
        client.on_downlink_packet(
            Packet(payload=rtp.serialize(), size_bytes=100), now=0.5
        )
        assert client.audio_receiver.voice_stall_rate(0.0, 1.0) < 1.0 or True

    def test_twcc_feedback_sent_for_received_packets(self):
        sim, loop, client = make_client()
        rtp = RtpPacket(
            ssrc=0x99, seq=0, timestamp=0, payload=bytes(100), twcc_seq=7
        )
        client.on_downlink_packet(
            Packet(payload=rtp.serialize(), size_bytes=100), now=0.01
        )
        sim.run_until(0.5)
        from repro.rtp.rtcp import PT_RTPFB, parse_common_header

        fbs = [
            d for d in loop.rtcp if parse_common_header(d)[1] == PT_RTPFB
        ]
        assert fbs


class TestPolicies:
    def test_template_policy_participant_dependence(self):
        from repro.client.policies import TemplateUplinkPolicy

        policy = TemplateUplinkPolicy()
        small = policy.select_layers(5000, participant_count=3)
        large = policy.select_layers(5000, participant_count=20)
        assert Resolution.P720 in small
        assert Resolution.P720 not in large

    def test_template_policy_threshold_behaviour(self):
        from repro.client.policies import TemplateUplinkPolicy

        policy = TemplateUplinkPolicy()
        assert policy.select_layers(100, 3) == {}
        low = policy.select_layers(400, 3)
        assert set(low) == {Resolution.P180}

    def test_local_switcher_share_split(self):
        from repro.client.policies import LocalDownlinkSwitcher

        sw = LocalDownlinkSwitcher(headroom=1.0)
        layers = {Resolution.P720: 1500, Resolution.P360: 600, Resolution.P180: 300}
        # 2 Mbps split two ways -> 1 Mbps share -> 600 kbps layer.
        assert sw.select_stream(2000, layers, 2) == Resolution.P360

    def test_local_switcher_fallback_to_smallest(self):
        from repro.client.policies import LocalDownlinkSwitcher

        sw = LocalDownlinkSwitcher(headroom=1.0)
        layers = {Resolution.P360: 600, Resolution.P180: 300}
        # Share (200) fits nothing, but the whole downlink fits 300.
        assert sw.select_stream(400, layers, 2) == Resolution.P180

    def test_local_switcher_none_when_nothing_fits(self):
        from repro.client.policies import LocalDownlinkSwitcher

        sw = LocalDownlinkSwitcher()
        assert sw.select_stream(100, {Resolution.P180: 300}, 1) is None
        assert sw.select_stream(5000, {}, 1) is None

    def test_switcher_respects_resolution_cap(self):
        from repro.client.policies import LocalDownlinkSwitcher

        sw = LocalDownlinkSwitcher(headroom=1.0)
        layers = {Resolution.P720: 1500, Resolution.P180: 300}
        got = sw.select_stream(5000, layers, 1, max_resolution=Resolution.P360)
        assert got == Resolution.P180
