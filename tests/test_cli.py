"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_client, build_parser, main


class TestClientSpecParsing:
    def test_minimal(self):
        spec = _parse_client("A:5000:1400")
        assert spec.client_id == "A"
        assert spec.uplink_kbps == 5000
        assert spec.downlink_kbps == 1400
        assert spec.loss_rate == 0.0

    def test_with_loss_and_jitter(self):
        spec = _parse_client("dut:800:900:0.3:50")
        assert spec.loss_rate == 0.3
        assert spec.jitter_ms == 50.0

    def test_rejects_malformed(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_client("A:5000")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_client("A:fast:slow")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "A:1:2", "B:3:4"])
        assert args.levels == 5
        assert args.granularity == 10

    def test_meeting_mode_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["meeting", "A:1:2", "--modes", "magic"]
            )


class TestCommands:
    def test_solve_prints_plan(self, capsys):
        rc = main(["solve", "A:5000:1400", "B:5000:3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "publishes" in out
        assert "iteration" in out

    def test_solve_rejects_single_client(self, capsys):
        rc = main(["solve", "A:5000:1400"])
        assert rc == 2

    def test_meeting_runs_and_reports(self, capsys):
        rc = main(
            [
                "meeting",
                "A:3000:3000",
                "B:3000:3000",
                "--duration",
                "12",
                "--warmup",
                "6",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "framerate=" in out
        assert "A <- B" in out

    def test_rollout_prints_days(self, capsys):
        rc = main(
            [
                "rollout",
                "--start",
                "2021-12-19",
                "--end",
                "2021-12-21",
                "--stride",
                "1",
                "--conferences",
                "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2021-12-20" in out

    def test_rollout_rejects_reversed_dates(self, capsys):
        rc = main(
            ["rollout", "--start", "2021-12-21", "--end", "2021-12-19"]
        )
        assert rc == 2


class TestKernelReporting:
    def test_solve_prints_kernel_and_batches(self, capsys):
        rc = main(["solve", "A:5000:1400", "B:5000:3000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(kernel: " in out
        assert "batched solve(s)" in out

    def test_bogus_kernel_env_is_one_line_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_KERNEL", "bogus")
        rc = main(["solve", "A:5000:1400", "B:5000:3000"])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("repro solve: ")
        assert "Traceback" not in err


class TestPlaceCommands:
    def test_place_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["place"])

    def test_place_run_prints_packing(self, capsys):
        rc = main(
            ["place", "run", "--policy", "best_fit", "--users", "2000",
             "--shards", "4", "--webinars", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert '"policy": "best_fit"' in out
        assert '"meetings_per_s"' in out

    def test_place_compare_prints_speedups(self, capsys):
        rc = main(
            ["place", "compare", "--users", "2000", "--shards", "4",
             "--webinars", "2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "speedup_best_fit_vs_hash" in out
        assert "least_loaded" in out

    def test_place_compare_json_is_machine_readable(self, capsys):
        import json

        rc = main(
            ["place", "compare", "--json", "--users", "2000",
             "--shards", "4", "--webinars", "2"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["policies"]) == {
            "hash", "best_fit", "least_loaded"
        }

    def test_place_stats_dumps_load_model(self, capsys):
        rc = main(
            ["place", "stats", "--policy", "best_fit", "--meetings", "4",
             "--budget", "40"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "rebalance:" in out
        assert '"loads"' in out

    def test_place_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["place", "run", "--policy", "round_robin"]
            )
