"""Cross-plane integration tests: the full stack wired together.

These complement the per-module tests by asserting *system* invariants on
short, fully simulated meetings: control feedback is acknowledged, the
global picture converges, unsubscribed streams stop, and the closed loop
is live (configs actually track link changes).
"""

import pytest

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.core.types import Resolution
from repro.net.trace import BandwidthTrace


def build_runner(clients=None, duration=20.0, **kwargs):
    spec = MeetingSpec(
        clients=clients
        or [ClientSpec("A", 3000, 3000), ClientSpec("B", 3000, 3000)],
        mode="gso",
        duration_s=duration,
        warmup_s=min(10.0, duration / 2),
        **kwargs,
    )
    return MeetingRunner(spec)


class TestControlLoopLiveness:
    def test_tmmbr_round_trip_acknowledged(self):
        runner = build_runner()
        runner.run()
        # Every configuration the controller pushed was eventually acked
        # (no target had to be given up on).
        assert runner.executor.failed_targets == []
        assert runner.executor.pending_acks <= 1  # at most the latest in flight

    def test_clients_executed_controller_configs(self):
        runner = build_runner()
        runner.run()
        for client in runner.clients.values():
            assert client.applied_configurations, (
                f"{client.client_id} never received a TMMBR"
            )

    def test_global_picture_converges_to_truth(self):
        """After warmup the conference node's view of each link is within
        a factor of the true capacities (cap 3x send-rate applies)."""
        runner = build_runner(duration=25.0)
        runner.run()
        for cid in ("A", "B"):
            state = runner.conference.participant(cid)
            assert state.uplink_kbps is not None
            assert 300 <= state.uplink_kbps <= 3 * 3000
            assert state.downlink_kbps is not None
            assert 300 <= state.downlink_kbps <= 3 * 3000

    def test_semb_reports_flow(self):
        runner = build_runner()
        runner.run()
        for cid in ("A", "B"):
            assert runner.conference.participant(cid).last_uplink_report_s > 0

    def test_unsubscribed_publisher_is_stopped(self):
        """Fig. 3a end-to-end: a publisher nobody watches stops encoding."""
        runner = build_runner(
            clients=[
                ClientSpec("watched", 3000, 3000),
                ClientSpec("ignored", 3000, 3000),
                ClientSpec("viewer", 3000, 3000),
            ],
            subscriptions=[("viewer", "watched", Resolution.P720)],
        )
        runner.run()
        assert runner.clients["ignored"].encoder.active_encodings == {}
        assert runner.clients["watched"].encoder.active_encodings != {}

    def test_closed_loop_tracks_link_change(self):
        """Dropping the viewer's downlink mid-meeting must reduce the
        publisher's configured bitrate within a few control periods."""
        trace = BandwidthTrace.step_schedule(
            3000.0, steps=[(12.0, 600.0)], recover_at_s=0.0
        )
        runner = build_runner(
            clients=[
                ClientSpec("pub", 4000, 4000),
                ClientSpec(
                    "sub", 3000, 3000, publishes=False, downlink_trace=trace
                ),
            ],
            subscriptions=[("sub", "pub", Resolution.P720)],
            duration=24.0,
        )
        runner.sim.run_until(11.0)
        before = runner.clients["pub"].encoder.total_target_kbps
        runner.sim.run_until(24.0)
        after = runner.clients["pub"].encoder.total_target_kbps
        assert before > 700
        assert after < before
        assert after <= 700


class TestMultiNodeRelay:
    def test_media_flows_across_two_accessing_nodes(self):
        """A hand-wired two-node topology: publisher homed on node A,
        subscriber on node B, media relayed between them."""
        from repro.media.sfu import AccessingNode
        from repro.net.link import Link
        from repro.net.simulator import Simulator
        from repro.rtp.packet import RtpPacket
        from repro.net.packet import packet_for_bytes
        from repro.media.codec import EncodedFrame, packetize

        sim = Simulator()
        node_a = AccessingNode(sim, "na")
        node_b = AccessingNode(sim, "nb")
        inter = Link(sim, bandwidth_kbps=100_000, propagation_ms=15)
        node_a.add_peer(node_b, inter)

        received = []
        downlink = Link(sim, bandwidth_kbps=10_000, propagation_ms=5)
        downlink.connect(lambda p, t: received.append(p))
        node_b.attach_client("viewer", downlink)
        node_a.register_remote_client("viewer", "nb")

        # Audio fans out via relay automatically.
        audio = RtpPacket(
            ssrc=9, seq=0, timestamp=0, payload_type=111, payload=bytes(80)
        )
        node_a.on_packet_from_client(
            "pub", packet_for_bytes(audio.serialize(), src="pub"), sim.now
        )
        sim.run_until(1.0)
        assert len(received) == 1
        relayed = RtpPacket.parse(received[0].payload)
        assert relayed.ssrc == 9


class TestFailureInjection:
    def test_meeting_survives_heavy_loss_both_ways(self):
        """A participant at 40% loss in both directions still exchanges
        media without wedging the control loop."""
        runner = build_runner(
            clients=[
                ClientSpec("rough", 3000, 3000, loss_rate=0.4),
                ClientSpec("clean", 3000, 3000),
            ],
            duration=20.0,
            seed=5,
        )
        report = runner.run()
        # Transient delivery failures are possible at 40% loss, but the
        # executor must keep retrying on subsequent solves rather than
        # wedging, and media must keep flowing.
        view = report.view("clean", "rough")
        assert view.framerate > 5.0
        assert runner.clients["rough"].applied_configurations

    def test_meeting_survives_tiny_links(self):
        """Links below the smallest ladder rung must not crash anything."""
        runner = build_runner(
            clients=[
                ClientSpec("tiny", 80, 80),
                ClientSpec("clean", 3000, 3000),
            ],
            duration=12.0,
        )
        report = runner.run()  # must complete without exceptions
        assert report.duration_s == 12.0


class TestMultiRegionMeeting:
    def test_cross_region_gso_meeting_delivers_video(self):
        """Participants homed on different accessing nodes exchange media
        through the inter-node relay under GSO orchestration."""
        spec = MeetingSpec(
            clients=[
                ClientSpec("eu", 3000, 3000, region="europe"),
                ClientSpec("us", 3000, 3000, region="america"),
            ],
            mode="gso",
            duration_s=20.0,
            warmup_s=10.0,
            inter_node_ms=60.0,
        )
        runner = MeetingRunner(spec)
        report = runner.run()
        assert len(runner.nodes) == 2
        for view in report.views:
            assert view.framerate > 15, (
                f"{view.subscriber}<-{view.publisher} starved across regions"
            )
        # Voice must flow across the relay too.
        assert report.mean_voice_stall() < 0.2

    def test_mixed_region_three_party(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("a1", 3000, 3000, region="east"),
                ClientSpec("a2", 3000, 3000, region="east"),
                ClientSpec("b1", 3000, 2000, region="west"),
            ],
            mode="gso",
            duration_s=18.0,
            warmup_s=9.0,
        )
        runner = MeetingRunner(spec)
        report = runner.run()
        # Local (east<->east) and remote (east<->west) views both work.
        assert report.view("a1", "a2").framerate > 15
        assert report.view("b1", "a1").framerate > 15
        assert report.view("a2", "b1").framerate > 15

    def test_baselines_reject_multi_region(self):
        spec_kwargs = dict(
            clients=[
                ClientSpec("x", region="r1"),
                ClientSpec("y", region="r2"),
            ],
            duration_s=10.0,
            warmup_s=2.0,
        )
        import pytest as _pytest

        with _pytest.raises(ValueError, match="single-node"):
            MeetingRunner(MeetingSpec(mode="nongso", **spec_kwargs))


class TestMembershipChurn:
    def test_late_joiner_gets_and_gives_video(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("early1", 3000, 3000),
                ClientSpec("early2", 3000, 3000),
                ClientSpec("late", 3000, 3000, join_at_s=8.0),
            ],
            mode="gso",
            duration_s=25.0,
            warmup_s=12.0,
        )
        runner = MeetingRunner(spec)
        report = runner.run()
        # After joining at t=8, the late client both sends and receives.
        assert report.view("late", "early1").framerate > 10
        assert report.view("early1", "late").framerate > 10

    def test_leaver_stops_consuming_resources(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("stay1", 3000, 3000),
                ClientSpec("stay2", 3000, 3000),
                ClientSpec("quitter", 3000, 3000, leave_at_s=10.0),
            ],
            mode="gso",
            duration_s=24.0,
            warmup_s=12.0,
        )
        runner = MeetingRunner(spec)
        runner.sim.run_until(9.0)
        assert "quitter" in runner.conference.participants()
        runner.sim.run_until(24.0)
        assert "quitter" not in runner.conference.participants()
        # The survivors keep a healthy meeting after the leave.
        quitter = runner.clients["quitter"]
        renders_after_leave = [
            t
            for buf in quitter.jitter_buffers.values()
            for t in buf.render_times
            if t > 11.5
        ]
        assert renders_after_leave == []
        report = runner.run()
        assert report.view("stay1", "stay2").framerate > 20

    def test_churn_does_not_wedge_controller(self):
        spec = MeetingSpec(
            clients=[
                ClientSpec("anchor", 3000, 3000),
                ClientSpec("a", 3000, 3000, join_at_s=4.0, leave_at_s=12.0),
                ClientSpec("b", 3000, 3000, join_at_s=6.0),
                ClientSpec("c", 3000, 3000, join_at_s=2.0, leave_at_s=16.0),
            ],
            mode="gso",
            duration_s=22.0,
            warmup_s=11.0,
        )
        runner = MeetingRunner(spec)
        report = runner.run()
        assert runner.conference.participants() == ["anchor", "b"]
        assert report.view("anchor", "b").framerate > 10

    def test_baselines_reject_churn(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="static roster"):
            MeetingRunner(
                MeetingSpec(
                    clients=[
                        ClientSpec("x"),
                        ClientSpec("y", join_at_s=5.0),
                    ],
                    mode="nongso",
                    duration_s=10.0,
                    warmup_s=2.0,
                )
            )


class TestClientFailureDowngrade:
    def test_silent_high_stream_triggers_downgrade(self):
        """Sec. 7: the server instructs multiple streams but only the low
        one flows — the controller re-plans subscribers onto live streams."""
        spec = MeetingSpec(
            clients=[
                ClientSpec("broken", 3000, 3000),
                ClientSpec("viewer", 3000, 3000, publishes=False),
            ],
            subscriptions=[("viewer", "broken", Resolution.P720)],
            mode="gso",
            duration_s=30.0,
            warmup_s=15.0,
        )
        runner = MeetingRunner(spec)
        # Fault injection: the 720p encoder output never reaches the wire
        # (e.g. a hardware encoder failure) while lower layers still flow.
        broken = runner.clients["broken"]
        broken._video_ssrcs.pop(Resolution.P720)
        runner.sim.run_until(30.0)
        assert runner.controller.downgrades_applied >= 1
        # The final plan avoids the dead 720p stream entirely.
        policies = runner.controller.last_solution.policies.get("broken", {})
        assert Resolution.P720 not in policies
        # ...and the viewer actually renders a lower, live stream.
        viewer = runner.clients["viewer"]
        live_renders = [
            t
            for buf in viewer.jitter_buffers.values()
            for t in buf.render_times
            if t > 20.0
        ]
        assert len(live_renders) > 100

    def test_healthy_meeting_has_no_downgrades(self):
        spec = MeetingSpec(
            clients=[ClientSpec("A", 3000, 3000), ClientSpec("B", 3000, 3000)],
            mode="gso",
            duration_s=15.0,
            warmup_s=7.0,
        )
        runner = MeetingRunner(spec)
        runner.run()
        assert runner.controller.downgrades_applied == 0


class TestSpeakerPriority:
    def test_speaker_switch_shifts_allocation(self):
        """On a tight viewer downlink, the active speaker's stream gets
        the larger share; switching speakers shifts it."""
        spec = MeetingSpec(
            clients=[
                ClientSpec("p1", 3000, 3000),
                ClientSpec("p2", 3000, 3000),
                ClientSpec("viewer", 3000, 1100, publishes=False),
            ],
            subscriptions=[
                ("viewer", "p1", Resolution.P720),
                ("viewer", "p2", Resolution.P720),
            ],
            mode="gso",
            duration_s=36.0,
            warmup_s=18.0,
            speaker_schedule=[(2.0, "p1"), (18.0, "p2")],
        )
        runner = MeetingRunner(spec)

        def viewer_rates():
            sol = runner.controller.last_solution
            got = sol.assignments.get("viewer", {})
            return {
                pub: stream.bitrate_kbps for pub, stream in got.items()
            }

        runner.sim.run_until(16.0)
        first = viewer_rates()
        runner.sim.run_until(36.0)
        second = viewer_rates()
        # While p1 speaks it gets at least as much as p2; after the switch
        # p2 gets at least as much as p1 — and the preference actually
        # flips in at least one direction.
        assert first.get("p1", 0) >= first.get("p2", 0)
        assert second.get("p2", 0) >= second.get("p1", 0)
        assert (
            first.get("p1", 0) > first.get("p2", 0)
            or second.get("p2", 0) > second.get("p1", 0)
        )

    def test_unknown_speaker_rejected(self):
        from repro.control.conference_node import ConferenceNode

        node = ConferenceNode()
        import pytest as _pytest

        with _pytest.raises(ValueError, match="unknown speaker"):
            node.set_speaker("ghost")

    def test_clearing_speaker(self):
        from repro.control.conference_node import ConferenceNode

        node = ConferenceNode()
        node.set_speaker(None)
        assert node.priority.speaker == ""


class TestScale:
    def test_ten_party_mesh_stays_clean(self):
        """A healthy 10-party mesh: every view renders smoothly."""
        from repro.conference import full_mesh_meeting, run_meeting

        spec = full_mesh_meeting(
            10,
            uplink_kbps=4000,
            downlink_kbps=8000,
            mode="gso",
            duration_s=16.0,
            warmup_s=9.0,
        )
        report = run_meeting(spec)
        assert len(report.views) == 90
        assert report.mean_framerate() > 28
        assert report.mean_video_stall() < 0.05
        assert report.mean_voice_stall() < 0.05

    def test_1080p_capable_meeting(self):
        """Ladders above 720p work end to end (footnote 5 extensibility)."""
        spec = MeetingSpec(
            clients=[
                ClientSpec("A", 6000, 8000),
                ClientSpec("B", 6000, 8000),
            ],
            mode="gso",
            duration_s=16.0,
            warmup_s=9.0,
            resolutions=(
                Resolution.P1080,
                Resolution.P360,
                Resolution.P180,
            ),
        )
        report = run_meeting_with(spec)
        view = report.view("A", "B")
        assert view.framerate > 20
        assert view.top_resolution in (Resolution.P1080, Resolution.P360)


def run_meeting_with(spec):
    return MeetingRunner(spec).run()


class TestControllerRestart:
    def test_controller_replacement_mid_meeting(self):
        """Losing the controller and starting a fresh one (stateless
        recovery) must not break the meeting — the new instance rebuilds
        its picture from the conference node and continues."""
        from repro.control.gso_controller import GsoControllerRuntime

        spec = MeetingSpec(
            clients=[ClientSpec("A", 3000, 3000), ClientSpec("B", 3000, 3000)],
            mode="gso",
            duration_s=24.0,
            warmup_s=12.0,
        )
        runner = MeetingRunner(spec)
        runner.sim.run_until(8.0)
        runner.controller.stop()  # the old controller "crashes"
        runner.controller = GsoControllerRuntime(
            runner.sim, runner.conference, runner.executor
        )
        report = runner.run()
        assert report.view("A", "B").framerate > 20
        assert report.view("B", "A").stall_rate < 0.2
