"""The vectorized fleet model behind the fleet-throughput gate."""

import numpy as np
import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.deploy.fleet import score_subscriber
from repro.deploy.vectorfleet import (
    place_fleet,
    sample_fleet,
    sample_population,
    score_subscribers_batch,
    sustainable_rate,
    throughput_report,
)


class TestSamplePopulation:
    def test_deterministic_per_seed(self):
        a = sample_population(3, 500)
        b = sample_population(3, 500)
        assert np.array_equal(a.uplink_kbps, b.uplink_kbps)
        assert np.array_equal(a.downlink_kbps, b.downlink_kbps)
        assert np.array_equal(a.loss_rate, b.loss_rate)
        c = sample_population(4, 500)
        assert not np.array_equal(a.uplink_kbps, c.uplink_kbps)

    def test_floors_match_the_scalar_sampler(self):
        pop = sample_population(1, 2000, day_quality=0.01)
        assert pop.users == 2000
        assert float(pop.uplink_kbps.min()) >= 100.0
        assert float(pop.downlink_kbps.min()) >= 150.0
        assert float(pop.loss_rate.min()) >= 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="users"):
            sample_population(1, 0)


class TestScoreBatchParity:
    def test_matches_scalar_pointwise(self):
        utils = np.linspace(0.0, 1.8, 37)
        losses = np.linspace(0.0, 0.12, 37)
        video, voice, fps = score_subscribers_batch(utils, losses)
        for i in range(utils.size):
            sv, so, sf = score_subscriber(float(utils[i]), float(losses[i]))
            assert video[i] == pytest.approx(sv, abs=1e-12)
            assert voice[i] == pytest.approx(so, abs=1e-12)
            assert fps[i] == pytest.approx(sf, abs=1e-12)


class TestSampleFleet:
    def test_deterministic_per_seed(self):
        a = sample_fleet(5, users=3000)
        b = sample_fleet(5, users=3000)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.costs, b.costs)

    def test_hosts_at_least_the_requested_users(self):
        fleet = sample_fleet(2, users=3000)
        assert fleet.users >= 3000
        assert fleet.meetings == fleet.sizes.shape[0] == fleet.costs.shape[0]

    def test_costs_are_squared_sizes(self):
        fleet = sample_fleet(2, users=1000, webinars=2)
        assert np.array_equal(fleet.costs, fleet.sizes.astype(float) ** 2)

    def test_small_meetings_respect_max_size(self):
        fleet = sample_fleet(2, users=3000, max_size=10, webinars=0)
        assert int(fleet.sizes.max()) <= 10

    def test_mean_size_two_means_all_pairs(self):
        fleet = sample_fleet(2, users=500, mean_size=2.0, webinars=0)
        assert set(np.unique(fleet.sizes)) == {2}

    def test_webinars_present(self):
        fleet = sample_fleet(
            2, users=3000, webinars=4, webinar_size=(100, 120)
        )
        assert int((fleet.sizes >= 100).sum()) == 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError, match="users"):
            sample_fleet(1, users=1)
        with pytest.raises(ValueError, match="mean meeting size"):
            sample_fleet(1, users=100, mean_size=1.0)
        with pytest.raises(ValueError, match="webinars"):
            sample_fleet(1, users=100, webinars=-1)


class TestPlaceFleet:
    def test_hash_matches_the_real_ring(self):
        fleet = sample_fleet(3, users=2000)
        placement = place_fleet(fleet, policy="hash", shards=4)
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        for i in range(fleet.meetings):
            expected = ring.node_for(fleet.meeting_id(i))
            assert placement.shard_names[placement.assignment[i]] == expected

    def test_shard_costs_account_every_meeting(self):
        fleet = sample_fleet(3, users=2000)
        for policy in ("hash", "best_fit", "least_loaded"):
            placement = place_fleet(fleet, policy=policy, shards=4)
            assert float(placement.shard_cost.sum()) == pytest.approx(
                float(fleet.costs.sum())
            )

    def test_best_fit_packs_tighter_than_hash(self):
        fleet = sample_fleet(8, users=20_000, webinars=8)
        hash_p = place_fleet(fleet, policy="hash", shards=8)
        best_p = place_fleet(fleet, policy="best_fit", shards=8)
        assert float(best_p.shard_cost.max()) < float(hash_p.shard_cost.max())

    def test_rejects_bad_shards(self):
        with pytest.raises(ValueError, match="shards"):
            place_fleet(sample_fleet(1, users=100), shards=0)


class TestSustainableRate:
    def test_tighter_packing_sustains_more(self):
        fleet = sample_fleet(8, users=20_000, webinars=8)
        hash_rate = sustainable_rate(
            fleet, place_fleet(fleet, policy="hash", shards=8)
        )
        best_rate = sustainable_rate(
            fleet, place_fleet(fleet, policy="best_fit", shards=8)
        )
        assert 0.0 < hash_rate < best_rate

    def test_unmeetable_slo_rates_zero(self):
        fleet = sample_fleet(8, users=20_000, webinars=8)
        placement = place_fleet(fleet, policy="best_fit", shards=8)
        assert sustainable_rate(fleet, placement, slo_p95_s=1e-9) == 0.0


class TestThroughputReport:
    def test_byte_deterministic(self):
        import json

        a = throughput_report(8, users=20_000, shards=8, webinars=8)
        b = throughput_report(8, users=20_000, shards=8, webinars=8)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_contains_speedups_vs_hash(self):
        report = throughput_report(8, users=20_000, shards=8, webinars=8)
        assert set(report["policies"]) == {
            "hash",
            "best_fit",
            "least_loaded",
        }
        assert report["speedup_best_fit_vs_hash"] > 1.0
        for row in report["policies"].values():
            assert row["meetings_per_s"] > 0.0
