"""Tests for the fleet-scale ingress stream (``repro.deploy.ingress_stream``)."""

from repro.deploy.ingress_stream import (
    FleetStreamConfig,
    ModeledBackend,
    canonical_digest,
    generate_fleet_stream,
    run_fleet_ingress,
)
from repro.deploy.vectorfleet import sample_fleet

#: Small fleet so the tier-1 suite stays fast; the 10^5-user operating
#: point lives in benchmarks/test_ingress_throughput.py.
USERS = 2_000
SEED = 8


class TestGenerateFleetStream:
    def test_stream_is_seed_deterministic(self):
        fleet = sample_fleet(SEED, USERS)
        a = generate_fleet_stream(SEED, fleet)
        b = generate_fleet_stream(SEED, fleet)
        assert a == b
        assert a != generate_fleet_stream(SEED + 1, fleet)

    def test_one_report_per_meeting_per_round(self):
        cfg = FleetStreamConfig(duration_s=2.0, report_interval_s=1.0)
        fleet = sample_fleet(SEED, USERS)
        stream = generate_fleet_stream(SEED, fleet, cfg)
        assert len(stream) == 2 * fleet.meetings
        assert [e.seq for e in stream] == list(range(len(stream)))
        keyed = [(e.at_s, e.seq) for e in stream]
        assert keyed == sorted(keyed)
        assert all(0.0 <= e.at_s < 2.0 for e in stream)


class TestModeledBackend:
    def test_payload_is_the_meeting_cost(self):
        fleet = sample_fleet(SEED, USERS)
        backend = ModeledBackend(fleet, FleetStreamConfig())
        meeting = fleet.meeting_id(3)
        assert backend.payload(meeting) == float(fleet.costs[3])

    def test_decision_tags_count_per_meeting(self):
        fleet = sample_fleet(SEED, USERS)
        backend = ModeledBackend(fleet, FleetStreamConfig())
        meeting = fleet.meeting_id(0)
        first = backend.decide(meeting, 1.0, 0.0, "event", "")
        second = backend.decide(meeting, 1.0, 0.0, "event", "")
        assert (first.digest, second.digest) == (
            f"{meeting}#1", f"{meeting}#2"
        )


class TestRunFleetIngress:
    def test_canonical_half_is_byte_deterministic(self):
        first = run_fleet_ingress(SEED, users=USERS)
        second = run_fleet_ingress(SEED, users=USERS)
        assert canonical_digest(first) == canonical_digest(second)
        assert first["canonical"] == second["canonical"]

    def test_every_meeting_decides_within_the_latency_gate(self):
        result = run_fleet_ingress(SEED, users=USERS)
        canonical = result["canonical"]
        assert canonical["decisions"] > 0
        assert canonical["offered"] == canonical["events"]
        assert canonical["shed"] == 0
        # The benchmark's unconditional gate, enforced at test scale too.
        assert canonical["latency"]["p95_s"] <= 0.25
        assert result["wall"]["events_per_sec"] > 0


def solve_profile(values):
    """A small measured solve-stage profile for the modeled fleet."""
    from repro.obs.tracing import STAGE_SOLVE, LatencyProfile

    profile = LatencyProfile(source="test")
    for v in values:
        profile.observe(STAGE_SOLVE, v)
    return profile


class TestMeasuredServiceMode:
    def test_analytic_is_the_default(self):
        assert FleetStreamConfig().service_mode == "analytic"

    def test_unknown_mode_rejected(self):
        import pytest

        fleet = sample_fleet(SEED, USERS)
        with pytest.raises(ValueError, match="service_mode"):
            ModeledBackend(fleet, FleetStreamConfig(service_mode="exact"))

    def test_measured_mode_requires_a_profile(self):
        import pytest

        fleet = sample_fleet(SEED, USERS)
        with pytest.raises(ValueError, match="profile"):
            ModeledBackend(fleet, FleetStreamConfig(service_mode="measured"))

    def test_measured_service_draws_from_the_profile(self):
        fleet = sample_fleet(SEED, USERS)
        profile = solve_profile([0.002, 0.004, 0.008])
        backend = ModeledBackend(
            fleet,
            FleetStreamConfig(service_mode="measured"),
            profile=profile,
        )
        meeting = fleet.meeting_id(0)
        drawn = [backend.service_s(meeting, 1.0) for _ in range(16)]
        assert all(0.002 <= v <= 0.008 for v in drawn)
        assert len(set(drawn)) > 1  # nth-draw keys vary the samples

    def test_measured_run_is_byte_deterministic(self):
        profile = solve_profile([0.001, 0.003, 0.009, 0.027])
        cfg = FleetStreamConfig(service_mode="measured", profile_seed=4)
        first = run_fleet_ingress(SEED, users=USERS, config=cfg,
                                  profile=profile)
        second = run_fleet_ingress(SEED, users=USERS, config=cfg,
                                   profile=profile)
        assert canonical_digest(first) == canonical_digest(second)
        assert first["canonical"]["profile_digest"] == profile.digest()

    def test_measured_and_analytic_runs_differ(self):
        profile = solve_profile([0.05, 0.10, 0.20])
        measured = run_fleet_ingress(
            SEED,
            users=USERS,
            config=FleetStreamConfig(service_mode="measured"),
            profile=profile,
        )
        analytic = run_fleet_ingress(SEED, users=USERS)
        assert canonical_digest(measured) != canonical_digest(analytic)
        assert (
            measured["canonical"]["latency"]["p95_s"]
            > analytic["canonical"]["latency"]["p95_s"]
        )


class TestSustainableRateReport:
    def test_analytic_only_without_profile(self):
        from repro.deploy.ingress_stream import sustainable_rate_report

        report = sustainable_rate_report(SEED, users=USERS, shards=4)
        assert report["schema"] == "repro.sustainable_rate/v1"
        assert report["analytic"]["rate_per_s"] > 0
        assert "measured" not in report

    def test_measured_block_compares_against_analytic(self):
        from repro.deploy.ingress_stream import sustainable_rate_report

        profile = solve_profile([0.05, 0.10, 0.20])
        report = sustainable_rate_report(
            SEED, users=USERS, shards=4, profile=profile
        )
        measured = report["measured"]
        assert measured["profile_digest"] == profile.digest()
        assert 0.05 <= measured["service_p50_s"] <= 0.20
        assert measured["rate_per_s"] > 0
        # Slow measured service times must cost sustainable throughput.
        assert measured["rate_per_s"] < report["analytic"]["rate_per_s"]

    def test_report_is_deterministic(self):
        from repro.deploy.ingress_stream import sustainable_rate_report

        profile = solve_profile([0.01, 0.02])
        a = sustainable_rate_report(SEED, users=USERS, profile=profile)
        b = sustainable_rate_report(SEED, users=USERS, profile=profile)
        assert a == b

    def test_measured_service_times_keyed_by_meeting(self):
        from repro.deploy.ingress_stream import measured_service_times

        fleet = sample_fleet(SEED, USERS)
        profile = solve_profile([0.01, 0.02, 0.04])
        a = measured_service_times(fleet, profile, seed=1)
        b = measured_service_times(fleet, profile, seed=1)
        assert (a == b).all()
        assert a.shape == (fleet.meetings,)
        assert (a >= 0.01).all() and (a <= 0.04).all()
