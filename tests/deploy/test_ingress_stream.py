"""Tests for the fleet-scale ingress stream (``repro.deploy.ingress_stream``)."""

from repro.deploy.ingress_stream import (
    FleetStreamConfig,
    ModeledBackend,
    canonical_digest,
    generate_fleet_stream,
    run_fleet_ingress,
)
from repro.deploy.vectorfleet import sample_fleet

#: Small fleet so the tier-1 suite stays fast; the 10^5-user operating
#: point lives in benchmarks/test_ingress_throughput.py.
USERS = 2_000
SEED = 8


class TestGenerateFleetStream:
    def test_stream_is_seed_deterministic(self):
        fleet = sample_fleet(SEED, USERS)
        a = generate_fleet_stream(SEED, fleet)
        b = generate_fleet_stream(SEED, fleet)
        assert a == b
        assert a != generate_fleet_stream(SEED + 1, fleet)

    def test_one_report_per_meeting_per_round(self):
        cfg = FleetStreamConfig(duration_s=2.0, report_interval_s=1.0)
        fleet = sample_fleet(SEED, USERS)
        stream = generate_fleet_stream(SEED, fleet, cfg)
        assert len(stream) == 2 * fleet.meetings
        assert [e.seq for e in stream] == list(range(len(stream)))
        keyed = [(e.at_s, e.seq) for e in stream]
        assert keyed == sorted(keyed)
        assert all(0.0 <= e.at_s < 2.0 for e in stream)


class TestModeledBackend:
    def test_payload_is_the_meeting_cost(self):
        fleet = sample_fleet(SEED, USERS)
        backend = ModeledBackend(fleet, FleetStreamConfig())
        meeting = fleet.meeting_id(3)
        assert backend.payload(meeting) == float(fleet.costs[3])

    def test_decision_tags_count_per_meeting(self):
        fleet = sample_fleet(SEED, USERS)
        backend = ModeledBackend(fleet, FleetStreamConfig())
        meeting = fleet.meeting_id(0)
        first = backend.decide(meeting, 1.0, 0.0, "event", "")
        second = backend.decide(meeting, 1.0, 0.0, "event", "")
        assert (first.digest, second.digest) == (
            f"{meeting}#1", f"{meeting}#2"
        )


class TestRunFleetIngress:
    def test_canonical_half_is_byte_deterministic(self):
        first = run_fleet_ingress(SEED, users=USERS)
        second = run_fleet_ingress(SEED, users=USERS)
        assert canonical_digest(first) == canonical_digest(second)
        assert first["canonical"] == second["canonical"]

    def test_every_meeting_decides_within_the_latency_gate(self):
        result = run_fleet_ingress(SEED, users=USERS)
        canonical = result["canonical"]
        assert canonical["decisions"] > 0
        assert canonical["offered"] == canonical["events"]
        assert canonical["shed"] == 0
        # The benchmark's unconditional gate, enforced at test scale too.
        assert canonical["latency"]["p95_s"] <= 0.25
        assert result["wall"]["events_per_sec"] > 0
