"""Seeded fleet randomness: order-independent, cluster-parallel safe."""

import datetime as dt
import pickle
import random

from repro.cluster import ClusterConfig, ControllerCluster
from repro.deploy import DeploymentSimulation, FleetSampler

DAY = dt.date(2021, 12, 25)


class TestPerConferenceRng:
    def test_same_derivation_same_conference(self):
        sim = DeploymentSimulation(seed=7)
        sampler = FleetSampler(random.Random(0))
        a = sampler.sample_conference(rng=sim._conference_rng(DAY, 3))
        b = sampler.sample_conference(rng=sim._conference_rng(DAY, 3))
        assert pickle.dumps(a) == pickle.dumps(b)

    def test_draws_are_order_independent(self):
        sim = DeploymentSimulation(seed=7)
        sampler = FleetSampler(random.Random(0))
        in_order = [
            sampler.sample_conference(rng=sim._conference_rng(DAY, i))
            for i in range(4)
        ]
        reversed_draws = {
            i: sampler.sample_conference(rng=sim._conference_rng(DAY, i))
            for i in reversed(range(4))
        }
        for i, conf in enumerate(in_order):
            assert pickle.dumps(conf) == pickle.dumps(reversed_draws[i])

    def test_explicit_rng_does_not_consume_sampler_stream(self):
        shared = random.Random(42)
        sampler = FleetSampler(shared)
        sim = DeploymentSimulation(seed=7)
        sampler.sample_conference(rng=sim._conference_rng(DAY, 0))
        # The sampler's own stream is untouched by the explicit-rng draw.
        control = FleetSampler(random.Random(42)).sample_conference()
        assert pickle.dumps(sampler.sample_conference()) == pickle.dumps(
            control
        )

    def test_seeds_differ_per_day_index_and_master(self):
        sim7 = DeploymentSimulation(seed=7)
        sim8 = DeploymentSimulation(seed=8)
        r = sim7._conference_rng(DAY, 0).random()
        assert r != sim7._conference_rng(DAY, 1).random()
        assert r != sim7._conference_rng(DAY + dt.timedelta(days=1), 0).random()
        assert r != sim8._conference_rng(DAY, 0).random()

    def test_run_day_deterministic_across_instances(self):
        a = DeploymentSimulation(conferences_per_day=30).run_day(DAY)
        b = DeploymentSimulation(conferences_per_day=30).run_day(DAY)
        assert pickle.dumps(a) == pickle.dumps(b)


class TestClusterEquivalence:
    def test_fleet_through_cluster_is_byte_identical(self):
        direct = DeploymentSimulation(conferences_per_day=40).run_day(DAY)
        with ControllerCluster(ClusterConfig(shards=4)) as cluster:
            clustered = DeploymentSimulation(
                conferences_per_day=40, cluster=cluster
            ).run_day(DAY)
            assert cluster.stats()["meetings"] > 0  # solves really routed
        assert pickle.dumps(direct) == pickle.dumps(clustered)

    def test_cluster_without_cache_also_identical(self):
        direct = DeploymentSimulation(conferences_per_day=20).run_day(DAY)
        with ControllerCluster(
            ClusterConfig(shards=2, cache_capacity=0)
        ) as cluster:
            clustered = DeploymentSimulation(
                conferences_per_day=20, cluster=cluster
            ).run_day(DAY)
        assert pickle.dumps(direct) == pickle.dumps(clustered)
