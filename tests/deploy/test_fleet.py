"""Tests for the fleet/deployment simulation (Figs. 10-12 substrate)."""

import datetime as dt
import random

import pytest

from repro.deploy import (
    ConferenceScorer,
    DeploymentSimulation,
    FleetSampler,
    IntervalProcess,
    RolloutSchedule,
    SatisfactionModel,
    empirical_cdf,
    normalize,
)
from repro.deploy.fleet import score_subscriber
from repro.deploy.rollout import DEPLOY_FULL, DEPLOY_START


class TestFleetSampler:
    def test_sizes_at_least_two(self):
        rng = random.Random(1)
        sampler = FleetSampler(rng)
        for _ in range(50):
            assert sampler.sample_conference().size >= 2

    def test_size_cap(self):
        rng = random.Random(2)
        sampler = FleetSampler(rng, mean_size=20, max_size=10)
        assert all(
            sampler.sample_conference().size <= 10 for _ in range(30)
        )

    def test_day_quality_scales_bandwidth(self):
        rng1, rng2 = random.Random(3), random.Random(3)
        a = FleetSampler(rng1).sample_conference(day_quality=1.0)
        b = FleetSampler(rng2).sample_conference(day_quality=2.0)
        assert sum(c.downlink_kbps for c in b.clients) > sum(
            c.downlink_kbps for c in a.clients
        )

    def test_rejects_tiny_mean(self):
        with pytest.raises(ValueError):
            FleetSampler(random.Random(0), mean_size=1.0)

    def test_mean_size_exactly_two_samples_pair_calls(self):
        # Regression: mean_size == 2 used to feed expovariate(1/0) and
        # raise ZeroDivisionError; it means "no geometric tail" instead.
        sampler = FleetSampler(random.Random(4), mean_size=2.0)
        assert all(
            sampler.sample_conference().size == 2 for _ in range(20)
        )


class TestScoring:
    def test_healthy_link_is_clean(self):
        v, a, f = score_subscriber(utilization=0.5, loss_rate=0.0)
        assert v == 0 and a == 0 and f == 30

    def test_overload_degrades_everything(self):
        v, a, f = score_subscriber(utilization=1.3, loss_rate=0.0)
        assert v > 0.3 and a > 0 and f < 25

    def test_loss_contributes_independently(self):
        v, a, f = score_subscriber(utilization=0.5, loss_rate=0.05)
        assert v > 0 and a > 0 and f < 30

    def test_gso_beats_nongso_on_average(self):
        rng = random.Random(7)
        sampler = FleetSampler(rng)
        scorer = ConferenceScorer()
        gso_v = non_v = 0.0
        for _ in range(60):
            conf = sampler.sample_conference()
            gso_v += scorer.score_gso(conf).video_stall
            non_v += scorer.score_nongso(conf).video_stall
        assert gso_v < non_v


class TestRollout:
    def test_coverage_ramp(self):
        sched = RolloutSchedule()
        assert sched.coverage(dt.date(2021, 10, 15)) == 0.0
        assert sched.coverage(DEPLOY_START) == 0.0
        mid = DEPLOY_START + (DEPLOY_FULL - DEPLOY_START) / 2
        assert 0.4 < sched.coverage(mid) < 0.6
        assert sched.coverage(DEPLOY_FULL) == 1.0
        assert sched.coverage(dt.date(2022, 1, 10)) == 1.0

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            RolloutSchedule(start=dt.date(2021, 12, 1), full=dt.date(2021, 11, 1))

    def test_day_is_deterministic(self):
        sim = DeploymentSimulation(conferences_per_day=40)
        a = sim.run_day(dt.date(2021, 12, 25))
        b = sim.run_day(dt.date(2021, 12, 25))
        assert a.video_stall == b.video_stall

    def test_metrics_improve_with_coverage(self):
        sim = DeploymentSimulation(conferences_per_day=120)
        before = sim.run_day(dt.date(2021, 11, 2))  # Tuesday, cov 0
        after = sim.run_day(dt.date(2022, 1, 4))  # Tuesday, cov 1
        assert after.video_stall < before.video_stall
        assert after.voice_stall < before.voice_stall
        assert after.framerate > before.framerate

    def test_normalize(self):
        assert normalize([2.0, 4.0, 1.0]) == [0.5, 1.0, 0.25]
        assert normalize([]) == []
        assert normalize([0.0, 0.0]) == [0.0, 0.0]


class TestSatisfaction:
    def test_perfect_experience_scores_high(self):
        model = SatisfactionModel()
        assert model.score(0.0, 0.0, 30.0) > 0.85

    def test_stalls_hurt(self):
        model = SatisfactionModel()
        assert model.score(0.3, 0.0, 30.0) < model.score(0.0, 0.0, 30.0)
        assert model.score(0.0, 0.3, 30.0) < model.score(0.0, 0.0, 30.0)

    def test_framerate_hurts_below_nominal(self):
        model = SatisfactionModel()
        assert model.score(0.0, 0.0, 15.0) < model.score(0.0, 0.0, 30.0)


class TestIntervalProcess:
    def test_bounds_respected(self):
        proc = IntervalProcess()
        rng = random.Random(4)
        samples = proc.sample_many(2000, rng)
        assert min(samples) >= 1.0
        assert max(samples) <= 3.0

    def test_mean_close_to_deployment(self):
        """Sec. 6: 'orchestrates streams every 1.8 s on average'."""
        proc = IntervalProcess()
        assert proc.mean() == pytest.approx(1.8, abs=0.15)
        rng = random.Random(5)
        samples = proc.sample_many(20_000, rng)
        assert sum(samples) / len(samples) == pytest.approx(
            proc.mean(), abs=0.03
        )

    def test_analytic_cdf_matches_samples(self):
        proc = IntervalProcess()
        rng = random.Random(6)
        samples = proc.sample_many(20_000, rng)
        for t in (1.2, 1.8, 2.5):
            empirical = sum(1 for s in samples if s <= t) / len(samples)
            assert empirical == pytest.approx(proc.cdf(t), abs=0.02)

    def test_cdf_edges(self):
        proc = IntervalProcess()
        assert proc.cdf(0.5) == 0.0
        assert proc.cdf(3.0) == 1.0

    def test_empirical_cdf_shape(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0], points=4)
        assert cdf[0][1] > 0  # at least the first sample
        assert cdf[-1][1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            IntervalProcess(event_rate_hz=0)
        with pytest.raises(ValueError):
            IntervalProcess(min_interval_s=4, max_interval_s=3)


class TestTailMetrics:
    def test_p95_at_least_mean(self):
        import datetime as dt

        sim = DeploymentSimulation(conferences_per_day=80)
        p = sim.run_day(dt.date(2021, 10, 12))
        assert p.video_stall_p95 >= p.video_stall
        assert p.voice_stall_p95 >= p.voice_stall

    def test_gso_improves_the_tail(self):
        """The paper's long-tail argument: full deployment improves the
        p95 conference at least as much as it improves the mean."""
        import datetime as dt

        sim = DeploymentSimulation(conferences_per_day=200)
        before = sim.run_day(dt.date(2021, 11, 2))
        after = sim.run_day(dt.date(2022, 1, 4))
        assert after.video_stall_p95 < before.video_stall_p95
        mean_cut = 1 - after.video_stall / before.video_stall
        tail_cut = 1 - after.video_stall_p95 / before.video_stall_p95
        assert tail_cut > 0.5 * mean_cut
