"""End-to-end controller cluster: equivalence, failover, overload."""

import pickle

import pytest

from repro.cluster import (
    ClusterConfig,
    ControllerCluster,
    SOURCE_CACHE,
    SOURCE_FALLBACK,
    SOURCE_SHED,
    SOURCE_SOLVE,
    TRIGGER_REHOME,
    TRIGGER_TIME,
)
from repro.control.failover import single_stream_fallback
from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry

from .conftest import mesh_problem

DIRECT = GsoSolver(SolverConfig(granularity_kbps=25))


def make_cluster(**overrides):
    defaults = dict(shards=3)
    defaults.update(overrides)
    return ControllerCluster(ClusterConfig(**defaults))


def distinct_problems(n):
    """n structurally distinct meetings (different slow-client uplinks)."""
    return [mesh_problem(ups=(5000, 5000, 400 + 50 * i)) for i in range(n)]


class TestSolveService:
    def test_sync_path_matches_direct_solver(self, problem):
        with make_cluster() as cluster:
            got = cluster.solve_conference("conf-1", problem)
            assert pickle.dumps(got) == pickle.dumps(DIRECT.solve(problem))

    def test_cache_hit_across_meetings(self, problem):
        with make_cluster() as cluster:
            a = cluster.solve_conference("conf-a", problem)
            b = cluster.solve_conference("conf-b", problem)
            assert pickle.dumps(a) == pickle.dumps(b)
            assert cluster.cache.stats.hits == 1
            assert cluster.cache.stats.misses == 1
            assert cluster.meeting("conf-b").cache_hits == 1

    def test_cache_disabled_still_correct(self, problem):
        with make_cluster(cache_capacity=0) as cluster:
            assert cluster.cache is None
            got = cluster.solve_conference("conf-1", problem)
            assert pickle.dumps(got) == pickle.dumps(DIRECT.solve(problem))

    def test_pool_backed_cluster_matches_serial(self):
        problems = distinct_problems(3)
        with make_cluster(pool_workers=2, cache_capacity=0) as parallel:
            with make_cluster(cache_capacity=0) as serial:
                for i, problem in enumerate(problems):
                    a = parallel.solve_conference(f"conf-{i}", problem)
                    b = serial.solve_conference(f"conf-{i}", problem)
                    assert pickle.dumps(a) == pickle.dumps(b)

    def test_solver_crash_degrades_to_fallback(self, problem, monkeypatch):
        with make_cluster() as cluster:
            def boom(*args, **kwargs):
                raise RuntimeError("solver died")

            monkeypatch.setattr(cluster.pool, "solve", boom)
            got = cluster.solve_conference("conf-1", problem)
            want = single_stream_fallback(problem)
            assert pickle.dumps(got) == pickle.dumps(want)
            assert cluster.meeting("conf-1").fallbacks == 1


class TestTickLoop:
    def test_event_tick_solves_and_debounces(self, problem):
        with make_cluster() as cluster:
            cluster.submit("m1", problem, now_s=0.0)
            [served] = cluster.tick(now_s=0.0)
            assert served.source == SOURCE_SOLVE
            assert pickle.dumps(served.solution) == pickle.dumps(
                DIRECT.solve(problem)
            )
            # Within the min-interval envelope nothing re-runs.
            cluster.submit("m1", problem, now_s=0.2)
            assert cluster.tick(now_s=0.5) == []
            [again] = cluster.tick(now_s=1.0)
            assert again.source == SOURCE_CACHE

    def test_time_trigger_refreshes_idle_meetings(self, problem):
        with make_cluster() as cluster:
            cluster.submit("m1", problem, now_s=0.0)
            cluster.tick(now_s=0.0)
            assert cluster.tick(now_s=2.0) == []
            [served] = cluster.tick(now_s=3.0)
            assert served.trigger == TRIGGER_TIME

    def test_coalesced_churn_costs_one_solve(self, problem):
        fresher = mesh_problem(ups=(5000, 5000, 800))
        with make_cluster() as cluster:
            for _ in range(4):
                cluster.submit("m1", problem, now_s=0.0)
            cluster.submit("m1", fresher, now_s=0.1)
            served = cluster.tick(now_s=0.2)
            assert len(served) == 1  # five submissions, one solve
            assert pickle.dumps(served[0].solution) == pickle.dumps(
                DIRECT.solve(fresher)  # newest snapshot won
            )

    def test_admission_sheds_to_fallback(self):
        problems = distinct_problems(3)
        with make_cluster(shards=1, max_solves_per_round=1) as cluster:
            for i, problem in enumerate(problems):
                cluster.submit(f"m{i}", problem, now_s=float(i) / 10)
            served = cluster.tick(now_s=1.0)
            by_source = {}
            for s in served:
                by_source.setdefault(s.source, []).append(s)
            assert len(by_source[SOURCE_SOLVE]) == 1
            assert len(by_source[SOURCE_SHED]) == 2
            # m0 submitted first -> it gets the solve slot.
            assert by_source[SOURCE_SOLVE][0].meeting_id == "m0"
            for s in by_source[SOURCE_SHED]:
                record = cluster.meeting(s.meeting_id)
                want = single_stream_fallback(record.last_problem)
                assert pickle.dumps(s.solution) == pickle.dumps(want)

    def test_batch_crash_degrades_only_poisoned_meetings(self, monkeypatch):
        problems = distinct_problems(2)
        with make_cluster(shards=1, cache_capacity=0) as cluster:
            def no_batches(_problems):
                raise RuntimeError("batch transport died")

            monkeypatch.setattr(cluster.pool, "solve_many", no_batches)
            for i, problem in enumerate(problems):
                cluster.submit(f"m{i}", problem, now_s=0.0)
            served = cluster.tick(now_s=0.0)
            # The per-request retry path still solves every meeting.
            assert sorted(s.source for s in served) == [
                SOURCE_SOLVE,
                SOURCE_SOLVE,
            ]


class TestShardFailover:
    """Sec. 7 under cluster rehash: kill -> fallback -> re-home -> recover."""

    def hosted_cluster(self, n_meetings=8):
        cluster = make_cluster(shards=3)
        problems = distinct_problems(n_meetings)
        for i, problem in enumerate(problems):
            cluster.submit(f"m{i}", problem, now_s=0.0)
        cluster.tick(now_s=0.0)
        return cluster

    def test_kill_degrades_victims_to_single_stream_fallback(self):
        cluster = self.hosted_cluster()
        with cluster:
            victim = cluster.meeting("m0").shard
            affected = [
                m for m in cluster.meetings
                if cluster.meeting(m).shard == victim
            ]
            served = cluster.kill_shard(victim, now_s=1.0)
            assert sorted(s.meeting_id for s in served) == affected
            for s in served:
                assert s.source == SOURCE_FALLBACK
                assert s.trigger == TRIGGER_REHOME
                record = cluster.meeting(s.meeting_id)
                want = single_stream_fallback(record.last_problem)
                assert pickle.dumps(record.last_solution) == pickle.dumps(want)
                assert record.shard != victim
                assert record.shard in cluster.live_shards

    def test_survivors_untouched(self):
        cluster = self.hosted_cluster()
        with cluster:
            victim = cluster.meeting("m0").shard
            before = {
                m: (cluster.meeting(m).shard,
                    pickle.dumps(cluster.meeting(m).last_solution))
                for m in cluster.meetings
                if cluster.meeting(m).shard != victim
            }
            cluster.kill_shard(victim, now_s=1.0)
            for m, (shard, solution_bytes) in before.items():
                assert cluster.meeting(m).shard == shard
                assert pickle.dumps(
                    cluster.meeting(m).last_solution
                ) == solution_bytes

    def test_recovery_to_full_kmr_solution(self):
        cluster = self.hosted_cluster()
        with cluster:
            victim = cluster.meeting("m0").shard
            cluster.kill_shard(victim, now_s=1.0)
            # Rehome requests are debounced by the handover fallback; run
            # the loop past the envelope and every meeting re-converges.
            cluster.tick(now_s=2.5)
            record = cluster.meeting("m0")
            want = DIRECT.solve(record.last_problem)
            assert pickle.dumps(record.last_solution) == pickle.dumps(want)

    def test_killing_any_single_shard_never_raises(self):
        for victim_index in range(3):
            cluster = self.hosted_cluster()
            with cluster:
                victim = cluster.live_shards[victim_index]
                cluster.kill_shard(victim, now_s=1.0)  # must not raise
                assert victim not in cluster.live_shards
                cluster.tick(now_s=2.5)
                for m in cluster.meetings:
                    record = cluster.meeting(m)
                    want = DIRECT.solve(record.last_problem)
                    assert pickle.dumps(record.last_solution) == pickle.dumps(
                        want
                    )

    def test_kill_last_shard_rejected(self, problem):
        with make_cluster(shards=1) as cluster:
            cluster.solve_conference("conf-1", problem)
            with pytest.raises(RuntimeError):
                cluster.kill_shard("shard-0", now_s=0.0)

    def test_kill_unknown_shard_rejected(self):
        with make_cluster() as cluster:
            with pytest.raises(ValueError):
                cluster.kill_shard("shard-99", now_s=0.0)
            cluster.kill_shard("shard-1", now_s=0.0)
            with pytest.raises(ValueError):  # already dead
                cluster.kill_shard("shard-1", now_s=0.0)

    def test_failover_metrics(self):
        with enabled_registry() as reg:
            cluster = self.hosted_cluster()
            with cluster:
                victim = cluster.meeting("m0").shard
                served = cluster.kill_shard(victim, now_s=1.0)
                assert (
                    reg.counter(obs_names.CLUSTER_SHARD_FAILOVERS).value == 1
                )
                assert reg.counter(obs_names.CLUSTER_REHOMED).value >= len(
                    served
                )
                assert reg.counter(obs_names.CLUSTER_FALLBACKS).value == len(
                    served
                )


class TestRebalance:
    def test_add_shard_moves_only_captured_meetings(self):
        cluster = make_cluster(shards=2)
        with cluster:
            problems = distinct_problems(8)
            for i, problem in enumerate(problems):
                cluster.submit(f"m{i}", problem, now_s=0.0)
            cluster.tick(now_s=0.0)
            before = {m: cluster.meeting(m).shard for m in cluster.meetings}
            name = cluster.add_shard(now_s=1.0)
            assert name in cluster.live_shards
            for m, old_shard in before.items():
                new_shard = cluster.meeting(m).shard
                assert new_shard in (old_shard, name)

    def test_duplicate_add_rejected(self):
        with make_cluster() as cluster:
            with pytest.raises(ValueError):
                cluster.add_shard("shard-0")


class TestStats:
    def test_snapshot_shape(self, problem):
        with make_cluster() as cluster:
            cluster.solve_conference("conf-1", problem)
            stats = cluster.stats()
            assert stats["meetings"] == 1
            assert stats["live_shards"] == ["shard-0", "shard-1", "shard-2"]
            assert stats["cache"]["misses"] == 1
            assert set(stats["shards"]) == {"shard-0", "shard-1", "shard-2"}

    def test_registration_idempotent(self, problem):
        with make_cluster() as cluster:
            first = cluster.register("m1")
            assert cluster.register("m1") == first
            assert cluster.meetings == ["m1"]
