"""Admission control: oldest-first budgets, deterministic shedding."""

import pytest

from repro.cluster import AdmissionController
from repro.cluster.scheduler import SolveRequest
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry

from .conftest import mesh_problem


def request(meeting_id, submitted_at_s):
    return SolveRequest(
        meeting_id=meeting_id,
        problem=mesh_problem(),
        submitted_at_s=submitted_at_s,
        due_at_s=submitted_at_s,
    )


class TestAdmit:
    def test_under_budget_admits_all(self):
        ctrl = AdmissionController(max_solves_per_round=4)
        reqs = [request("m1", 0.0), request("m2", 1.0)]
        admitted, shed = ctrl.admit(reqs)
        assert [r.meeting_id for r in admitted] == ["m1", "m2"]
        assert shed == []

    def test_oldest_first_newest_shed(self):
        ctrl = AdmissionController(max_solves_per_round=2)
        reqs = [request("m3", 2.0), request("m1", 0.0), request("m2", 1.0)]
        admitted, shed = ctrl.admit(reqs)
        assert [r.meeting_id for r in admitted] == ["m1", "m2"]
        assert [r.meeting_id for r in shed] == ["m3"]

    def test_tie_break_by_meeting_id(self):
        ctrl = AdmissionController(max_solves_per_round=1)
        reqs = [request("m-b", 0.0), request("m-a", 0.0)]
        admitted, shed = ctrl.admit(reqs)
        assert admitted[0].meeting_id == "m-a"
        assert shed[0].meeting_id == "m-b"

    def test_stats_accumulate(self):
        ctrl = AdmissionController(max_solves_per_round=1)
        ctrl.admit([request("m1", 0.0), request("m2", 0.0)])
        ctrl.admit([request("m3", 0.0)])
        assert ctrl.stats.admitted == 2
        assert ctrl.stats.shed == 1
        assert ctrl.stats.total == 3

    def test_shed_metric(self):
        with enabled_registry() as reg:
            ctrl = AdmissionController(max_solves_per_round=1)
            ctrl.admit([request("m1", 0.0), request("m2", 0.0), request("m3", 0.0)])
            assert reg.counter(obs_names.CLUSTER_SHED).value == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_solves_per_round=0)
