"""Solution cache: LRU bounds, isolation, metrics."""

import pickle

import pytest

from repro.cluster import SolutionCache
from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry

from .conftest import mesh_problem


def solved(ups=(5000, 5000, 500)):
    problem = mesh_problem(ups=ups)
    return problem, GsoSolver(SolverConfig(granularity_kbps=25)).solve(problem)


class TestLookup:
    def test_miss_then_hit(self):
        _, solution = solved()
        cache = SolutionCache(capacity=4)
        assert cache.get("fp-a") is None
        cache.put("fp-a", solution)
        hit = cache.get("fp-a")
        assert hit is not None
        assert pickle.dumps(hit) == pickle.dumps(solution)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_contains_and_len(self):
        _, solution = solved()
        cache = SolutionCache(capacity=4)
        cache.put("fp-a", solution)
        assert "fp-a" in cache and "fp-b" not in cache
        assert len(cache) == 1

    def test_clear_keeps_stats(self):
        _, solution = solved()
        cache = SolutionCache(capacity=4)
        cache.put("fp-a", solution)
        cache.get("fp-a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestLru:
    def test_eviction_order(self):
        _, solution = solved()
        cache = SolutionCache(capacity=2)
        cache.put("fp-a", solution)
        cache.put("fp-b", solution)
        cache.get("fp-a")  # refresh a; b is now least-recent
        cache.put("fp-c", solution)
        assert "fp-a" in cache and "fp-c" in cache
        assert "fp-b" not in cache
        assert cache.stats.evictions == 1

    def test_put_refresh_counts_as_recent(self):
        _, solution = solved()
        cache = SolutionCache(capacity=2)
        cache.put("fp-a", solution)
        cache.put("fp-b", solution)
        cache.put("fp-a", solution)  # refresh, not insert
        cache.put("fp-c", solution)
        assert "fp-a" in cache and "fp-b" not in cache

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SolutionCache(capacity=0)


class TestIsolation:
    def test_hit_mutation_does_not_corrupt_store(self):
        _, solution = solved()
        cache = SolutionCache(capacity=4)
        cache.put("fp-a", solution)
        first = cache.get("fp-a")
        first.assignments.clear()
        first.policies.clear()
        second = cache.get("fp-a")
        assert second.assignments and second.policies
        assert pickle.dumps(second) == pickle.dumps(solution)

    def test_caller_mutation_after_put_does_not_corrupt_store(self):
        _, solution = solved()
        cache = SolutionCache(capacity=4)
        cache.put("fp-a", solution)
        solution.assignments.clear()
        assert cache.get("fp-a").assignments


class TestMetrics:
    def test_hit_miss_eviction_counters(self):
        _, solution = solved()
        with enabled_registry() as reg:
            cache = SolutionCache(capacity=1)
            cache.get("fp-a")
            cache.put("fp-a", solution)
            cache.get("fp-a")
            cache.put("fp-b", solution)  # evicts fp-a
            assert reg.counter(obs_names.CLUSTER_CACHE, result="miss").value == 1
            assert reg.counter(obs_names.CLUSTER_CACHE, result="hit").value == 1
            assert reg.counter(obs_names.CLUSTER_CACHE_EVICTIONS).value == 1
            assert reg.gauge(obs_names.CLUSTER_CACHE_ENTRIES).value == 1
