"""Consistent-hash ring: stable placement, minimal movement."""

import pytest

from repro.cluster import ConsistentHashRing, moved_keys, stable_hash

KEYS = [f"meeting-{i}" for i in range(500)]


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("meeting-1") == stable_hash("meeting-1")

    def test_64_bit_range(self):
        for key in ("", "a", "meeting-42"):
            assert 0 <= stable_hash(key) < 2**64

    def test_distinct_keys_distinct_hashes(self):
        hashes = {stable_hash(k) for k in KEYS}
        assert len(hashes) == len(KEYS)

    def test_known_value(self):
        # Pinned: placement must never silently change across releases —
        # a drifting hash re-homes every meeting in the fleet.
        assert stable_hash("shard-0#0") == int.from_bytes(
            __import__("hashlib").sha1(b"shard-0#0").digest()[:8], "big"
        )


class TestRing:
    def test_lookup_is_deterministic(self):
        a = ConsistentHashRing(["s0", "s1", "s2"])
        b = ConsistentHashRing(["s2", "s0", "s1"])  # insertion order differs
        for key in KEYS:
            assert a.node_for(key) == b.node_for(key)

    def test_all_nodes_get_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        placed = ring.assignment(KEYS)
        assert sorted(placed) == ["s0", "s1", "s2", "s3"]
        assert all(placed[n] for n in placed)
        assert sum(len(v) for v in placed.values()) == len(KEYS)

    def test_load_roughly_balanced(self):
        ring = ConsistentHashRing(["s0", "s1", "s2", "s3"], vnodes=64)
        placed = ring.assignment(KEYS)
        fair = len(KEYS) / 4
        for node, keys in placed.items():
            assert 0.4 * fair < len(keys) < 2.0 * fair, node

    def test_remove_moves_only_victims_keys(self):
        before = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        after = ConsistentHashRing(["s0", "s1", "s2", "s3"])
        after.remove_node("s2")
        moves = moved_keys(before, after, KEYS)
        assert moves  # s2 owned something
        assert all(old == "s2" for (_, old, _new) in moves)
        assert all(new != "s2" for (_, _old, new) in moves)
        owned_by_victim = before.assignment(KEYS)["s2"]
        assert sorted(k for (k, _, _) in moves) == owned_by_victim

    def test_add_moves_only_captured_keys(self):
        before = ConsistentHashRing(["s0", "s1"])
        after = ConsistentHashRing(["s0", "s1"])
        after.add_node("s2")
        moves = moved_keys(before, after, KEYS)
        assert moves
        assert all(new == "s2" for (_, _old, new) in moves)

    def test_survivors_keep_their_keys(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove_node("s1")
        for key in KEYS:
            if before[key] != "s1":
                assert ring.node_for(key) == before[key]

    def test_membership_protocol(self):
        ring = ConsistentHashRing(["s0"])
        assert "s0" in ring and "s1" not in ring
        assert len(ring) == 1
        ring.add_node("s1")
        assert ring.nodes == ["s0", "s1"]

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing().node_for("meeting-1")

    def test_duplicate_add_rejected(self):
        ring = ConsistentHashRing(["s0"])
        with pytest.raises(ValueError):
            ring.add_node("s0")

    def test_unknown_remove_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["s0"]).remove_node("s9")

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(vnodes=0)

    def test_remove_then_readd_restores_placement(self):
        ring = ConsistentHashRing(["s0", "s1", "s2"])
        before = {k: ring.node_for(k) for k in KEYS}
        ring.remove_node("s1")
        ring.add_node("s1")
        assert {k: ring.node_for(k) for k in KEYS} == before
