"""The cluster's placement hook: policies, the load model, migration."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ControllerCluster,
    SOURCE_FALLBACK,
    TRIGGER_REHOME,
)
from repro.obs import names as obs_names
from repro.obs.registry import enabled_registry

from .conftest import mesh_problem


def make_cluster(**overrides):
    defaults = dict(shards=3)
    defaults.update(overrides)
    return ControllerCluster(ClusterConfig(**defaults))


class TestConfigValidation:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError, match="least_loaded"):
            ClusterConfig(placement="round_robin")

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="budget"):
            ClusterConfig(shard_cost_budget=-1.0)

    def test_defaults_to_hash(self):
        config = ClusterConfig()
        assert config.placement == "hash"
        assert config.shard_cost_budget == 0.0


class TestRegistration:
    def test_hash_policy_places_on_the_ring(self):
        with make_cluster() as cluster:
            for k in range(12):
                mid = f"m{k}"
                cluster.register(mid)
                assert (
                    cluster.meeting(mid).shard
                    == cluster._ring.node_for(mid)
                    == cluster.load_model.shard_of(mid)
                )

    def test_register_with_problem_records_true_cost(self):
        with make_cluster() as cluster:
            cluster.register("m0", mesh_problem())  # 3-mesh: cost 9
            assert cluster.load_model.cost_of("m0") == 9.0

    def test_register_without_problem_uses_default_cost(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            assert cluster.load_model.cost_of("m0") == 4.0

    def test_resubmission_refreshes_cost(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            cluster.submit("m0", mesh_problem(), 0.0)  # picture arrives
            assert cluster.load_model.cost_of("m0") == 9.0

    def test_least_loaded_spreads_evenly(self):
        with make_cluster(placement="least_loaded") as cluster:
            for k in range(6):
                cluster.register(f"m{k}")
            loads = cluster.load_model.loads(cluster.live_shards)
            assert sorted(loads.values()) == [8.0, 8.0, 8.0]

    def test_best_fit_packs_under_budget(self):
        with make_cluster(
            placement="best_fit", shard_cost_budget=12.0
        ) as cluster:
            for k in range(6):
                cluster.register(f"m{k}")  # cost 4: three per shard
            loads = cluster.load_model.loads(cluster.live_shards)
            assert sorted(loads.values()) == [0.0, 12.0, 12.0]

    def test_decisions_counted_per_policy(self):
        with enabled_registry() as reg:
            with make_cluster(placement="least_loaded") as cluster:
                cluster.register("m0")
                cluster.register("m1")
            counter = reg.counter(
                obs_names.PLACEMENT_DECISIONS, policy="least_loaded"
            )
            assert counter.value == 2


class TestMigrateMeeting:
    def test_unknown_meeting_raises(self):
        with make_cluster() as cluster:
            with pytest.raises(KeyError):
                cluster.migrate_meeting("ghost", "shard-0", 0.0)

    def test_dead_target_raises(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            cluster.kill_shard("shard-2", 0.0)
            with pytest.raises(ValueError, match="shard-2"):
                cluster.migrate_meeting("m0", "shard-2", 1.0)

    def test_already_home_is_a_noop(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            home = cluster.meeting("m0").shard
            assert cluster.migrate_meeting("m0", home, 1.0) is None
            assert cluster.migrations == {}

    def test_degraded_move_serves_fallback_and_reconverges(self):
        with make_cluster() as cluster:
            cluster.submit("m0", mesh_problem(), 0.0)
            cluster.tick(0.0)
            source = cluster.meeting("m0").shard
            target = next(
                s for s in cluster.live_shards if s != source
            )
            served = cluster.migrate_meeting(
                "m0", target, 1.0, reason="manual"
            )
            assert served is not None
            assert served.source == SOURCE_FALLBACK
            assert cluster.meeting("m0").shard == target
            assert cluster.load_model.shard_of("m0") == target
            assert cluster.migrations == {"manual": 1}
            # The rehome solve request re-converges once the debounce
            # interval has passed.
            followups = cluster.tick(10.0)
            assert [s.trigger for s in followups] == [TRIGGER_REHOME]

    def test_seamless_move_serves_nothing(self):
        with make_cluster() as cluster:
            cluster.submit("m0", mesh_problem(), 0.0)
            cluster.tick(0.0)
            source = cluster.meeting("m0").shard
            target = next(s for s in cluster.live_shards if s != source)
            served = cluster.migrate_meeting(
                "m0", target, 1.0, reason="manual", degrade=False
            )
            assert served is None
            assert cluster.meeting("m0").shard == target

    def test_migrations_counted_by_reason(self):
        with enabled_registry() as reg:
            with make_cluster() as cluster:
                cluster.register("m0")
                source = cluster.meeting("m0").shard
                target = next(
                    s for s in cluster.live_shards if s != source
                )
                cluster.migrate_meeting(
                    "m0", target, 1.0, reason="manual", degrade=False
                )
            counter = reg.counter(
                obs_names.PLACEMENT_MIGRATIONS, reason="manual"
            )
            assert counter.value == 1


class TestShardChurn:
    def test_kill_shard_keeps_load_model_consistent(self):
        with make_cluster(placement="best_fit",
                          shard_cost_budget=40.0) as cluster:
            for k in range(6):
                cluster.submit(f"m{k}", mesh_problem(), 0.0)
            cluster.tick(0.0)
            victim = cluster.live_shards[0]
            cluster.kill_shard(victim, 1.0)
            loads = cluster.load_model.loads()
            assert victim not in loads
            assert sum(loads.values()) == 6 * 9.0
            for k in range(6):
                assert cluster.load_model.shard_of(f"m{k}") in loads
            assert cluster.migrations.get("shard_killed") >= 1

    def test_add_shard_rehomes_only_under_hash(self):
        with make_cluster(placement="best_fit") as cluster:
            for k in range(8):
                cluster.register(f"m{k}")
            before = {
                f"m{k}": cluster.meeting(f"m{k}").shard for k in range(8)
            }
            cluster.add_shard("shard-9", 1.0)
            after = {
                f"m{k}": cluster.meeting(f"m{k}").shard for k in range(8)
            }
            assert before == after  # packing policies are sticky
            assert cluster.load_model.load("shard-9") == 0.0

    def test_stats_expose_the_placement_section(self):
        with make_cluster(
            placement="best_fit", shard_cost_budget=25.0
        ) as cluster:
            cluster.register("m0")
            stats = cluster.stats()["placement"]
            assert stats["policy"] == "best_fit"
            assert stats["budget"] == 25.0
            assert stats["meetings"] == 1
            assert stats["total_cost"] == 4.0
            assert stats["migrations"] == {}
