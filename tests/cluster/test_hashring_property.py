"""Property test: the ring moves only the keys it must, under any churn.

The `hash` placement policy's whole value is minimal movement — adding a
shard steals keys only *for* the new shard, killing one moves keys only
*off* the victim, and every key untouched by the change keeps its home.
Hypothesis drives a random mixed add/kill churn sequence and checks the
property after every single step.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import ConsistentHashRing

KEYS = [f"meeting-{i}" for i in range(120)]
POOL = [f"shard-{i}" for i in range(8)]

# A churn program: (op, shard-index) pairs over a fixed shard pool.
OPS = st.lists(
    st.tuples(st.sampled_from(["add", "kill"]), st.integers(0, len(POOL) - 1)),
    min_size=1,
    max_size=12,
)


def assignment(ring):
    return {key: ring.node_for(key) for key in KEYS}


@settings(max_examples=50, deadline=None)
@given(initial=st.integers(2, 4), ops=OPS)
def test_every_churn_step_moves_only_the_necessary_keys(initial, ops):
    ring = ConsistentHashRing(POOL[:initial])
    members = set(POOL[:initial])
    before = assignment(ring)
    for op, idx in ops:
        shard = POOL[idx]
        if op == "add":
            if shard in members:
                continue
            ring.add_node(shard)
            members.add(shard)
            after = assignment(ring)
            # Growth: keys move only TO the new shard; everyone else stays.
            for key in KEYS:
                if after[key] != before[key]:
                    assert after[key] == shard, (key, before[key], after[key])
        else:
            if shard not in members or len(members) == 1:
                continue
            ring.remove_node(shard)
            members.remove(shard)
            after = assignment(ring)
            # Death: only the victim's keys move, and never back to it.
            for key in KEYS:
                if after[key] != before[key]:
                    assert before[key] == shard, (key, before[key], after[key])
                assert after[key] != shard
        assert set(after.values()) <= members
        before = after


@settings(max_examples=50, deadline=None)
@given(ops=OPS)
def test_churn_round_trip_restores_the_original_assignment(ops):
    """A ring rebuilt with the same final membership places identically —
    membership, not history, determines placement."""
    ring = ConsistentHashRing(POOL[:3])
    members = set(POOL[:3])
    for op, idx in ops:
        shard = POOL[idx]
        if op == "add" and shard not in members:
            ring.add_node(shard)
            members.add(shard)
        elif op == "kill" and shard in members and len(members) > 1:
            ring.remove_node(shard)
            members.remove(shard)
    fresh = ConsistentHashRing(sorted(members))
    assert assignment(ring) == assignment(fresh)
