"""Span-context propagation across the solve pool (serial and process
modes) plus a concurrency stress test on the registry join path."""

import threading

import pytest

from repro.cluster.pool import SolvePool
from repro.core.solver import SolverConfig
from repro.obs import names
from repro.obs.registry import enabled_registry
from repro.obs.spans import (
    context_token,
    last_root_span,
    span,
    stitch_child,
)
from tests.cluster.conftest import mesh_problem


def _problems(n):
    """Distinct small mesh problems (uplinks vary per index)."""
    return [
        mesh_problem(ups=(5000, 5000, 500 + 100 * k)) for k in range(n)
    ]


class TestContextToken:
    def test_token_captures_open_span_path(self):
        with enabled_registry():
            with span("outer"):
                with span("inner"):
                    token = context_token()
        assert token == {"path": ["outer", "inner"]}

    def test_token_empty_without_spans(self):
        assert context_token() == {"path": []}

    def test_token_is_picklable(self):
        import pickle

        with enabled_registry():
            with span("outer"):
                token = context_token()
        assert pickle.loads(pickle.dumps(token)) == token


class TestStitchChild:
    def test_stitch_attaches_to_open_span(self):
        with enabled_registry() as reg:
            with span("parent"):
                record = stitch_child(
                    names.SPAN_POOL_SOLVE, 0.5,
                    token={"path": ["parent"]},
                )
            root = last_root_span()
        assert record in root.children
        assert record.depth == root.depth + 1
        snap = reg.snapshot()["histograms"]
        key = f'{names.SPAN_SECONDS}{{span="{names.SPAN_POOL_SOLVE}"}}'
        assert snap[key]["count"] == 1

    def test_stitch_detached_without_open_span(self):
        with enabled_registry():
            record = stitch_child(names.SPAN_POOL_SOLVE, 0.1)
        assert record.children == []
        assert record.duration_s == 0.1


class TestPoolSpans:
    def _span_count(self, reg):
        snap = reg.snapshot()["histograms"]
        key = f'{names.SPAN_SECONDS}{{span="{names.SPAN_POOL_SOLVE}"}}'
        return snap.get(key, {}).get("count", 0)

    def test_serial_pool_records_pool_solve_spans(self):
        problems = _problems(3)
        with enabled_registry() as reg:
            with SolvePool(SolverConfig(granularity_kbps=50)) as pool:
                with span("batch"):
                    pool.solve_many(problems)
            root = last_root_span()
        assert self._span_count(reg) == 3
        assert [c.name for c in root.children] == (
            [names.SPAN_POOL_SOLVE] * 3
        )

    def test_parallel_pool_stitches_worker_spans(self):
        problems = _problems(4)
        with enabled_registry() as reg:
            with SolvePool(
                SolverConfig(granularity_kbps=50), workers=2
            ) as pool:
                with span("batch"):
                    solutions = pool.solve_many(problems)
                root = last_root_span()
                if not pool.is_parallel:
                    pytest.skip("sandbox does not allow process pools")
        assert len(solutions) == 4
        # Every pooled solve was stitched back under the open span and
        # observed into the latency histogram, as if it ran inline.
        assert self._span_count(reg) == 4
        assert [c.name for c in root.children] == (
            [names.SPAN_POOL_SOLVE] * 4
        )

    def test_parallel_matches_serial_solutions(self):
        problems = _problems(3)
        with SolvePool(SolverConfig(granularity_kbps=50)) as serial:
            expected = serial.solve_many(problems)
        with SolvePool(
            SolverConfig(granularity_kbps=50), workers=2
        ) as pool:
            got = pool.solve_many(problems)
        for a, b in zip(expected, got):
            assert a.assignments == b.assignments


class TestRegistryStress:
    """Hammer the registry from concurrent solve_many joins: every span
    observation must land, none may be lost to races."""

    THREADS = 4
    BATCHES = 3
    PROBLEMS = 2

    def test_concurrent_solve_many_records_every_span(self):
        problems = _problems(self.PROBLEMS)
        errors = []

        def worker():
            try:
                with SolvePool(SolverConfig(granularity_kbps=50)) as pool:
                    for _ in range(self.BATCHES):
                        pool.solve_many(problems)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with enabled_registry() as reg:
            threads = [
                threading.Thread(target=worker)
                for _ in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            snap = reg.snapshot()["histograms"]
        assert not errors
        key = f'{names.SPAN_SECONDS}{{span="{names.SPAN_POOL_SOLVE}"}}'
        expected = self.THREADS * self.BATCHES * self.PROBLEMS
        assert snap[key]["count"] == expected
