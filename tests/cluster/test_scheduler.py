"""Solve scheduler: coalescing, debounce floor, time-trigger ceiling."""

import pytest

from repro.cluster import SolveScheduler
from repro.cluster.scheduler import TRIGGER_EVENT, TRIGGER_TIME

from .conftest import mesh_problem


class TestSubmit:
    def test_first_request_due_immediately(self):
        sched = SolveScheduler()
        request = sched.submit("m1", mesh_problem(), now_s=5.0)
        assert request.due_at_s == 5.0
        assert sched.due(5.0) == [request]

    def test_debounce_floor_after_a_solve(self):
        sched = SolveScheduler(min_interval_s=1.0)
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=10.0)
        request = sched.submit("m1", problem, now_s=10.2)
        assert request.due_at_s == pytest.approx(11.0)
        assert sched.due(10.5) == []
        assert sched.due(11.0) == [request]

    def test_submit_after_quiet_period_runs_at_once(self):
        sched = SolveScheduler(min_interval_s=1.0)
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=10.0)
        request = sched.submit("m1", problem, now_s=20.0)
        assert request.due_at_s == 20.0

    def test_coalescing_newest_snapshot_wins(self):
        sched = SolveScheduler()
        old = mesh_problem(ups=(5000, 5000, 500))
        new = mesh_problem(ups=(5000, 5000, 900))
        first = sched.submit("m1", old, now_s=0.0)
        second = sched.submit("m1", new, now_s=0.3)
        assert second is first  # one pending slot per meeting
        assert sched.queue_depth == 1
        assert first.problem is new
        assert first.coalesced == 1
        assert sched.stats.coalesced == 1

    def test_coalescing_keeps_queue_position(self):
        sched = SolveScheduler(min_interval_s=1.0)
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=0.0)
        sched.submit("m1", problem, now_s=0.1)  # due at 1.0
        sched.submit("m1", problem, now_s=0.9)
        [request] = sched.due(1.0)
        assert request.due_at_s == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SolveScheduler(min_interval_s=0.0)
        with pytest.raises(ValueError):
            SolveScheduler(min_interval_s=3.0, max_interval_s=1.0)


class TestDue:
    def test_time_trigger_after_max_interval(self):
        sched = SolveScheduler(min_interval_s=1.0, max_interval_s=3.0)
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=0.0)
        assert sched.due(2.0) == []
        [request] = sched.due(3.0)
        assert request.trigger == TRIGGER_TIME
        assert request.problem is problem
        assert sched.stats.time_triggered == 1

    def test_no_time_trigger_while_pending(self):
        sched = SolveScheduler(min_interval_s=1.0, max_interval_s=3.0)
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=0.0)
        sched.submit("m1", problem, now_s=0.5)  # due at 1.0
        ready = sched.due(4.0)
        assert len(ready) == 1  # the event request, not a duplicate refresh
        assert ready[0].trigger == TRIGGER_EVENT

    def test_due_popped_once(self):
        sched = SolveScheduler()
        sched.submit("m1", mesh_problem(), now_s=0.0)
        assert len(sched.due(0.0)) == 1
        assert sched.due(0.0) == []

    def test_ordering_by_due_then_meeting(self):
        sched = SolveScheduler(min_interval_s=1.0)
        problem = mesh_problem()
        sched.mark_solved("m-b", problem, now_s=0.5)  # due at 1.5
        sched.submit("m-b", problem, now_s=0.6)
        sched.submit("m-c", problem, now_s=0.7)  # never solved: due at 0.7
        sched.submit("m-a", problem, now_s=0.7)
        ready = sched.due(2.0)
        assert [r.meeting_id for r in ready] == ["m-a", "m-c", "m-b"]


class TestHandover:
    def test_requeue_restores_pending(self):
        sched = SolveScheduler()
        sched.submit("m1", mesh_problem(), now_s=0.0)
        [request] = sched.due(0.0)
        sched.requeue(request)
        assert sched.due(0.0) == [request]

    def test_forget_returns_freshest_snapshot(self):
        sched = SolveScheduler()
        old = mesh_problem(ups=(5000, 5000, 500))
        new = mesh_problem(ups=(5000, 5000, 900))
        sched.mark_solved("m1", old, now_s=0.0)
        sched.submit("m1", new, now_s=0.5)
        assert sched.forget("m1") is new
        assert sched.queue_depth == 0
        assert sched.meetings == []

    def test_forget_falls_back_to_last_solved(self):
        sched = SolveScheduler()
        problem = mesh_problem()
        sched.mark_solved("m1", problem, now_s=0.0)
        assert sched.forget("m1") is problem

    def test_forget_unknown_meeting_is_none(self):
        assert SolveScheduler().forget("ghost") is None

    def test_forgotten_meeting_stops_time_triggering(self):
        sched = SolveScheduler(max_interval_s=3.0)
        sched.mark_solved("m1", mesh_problem(), now_s=0.0)
        sched.forget("m1")
        assert sched.due(10.0) == []
