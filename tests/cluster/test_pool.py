"""Solve pool: serial/parallel equivalence, graceful degradation."""

import pickle

import pytest

from repro.cluster import SolvePool
from repro.core.solver import GsoSolver, SolverConfig

from .conftest import mesh_problem

CONFIG = SolverConfig(granularity_kbps=25)

PROBLEMS = [
    mesh_problem(ups=(5000, 5000, 500)),
    mesh_problem(ups=(1200, 900, 700)),
    mesh_problem(ups=(5000, 5000, 500), downs=(900, 5000, 5000)),
]


def reference_solutions():
    solver = GsoSolver(CONFIG)
    return [solver.solve(p) for p in PROBLEMS]


class TestSerial:
    def test_solve_matches_direct_solver(self):
        with SolvePool(CONFIG) as pool:
            assert not pool.is_parallel
            for problem, want in zip(PROBLEMS, reference_solutions()):
                assert pickle.dumps(pool.solve(problem)) == pickle.dumps(want)

    def test_solve_many_preserves_order(self):
        with SolvePool(CONFIG) as pool:
            got = pool.solve_many(PROBLEMS)
            for have, want in zip(got, reference_solutions()):
                assert pickle.dumps(have) == pickle.dumps(want)

    def test_empty_batch(self):
        with SolvePool(CONFIG) as pool:
            assert pool.solve_many([]) == []

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            SolvePool(CONFIG, workers=-1)


class TestParallel:
    def test_pool_matches_serial_byte_for_byte(self):
        # If the sandbox forbids subprocesses the pool silently degrades
        # to the serial path, and the equality below still must hold.
        with SolvePool(CONFIG, workers=2) as pool:
            got = pool.solve_many(PROBLEMS)
        for have, want in zip(got, reference_solutions()):
            assert pickle.dumps(have) == pickle.dumps(want)

    def test_close_is_idempotent(self):
        pool = SolvePool(CONFIG, workers=2)
        pool.close()
        pool.close()
        assert not pool.is_parallel
        assert pool.workers == 0

    def test_closed_pool_still_solves_serially(self):
        pool = SolvePool(CONFIG, workers=2)
        pool.close()
        [solution] = pool.solve_many(PROBLEMS[:1])
        assert pickle.dumps(solution) == pickle.dumps(reference_solutions()[0])
