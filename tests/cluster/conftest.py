"""Shared helpers for the controller-cluster tests."""

import pytest

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.ladder import paper_ladder
from repro.core.types import Resolution


def mesh_problem(
    ups=(5000, 5000, 500),
    downs=(3000, 3000, 3000),
    protection=0,
):
    """A full-mesh meeting with one client per (up, down) pair."""
    ids = [f"c{k}" for k in range(len(ups))]
    ladder = paper_ladder()
    return Problem(
        feasible_streams={cid: ladder for cid in ids},
        bandwidth={
            cid: Bandwidth(up, down, audio_protection_kbps=protection)
            for cid, up, down in zip(ids, ups, downs)
        },
        subscriptions=[
            Subscription(a, b, Resolution.P720)
            for a in ids
            for b in ids
            if a != b
        ],
    )


@pytest.fixture
def problem():
    return mesh_problem()
