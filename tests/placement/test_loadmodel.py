"""The deterministic per-shard load model."""

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.ladder import paper_ladder
from repro.core.types import Resolution
from repro.placement.loadmodel import (
    DEFAULT_MEETING_COST,
    ShardLoadModel,
    conference_cost,
    load_signals,
    meeting_cost,
)


def mesh(n):
    ids = [f"c{k}" for k in range(n)]
    ladder = paper_ladder()
    return Problem(
        feasible_streams={cid: ladder for cid in ids},
        bandwidth={cid: Bandwidth(5000, 3000) for cid in ids},
        subscriptions=[
            Subscription(a, b, Resolution.P720)
            for a in ids
            for b in ids
            if a != b
        ],
    )


class TestCosts:
    def test_meeting_cost_counts_edges_plus_publishers(self):
        # n=3 full mesh: 6 subscriptions + 3 publishers.
        assert meeting_cost(mesh(3)) == 9.0

    def test_meeting_cost_equals_conference_cost_on_meshes(self):
        for n in (2, 3, 5, 8):
            assert meeting_cost(mesh(n)) == conference_cost(n) == float(n * n)

    def test_conference_cost_floors_at_one(self):
        assert conference_cost(0) == 1.0
        assert conference_cost(-3) == 1.0


class TestShardLoadModel:
    def test_assign_and_loads(self):
        model = ShardLoadModel(["s0", "s1"])
        model.assign("m0", "s0", 9.0)
        model.assign("m1", "s1", 4.0)
        assert model.loads() == {"s0": 9.0, "s1": 4.0}
        assert model.load("s0") == 9.0
        assert model.load("unknown") == 0.0

    def test_assign_is_idempotent_reassign(self):
        model = ShardLoadModel(["s0", "s1"])
        model.assign("m0", "s0", 9.0)
        model.assign("m0", "s1", 9.0)  # release-then-add, no double count
        assert model.loads() == {"s0": 0.0, "s1": 9.0}

    def test_update_cost_moves_the_delta(self):
        model = ShardLoadModel(["s0"])
        model.assign("m0", "s0", 4.0)
        model.update_cost("m0", 25.0)
        assert model.load("s0") == 25.0
        assert model.cost_of("m0") == 25.0

    def test_update_cost_ignores_untracked(self):
        model = ShardLoadModel(["s0"])
        model.update_cost("ghost", 10.0)
        assert model.loads() == {"s0": 0.0}

    def test_move_transfers_cost(self):
        model = ShardLoadModel(["s0", "s1"])
        model.assign("m0", "s0", 9.0)
        model.move("m0", "s1")
        assert model.loads() == {"s0": 0.0, "s1": 9.0}
        assert model.shard_of("m0") == "s1"

    def test_release_forgets(self):
        model = ShardLoadModel(["s0"])
        model.assign("m0", "s0", 9.0)
        model.release("m0")
        assert model.load("s0") == 0.0
        assert model.shard_of("m0") is None
        assert model.cost_of("m0") == DEFAULT_MEETING_COST

    def test_remove_shard_only_when_empty(self):
        model = ShardLoadModel(["s0", "s1"])
        model.assign("m0", "s0", 9.0)
        model.remove_shard("s0")  # refused: still loaded
        assert "s0" in model.loads()
        model.remove_shard("s1")
        assert "s1" not in model.loads()

    def test_meetings_on_sorted_by_id(self):
        model = ShardLoadModel(["s0"])
        model.assign("m2", "s0", 1.0)
        model.assign("m0", "s0", 2.0)
        model.assign("m1", "s0", 3.0)
        assert model.meetings_on("s0") == [
            ("m0", 2.0),
            ("m1", 3.0),
            ("m2", 1.0),
        ]

    def test_loads_restricted_to_requested_shards(self):
        model = ShardLoadModel(["s0", "s1"])
        model.assign("m0", "s0", 9.0)
        assert model.loads(["s1", "s2"]) == {"s1": 0.0, "s2": 0.0}

    def test_snapshot_shape(self):
        model = ShardLoadModel(["s1", "s0"])
        model.assign("m0", "s0", 9.0)
        snap = model.snapshot()
        assert snap == {
            "loads": {"s0": 9.0, "s1": 0.0},
            "meetings": 1,
            "total_cost": 9.0,
        }
        assert list(snap["loads"]) == ["s0", "s1"]  # sorted


class TestLoadSignals:
    def test_joins_cost_and_queue_depth(self):
        from repro.cluster import ClusterConfig, ControllerCluster

        with ControllerCluster(ClusterConfig(shards=2)) as cluster:
            cluster.submit("m0", mesh(3), 0.0)
            rows = load_signals(cluster)
            assert [r.shard for r in rows] == sorted(cluster.live_shards)
            assert sum(r.assigned_cost for r in rows) == 9.0
            assert sum(r.queue_depth for r in rows) == 1
            assert all(r.solve_p95_s is None for r in rows)  # no samples
            as_dict = rows[0].to_dict()
            assert set(as_dict) == {
                "shard",
                "assigned_cost",
                "meetings",
                "queue_depth",
                "solve_p95_s",
            }
