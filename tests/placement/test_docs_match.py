"""docs/PLACEMENT.md must not drift from the placement subsystem.

Same discipline as ``tests/obs/test_docs_match.py``: the guide promises
concrete names — policies, metrics, migration reasons, the invariant,
the scenario, the CLI verbs, the benchmark artifact — and these tests
pin every one of them to the code's canonical constants.
"""

import re
from pathlib import Path

import pytest

from repro.obs import names as obs_names
from repro.placement.policies import POLICIES

DOCS = Path(__file__).resolve().parents[2] / "docs" / "PLACEMENT.md"


@pytest.fixture(scope="module")
def guide_text():
    assert DOCS.is_file(), f"placement guide missing: {DOCS}"
    return DOCS.read_text()


class TestGuideCoversNames:
    def test_every_policy_documented(self, guide_text):
        for policy in POLICIES:
            assert re.search(rf"`{policy}`", guide_text), policy

    def test_placement_metrics_documented(self, guide_text):
        for metric in (
            obs_names.PLACEMENT_DECISIONS,
            obs_names.PLACEMENT_SHARD_COST,
            obs_names.PLACEMENT_MIGRATIONS,
            obs_names.AUTOSCALE_ACTIONS,
        ):
            assert metric in guide_text, metric

    def test_rebalance_span_documented(self, guide_text):
        assert obs_names.SPAN_PLACEMENT_REBALANCE in guide_text

    def test_migration_reasons_documented(self, guide_text):
        # The reason vocabulary of repro_placement_migrations_total.
        for reason in (
            "hot_shard",
            "scale_in",
            "shard_killed",
            "shard_added",
            "manual",
        ):
            assert re.search(rf"\b{reason}\b", guide_text), reason

    def test_chaos_integration_documented(self, guide_text):
        from repro.chaos import INV_SHARD_BUDGET, OVERLOAD_SHARD
        from repro.chaos.scenarios import get_scenario

        assert re.search(rf"\b{INV_SHARD_BUDGET}\b", guide_text)
        assert re.search(rf"\b{OVERLOAD_SHARD}\b", guide_text)
        assert re.search(r"\bhot_shard\b", guide_text)
        get_scenario("hot_shard")  # the documented scenario exists

    def test_cli_verbs_documented(self, guide_text):
        for verb in ("place run", "place compare", "place stats"):
            assert verb in guide_text, verb

    def test_benchmark_artifact_documented(self, guide_text):
        assert "BENCH_PR7.json" in guide_text
        assert (
            Path(__file__).resolve().parents[2]
            / "benchmarks"
            / "baselines"
            / "BENCH_PR7.json"
        ).is_file()

    def test_documented_config_knobs_exist(self, guide_text):
        from repro.cluster import ClusterConfig
        from repro.placement.autoscaler import AutoscalerConfig

        assert "ClusterConfig.placement" in guide_text
        config = ClusterConfig()
        assert hasattr(config, "placement")
        assert hasattr(config, "shard_cost_budget")
        for knob in ("idle_utilization", "idle_rounds", "max_shards"):
            assert re.search(rf"\b{knob}\b", guide_text), knob
            assert hasattr(AutoscalerConfig(), knob)


class TestCrossLinks:
    def test_architecture_links_placement(self):
        text = (
            Path(__file__).resolve().parents[2] / "docs" / "ARCHITECTURE.md"
        ).read_text()
        assert "PLACEMENT.md" in text
        assert "repro.placement" in text

    def test_readme_links_placement(self):
        text = (
            Path(__file__).resolve().parents[2] / "README.md"
        ).read_text()
        assert "docs/PLACEMENT.md" in text

    def test_resilience_links_placement(self):
        text = (
            Path(__file__).resolve().parents[2] / "docs" / "RESILIENCE.md"
        ).read_text()
        assert "PLACEMENT.md" in text
        assert "shard_budget" in text

    def test_guide_links_back(self, guide_text):
        assert "OBSERVABILITY.md" in guide_text
        assert "RESILIENCE.md" in guide_text
