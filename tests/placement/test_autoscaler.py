"""SLO-driven shard autoscaling: burn -> grow, sustained idle -> shrink."""

import pytest

from repro.cluster import ClusterConfig, ControllerCluster
from repro.obs.slo import SloVerdict
from repro.placement.autoscaler import AutoscalerConfig, ShardAutoscaler


def verdict(name="solve_latency_p95", fast_burn=False):
    return SloVerdict(
        name=name,
        description="",
        measure="m",
        threshold=1.0,
        comparator="<=",
        unit="s",
        deterministic=True,
        paper_ref="",
        value=None,
        recent_value=None,
        ok=not fast_burn,
        fast_burn=fast_burn,
    )


def make_cluster(**overrides):
    defaults = dict(shards=3, placement="least_loaded")
    defaults.update(overrides)
    return ControllerCluster(ClusterConfig(**defaults))


class TestConfigValidation:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="min_shards"):
            AutoscalerConfig(min_shards=0)
        with pytest.raises(ValueError, match="max_shards"):
            AutoscalerConfig(min_shards=4, max_shards=2)
        with pytest.raises(ValueError, match="idle_utilization"):
            AutoscalerConfig(idle_utilization=1.5)
        with pytest.raises(ValueError, match="idle_rounds"):
            AutoscalerConfig(idle_rounds=0)


class TestScaleOut:
    def test_fast_burn_adds_a_shard(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(cluster, AutoscalerConfig(max_shards=4))
            actions = scaler.observe([verdict(fast_burn=True)], 1.0)
            assert len(cluster.live_shards) == 4
            assert [a.action for a in actions] == ["add"]
            assert actions[0].reason == "slo_burn:solve_latency_p95"
            assert scaler.actions == {"add": 1}

    def test_burn_reasons_list_every_burning_slo(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(cluster, AutoscalerConfig(max_shards=4))
            actions = scaler.observe(
                [
                    verdict("b_slo", fast_burn=True),
                    verdict("a_slo", fast_burn=True),
                    verdict("ok_slo"),
                ],
                1.0,
            )
            assert actions[0].reason == "slo_burn:a_slo,b_slo"

    def test_respects_max_shards(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(cluster, AutoscalerConfig(max_shards=3))
            actions = scaler.observe([verdict(fast_burn=True)], 1.0)
            assert actions == []
            assert len(cluster.live_shards) == 3

    def test_ok_verdicts_do_nothing(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(cluster, AutoscalerConfig())
            assert scaler.observe([verdict()], 1.0) == []
            assert len(cluster.live_shards) == 3


class TestScaleIn:
    def config(self):
        return AutoscalerConfig(
            min_shards=1,
            max_shards=4,
            shard_cost_budget=100.0,
            idle_utilization=0.5,
            idle_rounds=2,
        )

    def test_sustained_idle_drains_then_retires(self):
        with make_cluster() as cluster:
            for k in range(3):
                cluster.register(f"m{k}")  # one cost-4 meeting per shard
            scaler = ShardAutoscaler(cluster, self.config())
            assert scaler.observe([verdict()], 1.0) == []  # streak 1
            actions = scaler.observe([verdict()], 2.0)  # streak 2 -> remove
            assert [a.action for a in actions] == ["remove"]
            assert actions[0].reason == "sustained_idle"
            assert len(cluster.live_shards) == 2
            # The victim was drained live (seamless migrations, zero
            # degraded serves) before kill_shard found it empty.
            assert cluster.migrations == {"scale_in": 1}
            live_loads = cluster.load_model.loads(cluster.live_shards)
            assert sum(live_loads.values()) == 12.0

    def test_idle_streak_resets_on_busy_observation(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            scaler = ShardAutoscaler(cluster, self.config())
            scaler.observe([verdict()], 1.0)  # idle streak 1
            grow = cluster.load_model
            grow.update_cost("m0", 200.0)  # now busy
            scaler.observe([verdict()], 2.0)  # resets the streak
            grow.update_cost("m0", 4.0)  # idle again
            assert scaler.observe([verdict()], 3.0) == []  # streak back to 1
            assert len(cluster.live_shards) == 3

    def test_burn_resets_idle_streak(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            scaler = ShardAutoscaler(cluster, self.config())
            scaler.observe([verdict()], 1.0)  # idle streak 1
            scaler.observe([verdict(fast_burn=True)], 2.0)  # add + reset
            assert len(cluster.live_shards) == 4
            assert scaler.observe([verdict()], 3.0) == []  # streak 1 again

    def test_respects_min_shards(self):
        with make_cluster(shards=1) as cluster:
            scaler = ShardAutoscaler(cluster, self.config())
            for t in range(5):
                assert scaler.observe([verdict()], float(t)) == []
            assert len(cluster.live_shards) == 1

    def test_no_budget_disables_scale_in(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(
                cluster, AutoscalerConfig(shard_cost_budget=0.0)
            )
            for t in range(5):
                assert scaler.observe([verdict()], float(t)) == []
            assert len(cluster.live_shards) == 3


class TestStats:
    def test_stats_shape(self):
        with make_cluster() as cluster:
            scaler = ShardAutoscaler(cluster, AutoscalerConfig(max_shards=4))
            scaler.observe([verdict(fast_burn=True)], 1.0)
            stats = scaler.stats()
            assert stats["actions"] == {"add": 1}
            assert stats["idle_streak"] == 0
            assert stats["config"]["max_shards"] == 4
