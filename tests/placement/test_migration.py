"""Hot-shard detection and the live drain loop."""

import pytest

from repro.cluster import ClusterConfig, ControllerCluster, SOURCE_FALLBACK
from repro.placement.migration import HotShardDetector

from ..cluster.conftest import mesh_problem


def make_cluster(**overrides):
    defaults = dict(
        shards=3, placement="best_fit", shard_cost_budget=20.0
    )
    defaults.update(overrides)
    return ControllerCluster(ClusterConfig(**defaults))


def grow(cluster, meeting_id, cost):
    """Simulate a meeting growing to ``cost`` (update the load model)."""
    cluster.load_model.update_cost(meeting_id, cost)


class TestHotShards:
    def test_empty_when_budget_disabled(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            grow(cluster, "m0", 99.0)
            assert HotShardDetector(0.0).hot_shards(cluster) == []

    def test_over_budget_shards_hottest_first(self):
        with make_cluster() as cluster:
            for k in range(3):
                cluster.register(f"m{k}")  # cost 4 each, packed together
            shard = cluster.load_model.shard_of("m0")
            grow(cluster, "m0", 30.0)
            grow(cluster, "m1", 25.0)
            detector = HotShardDetector(20.0)
            assert detector.hot_shards(cluster) == [shard]


class TestRebalance:
    def test_drains_back_inside_budget(self):
        with make_cluster() as cluster:
            for k in range(4):
                cluster.register(f"m{k}")  # 4 x cost 4 -> 16 on one shard
            grow(cluster, "m0", 12.0)  # shard now at 24 > 20
            detector = HotShardDetector(20.0)
            result = detector.rebalance(cluster, 1.0)
            assert result.moves
            assert result.hot_after == []
            loads = cluster.load_model.loads(cluster.live_shards)
            assert all(v <= 20.0 for v in loads.values())

    def test_fixpoint_is_stable_no_ping_pong(self):
        with make_cluster() as cluster:
            for k in range(4):
                cluster.register(f"m{k}")
            grow(cluster, "m0", 12.0)
            detector = HotShardDetector(20.0)
            detector.rebalance(cluster, 1.0)
            again = detector.rebalance(cluster, 2.0)
            assert again.moves == []
            assert again.served == []

    def test_undrainable_overload_is_tolerated(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            grow(cluster, "m0", 50.0)  # one meeting alone over budget
            detector = HotShardDetector(20.0)
            result = detector.rebalance(cluster, 1.0)
            assert result.moves == []
            assert result.hot_after == [cluster.load_model.shard_of("m0")]
            assert not detector.drainable(
                cluster, cluster.load_model.shard_of("m0")
            )

    def test_migration_serves_degraded_fallback(self):
        with make_cluster() as cluster:
            problem = mesh_problem()
            cluster.submit("m0", problem, 0.0)
            cluster.submit("m1", mesh_problem(ups=(5000, 5000, 450)), 0.0)
            cluster.tick(0.0)
            grow(cluster, "m0", 30.0)
            detector = HotShardDetector(20.0)
            result = detector.rebalance(cluster, 1.0)
            assert [m[0] for m in result.moves] == ["m0"]
            assert len(result.served) == 1
            assert result.served[0].source == SOURCE_FALLBACK
            assert cluster.migrations == {"hot_shard": 1}

    def test_round_cap_limits_moves(self):
        with make_cluster(shards=2, shard_cost_budget=5.0) as cluster:
            for k in range(8):
                cluster.register(f"m{k}")  # every shard over budget 5
            detector = HotShardDetector(5.0, max_moves_per_round=2)
            result = detector.rebalance(cluster, 1.0)
            assert len(result.moves) <= 2

    def test_rebalance_is_deterministic(self):
        def run():
            with make_cluster() as cluster:
                for k in range(5):
                    cluster.register(f"m{k}")
                grow(cluster, "m0", 18.0)
                grow(cluster, "m1", 7.0)
                result = HotShardDetector(20.0).rebalance(cluster, 1.0)
                return result.to_dict(), cluster.load_model.snapshot()

        assert run() == run()

    def test_budget_disabled_is_a_noop(self):
        with make_cluster() as cluster:
            cluster.register("m0")
            grow(cluster, "m0", 99.0)
            result = HotShardDetector(0.0).rebalance(cluster, 1.0)
            assert result.moves == [] and result.hot_after == []

    def test_rejects_bad_round_cap(self):
        with pytest.raises(ValueError, match="max_moves_per_round"):
            HotShardDetector(10.0, max_moves_per_round=0)
