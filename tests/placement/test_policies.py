"""The three placement policies behind one interface."""

import pytest

from repro.cluster.hashring import ConsistentHashRing
from repro.placement.policies import (
    POLICIES,
    POLICY_BEST_FIT,
    POLICY_HASH,
    POLICY_LEAST_LOADED,
    get_policy,
)

SHARDS = ["s0", "s1", "s2"]


def ring():
    return ConsistentHashRing(SHARDS)


class TestRegistry:
    def test_known_policies(self):
        assert POLICIES == ("hash", "best_fit", "least_loaded")
        for name in POLICIES:
            assert get_policy(name).name == name

    def test_unknown_policy_lists_known(self):
        with pytest.raises(ValueError, match="best_fit"):
            get_policy("round_robin")

    def test_only_hash_uses_the_ring(self):
        assert get_policy(POLICY_HASH).uses_ring
        assert not get_policy(POLICY_BEST_FIT).uses_ring
        assert not get_policy(POLICY_LEAST_LOADED).uses_ring


class TestHashPolicy:
    def test_delegates_to_the_ring(self):
        policy = get_policy(POLICY_HASH)
        r = ring()
        for k in range(20):
            mid = f"meeting-{k}"
            assert (
                policy.choose(mid, 4.0, SHARDS, {}, 0.0, r)
                == r.node_for(mid)
            )


class TestBestFitPolicy:
    def test_picks_fullest_that_fits(self):
        policy = get_policy(POLICY_BEST_FIT)
        loads = {"s0": 6.0, "s1": 8.0, "s2": 2.0}
        # cost 2 fits everywhere under budget 10: tightest fit is s1.
        assert policy.choose("m", 2.0, SHARDS, loads, 10.0, None) == "s1"

    def test_skips_shards_that_would_breach_budget(self):
        policy = get_policy(POLICY_BEST_FIT)
        loads = {"s0": 6.0, "s1": 8.0, "s2": 2.0}
        # cost 3: s1 would hit 11 > 10, so the fullest *fitting* is s0.
        assert policy.choose("m", 3.0, SHARDS, loads, 10.0, None) == "s0"

    def test_overflow_degrades_to_least_loaded(self):
        policy = get_policy(POLICY_BEST_FIT)
        loads = {"s0": 9.0, "s1": 9.0, "s2": 8.0}
        # Nothing fits cost 5 under budget 10 -> emptiest shard.
        assert policy.choose("m", 5.0, SHARDS, loads, 10.0, None) == "s2"

    def test_no_budget_degrades_to_least_loaded(self):
        policy = get_policy(POLICY_BEST_FIT)
        loads = {"s0": 6.0, "s1": 8.0, "s2": 2.0}
        assert policy.choose("m", 2.0, SHARDS, loads, 0.0, None) == "s2"

    def test_ties_break_to_smallest_name(self):
        policy = get_policy(POLICY_BEST_FIT)
        loads = {"s0": 4.0, "s1": 4.0, "s2": 4.0}
        assert policy.choose("m", 2.0, SHARDS, loads, 10.0, None) == "s0"

    def test_empty_shard_list_raises(self):
        with pytest.raises(ValueError, match="no live shards"):
            get_policy(POLICY_BEST_FIT).choose("m", 2.0, [], {}, 10.0, None)


class TestLeastLoadedPolicy:
    def test_picks_emptiest(self):
        policy = get_policy(POLICY_LEAST_LOADED)
        loads = {"s0": 6.0, "s1": 1.0, "s2": 2.0}
        assert policy.choose("m", 2.0, SHARDS, loads, 0.0, None) == "s1"

    def test_ties_break_to_smallest_name(self):
        policy = get_policy(POLICY_LEAST_LOADED)
        assert policy.choose("m", 2.0, SHARDS, {}, 0.0, None) == "s0"

    def test_empty_shard_list_raises(self):
        with pytest.raises(ValueError, match="no live shards"):
            get_policy(POLICY_LEAST_LOADED).choose(
                "m", 2.0, [], {}, 0.0, None
            )


class TestDeterminism:
    def test_choices_depend_only_on_arguments(self):
        r = ring()
        for name in POLICIES:
            a = get_policy(name)
            b = get_policy(name)
            loads = {"s0": 3.0, "s1": 7.0, "s2": 5.0}
            for k in range(10):
                mid = f"m-{k}"
                assert a.choose(mid, 4.0, SHARDS, loads, 12.0, r) == b.choose(
                    mid, 4.0, SHARDS, dict(loads), 12.0, ring()
                )
