"""Tests for the fleet-placement subsystem (``repro.placement``)."""
