"""Fuzz tests for the accessing node's forwarding under selection churn."""

import random

import pytest

from repro.core.types import ClientId
from repro.media.sfu import AccessingNode, is_rtcp
from repro.net.link import Link
from repro.net.packet import packet_for_bytes
from repro.net.simulator import Simulator
from repro.rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket


class TestForwardingChurnFuzz:
    def test_random_selection_churn_is_always_consistent(self):
        """Random interleaving of media, selection changes, attach/detach:
        the node never crashes, never duplicates a packet to one client,
        and only delivers selected SSRCs."""
        rng = random.Random(99)
        sim = Simulator()
        node = AccessingNode(sim, "n0")
        received = {}

        def attach(cid):
            downlink = Link(sim, bandwidth_kbps=50_000, propagation_ms=1)
            received.setdefault(cid, [])
            downlink.connect(
                lambda p, t, c=cid: received[c].append(RtpPacket.parse(p.payload))
            )
            node.attach_client(cid, downlink)

        clients = ["a", "b", "c", "d"]
        for cid in clients:
            attach(cid)
        ssrcs = [0x10, 0x11, 0x20, 0x21]
        owner_of = {0x10: "a", 0x11: "a", 0x20: "b", 0x21: "b"}
        seq = {s: 0 for s in ssrcs}
        selections = {}

        for step in range(400):
            action = rng.random()
            if action < 0.6:
                ssrc = rng.choice(ssrcs)
                rtp = RtpPacket(
                    ssrc=ssrc,
                    seq=seq[ssrc],
                    timestamp=step * 3000,
                    marker=True,
                    payload=bytes(100),
                )
                seq[ssrc] = (seq[ssrc] + 1) % 2**16
                node.on_packet_from_client(
                    owner_of[ssrc],
                    packet_for_bytes(rtp.serialize(), src=owner_of[ssrc]),
                    sim.now,
                )
            elif action < 0.9:
                sub = rng.choice(node.attached_clients or clients)
                pub = rng.choice(["a", "b"])
                choice = rng.choice(
                    [None] + [s for s in ssrcs if owner_of[s] == pub]
                )
                if sub in node.attached_clients:
                    node.set_video_forwarding(sub, pub, choice)
                    selections[(sub, pub)] = choice
            else:
                sub = rng.choice(clients)
                if sub in node.attached_clients and len(node.attached_clients) > 2:
                    node.detach_client(sub)
                    selections = {
                        k: v for k, v in selections.items() if k[0] != sub
                    }
                elif sub not in node.attached_clients:
                    attach(sub)
            sim.run_until(sim.now + 0.01)

        sim.run_until(sim.now + 1.0)
        # No client ever received an unselected-at-some-point SSRC is hard
        # to assert exactly (selections changed over time); instead assert
        # structural sanity: all deliveries parse, and per (client, ssrc,
        # seq) there are no duplicates.
        for cid, packets in received.items():
            seen = set()
            for p in packets:
                key = (p.ssrc, p.seq, p.timestamp)
                assert key not in seen, f"duplicate delivery to {cid}: {key}"
                seen.add(key)

    def test_audio_never_loops_back(self):
        sim = Simulator()
        node = AccessingNode(sim, "n0")
        got = {"x": [], "y": []}
        for cid in ("x", "y"):
            downlink = Link(sim, bandwidth_kbps=50_000, propagation_ms=1)
            downlink.connect(
                lambda p, t, c=cid: got[c].append(RtpPacket.parse(p.payload))
            )
            node.attach_client(cid, downlink)
        for k in range(50):
            rtp = RtpPacket(
                ssrc=5,
                seq=k,
                timestamp=k * 960,
                payload_type=AUDIO_PAYLOAD_TYPE,
                payload=bytes(80),
            )
            node.on_packet_from_client(
                "x", packet_for_bytes(rtp.serialize(), src="x"), sim.now
            )
            sim.run_until(sim.now + 0.02)
        sim.run_until(sim.now + 1.0)
        assert len(got["y"]) == 50
        assert got["x"] == []
