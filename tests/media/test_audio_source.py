"""Unit tests for the audio model and the video source."""

import pytest

from repro.media.audio import (
    AUDIO_BITRATE_KBPS,
    AudioReceiver,
    AudioSender,
    VOICE_STALL_LOSS_THRESHOLD,
)
from repro.media.source import SourceConfig, VideoSource
from repro.net.simulator import Simulator
from repro.rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket


class TestAudioSender:
    def make(self):
        sim = Simulator()
        sent = []
        sender = AudioSender(sim, ssrc=0x20, send=sent.append)
        return sim, sent, sender

    def test_packet_cadence_is_50pps(self):
        sim, sent, sender = self.make()
        sender.start()
        sim.run_until(2.0)
        assert 95 <= len(sent) <= 105

    def test_rate_matches_nominal_bitrate(self):
        sim, sent, sender = self.make()
        sender.start()
        sim.run_until(5.0)
        payload_bits = sum(len(p.payload) * 8 for p in sent)
        assert payload_bits / 5.0 / 1000 == pytest.approx(
            AUDIO_BITRATE_KBPS, rel=0.05
        )

    def test_packets_are_audio_rtp(self):
        sim, sent, sender = self.make()
        sender.start()
        sim.run_until(0.1)
        assert all(p.payload_type == AUDIO_PAYLOAD_TYPE for p in sent)
        assert all(p.ssrc == 0x20 for p in sent)
        seqs = [p.seq for p in sent]
        assert seqs == sorted(seqs)

    def test_stop_halts_production(self):
        sim, sent, sender = self.make()
        sender.start()
        sim.run_until(0.5)
        sender.stop()
        count = len(sent)
        sim.run_until(1.5)
        assert len(sent) == count

    def test_start_is_idempotent(self):
        sim, sent, sender = self.make()
        sender.start()
        sender.start()
        sim.run_until(1.0)
        assert len(sent) <= 52  # not doubled


class TestAudioReceiver:
    def feed(self, receiver, interval, fraction):
        """Deliver `fraction` of one second's packets into `interval`."""
        expected = round(1.0 / 0.020)
        for k in range(int(expected * fraction)):
            packet = RtpPacket(
                ssrc=1,
                seq=k,
                timestamp=0,
                payload_type=AUDIO_PAYLOAD_TYPE,
                payload=bytes(80),
            )
            receiver.on_packet(packet, now_s=interval + k * 0.02 * fraction)

    def test_full_delivery_no_stall(self):
        rx = AudioReceiver()
        for interval in range(5):
            self.feed(rx, interval, 1.0)
        assert rx.voice_stall_rate(0.0, 5.0) == 0.0

    def test_heavy_loss_counts_as_stall(self):
        rx = AudioReceiver()
        for interval in range(5):
            self.feed(rx, interval, 0.5)  # 50% loss > 10% threshold
        assert rx.voice_stall_rate(0.0, 5.0) == 1.0

    def test_mild_loss_below_threshold_ok(self):
        rx = AudioReceiver()
        for interval in range(5):
            self.feed(rx, interval, 0.95)  # 5% loss < 10%
        assert rx.voice_stall_rate(0.0, 5.0) == 0.0

    def test_mixed_intervals(self):
        rx = AudioReceiver()
        self.feed(rx, 0, 1.0)
        self.feed(rx, 1, 0.3)
        self.feed(rx, 2, 1.0)
        assert rx.voice_stall_rate(0.0, 3.0) == pytest.approx(1 / 3)

    def test_empty_window(self):
        rx = AudioReceiver()
        assert rx.voice_stall_rate(3.0, 3.0) == 0.0


class TestVideoSource:
    def test_frame_cadence(self):
        sim = Simulator()
        frames = []
        source = VideoSource(sim, SourceConfig(fps=30.0), frames.append)
        source.start()
        sim.run_until(2.0)
        assert 59 <= len(frames) <= 62
        assert frames[:3] == [0, 1, 2]

    def test_stop_and_counter(self):
        sim = Simulator()
        frames = []
        source = VideoSource(sim, SourceConfig(fps=10.0), frames.append)
        source.start()
        sim.run_until(1.0)
        source.stop()
        sim.run_until(3.0)
        assert source.frames_produced == len(frames)
        assert source.frames_produced <= 11

    def test_start_offset(self):
        sim = Simulator()
        times = []
        source = VideoSource(
            sim, SourceConfig(fps=10.0), lambda k: times.append(sim.now)
        )
        source.start(offset_s=0.5)
        sim.run_until(1.0)
        assert times[0] == pytest.approx(0.5)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            SourceConfig(fps=0)
