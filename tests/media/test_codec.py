"""Unit tests for the simulcast encoder, packetizer, and CPU model."""

import pytest

from repro.core.types import Resolution
from repro.media.codec import (
    KEYFRAME_SIZE_FACTOR,
    MTU_PAYLOAD_BYTES,
    CpuModel,
    SimulcastEncoder,
    packetize,
)


class TestSimulcastEncoder:
    def make(self, **targets):
        enc = SimulcastEncoder(fps=30)
        enc.configure(
            {
                Resolution[k]: v
                for k, v in (targets or {"P720": 1500, "P180": 300}).items()
            }
        )
        return enc

    def test_one_frame_per_active_encoding(self):
        enc = self.make()
        frames = enc.encode(0, now_s=0.0)
        assert [f.resolution for f in frames] == [
            Resolution.P720,
            Resolution.P180,
        ]

    def test_first_frame_is_keyframe(self):
        enc = self.make()
        frames = enc.encode(0, 0.0)
        assert all(f.is_keyframe for f in frames)

    def test_keyframe_cadence(self):
        enc = SimulcastEncoder(fps=30, keyframe_interval_s=1.0)
        enc.configure({Resolution.P360: 600})
        keyframes = [
            enc.encode(k, k / 30.0)[0].is_keyframe for k in range(61)
        ]
        assert keyframes[0] and keyframes[30] and keyframes[60]
        assert sum(keyframes) == 3

    def test_keyframes_are_larger(self):
        enc = self.make()
        key = enc.encode(0, 0.0)[0]
        delta = enc.encode(1, 1 / 30)[0]
        assert key.size_bytes == pytest.approx(
            delta.size_bytes * KEYFRAME_SIZE_FACTOR, rel=0.01
        )

    def test_long_run_average_matches_target(self):
        enc = SimulcastEncoder(fps=30, keyframe_interval_s=2.0)
        enc.configure({Resolution.P720: 1200})
        total = sum(
            enc.encode(k, k / 30.0)[0].size_bytes for k in range(300)
        )
        avg_kbps = total * 8 / (300 / 30.0) / 1000
        assert avg_kbps == pytest.approx(1200, rel=0.05)

    def test_configure_stops_absent_resolutions(self):
        enc = self.make()
        enc.configure({Resolution.P720: 1000})
        frames = enc.encode(5, 0.2)
        assert [f.resolution for f in frames] == [Resolution.P720]

    def test_zero_bitrate_stops_encoding(self):
        enc = self.make()
        enc.set_bitrate(Resolution.P720, 0)
        assert Resolution.P720 not in enc.active_encodings

    def test_restarted_encoding_leads_with_keyframe(self):
        enc = self.make()
        for k in range(10):
            enc.encode(k, k / 30)
        enc.set_bitrate(Resolution.P720, 0)
        enc.encode(10, 10 / 30)
        enc.set_bitrate(Resolution.P720, 1000)
        frames = enc.encode(11, 11 / 30)
        p720 = [f for f in frames if f.resolution == Resolution.P720][0]
        assert p720.is_keyframe

    def test_request_keyframe(self):
        enc = self.make()
        enc.encode(0, 0.0)
        enc.request_keyframe(Resolution.P720)
        frames = enc.encode(1, 1 / 30)
        p720 = [f for f in frames if f.resolution == Resolution.P720][0]
        assert p720.is_keyframe

    def test_total_target(self):
        enc = self.make(P720=1500, P180=300)
        assert enc.total_target_kbps == 1800

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulcastEncoder(fps=0)
        with pytest.raises(ValueError):
            SimulcastEncoder(keyframe_interval_s=0)


class TestPacketize:
    def frame(self, size):
        from repro.media.codec import EncodedFrame

        return EncodedFrame(
            resolution=Resolution.P720,
            frame_index=0,
            size_bytes=size,
            is_keyframe=False,
            capture_time_s=1.0,
        )

    def test_small_frame_single_packet(self):
        packets = packetize(self.frame(500), ssrc=1, seq_start=10)
        assert len(packets) == 1
        assert packets[0].marker
        assert packets[0].seq == 10

    def test_large_frame_splits_at_mtu(self):
        packets = packetize(self.frame(MTU_PAYLOAD_BYTES * 2 + 100), ssrc=1, seq_start=0)
        assert len(packets) == 3
        assert [p.marker for p in packets] == [False, False, True]
        assert sum(len(p.payload) for p in packets) == MTU_PAYLOAD_BYTES * 2 + 100

    def test_packets_share_timestamp(self):
        packets = packetize(self.frame(5000), ssrc=1, seq_start=0)
        assert len({p.timestamp for p in packets}) == 1

    def test_seq_wraps(self):
        packets = packetize(self.frame(3000), ssrc=1, seq_start=65_535)
        assert [p.seq for p in packets] == [65_535, 0, 1]


class TestCpuModel:
    def test_encode_cost_scales_with_pixels(self):
        cpu = CpuModel()
        hi = cpu.encode_frame_mcycles(Resolution.P720, 1500)
        lo = cpu.encode_frame_mcycles(Resolution.P180, 300)
        assert hi > 10 * lo

    def test_decode_cheaper_than_encode(self):
        cpu = CpuModel()
        assert cpu.decode_frame_mcycles(
            Resolution.P720, 1500
        ) < cpu.encode_frame_mcycles(Resolution.P720, 1500)

    def test_encode_utilization_reasonable(self):
        cpu = CpuModel()
        util = cpu.encode_utilization({Resolution.P720: 1500}, fps=30)
        assert 0.05 < util < 0.3  # mobile-SoC ballpark

    def test_extra_small_stream_adds_little(self):
        """The GSO delta: adding a 180p stream costs ~order 1 % CPU."""
        cpu = CpuModel()
        base = cpu.encode_utilization({Resolution.P720: 1500}, fps=30)
        with_extra = cpu.encode_utilization(
            {Resolution.P720: 1500, Resolution.P180: 300}, fps=30
        )
        assert 0 < with_extra - base < 0.02
