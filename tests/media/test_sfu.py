"""Tests for the accessing node's forwarding, relay, and RTCP handling."""

import pytest

from repro.core.types import Resolution
from repro.media.codec import EncodedFrame, packetize
from repro.media.sfu import AccessingNode, is_rtcp
from repro.net.link import Link
from repro.net.packet import Packet, packet_for_bytes
from repro.net.simulator import Simulator
from repro.rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket
from repro.rtp.rtcp import AppPacket, ReceiverReport


def video_packet(ssrc, seq=0, twcc=None):
    return RtpPacket(
        ssrc=ssrc, seq=seq, timestamp=100, payload=bytes(500), twcc_seq=twcc
    )


def audio_packet(ssrc):
    return RtpPacket(
        ssrc=ssrc,
        seq=0,
        timestamp=0,
        payload_type=AUDIO_PAYLOAD_TYPE,
        payload=bytes(80),
    )


class Harness:
    def __init__(self, clients=("A", "B", "C")):
        self.sim = Simulator()
        self.apps = []
        self.node = AccessingNode(
            self.sim, "n0", on_rtcp_app_upstream=lambda c, d: self.apps.append((c, d))
        )
        self.received = {c: [] for c in clients}
        for c in clients:
            downlink = Link(self.sim, bandwidth_kbps=10_000, propagation_ms=1)
            downlink.connect(
                lambda packet, now, cid=c: self.received[cid].append(packet)
            )
            self.node.attach_client(c, downlink)

    def inject(self, from_client, rtp):
        self.node.on_packet_from_client(
            from_client,
            packet_for_bytes(rtp.serialize(), src=from_client),
            self.sim.now,
        )

    def video_delivered(self, client):
        out = []
        for packet in self.received[client]:
            if not is_rtcp(packet.payload):
                rtp = RtpPacket.parse(packet.payload)
                if rtp.payload_type != AUDIO_PAYLOAD_TYPE:
                    out.append(rtp)
        return out


class TestDemux:
    def test_is_rtcp(self):
        assert is_rtcp(ReceiverReport(sender_ssrc=1).serialize())
        assert not is_rtcp(video_packet(1).serialize())


class TestVideoForwarding:
    def test_forwards_only_selected_ssrc(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        h.inject("A", video_packet(0x10))
        h.inject("A", video_packet(0x11))
        h.sim.run_until(1.0)
        delivered = h.video_delivered("B")
        assert len(delivered) == 1
        assert delivered[0].ssrc == 0x10

    def test_no_selection_no_forwarding(self):
        h = Harness()
        h.inject("A", video_packet(0x10))
        h.sim.run_until(1.0)
        assert h.video_delivered("B") == []
        assert h.video_delivered("C") == []

    def test_selection_cleared_with_none(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        h.node.set_video_forwarding("B", "A", None)
        h.inject("A", video_packet(0x10))
        h.sim.run_until(1.0)
        assert h.video_delivered("B") == []
        assert h.node.video_selection("B", "A") is None

    def test_multiple_subscribers_each_get_copy(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        h.node.set_video_forwarding("C", "A", 0x10)
        h.inject("A", video_packet(0x10))
        h.sim.run_until(1.0)
        assert len(h.video_delivered("B")) == 1
        assert len(h.video_delivered("C")) == 1

    def test_twcc_rewritten_per_downlink(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        h.inject("A", video_packet(0x10, seq=0, twcc=500))
        h.inject("A", video_packet(0x10, seq=1, twcc=501))
        h.sim.run_until(1.0)
        seqs = [p.twcc_seq for p in h.video_delivered("B")]
        assert seqs == [0, 1]  # node's own numbering, not the client's

    def test_padding_probes_terminate_at_node(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        probe = RtpPacket(
            ssrc=0x10, seq=5, timestamp=0, payload_type=127, payload=bytes(500)
        )
        h.inject("A", probe)
        h.sim.run_until(1.0)
        assert h.video_delivered("B") == []

    def test_unattached_subscriber_rejected(self):
        h = Harness()
        with pytest.raises(ValueError, match="not attached"):
            h.node.set_video_forwarding("ghost", "A", 0x10)


class TestAudioFanout:
    def test_audio_reaches_everyone_but_sender(self):
        h = Harness()
        h.inject("A", audio_packet(0x20))
        h.sim.run_until(1.0)
        def audio_count(c):
            return sum(
                1
                for packet in h.received[c]
                if not is_rtcp(packet.payload)
                and RtpPacket.parse(packet.payload).payload_type
                == AUDIO_PAYLOAD_TYPE
            )
        assert audio_count("B") == 1
        assert audio_count("C") == 1
        assert audio_count("A") == 0


class TestRelay:
    def test_remote_subscriber_via_peer_node(self):
        sim = Simulator()
        node_a = AccessingNode(sim, "na")
        node_b = AccessingNode(sim, "nb")
        inter_ab = Link(sim, bandwidth_kbps=100_000, propagation_ms=10)
        node_a.add_peer(node_b, inter_ab)

        received = []
        downlink = Link(sim, bandwidth_kbps=10_000, propagation_ms=1)
        downlink.connect(lambda p, t: received.append(p))
        node_b.attach_client("remote", downlink)
        node_a.register_remote_client("remote", "nb")

        # Audio fans out to remote clients through the relay.
        node_a.on_packet_from_client(
            "local",
            packet_for_bytes(audio_packet(0x20).serialize(), src="local"),
            sim.now,
        )
        sim.run_until(1.0)
        assert len(received) == 1

    def test_unknown_peer_rejected(self):
        sim = Simulator()
        node = AccessingNode(sim, "na")
        with pytest.raises(ValueError, match="unknown peer"):
            node.register_remote_client("x", "ghost-node")


class TestRtcpPaths:
    def test_app_packets_bubble_to_control_plane(self):
        h = Harness()
        app = AppPacket(subtype=0, ssrc=1, name=b"SEMB", data=b"\x00" * 4)
        h.node.on_packet_from_client(
            "A", packet_for_bytes(app.serialize(), src="A"), h.sim.now
        )
        assert len(h.apps) == 1
        assert h.apps[0][0] == "A"

    def test_downlink_estimation_from_twcc_loop(self):
        """Forwarded traffic + client TWCC feedback move the node's
        downlink estimate."""
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        from repro.cc.twcc import TwccReceiver

        receiver = TwccReceiver(sender_ssrc=2)
        # Pump packets and echo feedback like a client would.
        for k in range(100):
            h.inject("A", video_packet(0x10, seq=k))
        h.sim.run_until(2.0)
        for packet in h.received["B"]:
            if not is_rtcp(packet.payload):
                rtp = RtpPacket.parse(packet.payload)
                if rtp.twcc_seq is not None:
                    receiver.on_packet(rtp.twcc_seq, packet.sent_at + 0.01)
        feedback = receiver.build_feedback()
        assert feedback is not None
        h.node.on_packet_from_client(
            "B", packet_for_bytes(feedback.serialize(), src="B"), h.sim.now
        )
        assert h.node.downlink_estimate_kbps("B") > 0

    def test_detach_client(self):
        h = Harness()
        h.node.set_video_forwarding("B", "A", 0x10)
        h.node.detach_client("B")
        assert "B" not in h.node.attached_clients
        h.inject("A", video_packet(0x10))  # must not raise
