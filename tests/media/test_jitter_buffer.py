"""Unit tests for frame reassembly and playback metrics."""

import pytest

from repro.core.types import Resolution
from repro.media.codec import EncodedFrame, packetize
from repro.media.jitter_buffer import (
    VideoJitterBuffer,
    compute_playback_metrics,
)


def frame_packets(index, size=3000, t=None, ssrc=1, seq_start=0):
    frame = EncodedFrame(
        resolution=Resolution.P360,
        frame_index=index,
        size_bytes=size,
        is_keyframe=False,
        capture_time_s=t if t is not None else index / 30.0,
    )
    return packetize(frame, ssrc=ssrc, seq_start=seq_start)


class TestVideoJitterBuffer:
    def test_complete_frame_renders(self):
        buf = VideoJitterBuffer(playout_delay_s=0.0)
        rendered = [buf.on_packet(p, now_s=0.1) for p in frame_packets(0)]
        assert rendered[-1] is not None
        assert len(buf.render_times) == 1

    def test_incomplete_frame_does_not_render(self):
        buf = VideoJitterBuffer()
        packets = frame_packets(0)
        for p in packets[:-1]:
            assert buf.on_packet(p, now_s=0.1) is None
        assert buf.render_times == []

    def test_missing_middle_packet_blocks_render(self):
        buf = VideoJitterBuffer()
        packets = frame_packets(0, size=4000)
        assert len(packets) >= 3
        buf.on_packet(packets[0], 0.1)
        buf.on_packet(packets[-1], 0.12)  # marker present but hole remains
        assert buf.render_times == []

    def test_out_of_order_within_frame_renders(self):
        buf = VideoJitterBuffer(playout_delay_s=0.0)
        packets = frame_packets(0, size=4000)
        for p in reversed(packets):
            buf.on_packet(p, 0.1)
        assert len(buf.render_times) == 1

    def test_adaptive_playout_targets_capture_plus_offset(self):
        """A frame captured at t=0 arriving at t=0.1 renders at
        capture + (lateness + margin) — the adaptive de-jitter offset."""
        buf = VideoJitterBuffer(playout_delay_s=0.05)
        t = None
        for p in frame_packets(0, t=0.0):
            t = buf.on_packet(p, now_s=0.1)
        assert t == pytest.approx(0.12)  # 0.1 lateness + 0.02 margin

    def test_playout_offset_grows_with_late_frames_and_decays(self):
        buf = VideoJitterBuffer(playout_delay_s=0.05)
        for p in frame_packets(0, t=0.0, seq_start=0):
            buf.on_packet(p, now_s=0.30)  # very late frame
        grown = buf._playout_offset_s
        assert grown > 0.30
        # Subsequent punctual frames decay the offset slowly.
        for k in range(1, 40):
            for p in frame_packets(k, t=k / 30.0, seq_start=100 + 10 * k):
                buf.on_packet(p, now_s=k / 30.0 + 0.05)
        assert buf._playout_offset_s < grown

    def test_jittered_arrivals_render_smoothly(self):
        """With +-80 ms arrival jitter the adaptive offset absorbs the
        variance: rendered inter-frame gaps stay below the stall bound."""
        import random

        rng = random.Random(3)
        buf = VideoJitterBuffer(playout_delay_s=0.05)
        for k in range(90):
            arrival = k / 30.0 + 0.02 + rng.uniform(0, 0.16)
            for p in frame_packets(k, t=k / 30.0, seq_start=10 * k):
                buf.on_packet(p, arrival)
        renders = sorted(buf.render_times)[10:]  # skip adaptation ramp
        gaps = [b - a for a, b in zip(renders, renders[1:])]
        assert max(gaps) < 0.2

    def test_stale_frame_expires_as_lost(self):
        buf = VideoJitterBuffer(loss_deadline_s=0.2)
        packets0 = frame_packets(0, seq_start=0)
        buf.on_packet(packets0[0], 0.0)  # incomplete forever
        # A later frame arriving past the deadline expires frame 0.
        for p in frame_packets(1, seq_start=100):
            buf.on_packet(p, 0.5)
        assert buf.frames_lost >= 1
        assert len(buf.render_times) == 1

    def test_late_packets_of_skipped_frames_ignored(self):
        buf = VideoJitterBuffer(playout_delay_s=0.0)
        for p in frame_packets(5, seq_start=50, t=5 / 30.0):
            buf.on_packet(p, 0.3)
        stale = frame_packets(1, seq_start=10, t=1 / 30.0)
        assert buf.on_packet(stale[0], 0.31) is None
        assert len(buf.render_times) == 1

    def test_rendered_bytes_accumulate(self):
        buf = VideoJitterBuffer(playout_delay_s=0.0)
        for p in frame_packets(0, size=3000):
            buf.on_packet(p, 0.1)
        assert buf.rendered_bytes == 3000


class TestPlaybackMetrics:
    def test_steady_stream_no_stalls(self):
        times = [k / 30.0 for k in range(300)]  # 30 fps for 10 s
        m = compute_playback_metrics(times, 0.0, 10.0)
        assert m.stall_rate == 0.0
        assert m.framerate == pytest.approx(30.0, rel=0.01)

    def test_gap_creates_stall_interval(self):
        times = [k / 30.0 for k in range(90)] + [
            3.0 + 0.5 + k / 30.0 for k in range(90)
        ]  # 500 ms freeze at t=3
        m = compute_playback_metrics(times, 0.0, 6.0)
        assert m.stall_intervals >= 1
        assert m.stall_rate < 0.5

    def test_empty_window_fully_stalled(self):
        m = compute_playback_metrics([], 0.0, 5.0)
        assert m.stall_rate == 1.0
        assert m.framerate == 0.0

    def test_bitrate_computed(self):
        times = [k / 30.0 for k in range(30)]
        m = compute_playback_metrics(times, 0.0, 1.0, rendered_bytes=125_000)
        assert m.rendered_kbps == pytest.approx(1000.0)

    def test_threshold_is_200ms(self):
        # 150 ms gaps: fine.  250 ms gaps: stalls.
        fine = [k * 0.15 for k in range(40)]
        m_fine = compute_playback_metrics(fine, 0.0, 6.0)
        assert m_fine.stall_rate == 0.0
        coarse = [k * 0.25 for k in range(24)]
        m_coarse = compute_playback_metrics(coarse, 0.0, 6.0)
        assert m_coarse.stall_rate == 1.0


class TestJitterBufferProperties:
    def test_arbitrary_packet_streams_never_crash(self):
        """Fuzz: random (seq, timestamp, marker) packets in random order —
        the buffer must stay consistent and never render more frames than
        distinct timestamps."""
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.rtp.packet import RtpPacket

        packet_strategy = st.tuples(
            st.integers(0, 50),        # seq
            st.sampled_from([0, 3000, 6000, 9000, 12000]),  # timestamp
            st.booleans(),             # marker
            st.floats(0.0, 2.0),       # arrival time
        )

        @given(st.lists(packet_strategy, max_size=60))
        @settings(max_examples=120, deadline=None)
        def run(packets):
            buf = VideoJitterBuffer(playout_delay_s=0.0)
            for seq, ts, marker, now in sorted(packets, key=lambda p: p[3]):
                rtp = RtpPacket(
                    ssrc=1,
                    seq=seq,
                    timestamp=ts,
                    marker=marker,
                    payload=b"x" * 10,
                )
                buf.on_packet(rtp, now)
            distinct_ts = len({ts for _, ts, _, _ in packets})
            assert len(buf.render_times) <= distinct_ts
            assert all(t >= 0 for t in buf.render_times)

        run()
