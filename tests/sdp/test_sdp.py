"""Unit tests for SDP and simulcastInfo negotiation."""

import pytest

from repro.core.types import Resolution
from repro.sdp.sdp import MediaSection, SessionDescription
from repro.sdp.simulcast_info import (
    ResolutionCapability,
    SimulcastInfo,
    build_offer,
    capability_from_info,
)


def sample_info():
    return SimulcastInfo(
        client="alice",
        codec="H264",
        max_streams=3,
        resolutions=(
            ResolutionCapability(Resolution.P720, 1500, 900, ssrc=0x100),
            ResolutionCapability(Resolution.P360, 800, 400, ssrc=0x101),
            ResolutionCapability(Resolution.P180, 300, 100, ssrc=0x102),
        ),
    )


class TestSdp:
    def test_serialize_parse_round_trip(self):
        offer, _ = build_offer(sample_info(), session_id=42)
        text = offer.serialize()
        parsed = SessionDescription.parse(text)
        assert parsed.session_id == 42
        assert parsed.origin_user == "alice"
        assert len(parsed.media) == 2
        assert parsed.media[0].media == "audio"
        assert parsed.media[1].media == "video"

    def test_video_section_lists_per_resolution_ssrcs(self):
        offer, _ = build_offer(sample_info(), session_id=1)
        video = offer.video_sections()[0]
        ssrc_attrs = video.attribute_values("ssrc")
        assert len(ssrc_attrs) == 3
        assert any("alice-720p" in v for v in ssrc_attrs)

    def test_flag_attributes(self):
        offer, _ = build_offer(sample_info(), session_id=1)
        text = offer.serialize()
        assert "a=sendrecv" in text
        parsed = SessionDescription.parse(text)
        video = parsed.video_sections()[0]
        assert ("sendrecv", None) in video.attributes

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            SessionDescription.parse("not sdp at all")
        with pytest.raises(ValueError):
            SessionDescription.parse("")
        with pytest.raises(ValueError, match="v=0"):
            SessionDescription.parse("a=foo\r\n")

    def test_parse_rejects_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            SessionDescription.parse("v=1\r\n")

    def test_crlf_and_lf_both_accepted(self):
        offer, _ = build_offer(sample_info(), session_id=1)
        lf_text = offer.serialize().replace("\r\n", "\n")
        parsed = SessionDescription.parse(lf_text)
        assert len(parsed.media) == 2


class TestSimulcastInfo:
    def test_json_round_trip(self):
        info = sample_info()
        parsed = SimulcastInfo.from_json(info.to_json())
        assert parsed == info

    def test_rejects_malformed_json(self):
        with pytest.raises(ValueError, match="malformed"):
            SimulcastInfo.from_json("{nope")

    def test_rejects_incomplete_json(self):
        with pytest.raises(ValueError, match="incomplete"):
            SimulcastInfo.from_json('{"client": "x"}')

    def test_rejects_more_resolutions_than_streams(self):
        with pytest.raises(ValueError, match="exceed"):
            SimulcastInfo(
                client="x",
                codec="H264",
                max_streams=1,
                resolutions=(
                    ResolutionCapability(Resolution.P720, 1500, 900, 1),
                    ResolutionCapability(Resolution.P360, 800, 400, 2),
                ),
            )

    def test_rejects_duplicate_resolutions(self):
        with pytest.raises(ValueError, match="duplicate"):
            SimulcastInfo(
                client="x",
                codec="H264",
                max_streams=3,
                resolutions=(
                    ResolutionCapability(Resolution.P720, 1500, 900, 1),
                    ResolutionCapability(Resolution.P720, 1000, 500, 2),
                ),
            )

    def test_rejects_bad_bitrate_range(self):
        with pytest.raises(ValueError, match="below min"):
            ResolutionCapability(Resolution.P720, 500, 900, 1)

    def test_ssrc_by_resolution(self):
        mapping = sample_info().ssrc_by_resolution()
        assert mapping[Resolution.P720] == 0x100


class TestCapabilityFromInfo:
    def test_generates_requested_levels(self):
        streams = capability_from_info(sample_info(), levels_per_resolution=5)
        assert len(streams) == 15
        by_res = {}
        for s in streams:
            by_res.setdefault(s.resolution, []).append(s)
        assert all(len(v) == 5 for v in by_res.values())

    def test_respects_min_max_ranges(self):
        streams = capability_from_info(sample_info(), levels_per_resolution=3)
        for s in streams:
            if s.resolution == Resolution.P720:
                assert 890 <= s.bitrate_kbps <= 1500

    def test_single_level_uses_max(self):
        streams = capability_from_info(sample_info(), levels_per_resolution=1)
        rates = {s.resolution: s.bitrate_kbps for s in streams}
        assert rates[Resolution.P720] == 1500

    def test_feeds_the_solver(self):
        """The generated set passes feasible-set validation and produces a
        working problem end to end."""
        from repro.core import Bandwidth, Problem, Subscription, solve

        streams = capability_from_info(sample_info())
        p = Problem(
            {"alice": streams},
            {"alice": Bandwidth(5000, 100), "bob": Bandwidth(100, 1200)},
            [Subscription("bob", "alice", Resolution.P720)],
        )
        s = solve(p)
        s.validate(p)
        assert s.assignments["bob"]["alice"].bitrate_kbps <= 1200


class TestAnswerNegotiation:
    def test_answer_mirrors_offer(self):
        from repro.sdp.simulcast_info import build_answer

        info = sample_info()
        offer, _ = build_offer(info, session_id=9)
        answer = build_answer(offer, info)
        assert answer.session_id == 9
        assert [m.media for m in answer.media] == ["audio", "video"]
        assert answer.media[1].payload_types == offer.media[1].payload_types
        video = answer.video_sections()[0]
        assert len(video.attribute_values("ssrc")) == 3

    def test_answer_round_trips_through_wire_text(self):
        from repro.sdp.simulcast_info import build_answer

        info = sample_info()
        offer, _ = build_offer(info, session_id=9)
        answer = build_answer(offer, info)
        parsed = SessionDescription.parse(answer.serialize())
        assert parsed.origin_user == "conference"


class TestWireFormatJoin:
    def make_node(self):
        from repro.control.conference_node import ConferenceNode

        return ConferenceNode()

    def test_join_with_offer_returns_answer(self):
        node = self.make_node()
        info = sample_info()
        offer, info_json = build_offer(info, session_id=3)
        state, answer_text = node.join_with_offer(
            offer.serialize(), info_json, "n0"
        )
        assert state.client == "alice"
        parsed = SessionDescription.parse(answer_text)
        assert parsed.video_sections()
        assert "alice" in node.participants()

    def test_join_rejects_ssrc_mismatch(self):
        node = self.make_node()
        info = sample_info()
        offer, _ = build_offer(info, session_id=3)
        rogue = SimulcastInfo(
            client="alice",
            codec="H264",
            max_streams=3,
            resolutions=(
                ResolutionCapability(Resolution.P720, 1500, 900, 0xBAD),
            ),
        )
        with pytest.raises(ValueError, match="absent from the SDP offer"):
            node.join_with_offer(offer.serialize(), rogue.to_json(), "n0")

    def test_join_rejects_malformed_inputs(self):
        node = self.make_node()
        info = sample_info()
        offer, info_json = build_offer(info, session_id=3)
        with pytest.raises(ValueError):
            node.join_with_offer("garbage", info_json, "n0")
        with pytest.raises(ValueError):
            node.join_with_offer(offer.serialize(), "{broken", "n0")
