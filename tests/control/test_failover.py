"""Unit tests for the design-for-failure mechanisms (Sec. 7)."""

import pytest

from repro.control.failover import (
    SubscriptionWatchdog,
    single_stream_fallback,
)
from repro.core import Bandwidth, Resolution, StreamSpec, paper_ladder
from repro.core.constraints import Problem, Subscription


class TestSingleStreamFallback:
    def mesh(self, bandwidths):
        ladder = paper_ladder()
        clients = list(bandwidths)
        return Problem(
            {c: ladder for c in clients},
            {c: Bandwidth(*bw) for c, bw in bandwidths.items()},
            [
                Subscription(a, b)
                for a in clients
                for b in clients
                if a != b
            ],
        )

    def test_every_publisher_drops_to_smallest_stream(self):
        p = self.mesh({"A": (5000, 5000), "B": (5000, 5000)})
        s = single_stream_fallback(p)
        s.validate(p)
        for pub in ("A", "B"):
            streams = s.published_streams(pub)
            assert len(streams) == 1
            assert streams[0].bitrate_kbps == 100  # ladder minimum

    def test_fallback_respects_downlink(self):
        p = self.mesh({"A": (5000, 150), "B": (5000, 5000), "C": (5000, 5000)})
        s = single_stream_fallback(p)
        s.validate(p)
        # A's 150 kbps downlink fits one 100 kbps stream, not two.
        assert len(s.assignments.get("A", {})) == 1

    def test_fallback_respects_uplink(self):
        p = self.mesh({"A": (50, 5000), "B": (5000, 5000)})
        s = single_stream_fallback(p)
        s.validate(p)
        assert s.policies.get("A", {}) == {}

    def test_tie_break_picks_lowest_resolution_regardless_of_order(self):
        # Two streams at the same bitrate: the fallback must choose by
        # (bitrate, resolution), not by feasible-set ordering.  Equal
        # bitrates cannot pass Problem validation, so the tie is staged
        # by overriding the feasible set after construction.
        tie = [
            StreamSpec(100, Resolution.P360, 60.0),
            StreamSpec(100, Resolution.P90, 20.0),
        ]
        p = self.mesh({"A": (5000, 5000), "B": (5000, 5000)})
        for order in (list(tie), list(reversed(tie))):
            p.feasible_streams["A"] = order
            s = single_stream_fallback(p)
            streams = s.published_streams("A")
            assert len(streams) == 1
            assert streams[0].resolution == Resolution.P90
            assert streams[0].bitrate_kbps == 100

    def test_fallback_respects_subscription_caps(self):
        ladder = [StreamSpec(500, Resolution.P360, 100.0)]
        p = Problem(
            {"A": ladder},
            {"A": Bandwidth(5000, 100), "B": Bandwidth(100, 5000)},
            [Subscription("B", "A", Resolution.P180)],
        )
        s = single_stream_fallback(p)
        s.validate(p)
        assert s.assignments.get("B", {}) == {}

    def test_empty_problem(self):
        s = single_stream_fallback(Problem({}, {}, []))
        assert s.policies == {}


class TestSubscriptionWatchdog:
    def test_no_staleness_when_stream_flows(self):
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P720, 10.0)
        stale = dog.stale_subscriptions({("A", Resolution.P720): True}, 11.0)
        assert stale == []

    def test_silent_stream_with_live_sibling_is_stale(self):
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P720, 5.0)
        dog.on_packet("A", Resolution.P180, 9.5)
        stale = dog.stale_subscriptions(
            {("A", Resolution.P720): True}, now_s=10.0
        )
        assert stale == [("A", Resolution.P720)]

    def test_totally_silent_publisher_is_not_flagged(self):
        """If nothing flows at all it is a network outage, not a stream
        failure — downgrading would not help."""
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P720, 1.0)
        stale = dog.stale_subscriptions(
            {("A", Resolution.P720): True}, now_s=10.0
        )
        assert stale == []

    def test_downgrade_target_prefers_highest_live_lower_stream(self):
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P360, 9.8)
        dog.on_packet("A", Resolution.P180, 9.9)
        target = dog.downgrade_target("A", below=Resolution.P720, now_s=10.0)
        assert target == Resolution.P360

    def test_downgrade_target_none_when_nothing_lower_lives(self):
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P720, 9.9)
        assert dog.downgrade_target("A", Resolution.P720, 10.0) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SubscriptionWatchdog(stale_after_s=0)


class TestControllerFallbackIntegration:
    def test_solver_exception_engages_fallback(self):
        """A poisoned solver must not take the meeting down."""
        from repro.control.conference_node import ConferenceNode
        from repro.control.feedback import FeedbackExecutor
        from repro.control.gso_controller import GsoControllerRuntime
        from repro.media.sfu import AccessingNode
        from repro.net.simulator import Simulator
        from repro.sdp.simulcast_info import (
            ResolutionCapability,
            SimulcastInfo,
        )

        sim = Simulator()
        conference = ConferenceNode()
        node = AccessingNode(sim, "n0")
        for name, base in (("A", 0x100), ("B", 0x200)):
            conference.join(
                SimulcastInfo(
                    client=name,
                    codec="H264",
                    max_streams=1,
                    resolutions=(
                        ResolutionCapability(Resolution.P360, 800, 400, base),
                    ),
                ),
                "n0",
            )
        conference.subscribe("B", "A")
        executor = FeedbackExecutor(sim, conference, {"n0": node})
        runtime = GsoControllerRuntime(sim, conference, executor)

        class Boom:
            def solve(self, problem, incumbent=None):
                raise RuntimeError("poisoned")

        runtime._solver = Boom()
        sim.run_until(1.5)
        assert runtime.fallbacks_engaged >= 1
        assert runtime.last_solution is not None  # the fallback solution
