"""Focused tests for the stream-liveness watchdog in the feedback executor."""

import pytest

from repro.control.conference_node import ConferenceNode
from repro.control.feedback import FeedbackExecutor
from repro.core.types import Resolution
from repro.media.sfu import AccessingNode
from repro.net.link import Link
from repro.net.packet import packet_for_bytes
from repro.net.simulator import Simulator
from repro.rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket
from repro.sdp.simulcast_info import ResolutionCapability, SimulcastInfo


def build():
    sim = Simulator()
    conference = ConferenceNode()
    node = AccessingNode(sim, "n0")
    downlink = Link(sim, bandwidth_kbps=10_000, propagation_ms=1)
    downlink.connect(lambda p, t: None)
    node.attach_client("pub", downlink)
    conference.join(
        SimulcastInfo(
            client="pub",
            codec="H264",
            max_streams=2,
            resolutions=(
                ResolutionCapability(Resolution.P720, 1500, 900, 0x70),
                ResolutionCapability(Resolution.P180, 300, 100, 0x18),
            ),
        ),
        "n0",
    )
    executor = FeedbackExecutor(sim, conference, {"n0": node})
    return sim, conference, node, executor


def ingest_video(node, sim, ssrc, seq):
    rtp = RtpPacket(
        ssrc=ssrc, seq=seq, timestamp=seq * 3000, marker=True, payload=bytes(50)
    )
    node.on_packet_from_client(
        "pub", packet_for_bytes(rtp.serialize(), src="pub"), sim.now
    )


def ingest_audio(node, sim, seq):
    rtp = RtpPacket(
        ssrc=0xA0,
        seq=seq,
        timestamp=seq * 960,
        payload_type=AUDIO_PAYLOAD_TYPE,
        payload=bytes(40),
    )
    node.on_packet_from_client(
        "pub", packet_for_bytes(rtp.serialize(), src="pub"), sim.now
    )


def install_config(executor, config):
    """Simulate an executed configuration for 'pub'."""
    executor._last_config["pub"] = config
    executor._config_installed_s["pub"] = executor._sim.now
    for res, kbps in config.items():
        if kbps > 0:
            executor._expected_since[("pub", res)] = executor._sim.now


class TestDeadStreamDetection:
    def test_flowing_streams_are_not_dead(self):
        sim, conference, node, executor = build()
        install_config(executor, {Resolution.P720: 1200, Resolution.P180: 200})
        for k in range(40):
            ingest_video(node, sim, 0x70, k)
            ingest_video(node, sim, 0x18, k)
            sim.run_until(sim.now + 0.05)
        assert executor.dead_configured_streams(sim.now) == []

    def test_silent_stream_with_live_sibling_is_dead(self):
        sim, conference, node, executor = build()
        install_config(executor, {Resolution.P720: 1200, Resolution.P180: 200})
        for k in range(40):
            ingest_video(node, sim, 0x18, k)  # only the 180p flows
            sim.run_until(sim.now + 0.05)
        dead = executor.dead_configured_streams(sim.now)
        assert dead == [("pub", Resolution.P720)]

    def test_silent_stream_with_live_audio_is_dead(self):
        sim, conference, node, executor = build()
        install_config(executor, {Resolution.P720: 1200})
        for k in range(40):
            ingest_audio(node, sim, k)
            sim.run_until(sim.now + 0.05)
        dead = executor.dead_configured_streams(sim.now)
        assert dead == [("pub", Resolution.P720)]

    def test_total_silence_is_an_outage_not_a_stream_failure(self):
        sim, conference, node, executor = build()
        install_config(executor, {Resolution.P720: 1200})
        sim.run_until(5.0)
        assert executor.dead_configured_streams(sim.now) == []

    def test_grace_period_respected(self):
        sim, conference, node, executor = build()
        sim.run_until(1.0)
        install_config(executor, {Resolution.P720: 1200})
        ingest_audio(node, sim, 0)
        # Immediately after installation nothing is dead yet.
        assert executor.dead_configured_streams(sim.now) == []

    def test_departed_publisher_ignored(self):
        sim, conference, node, executor = build()
        install_config(executor, {Resolution.P720: 1200})
        for k in range(40):
            ingest_audio(node, sim, k)
            sim.run_until(sim.now + 0.05)
        conference.leave("pub")
        assert executor.dead_configured_streams(sim.now) == []
