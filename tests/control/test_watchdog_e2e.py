"""End-to-end test: the subscription watchdog against a net/ loss burst.

Publisher "A" simulcasts two streams (P720 + P180) to one subscriber
over two simulated links.  Mid-run the P720 link suffers a blackout (a
:class:`~repro.net.link.FaultyLink` loss burst) while P180 keeps
flowing — exactly the Sec. 7 condition: "a server instructs a client to
send multiple streams, however, only a low bitrate stream is received".
The watchdog must fire the downgrade while the burst lasts and un-fire
once the high stream recovers.
"""

from repro.control.failover import SubscriptionWatchdog
from repro.core import Resolution
from repro.net.link import FaultyLink, Link
from repro.net.packet import Packet
from repro.net.simulator import PeriodicTask, Simulator

BLACKOUT = (4.0, 8.0)
DURATION = 12.0
EXPECTED = {("A", Resolution.P720): True, ("A", Resolution.P180): True}


def run_meeting():
    """Returns (watchdog-probe observations, faulty link)."""
    sim = Simulator()
    dog = SubscriptionWatchdog(stale_after_s=2.0)

    def receiver(resolution):
        def on_delivery(packet, now_s):
            dog.on_packet("A", resolution, now_s)

        return on_delivery

    high = FaultyLink(sim, Link(sim, 5000.0, name="A-high"))
    high.add_blackout(*BLACKOUT)
    high.connect(receiver(Resolution.P720))
    low = Link(sim, 5000.0, name="A-low")
    low.connect(receiver(Resolution.P180))

    PeriodicTask(
        sim,
        0.1,
        lambda: high.send(Packet(payload=b"hi", size_bytes=1200, src="A")),
        start_offset=0.05,
    )
    PeriodicTask(
        sim,
        0.1,
        lambda: low.send(Packet(payload=b"lo", size_bytes=300, src="A")),
        start_offset=0.05,
    )

    observations = {}

    def probe(label):
        def run_probe():
            now = sim.now
            observations[label] = {
                "stale": dog.stale_subscriptions(EXPECTED, now),
                "target": dog.downgrade_target("A", Resolution.P720, now),
            }

        return run_probe

    sim.schedule_at(3.5, probe("before"))
    sim.schedule_at(6.8, probe("during"))
    sim.schedule_at(10.8, probe("after"))
    sim.run_until(DURATION)
    return observations, high


class TestWatchdogEndToEnd:
    def test_downgrade_fires_during_burst_and_unfires_after(self):
        obs, _ = run_meeting()
        assert obs["before"]["stale"] == []
        assert obs["during"]["stale"] == [("A", Resolution.P720)]
        assert obs["during"]["target"] == Resolution.P180
        assert obs["after"]["stale"] == []

    def test_burst_dropped_only_the_high_stream(self):
        _, high = run_meeting()
        # ~40 packets offered during the 4 s blackout at 10 Hz.
        assert 35 <= high.injected_drops <= 45
        assert high.stats.lost_packets == 0  # drops were injected, not organic

    def test_no_downgrade_when_low_stream_also_dark(self):
        """A publisher gone entirely silent is not a downgrade case."""
        dog = SubscriptionWatchdog(stale_after_s=2.0)
        dog.on_packet("A", Resolution.P720, 1.0)
        dog.on_packet("A", Resolution.P180, 1.0)
        # Both streams silent for 5 s: no sibling alive, so no downgrade.
        assert dog.stale_subscriptions(EXPECTED, 6.0) == []
        assert dog.downgrade_target("A", Resolution.P720, 6.0) is None
