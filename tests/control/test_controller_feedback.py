"""Tests for the GSO controller runtime and the feedback executor,
exercised over a real (simulated) media plane."""

import pytest

from repro.control.conference_node import ConferenceNode, ConferenceNodeConfig
from repro.control.feedback import FeedbackExecutor
from repro.control.gso_controller import ControllerConfig, GsoControllerRuntime
from repro.core.types import Resolution
from repro.media.sfu import AccessingNode
from repro.net.link import Link
from repro.net.simulator import Simulator
from repro.rtp.rtcp import AppPacket
from repro.rtp.semb import SembReport
from repro.rtp.tmmbr import GSO_TMMBR_NAME, GsoTmmbn, GsoTmmbr
from repro.sdp.simulcast_info import ResolutionCapability, SimulcastInfo


def info_for(client, base):
    return SimulcastInfo(
        client=client,
        codec="H264",
        max_streams=3,
        resolutions=(
            ResolutionCapability(Resolution.P720, 1500, 900, base),
            ResolutionCapability(Resolution.P360, 800, 400, base + 1),
            ResolutionCapability(Resolution.P180, 300, 100, base + 2),
        ),
    )


class Harness:
    """Control plane + accessing node with scripted 'clients' that record
    the TMMBR they receive and ack on request."""

    def __init__(self, controller_config=None):
        self.sim = Simulator()
        self.conference = ConferenceNode()
        self.node = AccessingNode(self.sim, "n0")
        self.received = {}  # client -> list of GsoTmmbr
        self.executor = FeedbackExecutor(
            self.sim, self.conference, {"n0": self.node}
        )
        self.runtime = GsoControllerRuntime(
            self.sim, self.conference, self.executor, controller_config
        )

    def add_client(self, name, base_ssrc):
        downlink = Link(self.sim, bandwidth_kbps=10_000, propagation_ms=5)
        self.received[name] = []

        def deliver(packet, now, client=name):
            app = AppPacket.parse(packet.payload)
            if app.name == GSO_TMMBR_NAME:
                self.received[client].append(GsoTmmbr.from_app_packet(app))

        downlink.connect(deliver)
        self.node.attach_client(name, downlink)
        self.conference.join(info_for(name, base_ssrc), "n0")

    def ack_all(self):
        for client, requests in self.received.items():
            for request in requests:
                self.executor.on_tmmbn(
                    client, GsoTmmbn.acknowledge(request, sender_ssrc=1)
                )


class TestControllerTriggers:
    def test_first_solve_happens_at_min_interval(self):
        h = Harness()
        h.add_client("A", 0x100)
        h.add_client("B", 0x200)
        h.conference.subscribe("B", "A")
        h.sim.run_until(1.1)
        assert len(h.runtime.solutions) == 1

    def test_max_interval_time_trigger(self):
        h = Harness(ControllerConfig(min_interval_s=1.0, max_interval_s=3.0))
        h.add_client("A", 0x100)
        h.add_client("B", 0x200)
        h.conference.subscribe("B", "A")
        h.sim.run_until(1.1)
        base_version = h.conference.version
        h.sim.run_until(10.0)
        # No events after the first solve: solves every max_interval.
        assert h.conference.version == base_version
        intervals = h.runtime.call_intervals
        assert intervals and all(i == pytest.approx(3.0) for i in intervals)

    def test_event_trigger_pulls_solve_earlier(self):
        h = Harness()
        h.add_client("A", 0x100)
        h.add_client("B", 0x200)
        h.conference.subscribe("B", "A")
        h.sim.run_until(1.1)
        # A significant change right after the solve...
        h.conference.update_downlink("B", 5000)
        h.sim.run_until(2.1)
        assert h.runtime.call_intervals[-1] == pytest.approx(1.0)

    def test_intervals_respect_min_and_max(self):
        h = Harness()
        h.add_client("A", 0x100)
        h.add_client("B", 0x200)
        h.conference.subscribe("B", "A")
        # Constant churn.
        import itertools

        from repro.net.simulator import PeriodicTask

        values = itertools.cycle([1000, 2000, 800, 4000, 600, 3000])
        PeriodicTask(
            h.sim, 0.2, lambda: h.conference.update_downlink("B", next(values))
        )
        h.sim.run_until(20.0)
        assert h.runtime.call_intervals
        for gap in h.runtime.call_intervals:
            assert 1.0 - 1e-6 <= gap <= 3.0 + 1e-6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(min_interval_s=0)
        with pytest.raises(ValueError):
            ControllerConfig(min_interval_s=4.0, max_interval_s=3.0)
        with pytest.raises(ValueError):
            ControllerConfig(upgrade_cooldown_s=-1)


class TestFeedbackExecution:
    def build(self):
        h = Harness()
        h.add_client("A", 0x100)
        h.add_client("B", 0x200)
        h.conference.subscribe("B", "A", Resolution.P720)
        h.conference.on_semb_report("A", SembReport(1, 5_000_000), 0.0)
        h.conference.update_downlink("B", 3000)
        return h

    def test_tmmbr_reaches_publisher(self):
        h = self.build()
        h.sim.run_until(1.5)
        assert len(h.received["A"]) >= 1
        request = h.received["A"][0]
        configured = {e.ssrc: e.bitrate_bps for e in request.entries}
        # All three negotiated SSRCs are addressed; unused ones get zero.
        assert set(configured) == {0x100, 0x101, 0x102}
        assert any(bps > 0 for bps in configured.values())

    def test_unchanged_solution_sends_no_new_tmmbr(self):
        h = self.build()
        # Keep SEMB reports fresh (clients report every second; a silent
        # publisher would trip the stale-report fallback by design).
        from repro.net.simulator import PeriodicTask

        PeriodicTask(
            h.sim,
            1.0,
            lambda: h.conference.on_semb_report(
                "A", SembReport(1, 5_000_000), h.sim.now
            ),
        )
        h.sim.run_until(1.5)
        h.ack_all()
        sent_before = h.executor.stats.tmmbr_sent
        h.sim.run_until(8.0)
        h.ack_all()
        # Inputs unchanged: config diffing suppresses repeat TMMBR.
        assert h.executor.stats.tmmbr_sent == sent_before

    def test_stale_semb_reports_trigger_conservative_fallback(self):
        """A publisher whose SEMB reports stop (congested uplink) is
        re-planned onto a conservative uplink budget (Sec. 7)."""
        h = self.build()  # single report at t=0 only
        h.sim.run_until(8.0)
        problem = h.conference.snapshot(now_s=h.sim.now)
        assert problem.bandwidth["A"].uplink_kbps <= 300

    def test_unacked_tmmbr_is_retransmitted(self):
        h = self.build()
        h.sim.run_until(1.2)
        first = len(h.received["A"])
        h.sim.run_until(2.4)  # several retransmit intervals, no acks
        assert len(h.received["A"]) > first

    def test_acked_tmmbr_stops_retransmitting(self):
        h = self.build()
        h.sim.run_until(1.2)
        h.ack_all()
        count = len(h.received["A"])
        h.sim.run_until(2.4)
        assert len(h.received["A"]) == count
        assert h.executor.pending_acks == 0

    def test_forwarding_installed_for_subscriber(self):
        h = self.build()
        h.sim.run_until(1.5)
        selection = h.node.video_selection("B", "A")
        assert selection in (0x100, 0x101, 0x102)

    def test_stopped_publisher_gets_zero_entries(self):
        h = self.build()
        h.sim.run_until(1.5)
        h.ack_all()
        # B unsubscribes: A should be told to stop everything.
        h.conference.unsubscribe("B", "A")
        h.sim.run_until(4.6)
        last = h.received["A"][-1]
        assert all(e.disables_stream for e in last.entries)
        assert h.node.video_selection("B", "A") is None
