"""Unit tests for the conference node (signaling + global picture)."""

import pytest

from repro.control.conference_node import ConferenceNode, ConferenceNodeConfig
from repro.core.types import Resolution
from repro.core.virtual import screen_id
from repro.rtp.semb import SembReport
from repro.sdp.simulcast_info import ResolutionCapability, SimulcastInfo


def info_for(client, base_ssrc=0x100):
    return SimulcastInfo(
        client=client,
        codec="H264",
        max_streams=3,
        resolutions=(
            ResolutionCapability(Resolution.P720, 1500, 900, base_ssrc),
            ResolutionCapability(Resolution.P360, 800, 400, base_ssrc + 1),
            ResolutionCapability(Resolution.P180, 300, 100, base_ssrc + 2),
        ),
    )


def make_node(**cfg):
    return ConferenceNode(ConferenceNodeConfig(**cfg)) if cfg else ConferenceNode()


class TestJoinLeave:
    def test_join_registers_capability(self):
        node = make_node()
        state = node.join(info_for("A"), node_name="n0")
        assert state.client == "A"
        assert len(state.feasible_streams) == 15  # 3 res x 5 levels
        assert node.participants() == ["A"]

    def test_duplicate_join_rejected(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        with pytest.raises(ValueError, match="already joined"):
            node.join(info_for("A", base_ssrc=0x200), "n0")

    def test_leave_cleans_everything(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.join(info_for("B", 0x200), "n0")
        node.subscribe("B", "A")
        node.leave("A")
        assert node.participants() == ["B"]
        problem = node.snapshot()
        assert problem.subscriptions == []

    def test_join_bumps_version(self):
        node = make_node()
        v0 = node.version
        node.join(info_for("A"), "n0")
        assert node.version > v0

    def test_ssrc_lookup(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        assert node.ssrc_for("A", Resolution.P720) == 0x100
        assert node.ssrc_for("A", Resolution.P90) is None
        assert node.ssrc_for("ghost", Resolution.P720) is None


class TestSubscriptions:
    def test_subscribe_requires_known_parties(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        with pytest.raises(ValueError, match="unknown subscriber"):
            node.subscribe("ghost", "A")
        node.join(info_for("B", 0x200), "n0")
        with pytest.raises(ValueError, match="unknown publisher"):
            node.subscribe("B", "ghost")

    def test_unsubscribe(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.join(info_for("B", 0x200), "n0")
        node.subscribe("B", "A")
        node.unsubscribe("B", "A")
        assert node.snapshot().subscriptions == []

    def test_dual_subscription_creates_alias(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.join(info_for("B", 0x200), "n0")
        vid = node.subscribe_dual("B", "A")
        problem = node.snapshot()
        assert problem.canonical(vid) == "A"
        assert len(problem.followed_by("B")) == 2

    def test_screen_share_join(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.join(info_for("B", 0x200), "n0")
        sid = screen_id("A")
        node.join_screen_share("A", info_for(sid, 0x300), "n0")
        node.subscribe("B", sid)
        problem = node.snapshot()
        assert problem.owner(sid) == "A"

    def test_screen_share_id_enforced(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        with pytest.raises(ValueError, match="must use id"):
            node.join_screen_share("A", info_for("wrong-id", 0x300), "n0")


class TestBandwidthIngestion:
    def test_semb_updates_uplink(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.on_semb_report("A", SembReport(1, 2_000_000), now_s=1.0)
        assert node.participant("A").uplink_kbps == 2000

    def test_downlink_update(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.update_downlink("A", 3000)
        assert node.participant("A").downlink_kbps == 3000

    def test_unknown_client_reports_ignored(self):
        node = make_node()
        node.on_semb_report("ghost", SembReport(1, 1_000_000), 0.0)
        node.update_downlink("ghost", 1000)  # no exception

    def test_insignificant_change_does_not_bump_version(self):
        node = make_node(significant_change=0.15)
        node.join(info_for("A"), "n0")
        node.update_downlink("A", 1000)
        v = node.version
        node.update_downlink("A", 1100)  # +10% < 15%
        assert node.version == v
        # ...but the stored value still advanced (for the periodic solve).
        assert node.participant("A").downlink_kbps == 1100

    def test_significant_change_bumps_version(self):
        node = make_node(significant_change=0.15)
        node.join(info_for("A"), "n0")
        node.update_downlink("A", 1000)
        v = node.version
        node.update_downlink("A", 600)
        assert node.version > v

    def test_upgrade_damping_applied(self):
        node = make_node()
        node.join(info_for("A"), "n0")
        node.update_downlink("A", 1000)
        node.update_downlink("A", 600)  # downgrade passes
        node.update_downlink("A", 650)  # small upgrade clamped
        assert node.participant("A").downlink_kbps == 600


class TestSnapshot:
    def build_pair(self, **cfg):
        node = make_node(**cfg)
        node.join(info_for("A"), "n0")
        node.join(info_for("B", 0x200), "n0")
        node.subscribe("B", "A", Resolution.P720)
        return node

    def test_defaults_used_before_measurements(self):
        node = self.build_pair(default_bandwidth_kbps=1000, headroom_fraction=1.0,
                               bandwidth_quantum_kbps=1, audio_protection_kbps=0)
        problem = node.snapshot()
        assert problem.bandwidth["A"].uplink_kbps == 1000

    def test_headroom_and_quantization(self):
        node = self.build_pair(headroom_fraction=0.9, bandwidth_quantum_kbps=50)
        node.update_downlink("B", 1037)
        problem = node.snapshot()
        # 1037 * 0.9 = 933.3 -> floor to 900.
        assert problem.bandwidth["B"].downlink_kbps == 900

    def test_snapshot_solves(self):
        from repro.core import solve

        node = self.build_pair()
        node.on_semb_report("A", SembReport(1, 3_000_000), 0.0)
        node.update_downlink("B", 2000)
        problem = node.snapshot()
        solution = solve(problem)
        solution.validate(problem)
        assert solution.assignments["B"]["A"].bitrate_kbps > 0

    def test_priority_weights_flow_into_snapshot(self):
        node = self.build_pair()
        node.priority.speaker = "A"
        problem = node.snapshot()
        plain = self.build_pair().snapshot()
        boosted = {s.bitrate_kbps: s.qoe for s in problem.feasible_streams["A"]}
        base = {s.bitrate_kbps: s.qoe for s in plain.feasible_streams["A"]}
        for rate, qoe in base.items():
            assert boosted[rate] > qoe
