"""Tracing-enabled overhead gate on the fixed ingress workload.

Budget (docs/TRACING.md): recording a run *with* trace assembly, profile
extraction, and Chrome-trace export on top must stay within ~5 % of the
plain recorded run.  Trace assembly is a **post-processing** pass over
the already-recorded event log, so the overhead is the assembly cost
amortized over the run — it must never make tracing a reason to fly
blind.

Records one fixed ``run_ingress`` workload, assembles its trace plane,
builds the latency profile, and writes:

* ``benchmarks/out/trace_overhead.txt`` — the CI-enforced overhead gate;
* ``benchmarks/out/BENCH_PR9.json`` — canonical trace/profile digests
  plus per-stage attribution (byte-deterministic across double runs);
* ``benchmarks/out/trace_chrome.json`` — the Perfetto-loadable Chrome
  trace of the workload (uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

from _harness import OUT_DIR, emit

from repro.ingress.run import IngressRunConfig, run_ingress
from repro.obs.events import EventLog
from repro.obs.tracing import (
    assemble_trees,
    build_profile,
    write_chrome_trace,
)

BENCH_SCHEMA = "repro.bench_pr9/v1"
RESULT_PATH = OUT_DIR / "BENCH_PR9.json"
CHROME_PATH = OUT_DIR / "trace_chrome.json"

#: The fixed recorded workload.
SEED = 9
DURATION_S = 10.0

#: Interleaved best-of rounds (same discipline as test_obs_overhead).
ROUNDS = 5


def _run(with_tracing: bool) -> float:
    """One timed ingress run; with tracing, also assemble + profile."""
    log = EventLog(capacity=65536)
    start = time.perf_counter()
    run_ingress(
        IngressRunConfig(seed=SEED, duration_s=DURATION_S), events_out=log
    )
    if with_tracing:
        traces = assemble_trees(log.events)
        build_profile(traces.trees())
    return time.perf_counter() - start


def test_trace_overhead():
    _run(False)  # warmup: caches, imports

    plain_s = traced_s = float("inf")
    for _ in range(ROUNDS):
        plain_s = min(plain_s, _run(False))
        traced_s = min(traced_s, _run(True))
    overhead = (traced_s - plain_s) / plain_s

    # Canonical artifacts from one final recorded run (double-assembled
    # to assert the digests are stable within the session).
    log = EventLog(capacity=65536)
    report = run_ingress(
        IngressRunConfig(seed=SEED, duration_s=DURATION_S), events_out=log
    )
    traces = assemble_trees(log.events)
    replay = assemble_trees(log.events)
    assert traces.digest() == replay.digest(), (
        "trace assembly is not deterministic across replays"
    )
    assert traces.digest() == report.trace_digest, (
        "assembled digest disagrees with the report's embedded digest"
    )
    profile = build_profile(traces.trees(), source=f"run_ingress seed={SEED}")
    write_chrome_trace(traces.trees(), CHROME_PATH)

    stages: Dict[str, Dict[str, float]] = {}
    for stage in profile.stages():
        stages[stage] = {
            "count": profile.count(stage),
            "p95_ms": round(profile.quantile(stage, 0.95) * 1000, 4),
        }
    result = {
        "schema": BENCH_SCHEMA,
        "seed": SEED,
        "duration_s": DURATION_S,
        "trace_digest": traces.digest(),
        "profile_digest": profile.digest(),
        "trees_assembled": traces.assembled,
        "stages": stages,
        "wall": {
            "plain_s": round(plain_s, 4),
            "traced_s": round(traced_s, 4),
            "overhead": round(overhead, 4),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"workload: run_ingress seed={SEED} duration={DURATION_S:g}s "
        f"(best of {ROUNDS} interleaved rounds)",
        "",
        f"recorded run          : {plain_s * 1000:8.3f} ms",
        f"recorded + traced run : {traced_s * 1000:8.3f} ms "
        "(assembly + profile on top)",
        f"tracing overhead      : {overhead * 100:+8.2f} %  "
        "(budget: <= 5 %)",
        "",
        f"trees: {traces.assembled} assembled, "
        f"trace digest {traces.digest()[:16]}, "
        f"profile digest {profile.digest()[:16]}",
        f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)} and "
        f"{CHROME_PATH.relative_to(OUT_DIR.parent)}",
    ]
    emit("trace_overhead", lines)
    # The committed artifact documents the ~5 % budget; the assertion is
    # looser so a loaded CI machine does not flake the suite.
    assert overhead < 0.25, (
        f"tracing overhead {overhead:.1%} exceeds bound"
    )
