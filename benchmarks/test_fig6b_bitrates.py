"""Fig. 6b: GSO vs brute force as the number of bitrate levels grows.

The paper varies the bitrate-level count 2..8 on a fixed small meeting:
brute-force time grows exponentially with levels (which is what blocks
fine-grained policies in classic simulcast); GSO grows ~linearly; QoE
optimality stays ~1.
"""

import time

import pytest

from repro.core.bruteforce import step1_objective
from repro.core.knapsack import knapsack_step
from repro.core.solver import GsoSolver, SolverConfig

from _harness import emit, table
from _problems import mesh_meeting

LEVELS = [2, 3, 4, 5, 6, 7, 8]
N_CLIENTS = 5

GSO = GsoSolver(SolverConfig(granularity_kbps=10))
BRUTE = GsoSolver(SolverConfig(exhaustive_step1=True))


def run_sweep():
    rows = []
    for levels in LEVELS:
        problem = mesh_meeting(N_CLIENTS, levels, seed=levels)
        t0 = time.perf_counter()
        gso_solution = GSO.solve(problem)
        gso_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        brute_solution = BRUTE.solve(problem)
        brute_time = time.perf_counter() - t0
        dp_obj = step1_objective(
            knapsack_step(problem, granularity=GSO.config.granularity_kbps)
        )
        exact_obj = step1_objective(knapsack_step(problem, exhaustive=True))
        ratio = dp_obj / exact_obj if exact_obj else 1.0
        rows.append((levels, gso_time, brute_time, ratio))
    return rows


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_bitrate_levels(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    brute_peak = max(r[2] for r in rows)
    printable = [
        [
            levels,
            f"{g * 1000:.2f}ms",
            f"{b * 1000:.2f}ms",
            f"{g / brute_peak:.2e}",
            f"{b / brute_peak:.2e}",
            f"{ratio:.4f}",
        ]
        for levels, g, b, ratio in rows
    ]
    emit(
        "fig6b_bitrates",
        table(
            ["levels", "gso", "brute", "gso(norm)", "brute(norm)", "QoE optimality"],
            printable,
        ),
    )
    by_level = {l: (g, b, r) for l, g, b, r in rows}
    assert by_level[8][1] > 20 * by_level[2][1], "brute must explode with levels"
    assert by_level[8][0] < by_level[8][1] / 10
    # GSO scales ~linearly with levels: going 2 -> 8 levels must not cost
    # anywhere near the brute force's exponential factor.
    gso_growth = by_level[8][0] / max(by_level[2][0], 1e-9)
    brute_growth = by_level[8][1] / max(by_level[2][1], 1e-9)
    assert gso_growth < brute_growth / 4
    for levels, (_, _, ratio) in by_level.items():
        assert ratio >= 0.93, f"optimality at levels={levels} fell to {ratio}"
