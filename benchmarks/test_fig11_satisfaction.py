"""Fig. 11: user-satisfaction score across the rollout.

The paper reports a 7.2 % improvement of the (normalized) user
satisfaction score between pre-deployment and full deployment, trending
with coverage.  The bench maps the fleet simulation's daily experience
metrics through the satisfaction model and checks the improvement band.
"""

import datetime as dt

import pytest

from repro.deploy import (
    DeploymentSimulation,
    SatisfactionModel,
    normalize,
)
from repro.deploy.rollout import DEPLOY_FULL, DEPLOY_START

from _harness import emit, table

#: The Fig. 11 observation window (Nov 12 - Dec 24).
WINDOW_START = dt.date(2021, 11, 12)
WINDOW_END = dt.date(2021, 12, 24)
STRIDE_DAYS = 3


def run_window():
    sim = DeploymentSimulation(conferences_per_day=150)
    model = SatisfactionModel()
    points = []
    day = WINDOW_START
    while day <= WINDOW_END:
        p = sim.run_day(day)
        score = model.score(p.video_stall, p.voice_stall, p.framerate)
        points.append((p.day, p.coverage, score))
        day += dt.timedelta(days=STRIDE_DAYS)
    # Extend with a few fully-deployed days for the "after" average.
    for offset in (5, 10, 15):
        day = DEPLOY_FULL + dt.timedelta(days=offset)
        p = sim.run_day(day)
        score = model.score(p.video_stall, p.voice_stall, p.framerate)
        points.append((p.day, p.coverage, score))
    return points


@pytest.mark.benchmark(group="fig11")
def test_fig11_satisfaction(benchmark):
    points = benchmark.pedantic(run_window, rounds=1, iterations=1)
    scores = normalize([s for _, _, s in points])
    rows = [
        [day.isoformat(), f"{coverage:.2f}", f"{score:.4f}"]
        for (day, coverage, _), score in zip(points, scores)
    ]
    emit("fig11_satisfaction", table(["date", "coverage", "score"], rows))
    before = [s for _, c, s in points if c == 0.0]
    after = [s for _, c, s in points if c >= 1.0]
    assert before and after
    gain = (sum(after) / len(after)) / (sum(before) / len(before)) - 1.0
    emit(
        "fig11_improvement",
        [f"satisfaction improvement: {gain:.1%}  (paper: 7.2%)"],
    )
    # Band: positive, same order of magnitude as the paper's 7.2 %.
    assert 0.02 < gain < 0.20
    # Correlation with coverage: the mid-rollout scores sit between.
    mid = [s for _, c, s in points if 0.2 < c < 0.8]
    if mid:
        assert min(after) > min(before)