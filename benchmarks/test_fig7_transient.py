"""Fig. 7: transient video-bitrate adaptation under abrupt downlink steps.

The paper's experiment: one publisher, one subscriber.  At t=20 s the
subscriber's downlink is limited to 750/625/500/375 kbps (one run each)
and restored at t=57 s.  GSO-Simulcast (fine ladder) "perfectly fits the
video bitrate just right under the bandwidth limit"; Non-GSO-Simulcast's
coarse 300/600/1500 layers cannot fit — they straddle the limit, either
undershooting badly or overshooting into congestion.

Reproduced shape: during the limit, GSO stays under it with smooth
playback; non-GSO's playback collapses into stalls at every limit; both
recover after the limit lifts.
"""

import pytest

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.core.types import Resolution
from repro.media.jitter_buffer import compute_playback_metrics
from repro.net.trace import BandwidthTrace

from _harness import emit, series_stats, table

LIMITS = [750.0, 625.0, 500.0, 375.0]
INITIAL_DOWN = 2000.0
LIMIT_AT, RECOVER_AT, DURATION = 20.0, 57.0, 80.0
#: Measurement window inside the limited phase (skip the adaptation edge).
WINDOW = (24.0, 56.0)


def run_one(mode, limit):
    trace = BandwidthTrace.step_schedule(
        INITIAL_DOWN, [(LIMIT_AT, limit)], recover_at_s=RECOVER_AT
    )
    spec = MeetingSpec(
        clients=[
            ClientSpec("pub", 5000, 5000),
            ClientSpec(
                "sub", 5000, INITIAL_DOWN, publishes=False, downlink_trace=trace
            ),
        ],
        subscriptions=[("sub", "pub", Resolution.P720)],
        mode=mode,
        duration_s=DURATION,
        warmup_s=5.0,
        levels_per_resolution=5,
    )
    runner = MeetingRunner(spec)
    report = runner.run()
    series = report.receive_series["sub"]
    sub = runner.clients["sub"]
    render_times = sorted(
        t for buf in sub.jitter_buffers.values() for t in buf.render_times
    )
    playback = compute_playback_metrics(render_times, *WINDOW)
    return {
        "pre": series_stats(series, 12.0, LIMIT_AT - 1),
        "during": series_stats(series, WINDOW[0], WINDOW[1]),
        "post": series_stats(series, 70.0, DURATION),
        "stall": playback.stall_rate,
        "fps": playback.framerate,
    }


def run_sweep():
    return {
        (mode, limit): run_one(mode, limit)
        for mode in ("gso", "nongso")
        for limit in LIMITS
    }


@pytest.mark.benchmark(group="fig7")
def test_fig7_transient_adaptation(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for limit in LIMITS:
        gso = results[("gso", limit)]
        non = results[("nongso", limit)]
        rows.append(
            [
                f"{limit:.0f}kbps",
                f"{gso['during']:.0f}",
                f"{gso['stall']:.2f}",
                f"{gso['fps']:.1f}",
                f"{non['during']:.0f}",
                f"{non['stall']:.2f}",
                f"{non['fps']:.1f}",
                f"{gso['pre']:.0f}/{gso['post']:.0f}",
            ]
        )
    emit(
        "fig7_transient",
        table(
            [
                "limit",
                "gso kbps",
                "gso stall",
                "gso fps",
                "nongso kbps",
                "nongso stall",
                "nongso fps",
                "gso pre/post",
            ],
            rows,
        ),
    )
    for limit in LIMITS:
        gso = results[("gso", limit)]
        non = results[("nongso", limit)]
        # GSO fits under the limit (never sustained overshoot)...
        assert gso["during"] < limit * 1.05
        # ...while delivering a substantial share of it...
        assert gso["during"] > 0.4 * limit
        # ...with smooth playback, unlike the coarse baseline that
        # straddles the limit and stalls.
        assert gso["stall"] < non["stall"] - 0.15, (
            f"limit {limit}: gso stall {gso['stall']} vs {non['stall']}"
        )
        assert gso["fps"] > non["fps"]
        # Both phases recover after the limit lifts.
        assert gso["post"] > 0.8 * gso["pre"]
