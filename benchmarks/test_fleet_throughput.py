"""Fleet-throughput gate: meetings/sec at the p95 solve SLO, per policy.

Runs the vectorized fleet model (``repro.deploy.vectorfleet``) at one
committed operating point — seed 8, 10^5 users, 16 shards, 32
webinar-scale meetings — places the identical workload with every
placement policy, and bisects each packing's sustainable fleet-wide
solve rate under the 250 ms p95 solve-latency SLO.

The model is pure seeded arithmetic (no wall clock), so the whole report
is byte-deterministic; the test runs it twice and requires identical
canonical JSON.  Results are written to ``benchmarks/out/BENCH_PR7.json``
and compared against ``benchmarks/baselines/BENCH_PR7.json``:

* ``best_fit`` must sustain at least :data:`MIN_SPEEDUP` x the ``hash``
  baseline's meetings/sec — asserted unconditionally (the model has no
  machine noise to excuse);
* against the committed baseline the speedups may not drop more than
  15 % relative; outside CI the comparison only prints, and the hard
  failure is armed by ``REPRO_PERF_GATE=1``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List

from _harness import OUT_DIR, emit

from repro.deploy.vectorfleet import throughput_report

BENCH_SCHEMA = "repro.bench_pr7/v1"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_PR7.json"
RESULT_PATH = OUT_DIR / "BENCH_PR7.json"

#: The committed operating point (chosen so the webinar mass collides on
#: the hash ring; regenerate the baseline if any of these change).
SEED = 8
USERS = 100_000
SHARDS = 16
WEBINARS = 32
WEBINAR_SIZE = (180, 220)
MAX_SIZE = 60

#: best_fit must beat hash by at least this factor (acceptance floor).
MIN_SPEEDUP = 2.0

#: Maximum tolerated relative drop vs the committed baseline speedups.
REGRESSION_BUDGET = 0.15


def _report() -> dict:
    return throughput_report(
        SEED,
        users=USERS,
        shards=SHARDS,
        webinars=WEBINARS,
        webinar_size=WEBINAR_SIZE,
        max_size=MAX_SIZE,
    )


def _compare(result: dict, baseline: dict) -> List[str]:
    """Gate comparisons; returns a list of failure descriptions."""
    failures: List[str] = []
    for key in sorted(baseline):
        if not key.startswith("speedup_"):
            continue
        floor = baseline[key] * (1.0 - REGRESSION_BUDGET)
        current = result.get(key, 0.0)
        if current < floor:
            failures.append(
                f"{key} {current:.4f} < floor {floor:.4f} "
                f"(baseline {baseline[key]:.4f})"
            )
    return failures


def test_fleet_throughput():
    result = {"schema": BENCH_SCHEMA, **_report()}
    replay = {"schema": BENCH_SCHEMA, **_report()}
    canonical = json.dumps(result, indent=2, sort_keys=True)
    assert canonical == json.dumps(replay, indent=2, sort_keys=True), (
        "fleet throughput report is not deterministic across runs"
    )
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(canonical + "\n")

    lines = [
        f"fleet: {result['users']} users / {result['meetings']} meetings "
        f"on {result['shards']} shards "
        f"(seed {result['seed']}, p95 SLO {result['slo_p95_s']} s)",
    ]
    for policy, row in result["policies"].items():
        lines.append(
            f"{policy:<12s}: {row['meetings_per_s']:10.1f} meetings/s  "
            f"imbalance={row['imbalance']:.3f}  "
            f"shard_cost_max={row['shard_cost_max']:.0f}"
        )
    speedup = result["speedup_best_fit_vs_hash"]
    lines.append(
        f"speedup: best_fit {speedup}x, "
        f"least_loaded {result['speedup_least_loaded_vs_hash']}x vs hash"
    )
    lines.append(f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)}")

    if not BASELINE_PATH.exists():
        lines.append("no committed baseline — comparison skipped")
        emit("fleet_throughput", lines)
        assert speedup >= MIN_SPEEDUP, (
            f"best_fit sustains only {speedup}x hash throughput "
            f"(need >= {MIN_SPEEDUP}x)"
        )
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = _compare(result, baseline)
    if canonical != json.dumps(baseline, indent=2, sort_keys=True):
        lines.append(
            "NOTE: report differs from the committed baseline — the model "
            "is deterministic, so regenerate "
            "benchmarks/baselines/BENCH_PR7.json if the workload or "
            "policies changed intentionally"
        )
    lines.append(
        "gate: " + ("FAIL — " + "; ".join(failures) if failures else "PASS")
    )
    emit("fleet_throughput", lines)

    assert speedup >= MIN_SPEEDUP, (
        f"best_fit sustains only {speedup}x hash throughput "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    if failures and os.environ.get("REPRO_PERF_GATE") == "1":
        raise AssertionError(
            "fleet throughput gate failed: " + "; ".join(failures)
        )
