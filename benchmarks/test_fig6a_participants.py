"""Fig. 6a: GSO vs brute force as the number of participants grows.

The paper varies subscribers/publishers 2..8 with a small bitrate set and
plots (log-scale) normalized computation time of both algorithms plus the
QoE-optimality ratio.  Expected shape: brute-force time grows
exponentially with participants (a straight line in log scale); GSO stays
orders of magnitude flatter; optimality stays ~1.
"""

import time

import pytest

from repro.core.bruteforce import step1_objective
from repro.core.knapsack import knapsack_step
from repro.core.solver import GsoSolver, SolverConfig

from _harness import emit, table
from _problems import mesh_meeting

SIZES = [2, 3, 4, 5, 6, 7, 8]
LEVELS = 3  # one rung per resolution, as in the paper's small-scale runs

GSO = GsoSolver(SolverConfig(granularity_kbps=10))
BRUTE = GsoSolver(SolverConfig(exhaustive_step1=True))


def run_sweep():
    rows = []
    for n in SIZES:
        problem = mesh_meeting(n, LEVELS, seed=n)
        t0 = time.perf_counter()
        gso_solution = GSO.solve(problem)
        gso_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        brute_solution = BRUTE.solve(problem)
        brute_time = time.perf_counter() - t0
        gso_solution.validate(problem)
        brute_solution.validate(problem)
        # QoE optimality as the paper defines it: the ratio of the Eq. (1)
        # Step-1 objectives (GSO's pseudo-polynomial DP vs exact search).
        dp_obj = step1_objective(
            knapsack_step(problem, granularity=GSO.config.granularity_kbps)
        )
        exact_obj = step1_objective(knapsack_step(problem, exhaustive=True))
        ratio = dp_obj / exact_obj if exact_obj else 1.0
        rows.append((n, gso_time, brute_time, ratio))
    return rows


@pytest.mark.benchmark(group="fig6a")
def test_fig6a_participants(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    brute_peak = max(r[2] for r in rows)
    printable = [
        [
            n,
            f"{gso_t * 1000:.2f}ms",
            f"{brute_t * 1000:.2f}ms",
            f"{gso_t / brute_peak:.2e}",
            f"{brute_t / brute_peak:.2e}",
            f"{ratio:.4f}",
        ]
        for n, gso_t, brute_t, ratio in rows
    ]
    emit(
        "fig6a_participants",
        table(
            [
                "participants",
                "gso",
                "brute",
                "gso(norm)",
                "brute(norm)",
                "QoE optimality",
            ],
            printable,
        ),
    )
    # Shape assertions: brute-force grows ~exponentially; GSO stays far
    # cheaper at scale; optimality is near one everywhere.
    by_n = {n: (g, b, r) for n, g, b, r in rows}
    assert by_n[8][1] > 50 * by_n[2][1], "brute force must explode with size"
    assert by_n[8][0] < by_n[8][1] / 10, "GSO must be >=10x faster at n=8"
    for n, (_, _, ratio) in by_n.items():
        assert ratio >= 0.93, f"optimality at n={n} fell to {ratio}"
