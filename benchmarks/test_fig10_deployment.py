"""Fig. 10: deployment timeline of video stall, voice stall, framerate.

The paper plots daily (normalized) averages from 2021-10-01 to 2022-01-14
with the rollout ramping 2021-11-20 -> 2021-12-20, and reports: video
stall -35 %, voice stall -50 %, framerate +6 % after full deployment.
The fleet simulation regenerates the series (sub-sampled to every third
day for runtime) and checks the before/after deltas land in those
neighbourhoods.
"""

import datetime as dt

import pytest

from repro.deploy import (
    DeploymentSimulation,
    OBSERVATION_END,
    OBSERVATION_START,
    normalize,
)

from _harness import emit, table

STRIDE_DAYS = 3
PER_DAY = 150


def run_timeline():
    sim = DeploymentSimulation(conferences_per_day=PER_DAY)
    points = []
    day = OBSERVATION_START
    while day <= OBSERVATION_END:
        points.append(sim.run_day(day))
        day += dt.timedelta(days=STRIDE_DAYS)
    return points


@pytest.mark.benchmark(group="fig10")
def test_fig10_deployment_timeline(benchmark):
    points = benchmark.pedantic(run_timeline, rounds=1, iterations=1)
    video = normalize([p.video_stall for p in points])
    voice = normalize([p.voice_stall for p in points])
    fps = normalize([p.framerate for p in points])
    rows = [
        [
            p.day.isoformat(),
            f"{p.coverage:.2f}",
            f"{v:.3f}",
            f"{a:.3f}",
            f"{f:.3f}",
        ]
        for p, v, a, f in zip(points, video, voice, fps)
    ]
    emit(
        "fig10_deployment",
        table(
            ["date", "coverage", "video stall", "voice stall", "framerate"],
            rows,
        ),
    )

    def mean(values):
        return sum(values) / len(values)

    before = [p for p in points if p.coverage == 0.0]
    after = [p for p in points if p.coverage >= 1.0]
    video_cut = 1 - mean([p.video_stall for p in after]) / mean(
        [p.video_stall for p in before]
    )
    voice_cut = 1 - mean([p.voice_stall for p in after]) / mean(
        [p.voice_stall for p in before]
    )
    fps_gain = mean([p.framerate for p in after]) / mean(
        [p.framerate for p in before]
    ) - 1
    emit(
        "fig10_improvements",
        [
            f"video stall reduction: {video_cut:.1%}  (paper: ~35%)",
            f"voice stall reduction: {voice_cut:.1%}  (paper: ~50%)",
            f"framerate improvement: {fps_gain:.1%}  (paper: ~6%)",
        ],
    )
    # Shape bands (factor-level agreement, per the reproduction charter).
    assert 0.15 < video_cut < 0.60
    assert 0.30 < voice_cut < 0.80
    assert 0.02 < fps_gain < 0.12
    # Trend correlates with coverage: the partial-coverage period sits
    # between the endpoints.
    mid = [p for p in points if 0.3 < p.coverage < 0.8]
    if mid:
        assert mean([p.video_stall for p in after]) < mean(
            [p.video_stall for p in mid]
        ) < mean([p.video_stall for p in before])
