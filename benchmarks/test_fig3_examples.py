"""Fig. 3: the three motivating scenarios, GSO vs local simulcast.

Each sub-figure pair (a/d, b/e, c/f) contrasts a pathology of
uncoordinated simulcast with the orchestrated outcome.  The bench solves
each scenario with the GSO solver and with the local (template + SFU
switch) logic and prints both outcomes side by side.
"""

import pytest

from repro.client.policies import LocalDownlinkSwitcher
from repro.core import Bandwidth, Resolution, StreamSpec, solve
from repro.core.constraints import Problem, Subscription

from _harness import emit, table

COARSE = {
    Resolution.P720: 1500,
    Resolution.P360: 600,
    Resolution.P180: 300,
}


def coarse_ladder_specs():
    return [
        StreamSpec(1500, Resolution.P720, 1200.0),
        StreamSpec(600, Resolution.P360, 530.0),
        StreamSpec(300, Resolution.P180, 300.0),
    ]


def fine_ladder_specs():
    return [
        StreamSpec(rate, Resolution.P720, 100.0 * (rate / 100) ** 0.5)
        for rate in range(300, 1501, 100)
    ]


def example1():
    """Fig. 3a/3d — wasted uplink: two subscribers want 300k and 600k."""
    problem = Problem(
        {"pub1": coarse_ladder_specs()},
        {
            "pub1": Bandwidth(3000, 100),
            "sub1": Bandwidth(100, 320),
            "sub2": Bandwidth(100, 650),
        },
        [
            Subscription("sub1", "pub1", Resolution.P180),
            Subscription("sub2", "pub1", Resolution.P360),
        ],
    )
    gso = solve(problem)
    gso.validate(problem)
    gso_uplink = gso.uplink_usage_kbps("pub1")
    # Local simulcast: the publisher pushes every template layer its
    # (ample) uplink affords, regardless of subscriptions.
    local_uplink = sum(COARSE.values())
    return ("3a/3d wasted uplink", f"{local_uplink}kbps", f"{gso_uplink}kbps")


def example2():
    """Fig. 3b/3e — mismatch: 1.45 Mbps downlink vs coarse layers."""
    downlink = 1450
    problem = Problem(
        {"pub1": fine_ladder_specs()},
        {"pub1": Bandwidth(3000, 100), "sub1": Bandwidth(100, downlink)},
        [Subscription("sub1", "pub1", Resolution.P720)],
    )
    gso = solve(problem)
    gso.validate(problem)
    gso_rate = gso.assignments["sub1"]["pub1"].bitrate_kbps
    # Local SFU switch over the coarse ladder.
    switcher = LocalDownlinkSwitcher(headroom=1.0)
    local_res = switcher.select_stream(downlink, COARSE, 1)
    local_rate = COARSE[local_res]
    return ("3b/3e 1450k downlink", f"{local_rate}kbps", f"{gso_rate}kbps")


def example3():
    """Fig. 3c/3f — stream competition on a 2.05 Mbps downlink."""
    downlink = 2050
    problem = Problem(
        {"pub1": fine_ladder_specs(), "pub2": fine_ladder_specs()},
        {
            "pub1": Bandwidth(3000, 100),
            "pub2": Bandwidth(3000, 100),
            "sub1": Bandwidth(100, downlink),
        },
        [
            Subscription("sub1", "pub1", Resolution.P720),
            Subscription("sub1", "pub2", Resolution.P720),
        ],
    )
    gso = solve(problem)
    gso.validate(problem)
    rates = sorted(
        s.bitrate_kbps for s in gso.assignments["sub1"].values()
    )
    # Local: greedy largest-first over coarse layers.
    remaining = downlink
    local = []
    for _ in range(2):
        fit = max(
            (r for r in COARSE.values() if r <= remaining), default=0
        )
        local.append(fit)
        remaining -= fit
    return (
        "3c/3f competition",
        "+".join(str(r) for r in sorted(local)),
        "+".join(str(r) for r in rates),
    )


@pytest.mark.benchmark(group="fig3")
def test_fig3_motivating_examples(benchmark):
    rows = benchmark.pedantic(
        lambda: [example1(), example2(), example3()], rounds=1, iterations=1
    )
    emit(
        "fig3_examples",
        table(["scenario", "local simulcast", "GSO"], rows),
    )
    # Example 1: GSO stops unsubscribed streams (paper: 2400 -> 900).
    assert rows[0][2] == "900kbps"
    assert rows[0][1] == "2400kbps"
    # Example 2: GSO fits just under 1450 (paper: 1400 vs 600).
    assert rows[1][2] == "1400kbps"
    assert rows[1][1] == "600kbps"
    # Example 3: GSO shares evenly (paper: 1000+1000 vs 300+1500).
    gso_rates = [int(x) for x in rows[2][2].split("+")]
    assert abs(gso_rates[0] - gso_rates[1]) <= 100
    local_rates = [int(x) for x in rows[2][1].split("+")]
    assert abs(local_rates[0] - local_rates[1]) >= 900
