"""Ablations of the design choices DESIGN.md calls out.

Not a paper figure — these benches quantify the individual mechanisms the
paper describes qualitatively:

* **ladder granularity** — fine (15-level) vs coarse (3-level) ladders:
  the QoE the knapsack can extract from heterogeneous downlinks;
* **DP granularity** — solve-time vs optimality across knapsack grids;
* **upgrade damper** — bandwidth-report oscillation with/without the
  Sec. 7 hysteresis;
* **stickiness** — assignment churn with/without the incumbent bonus;
* **small-stream protection** — concave vs linear QoE curves under
  stream competition.
"""

import random
import time

import pytest

from repro.core import (
    Bandwidth,
    GsoSolver,
    Resolution,
    SolverConfig,
    StreamSpec,
    UpgradeDamper,
    make_ladder,
)
from repro.core.constraints import Problem, Subscription

from _harness import emit, table
from _problems import fanout_meeting, mesh_meeting


def heterogeneous_mesh(ladder, seed=5, n=8):
    rng = random.Random(seed)
    clients = [f"C{k}" for k in range(n)]
    bandwidth = {
        c: Bandwidth(
            rng.choice([1500, 3000, 5000]),
            rng.choice([700, 1100, 1600, 2300, 3500]),
        )
        for c in clients
    }
    subs = [
        Subscription(a, b, Resolution.P720)
        for a in clients
        for b in clients
        if a != b
    ]
    return Problem({c: ladder for c in clients}, bandwidth, subs)


@pytest.mark.benchmark(group="ablations")
def test_ablation_ladder_granularity(benchmark):
    """Fine ladders fit video into heterogeneous downlinks (Fig. 3b/7).

    Measured as mean downlink *utilization* over dedicated pub->sub pairs
    across a sweep of downlink capacities: with one rung per resolution a
    1.45 Mbps downlink gets 800 kbps; with fine rungs it gets ~1.4 Mbps.
    (A mesh-wide QoE sum would conflate this with Step-2 merging, which
    intentionally pulls shared encodings down to the minimum request.)
    """

    def run():
        downlinks = list(range(350, 1701, 90))
        rows = []
        for levels in (1, 2, 3, 5, 8):
            ladder = make_ladder(levels_per_resolution=levels)
            utilizations = []
            for down in downlinks:
                problem = Problem(
                    {"P": ladder},
                    {"P": Bandwidth(5000, 100), "S": Bandwidth(100, down)},
                    [Subscription("S", "P", Resolution.P720)],
                )
                solution = GsoSolver(SolverConfig(granularity_kbps=10)).solve(
                    problem
                )
                got = sum(
                    s.bitrate_kbps
                    for s in solution.assignments.get("S", {}).values()
                )
                utilizations.append(got / down)
            rows.append((levels * 3, sum(utilizations) / len(utilizations)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_ladder",
        table(
            ["total levels", "mean downlink utilization"],
            [[lv, f"{u:.1%}"] for lv, u in rows],
        ),
    )
    utils = {lv: u for lv, u in rows}
    # Fine ladders fit markedly better than the coarse template ladder.
    assert utils[15] > utils[3] + 0.10
    assert utils[15] > 0.75


@pytest.mark.benchmark(group="ablations")
def test_ablation_dp_granularity(benchmark):
    """Coarser knapsack grids trade bounded QoE for solve time."""

    def run():
        problem = fanout_meeting(10, 100, 18, seed=3)
        rows = []
        for grid in (1, 10, 25, 50, 100):
            solver = GsoSolver(SolverConfig(granularity_kbps=grid))
            t0 = time.perf_counter()
            solution = solver.solve(problem)
            elapsed = time.perf_counter() - t0
            rows.append((grid, elapsed, solution.total_qoe()))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    exact_qoe = rows[0][2]
    emit(
        "ablation_dp_granularity",
        table(
            ["grid kbps", "time", "QoE vs exact"],
            [
                [g, f"{t * 1000:.1f}ms", f"{q / exact_qoe:.4f}"]
                for g, t, q in rows
            ],
        ),
    )
    # Coarser grids are faster with near-zero QoE loss on real ladders
    # (rung spacing >> grid step keeps the DP's choices identical).
    t_exact, t_100 = rows[0][1], rows[-1][1]
    assert t_100 < t_exact
    for _, _, qoe in rows:
        assert qoe > 0.97 * exact_qoe


@pytest.mark.benchmark(group="ablations")
def test_ablation_upgrade_damper(benchmark):
    """The Sec. 7 hysteresis flattens noisy measurement sequences."""

    def run():
        rng = random.Random(9)
        # The paper's scenario: a slow link whose measurements fluctuate
        # around a degraded level after a real drop — exactly where naive
        # re-upgrading causes visible quality oscillation.
        raw = [1000] * 20 + [
            int(600 * rng.uniform(0.93, 1.07)) for _ in range(180)
        ]
        damped_filter = UpgradeDamper(upgrade_margin=0.15)
        damped = [damped_filter.filter("c", "downlink", v) for v in raw]

        def significant_changes(series, threshold=0.05):
            return sum(
                1
                for a, b in zip(series, series[1:])
                if abs(b - a) / max(a, 1) > threshold
            )

        return significant_changes(raw), significant_changes(damped)

    raw_changes, damped_changes = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit(
        "ablation_damper",
        [
            f"significant value changes without damper: {raw_changes}",
            f"significant value changes with damper:    {damped_changes}",
        ],
    )
    # The damper converges to a stable value instead of oscillating, while
    # still passing the genuine drop immediately.
    assert damped_changes < raw_changes / 3


@pytest.mark.benchmark(group="ablations")
def test_ablation_stickiness(benchmark):
    """The incumbent bonus suppresses assignment churn under input noise."""

    def run():
        rng = random.Random(4)
        ladder = make_ladder(levels_per_resolution=5)

        def churn(stickiness):
            solver = GsoSolver(
                SolverConfig(granularity_kbps=10, stickiness=stickiness)
            )
            incumbent = None
            switches = 0
            previous = None
            for step in range(40):
                noise = rng.uniform(0.9, 1.1)
                problem = Problem(
                    {"A": ladder, "B": ladder},
                    {
                        "A": Bandwidth(5000, 100),
                        "B": Bandwidth(5000, 100),
                        "V": Bandwidth(100, int(1100 * noise)),
                    },
                    [
                        Subscription("V", "A", Resolution.P720),
                        Subscription("V", "B", Resolution.P720),
                    ],
                )
                solution = solver.solve(problem, incumbent=incumbent)
                current = {
                    pub: stream.resolution
                    for pub, stream in solution.assignments.get("V", {}).items()
                }
                if previous is not None and current != previous:
                    switches += 1
                previous = current
                incumbent = {
                    ("V", pub): res for pub, res in current.items()
                }
            return switches

        rng_state = rng.getstate()
        plain = churn(0.0)
        rng.setstate(rng_state)
        sticky = churn(0.10)
        return plain, sticky

    plain, sticky = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_stickiness",
        [
            f"resolution switches without stickiness: {plain}",
            f"resolution switches with stickiness:    {sticky}",
        ],
    )
    assert sticky <= plain
    assert sticky < 10


@pytest.mark.benchmark(group="ablations")
def test_ablation_small_stream_protection(benchmark):
    """Concave QoE keeps both competing streams; linear QoE drops one."""

    def ladder_with(exponent_concave: bool):
        rates = range(200, 1501, 100)
        if exponent_concave:
            return [
                StreamSpec(r, Resolution.P720, 100.0 * (r / 100) ** 0.5)
                for r in rates
            ]
        return [StreamSpec(r, Resolution.P720, float(r)) for r in rates]

    def run():
        outcomes = {}
        for concave in (True, False):
            ladder = ladder_with(concave)
            problem = Problem(
                {"P1": ladder, "P2": ladder},
                {
                    "P1": Bandwidth(5000, 100),
                    "P2": Bandwidth(5000, 100),
                    "V": Bandwidth(100, 1700),
                },
                [
                    Subscription("V", "P1", Resolution.P720),
                    Subscription("V", "P2", Resolution.P720),
                ],
            )
            solution = GsoSolver().solve(problem)
            rates = sorted(
                s.bitrate_kbps
                for s in solution.assignments.get("V", {}).values()
            )
            outcomes[concave] = rates
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_protection",
        [
            f"concave QoE (protected): {outcomes[True]}",
            f"linear QoE (unprotected): {outcomes[False]}",
        ],
    )
    # Concave: both publishers kept at comparable rates.
    assert len(outcomes[True]) == 2
    assert max(outcomes[True]) - min(outcomes[True]) <= 200
    # Linear: winner-takes-most (one big stream, one tiny or none).
    assert (
        len(outcomes[False]) < 2
        or max(outcomes[False]) - min(outcomes[False]) >= 900
    )

@pytest.mark.benchmark(group="ablations")
def test_ablation_probing(benchmark):
    """Pacer probing + send-rate capping vs raw GCC over-estimation.

    Sec. 7: "GCC-like congestion controls tend to over-estimate a link's
    bandwidth for a small stream".  Setup: the publisher's true uplink is
    600 kbps but the controller only needs a ~300 kbps stream (the single
    subscriber caps at 180p).  Without probing, the estimate drifts to the
    validation cap far above the real 600 kbps; with probe bursts the
    excess is tested against the real link and pulled back.
    """

    def run():
        from repro.conference import ClientSpec, MeetingSpec
        from repro.conference.runner import MeetingRunner

        results = {}
        for probing in (True, False):
            spec = MeetingSpec(
                clients=[
                    ClientSpec("pub", 600, 3000),
                    ClientSpec("sub", 3000, 5000, publishes=False),
                ],
                subscriptions=[("sub", "pub", Resolution.P180)],
                mode="gso",
                duration_s=40.0,
                warmup_s=20.0,
            )
            runner = MeetingRunner(spec)
            pub = runner.clients["pub"]
            pub.config.probing_enabled = probing
            runner.sim.run_until(40.0)
            results[probing] = pub.uplink_estimate_kbps()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_probing",
        [
            f"true uplink: 600 kbps (sending ~300 kbps)",
            f"estimate with probing:    {results[True]:.0f} kbps",
            f"estimate without probing: {results[False]:.0f} kbps",
        ],
    )
    # With probing the estimate stays anchored near the true capacity.
    assert results[True] <= 750
    # Without probing it drifts toward the send-rate validation cap.
    assert results[False] >= results[True]


@pytest.mark.benchmark(group="ablations")
def test_ablation_audio_protection(benchmark):
    """The Sec. 7 audio headroom: without it, video eats the audio.

    A viewer on a tight downlink subscribes to two publishers; with the
    protection margin the solver leaves room and voice stays clean, with
    it removed the knapsack fills the whole pipe and audio breaks up.
    """

    def run():
        from repro.conference import ClientSpec, MeetingSpec
        from repro.conference.runner import MeetingRunner

        results = {}
        for protection in (50, 0):
            spec = MeetingSpec(
                clients=[
                    ClientSpec("p1", 3000, 3000),
                    ClientSpec("p2", 3000, 3000),
                    ClientSpec("viewer", 3000, 800, publishes=False),
                ],
                subscriptions=[
                    ("viewer", "p1", Resolution.P360),
                    ("viewer", "p2", Resolution.P360),
                ],
                mode="gso",
                duration_s=40.0,
                warmup_s=15.0,
            )
            runner = MeetingRunner(spec)
            runner.conference.config.audio_protection_kbps = protection
            report = runner.run()
            results[protection] = report.voice_stall["viewer"]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_audio_protection",
        [
            f"voice stall with 50 kbps protection: {results[50]:.2f}",
            f"voice stall without protection:      {results[0]:.2f}",
        ],
    )
    assert results[50] <= results[0]
    assert results[50] < 0.25


@pytest.mark.benchmark(group="ablations")
def test_ablation_kmr_vs_exact_milp(benchmark):
    """KMR's optimality gap against a proven global optimum (HiGHS MILP).

    Beyond the paper: brute force caps at toy sizes, but an exact ILP
    formulation scales far enough to measure the joint-optimality gap of
    the KMR decomposition on realistic meshes.  The observed ~15% gap is
    the price of Step-2's merge-to-minimum rule; the Step-1 objective the
    paper reports as "optimality ~ 1" is solved exactly by the DP.
    """
    import random as _random

    from repro.core import Bandwidth
    from repro.core.constraints import Problem, Subscription
    from repro.core.ladder import paper_ladder
    from repro.core.milp import solve_joint_milp

    def run():
        ladder = paper_ladder()
        rng = _random.Random(33)
        solver = GsoSolver(SolverConfig(granularity_kbps=10))
        rows = []
        for n in (3, 4, 5, 6):
            ratios = []
            for _ in range(5):
                clients = [f"C{k}" for k in range(n)]
                subs = [
                    Subscription(a, b, Resolution.P720)
                    for a in clients
                    for b in clients
                    if a != b and rng.random() < 0.85
                ]
                problem = Problem(
                    {c: ladder for c in clients},
                    {
                        c: Bandwidth(
                            rng.choice([600, 1500, 3000, 5000]),
                            rng.choice([500, 1000, 2000, 4000]),
                        )
                        for c in clients
                    },
                    subs,
                )
                optimal = solve_joint_milp(problem).total_qoe()
                if optimal <= 0:
                    continue
                ratios.append(solver.solve(problem).total_qoe() / optimal)
            rows.append((n, sum(ratios) / len(ratios), min(ratios)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_kmr_vs_milp",
        table(
            ["clients", "mean QoE ratio", "worst"],
            [[n, f"{m:.3f}", f"{w:.3f}"] for n, m, w in rows],
        ),
    )
    for n, mean_ratio, worst in rows:
        assert mean_ratio > 0.75, f"n={n} mean gap too large"
        assert worst > 0.60, f"n={n} worst-case gap too large"
