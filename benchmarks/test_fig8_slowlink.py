"""Fig. 8: the slow-link test matrix across four schemes.

For every Table 2 case, the paper plots normalized framerate, video
quality, and video stall for GSO, Non-GSO, and two commercial
competitors.  Expected shape: GSO handles *every* case (high framerate,
high quality, low stall); the others fail at least some cases.

Runtime note: this is the heaviest bench (the full matrix is 15 cases x 4
schemes of packet-level simulation); it runs each meeting exactly once.
"""

import pytest

from repro.conference.runner import MeetingRunner
from repro.conference.scenarios import (
    affected_views,
    slow_link_cases,
    slow_link_meeting,
)

from _harness import emit, table

SCHEMES = ["gso", "nongso", "competitor1", "competitor2"]


def run_case(case, mode):
    spec = slow_link_meeting(case, mode)
    report = MeetingRunner(spec).run()
    hit = affected_views(case)
    views = [v for v in report.views if hit(v.subscriber, v.publisher)]
    if not views:
        return (0.0, 0.0, 1.0)
    fps = sum(v.framerate for v in views) / len(views)
    quality = sum(v.quality_score for v in views) / len(views)
    stall = sum(v.stall_rate for v in views) / len(views)
    return (fps, quality, stall)


def run_matrix():
    results = {}
    for case in slow_link_cases():
        for mode in SCHEMES:
            results[(case.name, mode)] = run_case(case, mode)
    return results


@pytest.mark.benchmark(group="fig8")
def test_fig8_slow_link_matrix(benchmark):
    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    cases = [c.name for c in slow_link_cases()]
    # Normalize each metric against the best value in its case row, like
    # the paper's normalized axes.
    lines = []
    for metric, index in (("framerate", 0), ("quality", 1), ("stall", 2)):
        rows = []
        for case in cases:
            row = [case]
            peak = max(results[(case, m)][index] for m in SCHEMES) or 1.0
            for mode in SCHEMES:
                value = results[(case, mode)][index]
                if metric == "stall":
                    row.append(f"{value:.2f}")
                else:
                    row.append(f"{value / peak:.2f}")
            rows.append(row)
        lines.append(f"[{metric}]")
        lines.extend(table(["case"] + SCHEMES, rows))
        lines.append("")
    emit("fig8_slowlink", lines)

    # --- Shape assertions ------------------------------------------------
    gso_stalls = [results[(c, "gso")][2] for c in cases]
    # GSO handles every case: stall stays moderate everywhere.
    assert max(gso_stalls) < 0.65, f"GSO fell over: {max(gso_stalls)}"
    # Across the whole matrix GSO accumulates the least stall...
    totals = {m: sum(results[(c, m)][2] for c in cases) for m in SCHEMES}
    assert totals["gso"] == min(totals.values())
    # ...and at least matches the field on framerate and quality.
    fps_totals = {m: sum(results[(c, m)][0] for c in cases) for m in SCHEMES}
    q_totals = {m: sum(results[(c, m)][1] for c in cases) for m in SCHEMES}
    assert fps_totals["gso"] >= 0.95 * max(fps_totals.values())
    assert q_totals["gso"] >= 0.9 * max(q_totals.values())
    # The competitors exhibit failure cases GSO does not (the paper's
    # "cannot handle all cases"): some case where their stall is far worse.
    for comp in ("competitor1", "competitor2"):
        worst_gap = max(
            results[(c, comp)][2] - results[(c, "gso")][2] for c in cases
        )
        assert worst_gap > 0.2, f"{comp} should fail some case badly"
