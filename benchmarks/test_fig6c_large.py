"""Fig. 6c: GSO computation time at large meeting scale.

The paper's tuples (# publishers, # subscribers, # bitrates) go up to
(10, 400, 18); the claim is that the control algorithm "scales linearly
with the number of subscribers and bitrates and quadratically with the
number of publishers", keeping real-time control feasible for meetings
with hundreds of participants.
"""

import time

import pytest

from repro.core.solver import GsoSolver, SolverConfig

from _harness import emit, table
from _problems import fanout_meeting

#: The paper's exact tuples.
TUPLES = [
    (10, 50, 9),
    (10, 50, 18),
    (10, 100, 18),
    (20, 100, 18),
    (10, 200, 18),
    (10, 400, 18),
]

GSO = GsoSolver(SolverConfig(granularity_kbps=25))


def run_sweep():
    rows = []
    for pubs, subs, levels in TUPLES:
        problem = fanout_meeting(pubs, subs, levels, seed=pubs * subs)
        t0 = time.perf_counter()
        solution = GSO.solve(problem)
        elapsed = time.perf_counter() - t0
        solution.validate(problem)
        rows.append((pubs, subs, levels, elapsed))
    return rows


@pytest.mark.benchmark(group="fig6c")
def test_fig6c_large_meetings(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    peak = max(r[3] for r in rows)
    printable = [
        [f"({p} {s} {b})", f"{t * 1000:.1f}ms", f"{t / peak:.3f}"]
        for p, s, b, t in rows
    ]
    emit(
        "fig6c_large",
        table(["(pubs subs bitrates)", "time", "normalized"], printable),
    )
    by_tuple = {(p, s, b): t for p, s, b, t in rows}
    # Real-time feasibility: every tuple solves well inside the 1 s minimum
    # control interval.
    for key, elapsed in by_tuple.items():
        assert elapsed < 1.0, f"{key} took {elapsed:.2f}s"
    # Scaling shape: ~linear in subscribers (4x subs < ~8x time) and
    # super-linear in publishers.
    t_50 = by_tuple[(10, 50, 18)]
    t_400 = by_tuple[(10, 400, 18)]
    assert t_400 < 16 * t_50
    assert by_tuple[(20, 100, 18)] > by_tuple[(10, 100, 18)]
