"""Table 1: the three worked examples of the control algorithm.

Regenerates the paper's "Final solution" columns for all three cases and
benchmarks the solve itself.  Expected: stream-for-stream equality with the
table (this reproduction matches it exactly, including the tie the paper
breaks toward the higher-resolution subscription edge).
"""

import pytest

from repro.core import (
    Bandwidth,
    GsoSolver,
    ProblemBuilder,
    Resolution,
    paper_ladder,
)

from _harness import emit, table

CASES = {
    "case1": {"A": (5000, 1400), "B": (5000, 3000), "C": (5000, 500)},
    "case2": {"A": (5000, 5000), "B": (600, 5000), "C": (5000, 5000)},
    "case3": {"A": (5000, 5000), "B": (600, 700), "C": (5000, 5000)},
}

#: The paper's published final solutions: case -> client -> {res: kbps}.
PAPER_SOLUTIONS = {
    "case1": {
        "A": {Resolution.P720: 1500, Resolution.P360: 400},
        "B": {Resolution.P360: 800, Resolution.P180: 100},
        "C": {Resolution.P360: 800, Resolution.P180: 300},
    },
    "case2": {
        "A": {Resolution.P720: 1500},
        "B": {Resolution.P360: 600},
        "C": {Resolution.P360: 800, Resolution.P180: 300},
    },
    "case3": {
        "A": {Resolution.P720: 1500, Resolution.P360: 400},
        "B": {Resolution.P360: 600},
        "C": {Resolution.P180: 300},
    },
}


def build_problem(bandwidths):
    builder = ProblemBuilder()
    ladder = paper_ladder()
    for client, (up, down) in bandwidths.items():
        builder.add_client(client, Bandwidth(up, down), ladder)
    builder.subscribe("A", "B", Resolution.P360)
    builder.subscribe("A", "C", Resolution.P180)
    builder.subscribe("B", "A", Resolution.P720)
    builder.subscribe("B", "C", Resolution.P360)
    builder.subscribe("C", "B", Resolution.P360)
    builder.subscribe("C", "A", Resolution.P720)
    return builder.build()


def solve_all():
    solver = GsoSolver()
    results = {}
    for case, bandwidths in CASES.items():
        problem = build_problem(bandwidths)
        solution = solver.solve(problem)
        solution.validate(problem)
        results[case] = solution
    return results


@pytest.mark.benchmark(group="table1")
def test_table1_reproduces_paper_solutions(benchmark):
    results = benchmark.pedantic(solve_all, rounds=3, iterations=1)
    rows = []
    for case, solution in results.items():
        for client in ("A", "B", "C"):
            got = {
                res: e.bitrate_kbps
                for res, e in solution.policies.get(client, {}).items()
            }
            expected = PAPER_SOLUTIONS[case][client]
            assert got == expected, f"{case}/{client}: {got} != {expected}"
            rows.append(
                [
                    case,
                    client,
                    got.get(Resolution.P720, ""),
                    got.get(Resolution.P360, ""),
                    got.get(Resolution.P180, ""),
                    "match",
                ]
            )
    emit(
        "table1_cases",
        table(
            ["case", "client", "720P", "360P", "180P", "vs paper"], rows
        ),
    )
