"""Observability overhead: solver wall-clock with instrumentation off/on.

Budget (docs/OBSERVABILITY.md): the disabled path must be free (the
no-op registry costs only guard checks), and the enabled path — metrics
registry + spans + full KMR tracing — must stay within ~5 % of the
uninstrumented solve on a realistic meeting.

Writes ``benchmarks/out/obs_overhead.txt``.
"""

from __future__ import annotations

import time

from _harness import emit
from _problems import mesh_meeting

from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import collect_traces, enabled_registry
from repro.obs.registry import NullRegistry, get_registry, set_registry

#: Workload: a 20-participant full mesh with a 9-rung ladder, solved at
#: the production granularity — big enough that one solve is ~10 ms, so
#: per-call instrumentation costs are measured against real work.
N_CLIENTS = 20
LEVELS = 9
SOLVES_PER_ROUND = 10
ROUNDS = 8


def _one_round(run_once) -> float:
    start = time.perf_counter()
    for _ in range(SOLVES_PER_ROUND):
        run_once()
    return (time.perf_counter() - start) / SOLVES_PER_ROUND


def test_obs_overhead():
    problem = mesh_meeting(N_CLIENTS, LEVELS, seed=7)
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    solve = lambda: solver.solve(problem)  # noqa: E731
    solve()  # warmup: numpy + allocator caches

    # Off/on rounds are interleaved so clock-speed drift and background
    # load hit both sides equally; best-of damps scheduler noise.
    previous = get_registry()
    disabled_s = enabled_s = float("inf")
    try:
        for _ in range(ROUNDS):
            set_registry(NullRegistry())
            disabled_s = min(disabled_s, _one_round(solve))
            with enabled_registry(), collect_traces():
                enabled_s = min(enabled_s, _one_round(solve))
    finally:
        set_registry(previous)

    overhead = (enabled_s - disabled_s) / disabled_s
    lines = [
        f"workload: {N_CLIENTS}-client mesh, {LEVELS} bitrate levels, "
        f"granularity 10 kbps",
        f"rounds: best of {ROUNDS} x {SOLVES_PER_ROUND} solves",
        "",
        f"instrumentation off : {disabled_s * 1000:8.3f} ms/solve",
        f"instrumentation on  : {enabled_s * 1000:8.3f} ms/solve "
        "(registry + spans + KMR trace)",
        f"enabled overhead    : {overhead * 100:+8.2f} %  (budget: <= 5 %)",
        "",
        "disabled-path cost is guard checks only (`registry.enabled` +"
        " no-op span objects); it is the shipping default.",
    ]
    emit("obs_overhead", lines)
    # The committed artifact documents the ~5 % budget; the assertion is
    # looser so a loaded CI machine does not flake the suite.
    assert overhead < 0.25, f"obs overhead {overhead:.1%} exceeds bound"
