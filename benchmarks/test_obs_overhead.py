"""Observability overhead: solver wall-clock with instrumentation off/on.

Budget (docs/OBSERVABILITY.md): the disabled path must be free (the
no-op registry costs only guard checks), and the enabled path — metrics
registry + spans + full KMR tracing, and for the cluster workload the
structured event log + time-series sampling on top — must stay within
~5 % of the uninstrumented run on a realistic meeting.

Writes ``benchmarks/out/obs_overhead.txt`` and
``benchmarks/out/obs_event_overhead.txt``.
"""

from __future__ import annotations

import time

from _harness import emit
from _problems import mesh_meeting

from repro.cluster import ClusterConfig, ControllerCluster
from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import (
    TimeSeriesStore,
    collect_traces,
    enabled_registry,
    record_events,
    record_timeseries,
)
from repro.obs.registry import NullRegistry, get_registry, set_registry

#: Workload: a 20-participant full mesh with a 9-rung ladder, solved at
#: the production granularity — big enough that one solve is ~10 ms, so
#: per-call instrumentation costs are measured against real work.
N_CLIENTS = 20
LEVELS = 9
SOLVES_PER_ROUND = 10
ROUNDS = 8


def _one_round(run_once) -> float:
    start = time.perf_counter()
    for _ in range(SOLVES_PER_ROUND):
        run_once()
    return (time.perf_counter() - start) / SOLVES_PER_ROUND


def test_obs_overhead():
    problem = mesh_meeting(N_CLIENTS, LEVELS, seed=7)
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    solve = lambda: solver.solve(problem)  # noqa: E731
    solve()  # warmup: numpy + allocator caches

    # Off/on rounds are interleaved so clock-speed drift and background
    # load hit both sides equally; best-of damps scheduler noise.
    previous = get_registry()
    disabled_s = enabled_s = float("inf")
    try:
        for _ in range(ROUNDS):
            set_registry(NullRegistry())
            disabled_s = min(disabled_s, _one_round(solve))
            with enabled_registry(), collect_traces():
                enabled_s = min(enabled_s, _one_round(solve))
    finally:
        set_registry(previous)

    overhead = (enabled_s - disabled_s) / disabled_s
    lines = [
        f"workload: {N_CLIENTS}-client mesh, {LEVELS} bitrate levels, "
        f"granularity 10 kbps",
        f"rounds: best of {ROUNDS} x {SOLVES_PER_ROUND} solves",
        "",
        f"instrumentation off : {disabled_s * 1000:8.3f} ms/solve",
        f"instrumentation on  : {enabled_s * 1000:8.3f} ms/solve "
        "(registry + spans + KMR trace)",
        f"enabled overhead    : {overhead * 100:+8.2f} %  (budget: <= 5 %)",
        "",
        "disabled-path cost is guard checks only (`registry.enabled` +"
        " no-op span objects); it is the shipping default.",
    ]
    emit("obs_overhead", lines)
    # The committed artifact documents the ~5 % budget; the assertion is
    # looser so a loaded CI machine does not flake the suite.
    assert overhead < 0.25, f"obs overhead {overhead:.1%} exceeds bound"


# --------------------------------------------------------------------- #
# Event-path overhead (cluster workload)
# --------------------------------------------------------------------- #

EVENT_MEETINGS = 6
EVENT_TICKS = 8
EVENT_ROUNDS = 6


def _cluster_round(telemetry: bool) -> float:
    """One timed submit/tick workload through a fresh cluster.

    ``telemetry=True`` enables the full PR-4 pipeline — registry, event
    log, and per-tick time-series sampling — exactly as the chaos runner
    wires it; ``False`` is the shipping default (everything off).
    """
    cluster = ControllerCluster(
        ClusterConfig(shards=2, cache_capacity=512, pool_workers=0)
    )
    try:
        # The global picture changes every tick (publishers' bandwidth
        # shifts), so ticks do real solve work — the overhead is judged
        # against a production-shaped workload, not pure cache hits.
        meetings = [f"ov-{k}" for k in range(EVENT_MEETINGS)]
        problems = {
            (k, tick): mesh_meeting(8, 6, seed=100 * tick + k)
            for k in range(EVENT_MEETINGS)
            for tick in range(EVENT_TICKS)
        }
        for meeting_id in meetings:
            cluster.register(meeting_id)

        def drive() -> float:
            store = TimeSeriesStore()
            start = time.perf_counter()
            for tick in range(EVENT_TICKS):
                now = float(tick)
                for k, meeting_id in enumerate(meetings):
                    cluster.submit(meeting_id, problems[(k, tick)], now)
                cluster.tick(now)
                if telemetry:
                    store.sample_registry(get_registry(), now)
            return time.perf_counter() - start

        if telemetry:
            with enabled_registry(), record_events(), record_timeseries():
                return drive()
        return drive()
    finally:
        cluster.close()


def test_event_overhead():
    """The event log + store must cost <= budget on the cluster path."""
    previous = get_registry()
    disabled_s = enabled_s = float("inf")
    try:
        _cluster_round(False)  # warmup
        for _ in range(EVENT_ROUNDS):
            set_registry(NullRegistry())
            disabled_s = min(disabled_s, _cluster_round(False))
            enabled_s = min(enabled_s, _cluster_round(True))
    finally:
        set_registry(previous)

    overhead = (enabled_s - disabled_s) / disabled_s
    lines = [
        f"workload: {EVENT_MEETINGS} meetings x {EVENT_TICKS} "
        "submit/tick rounds through a 2-shard cluster",
        f"rounds: best of {EVENT_ROUNDS}",
        "",
        f"telemetry off : {disabled_s * 1000:8.3f} ms/workload",
        f"telemetry on  : {enabled_s * 1000:8.3f} ms/workload "
        "(registry + event log + per-tick store sampling)",
        f"overhead      : {overhead * 100:+8.2f} %  (budget: <= 5 %)",
        "",
        "with no log/store installed the cluster pays one `is None`"
        " check per potential event; that is the shipping default.",
    ]
    emit("obs_event_overhead", lines)
    assert overhead < 0.25, f"event overhead {overhead:.1%} exceeds bound"
