"""Shared helpers for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation:
it runs the experiment, prints the rows/series the paper reports, and
writes the same text into ``benchmarks/out/<name>.txt`` so EXPERIMENTS.md
can reference stable artifacts.

The meeting-level experiments are wrapped in ``benchmark.pedantic(...,
rounds=1)``: pytest-benchmark still records the wall time, but the
(expensive, deterministic) simulation runs exactly once.
"""

from __future__ import annotations

import math
import os
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.obs import names as obs_names
from repro.obs.registry import MetricsRegistry, get_registry

#: Output directory for benchmark artifacts.
OUT_DIR = Path(__file__).parent / "out"

#: The registry every benchmark records into (installed by
#: ``benchmarks/conftest.py`` for the whole pytest session, so per-test
#: timings and all solver/controller metrics aggregate in one place).
BENCH_REGISTRY = MetricsRegistry()


def record_benchmark_timing(name: str, seconds: float) -> None:
    """Record one benchmark's wall clock into the shared registry.

    Called by the autouse fixture in ``benchmarks/conftest.py`` around
    every benchmark test; individual benchmarks may also call it for
    interesting sub-phases.
    """
    BENCH_REGISTRY.histogram(
        obs_names.BENCHMARK_SECONDS, benchmark=name
    ).observe(seconds)


def write_metrics_snapshot(filename: str = "metrics_snapshot.prom") -> Path:
    """Persist the shared registry under ``benchmarks/out/``.

    Merges whatever the currently installed registry collected (usually
    :data:`BENCH_REGISTRY` itself) and writes the Prometheus text view so
    a benchmark run leaves an inspectable metrics artifact next to the
    figure outputs.
    """
    current = get_registry()
    if current.enabled and current is not BENCH_REGISTRY:
        BENCH_REGISTRY.merge(current)
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / filename
    path.write_text(BENCH_REGISTRY.to_prometheus_text())
    return path


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a result block and persist it under benchmarks/out/."""
    text = "\n".join(lines)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n=== {name} ===")
    print(text)
    return text


def table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> List[str]:
    """Format an aligned text table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[k]) for r in cells) for k in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return lines


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def series_stats(
    series: Sequence[Tuple[float, float]], t0: float, t1: float
) -> float:
    """Mean of a (t, value) series restricted to [t0, t1]."""
    window = [v for t, v in series if t0 <= t <= t1]
    return sum(window) / len(window) if window else 0.0
