"""Fig. 9: client CPU utilization, GSO vs non-GSO.

The paper measures Dingtalk's app on a Huawei P30 in three scenarios
(video conferencing, audio conferencing, screen sharing) and finds GSO
adds <1 % sender-side and <2 % receiver-side CPU.  The reproduction uses
the cycle-cost model: the delta comes from GSO's extra fine-grained
encodings (sender) and occasionally higher-resolution received streams
(receiver), minus the encodings GSO *stops* because nobody subscribes.
"""

import pytest

from repro.core.types import Resolution
from repro.media.codec import CpuModel

from _harness import emit, table

CPU = CpuModel()
FPS = 30.0

#: Stream configurations per scenario, derived from a 3-party meeting.
#: GSO: the solver's typical outcome — a capped 720p plus a thumbnail
#: stream actually subscribed to.  Non-GSO: the full coarse template
#: (pushing all layers regardless of subscriptions).
SCENARIOS = {
    "Video": {
        "gso_send": {Resolution.P720: 1200, Resolution.P180: 250},
        "nongso_send": {
            Resolution.P720: 1500,
            Resolution.P360: 600,
            Resolution.P180: 300,
        },
        # Receivers: GSO delivers one better-fitted (higher) stream plus
        # a thumbnail; non-GSO's coarse switch lands both on 360p.
        "gso_recv": [(Resolution.P720, 1000), (Resolution.P180, 250)],
        "nongso_recv": [(Resolution.P360, 600), (Resolution.P360, 600)],
    },
    "Audio": {  # audio is not handled by GSO at all
        "gso_send": {},
        "nongso_send": {},
        "gso_recv": [],
        "nongso_recv": [],
    },
    "Screen": {
        "gso_send": {
            Resolution.P720: 1200,
            Resolution.P180: 200,  # camera thumbnail next to the share
        },
        "nongso_send": {Resolution.P720: 1500, Resolution.P180: 300},
        "gso_recv": [(Resolution.P720, 1200)],
        "nongso_recv": [(Resolution.P720, 1500)],
    },
}

#: Constant non-media app overhead (UI, audio pipeline, network stack).
BASE_UTILIZATION = 0.06
#: Extra control-plane work on a GSO client (SEMB + TMMBR handling).
GSO_CONTROL_OVERHEAD = 0.002


def utilization(send_cfg, recv_list, gso: bool) -> float:
    send = CPU.encode_utilization(send_cfg, FPS)
    recv = sum(
        CPU.decode_frame_mcycles(res, kbps) * FPS / CPU.device_mcycles_per_s
        for res, kbps in recv_list
    )
    total = BASE_UTILIZATION + send + recv
    if gso:
        total += GSO_CONTROL_OVERHEAD
    return total


def run_model():
    rows = []
    for scenario, cfg in SCENARIOS.items():
        gso_send = utilization(cfg["gso_send"], [], gso=True)
        non_send = utilization(cfg["nongso_send"], [], gso=False)
        gso_recv = utilization({}, cfg["gso_recv"], gso=True)
        non_recv = utilization({}, cfg["nongso_recv"], gso=False)
        rows.append((scenario, gso_send, non_send, gso_recv, non_recv))
    return rows


@pytest.mark.benchmark(group="fig9")
def test_fig9_cpu_utilization(benchmark):
    rows = benchmark.pedantic(run_model, rounds=1, iterations=1)
    printable = [
        [
            scenario,
            f"{gs:.1%}",
            f"{ns:.1%}",
            f"{gr:.1%}",
            f"{nr:.1%}",
            f"{gs - ns:+.1%}",
            f"{gr - nr:+.1%}",
        ]
        for scenario, gs, ns, gr, nr in rows
    ]
    emit(
        "fig9_cpu",
        table(
            [
                "scenario",
                "GSO send",
                "NonGSO send",
                "GSO recv",
                "NonGSO recv",
                "send delta",
                "recv delta",
            ],
            printable,
        ),
    )
    by_scenario = {r[0]: r[1:] for r in rows}
    # The paper's claims: sender delta < 1 %, receiver delta < 2 %, audio
    # unaffected.
    for scenario in ("Video", "Screen"):
        gs, ns, gr, nr = by_scenario[scenario]
        assert gs - ns < 0.01, f"{scenario} sender delta too large"
        assert gr - nr < 0.02, f"{scenario} receiver delta too large"
    gs, ns, gr, nr = by_scenario["Audio"]
    assert abs(gs - ns) < 0.005 and abs(gr - nr) < 0.005
    # Utilizations land in the Fig. 9 ballpark (10-40 % on the phone SoC).
    assert 0.05 < by_scenario["Video"][0] < 0.45
