"""Ingress-throughput gate: sustained events/sec with bounded latency.

Drives a 10^5-user SEMB stream (``repro.deploy.ingress_stream``) through
one event-driven ingress plane — ~20k mailboxes and worker coroutines,
backpressure windows, a bounded virtual executor — and gates two things:

* **unconditionally**: the canonical half of the result is
  byte-deterministic across a double run, and virtual p95 decision
  latency stays <= 0.25 s (the interactive envelope the plane paces
  dispatch with);
* **against the committed baseline** (``benchmarks/baselines/
  BENCH_PR8.json``): dispatch throughput in events per wall second may
  not regress more than 15 % after normalizing by the same fixed
  pure-Python calibration workload ``test_perf_gate.py`` uses, so a
  slower CI machine is judged fairly.  Outside CI the comparison only
  prints; ``REPRO_PERF_GATE=1`` arms the hard failure.

Results are written to ``benchmarks/out/BENCH_PR8.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import List

from _harness import OUT_DIR, emit

from repro.deploy.ingress_stream import canonical_digest, run_fleet_ingress

BENCH_SCHEMA = "repro.bench_pr8/v1"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_PR8.json"
RESULT_PATH = OUT_DIR / "BENCH_PR8.json"

#: The committed operating point (regenerate the baseline on change).
SEED = 8
USERS = 100_000

#: Virtual p95 decision latency ceiling — asserted unconditionally (the
#: latency is simulated time, so machine speed cannot excuse it).
LATENCY_SLO_S = 0.25

#: Maximum tolerated relative throughput drop vs the committed baseline.
REGRESSION_BUDGET = 0.15

#: Calibration ratio clamp.  Asymmetric on purpose: a slower machine
#: (ratio > 1) lowers the throughput floor fairly, but a calibration
#: that reads *faster* than the baseline never raises it — calibration
#: jitter on a shared runner must not tighten a wall-clock gate.
CALIBRATION_CLAMP = (1.0, 4.0)


def _calibrate(rounds: int = 5, iterations: int = 200_000) -> float:
    """Best-of wall time of a fixed pure-Python workload."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for k in range(iterations):
            acc += k * k % 7
        best = min(best, time.perf_counter() - start)
    return best


def _compare(result: dict, baseline: dict) -> List[str]:
    """Gate comparisons; returns a list of failure descriptions."""
    failures: List[str] = []
    lo, hi = CALIBRATION_CLAMP
    ratio = result["calibration_s"] / baseline["calibration_s"]
    ratio = min(max(ratio, lo), hi)

    base_eps = baseline["wall"]["events_per_sec"]
    floor = base_eps / ratio * (1.0 - REGRESSION_BUDGET)
    current = result["wall"]["events_per_sec"]
    if current < floor:
        failures.append(
            f"events_per_sec {current:.0f} < floor {floor:.0f} "
            f"(baseline {base_eps:.0f}, calibration ratio {ratio:.2f})"
        )
    return failures


#: Wall-clock repetitions; the gate judges the fastest (least-noisy) one.
ROUNDS = 3


def test_ingress_throughput():
    calibration_s = _calibrate()
    runs = [run_fleet_ingress(SEED, users=USERS) for _ in range(ROUNDS)]
    first = runs[0]
    for replay in runs[1:]:
        assert canonical_digest(first) == canonical_digest(replay), (
            "fleet ingress canonical result is not deterministic "
            "across runs"
        )
    # Report the fastest run (every canonical half agrees byte-for-byte).
    wall = min((r["wall"] for r in runs), key=lambda w: w["elapsed_s"])
    canonical = first["canonical"]
    result = {
        "schema": BENCH_SCHEMA,
        "calibration_s": round(calibration_s, 6),
        "canonical_digest": canonical_digest(first),
        "canonical": canonical,
        "wall": {
            "elapsed_s": round(wall["elapsed_s"], 4),
            "events_per_sec": round(wall["events_per_sec"], 1),
            "decisions_per_sec": round(wall["decisions_per_sec"], 1),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    latency = canonical["latency"]
    lines = [
        f"fleet ingress: {canonical['users']} users / "
        f"{canonical['meetings']} meetings, {canonical['events']} SEMB "
        f"events over {canonical['config']['duration_s']} s virtual "
        f"(seed {canonical['seed']})",
        f"calibration        : {calibration_s * 1000:8.3f} ms "
        "(fixed pure-Python workload, best of 5)",
        f"dispatch           : {result['wall']['events_per_sec']:10.1f} "
        f"events/s  ({result['wall']['decisions_per_sec']:.1f} "
        f"decisions/s, wall {result['wall']['elapsed_s']:.3f} s)",
        f"decisions          : {canonical['decisions']} "
        f"(coalesced {canonical['coalesced']}, shed {canonical['shed']}, "
        f"evicted {canonical['evicted']}, "
        f"max depth {canonical['max_mailbox_depth']})",
        f"virtual latency    : p50={latency['p50_s']:.4f} s  "
        f"p95={latency['p95_s']:.4f} s  max={latency['max_s']:.4f} s  "
        f"(SLO p95 <= {LATENCY_SLO_S} s)",
        f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)}",
    ]

    if not BASELINE_PATH.exists():
        lines.append("no committed baseline — comparison skipped")
        emit("ingress_throughput", lines)
        assert latency["p95_s"] <= LATENCY_SLO_S, (
            f"virtual p95 decision latency {latency['p95_s']} s exceeds "
            f"the {LATENCY_SLO_S} s envelope"
        )
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = _compare(result, baseline)
    if result["canonical_digest"] != baseline["canonical_digest"]:
        lines.append(
            "NOTE: canonical digest differs from the committed baseline "
            "— the model is deterministic, so regenerate "
            "benchmarks/baselines/BENCH_PR8.json if the stream or plane "
            "changed intentionally"
        )
    lines.append(
        "gate: " + ("FAIL — " + "; ".join(failures) if failures else "PASS")
    )
    emit("ingress_throughput", lines)

    assert latency["p95_s"] <= LATENCY_SLO_S, (
        f"virtual p95 decision latency {latency['p95_s']} s exceeds "
        f"the {LATENCY_SLO_S} s envelope"
    )
    if failures and os.environ.get("REPRO_PERF_GATE") == "1":
        raise AssertionError(
            "ingress throughput gate failed: " + "; ".join(failures)
        )
