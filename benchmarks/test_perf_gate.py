"""Perf-regression gate: three fixed workloads vs a committed baseline.

Runs the same deterministic workloads every time:

1. **solver_mesh** — solve-latency distribution (p50/p95) over a fixed
   set of full-mesh problems (the Fig. 6 workload shape);
2. **cluster_cache** — the fingerprint-cache hit rate of a repeated
   submit/tick workload through the controller cluster (deterministic);
3. **chaos_events** — a full chaos run (``bandwidth_collapse`` seed 1)
   with the telemetry pipeline enabled; writes the sample event log to
   ``benchmarks/out/sample_events.jsonl`` and records the event digest.

Results are written canonically to ``benchmarks/out/BENCH_PR4.json`` and
compared against the committed baseline in
``benchmarks/baselines/BENCH_PR4.json``:

* solve-latency p95 may not regress more than 15 % (after normalizing by
  the calibration workload, so a slower CI machine does not false-fail);
* the cache hit rate may not drop more than 15 % relative;
* the event digest is compared informationally (it changes whenever the
  event vocabulary or the runner's schedule changes — regenerate the
  baseline alongside such changes).

Outside CI the comparison only prints; the hard failure is armed by
``REPRO_PERF_GATE=1`` (set in the dedicated ``perf-gate`` CI job).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

from _harness import OUT_DIR, emit
from _problems import mesh_meeting

from repro.chaos import ChaosConfig, ChaosRunner, get_scenario
from repro.cluster import ClusterConfig, ControllerCluster
from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import enabled_registry, record_timeseries
from repro.obs.tracing import assemble_trees

#: v2: chaos_events carries the trace digest and per-stage critical-path
#: latency attribution (p95 per stage), used for the failure diff.
BENCH_SCHEMA = "repro.bench_pr4/v2"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_PR4.json"
RESULT_PATH = OUT_DIR / "BENCH_PR4.json"
SAMPLE_EVENTS_PATH = OUT_DIR / "sample_events.jsonl"

#: Maximum tolerated relative regression on the gated measures.
REGRESSION_BUDGET = 0.15

#: Calibration ratios outside this band are treated as measurement noise.
CALIBRATION_CLAMP = (0.25, 4.0)


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (same rule as the obs histograms)."""
    ordered = sorted(values)
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def _calibrate(rounds: int = 5, iterations: int = 200_000) -> float:
    """Best-of wall time of a fixed pure-Python workload.

    The committed baseline carries the recording machine's calibration;
    the gate scales latency budgets by the ratio so a slower (or faster)
    CI machine is judged fairly.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for k in range(iterations):
            acc += k * k % 7
        best = min(best, time.perf_counter() - start)
    return best


def _solver_mesh() -> Dict[str, object]:
    """Workload 1: solve-latency p50/p95 over fixed mesh problems.

    Each problem's latency is its best-of-rounds wall time — scheduler
    noise only ever adds time, so the minimum is the stable estimate of
    the solve cost, while an algorithmic regression moves every round.
    The percentiles are then taken across the problem sizes.
    """
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    sizes = (6, 8, 10, 12, 14, 16)
    problems = [mesh_meeting(n, 9, seed=3) for n in sizes]
    for problem in problems:  # warmup: numpy + allocator caches
        solver.solve(problem)
    rounds = 5
    samples: List[float] = []
    for problem in problems:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            solver.solve(problem)
            best = min(best, time.perf_counter() - start)
        samples.append(best)
    return {
        "solves": len(problems) * rounds,
        "p50_ms": round(_percentile(samples, 50.0) * 1000, 4),
        "p95_ms": round(_percentile(samples, 95.0) * 1000, 4),
    }


def _cluster_cache() -> Dict[str, object]:
    """Workload 2: fingerprint-cache hit rate (fully deterministic)."""
    cluster = ControllerCluster(
        ClusterConfig(shards=2, cache_capacity=1024, pool_workers=0)
    )
    try:
        # Eight meetings sharing four distinct pictures: resubmissions of
        # an already-solved picture must come back from the cache.
        meetings = [
            (f"bench-{k}", mesh_meeting(6, 6, seed=10 + k % 4))
            for k in range(8)
        ]
        for meeting_id, _ in meetings:
            cluster.register(meeting_id)
        serves = 0
        for tick in range(12):
            now = float(tick)
            for meeting_id, problem in meetings:
                cluster.submit(meeting_id, problem, now)
            serves += len(cluster.tick(now))
        stats = cluster.stats()["cache"]
    finally:
        cluster.close()
    return {
        "serves": serves,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": round(stats["hit_rate"], 6),
    }


def _chaos_events() -> Dict[str, object]:
    """Workload 3: full chaos run with the telemetry pipeline enabled.

    Also assembles the trace plane and records per-stage critical-path
    p95 latencies (virtual clock) — the attribution the gate's failure
    output diffs against the baseline.  Attribution exactness (stage
    durations sum to each decision's end-to-end latency) is asserted
    unconditionally here, on the fixed gate workload.
    """
    config = ChaosConfig(seed=1, meetings=4, duration_s=10.0, shards=2)
    scenario = get_scenario("bandwidth_collapse")
    runner = ChaosRunner(
        config, scenario.build(1, config), scenario=scenario.name
    )
    start = time.perf_counter()
    with enabled_registry(), record_timeseries():
        report = runner.run()
    wall_s = time.perf_counter() - start
    runner.events.write_jsonl(SAMPLE_EVENTS_PATH)

    traces = assemble_trees(runner.events.events)
    for tree in traces.trees():
        attributed = sum(tree.stage_durations().values())
        assert abs(attributed - tree.latency_s) < 1e-9, (
            f"critical-path attribution not exact for {tree.cid}: "
            f"stages sum to {attributed} but latency is {tree.latency_s}"
        )
    stages: Dict[str, Dict[str, float]] = {}
    for stage, samples in traces.stage_latencies().items():
        durations = sorted(d for (_, d) in samples)
        stages[stage] = {
            "count": len(durations),
            "p95_ms": round(_percentile(durations, 95.0) * 1000, 4),
        }
    return {
        "events": runner.events.emitted,
        "event_digest": runner.events.digest(),
        "trace_digest": traces.digest(),
        "stages": stages,
        "slo_ok": report.slo_ok,
        "ok": report.ok,
        "wall_s": round(wall_s, 4),
    }


def _stage_diff(result: dict, baseline: dict) -> str:
    """Per-stage attribution diff vs the baseline, worst regression first.

    Names the stage whose p95 grew the most — the gate's failure output
    points at *where* the time went instead of a bare end-to-end number.
    """
    current = result["workloads"]["chaos_events"].get("stages", {})
    base = baseline["workloads"]["chaos_events"].get("stages", {})
    if not current or not base:
        return "stage attribution unavailable (regenerate the baseline)"
    rows = []
    for stage in sorted(set(current) | set(base)):
        cur_p95 = float(current.get(stage, {}).get("p95_ms", 0.0))
        base_p95 = float(base.get(stage, {}).get("p95_ms", 0.0))
        delta = cur_p95 - base_p95
        rows.append((delta, stage, base_p95, cur_p95))
    rows.sort(reverse=True)
    worst_delta, worst_stage, _, _ = rows[0]
    parts = [
        f"{stage}: {base_p95:.3f} -> {cur_p95:.3f} ms ({delta:+.3f})"
        for delta, stage, base_p95, cur_p95 in rows
    ]
    verdict = (
        f"worst-regressed stage: {worst_stage} ({worst_delta:+.3f} ms p95)"
        if worst_delta > 0
        else "no stage regressed (end-to-end change is outside the "
             "traced pipeline)"
    )
    return verdict + "; " + "; ".join(parts)


def _compare(result: dict, baseline: dict) -> List[str]:
    """Gate comparisons; returns a list of failure descriptions."""
    failures: List[str] = []
    lo, hi = CALIBRATION_CLAMP
    ratio = result["calibration_s"] / baseline["calibration_s"]
    ratio = min(max(ratio, lo), hi)

    base_p95 = baseline["workloads"]["solver_mesh"]["p95_ms"]
    allowed_p95 = base_p95 * ratio * (1.0 + REGRESSION_BUDGET)
    current_p95 = result["workloads"]["solver_mesh"]["p95_ms"]
    if current_p95 > allowed_p95:
        failures.append(
            f"solver_mesh p95 {current_p95:.3f} ms > allowed "
            f"{allowed_p95:.3f} ms (baseline {base_p95:.3f} ms, "
            f"calibration ratio {ratio:.2f}); "
            f"stage attribution: {_stage_diff(result, baseline)}"
        )

    base_hit = baseline["workloads"]["cluster_cache"]["hit_rate"]
    floor_hit = base_hit * (1.0 - REGRESSION_BUDGET)
    current_hit = result["workloads"]["cluster_cache"]["hit_rate"]
    if current_hit < floor_hit:
        failures.append(
            f"cluster_cache hit_rate {current_hit:.4f} < floor "
            f"{floor_hit:.4f} (baseline {base_hit:.4f})"
        )
    return failures


def test_perf_gate():
    calibration_s = _calibrate()
    result = {
        "schema": BENCH_SCHEMA,
        "calibration_s": round(calibration_s, 6),
        "workloads": {
            "solver_mesh": _solver_mesh(),
            "cluster_cache": _cluster_cache(),
            "chaos_events": _chaos_events(),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    solver = result["workloads"]["solver_mesh"]
    cache = result["workloads"]["cluster_cache"]
    chaos = result["workloads"]["chaos_events"]
    lines = [
        f"calibration        : {calibration_s * 1000:8.3f} ms "
        "(fixed pure-Python workload, best of 5)",
        f"solver_mesh        : p50={solver['p50_ms']:.3f} ms  "
        f"p95={solver['p95_ms']:.3f} ms  ({solver['solves']} solves)",
        f"cluster_cache      : hit_rate={cache['hit_rate']:.4f}  "
        f"({cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['serves']} serves)",
        f"chaos_events       : {chaos['events']} events  "
        f"digest={chaos['event_digest'][:16]}  wall={chaos['wall_s']:.3f} s",
        "stage p95 (virtual): " + "  ".join(
            f"{stage}={info['p95_ms']:.1f}ms"
            for stage, info in sorted(chaos["stages"].items())
        ) + f"  trace_digest={chaos['trace_digest'][:16]}",
        f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)} and "
        f"{SAMPLE_EVENTS_PATH.relative_to(OUT_DIR.parent)}",
    ]

    if not BASELINE_PATH.exists():
        lines.append("no committed baseline — comparison skipped")
        emit("perf_gate", lines)
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = _compare(result, baseline)
    base_digest = baseline["workloads"]["chaos_events"]["event_digest"]
    if chaos["event_digest"] != base_digest:
        lines.append(
            "NOTE: event digest differs from baseline "
            f"({base_digest[:16]} -> {chaos['event_digest'][:16]}) — "
            "regenerate benchmarks/baselines/BENCH_PR4.json if the event "
            "vocabulary or runner schedule changed intentionally"
        )
    lines.append(
        "gate: " + ("FAIL — " + "; ".join(failures) if failures else "PASS")
    )
    emit("perf_gate", lines)

    if failures and os.environ.get("REPRO_PERF_GATE") == "1":
        raise AssertionError("perf gate failed: " + "; ".join(failures))
