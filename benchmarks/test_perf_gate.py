"""Perf-regression gate: three fixed workloads vs a committed baseline.

Runs the same deterministic workloads every time:

1. **solver_mesh** — solve-latency distribution (p50/p95) over a fixed
   set of full-mesh problems (the Fig. 6 workload shape);
2. **cluster_cache** — the fingerprint-cache hit rate of a repeated
   submit/tick workload through the controller cluster (deterministic);
3. **chaos_events** — a full chaos run (``bandwidth_collapse`` seed 1)
   with the telemetry pipeline enabled; writes the sample event log to
   ``benchmarks/out/sample_events.jsonl`` and records the event digest.

Results are written canonically to ``benchmarks/out/BENCH_PR4.json`` and
compared against the committed baseline in
``benchmarks/baselines/BENCH_PR4.json``:

* solve-latency p95 may not regress more than 15 % (after normalizing by
  the calibration workload, so a slower CI machine does not false-fail);
* the cache hit rate may not drop more than 15 % relative;
* the event digest is compared informationally (it changes whenever the
  event vocabulary or the runner's schedule changes — regenerate the
  baseline alongside such changes).

Outside CI the comparison only prints; the hard failure is armed by
``REPRO_PERF_GATE=1`` (set in the dedicated ``perf-gate`` CI job).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

from _harness import OUT_DIR, emit
from _problems import mesh_meeting

from repro.chaos import ChaosConfig, ChaosRunner, get_scenario
from repro.cluster import ClusterConfig, ControllerCluster
from repro.core.solver import GsoSolver, SolverConfig
from repro.obs import enabled_registry, record_timeseries

BENCH_SCHEMA = "repro.bench_pr4/v1"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_PR4.json"
RESULT_PATH = OUT_DIR / "BENCH_PR4.json"
SAMPLE_EVENTS_PATH = OUT_DIR / "sample_events.jsonl"

#: Maximum tolerated relative regression on the gated measures.
REGRESSION_BUDGET = 0.15

#: Calibration ratios outside this band are treated as measurement noise.
CALIBRATION_CLAMP = (0.25, 4.0)


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (same rule as the obs histograms)."""
    ordered = sorted(values)
    rank = max(1, int(round(p / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def _calibrate(rounds: int = 5, iterations: int = 200_000) -> float:
    """Best-of wall time of a fixed pure-Python workload.

    The committed baseline carries the recording machine's calibration;
    the gate scales latency budgets by the ratio so a slower (or faster)
    CI machine is judged fairly.
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for k in range(iterations):
            acc += k * k % 7
        best = min(best, time.perf_counter() - start)
    return best


def _solver_mesh() -> Dict[str, object]:
    """Workload 1: solve-latency p50/p95 over fixed mesh problems.

    Each problem's latency is its best-of-rounds wall time — scheduler
    noise only ever adds time, so the minimum is the stable estimate of
    the solve cost, while an algorithmic regression moves every round.
    The percentiles are then taken across the problem sizes.
    """
    solver = GsoSolver(SolverConfig(granularity_kbps=10))
    sizes = (6, 8, 10, 12, 14, 16)
    problems = [mesh_meeting(n, 9, seed=3) for n in sizes]
    for problem in problems:  # warmup: numpy + allocator caches
        solver.solve(problem)
    rounds = 5
    samples: List[float] = []
    for problem in problems:
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            solver.solve(problem)
            best = min(best, time.perf_counter() - start)
        samples.append(best)
    return {
        "solves": len(problems) * rounds,
        "p50_ms": round(_percentile(samples, 50.0) * 1000, 4),
        "p95_ms": round(_percentile(samples, 95.0) * 1000, 4),
    }


def _cluster_cache() -> Dict[str, object]:
    """Workload 2: fingerprint-cache hit rate (fully deterministic)."""
    cluster = ControllerCluster(
        ClusterConfig(shards=2, cache_capacity=1024, pool_workers=0)
    )
    try:
        # Eight meetings sharing four distinct pictures: resubmissions of
        # an already-solved picture must come back from the cache.
        meetings = [
            (f"bench-{k}", mesh_meeting(6, 6, seed=10 + k % 4))
            for k in range(8)
        ]
        for meeting_id, _ in meetings:
            cluster.register(meeting_id)
        serves = 0
        for tick in range(12):
            now = float(tick)
            for meeting_id, problem in meetings:
                cluster.submit(meeting_id, problem, now)
            serves += len(cluster.tick(now))
        stats = cluster.stats()["cache"]
    finally:
        cluster.close()
    return {
        "serves": serves,
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_rate": round(stats["hit_rate"], 6),
    }


def _chaos_events() -> Dict[str, object]:
    """Workload 3: full chaos run with the telemetry pipeline enabled."""
    config = ChaosConfig(seed=1, meetings=4, duration_s=10.0, shards=2)
    scenario = get_scenario("bandwidth_collapse")
    runner = ChaosRunner(
        config, scenario.build(1, config), scenario=scenario.name
    )
    start = time.perf_counter()
    with enabled_registry(), record_timeseries():
        report = runner.run()
    wall_s = time.perf_counter() - start
    runner.events.write_jsonl(SAMPLE_EVENTS_PATH)
    return {
        "events": runner.events.emitted,
        "event_digest": runner.events.digest(),
        "slo_ok": report.slo_ok,
        "ok": report.ok,
        "wall_s": round(wall_s, 4),
    }


def _compare(result: dict, baseline: dict) -> List[str]:
    """Gate comparisons; returns a list of failure descriptions."""
    failures: List[str] = []
    lo, hi = CALIBRATION_CLAMP
    ratio = result["calibration_s"] / baseline["calibration_s"]
    ratio = min(max(ratio, lo), hi)

    base_p95 = baseline["workloads"]["solver_mesh"]["p95_ms"]
    allowed_p95 = base_p95 * ratio * (1.0 + REGRESSION_BUDGET)
    current_p95 = result["workloads"]["solver_mesh"]["p95_ms"]
    if current_p95 > allowed_p95:
        failures.append(
            f"solver_mesh p95 {current_p95:.3f} ms > allowed "
            f"{allowed_p95:.3f} ms (baseline {base_p95:.3f} ms, "
            f"calibration ratio {ratio:.2f})"
        )

    base_hit = baseline["workloads"]["cluster_cache"]["hit_rate"]
    floor_hit = base_hit * (1.0 - REGRESSION_BUDGET)
    current_hit = result["workloads"]["cluster_cache"]["hit_rate"]
    if current_hit < floor_hit:
        failures.append(
            f"cluster_cache hit_rate {current_hit:.4f} < floor "
            f"{floor_hit:.4f} (baseline {base_hit:.4f})"
        )
    return failures


def test_perf_gate():
    calibration_s = _calibrate()
    result = {
        "schema": BENCH_SCHEMA,
        "calibration_s": round(calibration_s, 6),
        "workloads": {
            "solver_mesh": _solver_mesh(),
            "cluster_cache": _cluster_cache(),
            "chaos_events": _chaos_events(),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )

    solver = result["workloads"]["solver_mesh"]
    cache = result["workloads"]["cluster_cache"]
    chaos = result["workloads"]["chaos_events"]
    lines = [
        f"calibration        : {calibration_s * 1000:8.3f} ms "
        "(fixed pure-Python workload, best of 5)",
        f"solver_mesh        : p50={solver['p50_ms']:.3f} ms  "
        f"p95={solver['p95_ms']:.3f} ms  ({solver['solves']} solves)",
        f"cluster_cache      : hit_rate={cache['hit_rate']:.4f}  "
        f"({cache['hits']} hits / {cache['misses']} misses, "
        f"{cache['serves']} serves)",
        f"chaos_events       : {chaos['events']} events  "
        f"digest={chaos['event_digest'][:16]}  wall={chaos['wall_s']:.3f} s",
        f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)} and "
        f"{SAMPLE_EVENTS_PATH.relative_to(OUT_DIR.parent)}",
    ]

    if not BASELINE_PATH.exists():
        lines.append("no committed baseline — comparison skipped")
        emit("perf_gate", lines)
        return

    baseline = json.loads(BASELINE_PATH.read_text())
    failures = _compare(result, baseline)
    base_digest = baseline["workloads"]["chaos_events"]["event_digest"]
    if chaos["event_digest"] != base_digest:
        lines.append(
            "NOTE: event digest differs from baseline "
            f"({base_digest[:16]} -> {chaos['event_digest'][:16]}) — "
            "regenerate benchmarks/baselines/BENCH_PR4.json if the event "
            "vocabulary or runner schedule changed intentionally"
        )
    lines.append(
        "gate: " + ("FAIL — " + "; ".join(failures) if failures else "PASS")
    )
    emit("perf_gate", lines)

    if failures and os.environ.get("REPRO_PERF_GATE") == "1":
        raise AssertionError("perf gate failed: " + "; ".join(failures))
