"""Incremental solve-engine + MCKP kernel speedup benchmarks (PR 5/6).

Three workloads, all byte-equivalence-enforced on every solve:

1. **fig6c_gallery** — one Fig. 6c-style gallery meeting (400
   subscribers x 18 bitrates, tight publisher uplinks forcing a
   multi-iteration KMR run) solved once with ``incremental=False`` and
   once with the engine.  Floor: >= 3x.
2. **fig12_rounds** — the Fig. 12 repeated-round shape: one controller
   round per bandwidth report, where each round changes a single
   subscriber's downlink by one granularity step.  The whole-problem
   fingerprint misses every round; the per-subscriber instance cache
   must carry the load.  Floor: >= 1.5x.
3. **cold_kernel** — a meeting where every subscriber's MCKP instance is
   distinct (no dedup, no cache hit): the pure cold cache-miss path,
   solved once per kernel with a cleared process cache.  Measures the
   array kernel + batched entry point against the pure-Python oracle.
   Floor: >= 10x.

Results go to ``benchmarks/out/solver_speedup.txt`` plus
``benchmarks/out/BENCH_PR5.json`` (engine workloads) and
``benchmarks/out/BENCH_PR6.json`` (kernel workload); CI compares the
speedups against the committed baselines in ``benchmarks/baselines/``
(hard failure armed by ``REPRO_PERF_GATE=1``, same protocol as the PR4
gate).  The floors are asserted unconditionally — equivalence and the
speedup targets are correctness criteria, not regression telemetry.
"""

from __future__ import annotations

import json
import os
import pickle
import time
from pathlib import Path
from typing import Dict, List

from _harness import OUT_DIR, emit
from _problems import cold_miss_meeting, gallery_meeting

from repro.core.constraints import Bandwidth, Problem
from repro.core.engine import default_mckp_cache
from repro.core.solver import GsoSolver, SolverConfig

BENCH_SCHEMA = "repro.bench_pr5/v1"
BASELINE_PATH = Path(__file__).parent / "baselines" / "BENCH_PR5.json"
RESULT_PATH = OUT_DIR / "BENCH_PR5.json"

BENCH6_SCHEMA = "repro.bench_pr6/v1"
BASELINE6_PATH = Path(__file__).parent / "baselines" / "BENCH_PR6.json"
RESULT6_PATH = OUT_DIR / "BENCH_PR6.json"

#: Hard speedup floors (acceptance criteria, asserted every run).
GALLERY_FLOOR = 3.0
ROUNDS_FLOOR = 1.5
KERNEL_FLOOR = 10.0

#: Maximum tolerated relative speedup regression vs the baseline.
REGRESSION_BUDGET = 0.15

GRANULARITY = 25


def _solve(problem: Problem, incremental: bool):
    cfg = SolverConfig(
        granularity_kbps=GRANULARITY, incremental=incremental
    )
    start = time.perf_counter()
    solution, stats = GsoSolver(cfg).solve_with_stats(problem)
    return solution, stats, time.perf_counter() - start


def _fig6c_gallery() -> Dict[str, object]:
    """Workload 1: one large multi-iteration gallery solve."""
    make = lambda: gallery_meeting(12, 400, 18, seed=6)
    default_mckp_cache().clear()
    base_sol, base_stats, base_s = _solve(make(), incremental=False)
    engine_sol, engine_stats, engine_s = _solve(make(), incremental=True)
    assert pickle.dumps(engine_sol) == pickle.dumps(base_sol), (
        "engine solution diverged from the incremental=False baseline"
    )
    assert base_stats.iterations == engine_stats.iterations
    return {
        "subscribers": 400,
        "iterations": base_stats.iterations,
        "base_s": round(base_s, 4),
        "engine_s": round(engine_s, 4),
        "speedup": round(base_s / engine_s, 2),
        "deduped": engine_stats.engine.deduped,
        "cache_hits": engine_stats.engine.cache_hits,
        "cache_misses": engine_stats.engine.cache_misses,
        "step1_skipped": engine_stats.engine.step1_skipped,
    }


def _rounds_problems(rounds: int) -> List[Problem]:
    """The Fig. 12 report stream: one single-subscriber downlink delta
    per round (one granularity step, so the subscriber's own MCKP
    instance — and the whole-problem fingerprint — genuinely change)."""
    problems = []
    for r in range(rounds):
        base = gallery_meeting(10, 120, 12, seed=8)
        bandwidth = dict(base.bandwidth)
        touched = f"S{r % 120}"
        old = bandwidth[touched]
        bandwidth[touched] = Bandwidth(
            old.uplink_kbps, old.downlink_kbps + GRANULARITY * (r + 1)
        )
        problems.append(
            Problem(base.feasible_streams, bandwidth, base.subscriptions)
        )
    return problems


def _fig12_rounds() -> Dict[str, object]:
    """Workload 2: repeated controller rounds with small deltas."""
    rounds = 6
    base_s = 0.0
    base_solutions = []
    for problem in _rounds_problems(rounds):
        sol, _, elapsed = _solve(problem, incremental=False)
        base_solutions.append(sol)
        base_s += elapsed

    default_mckp_cache().clear()
    engine_s = 0.0
    hits = misses = 0
    for k, problem in enumerate(_rounds_problems(rounds)):
        sol, stats, elapsed = _solve(problem, incremental=True)
        engine_s += elapsed
        hits += stats.engine.cache_hits
        misses += stats.engine.cache_misses
        assert pickle.dumps(sol) == pickle.dumps(base_solutions[k]), (
            f"engine solution diverged on round {k}"
        )
    return {
        "rounds": rounds,
        "base_s": round(base_s, 4),
        "engine_s": round(engine_s, 4),
        "speedup": round(base_s / engine_s, 2),
        "cache_hits": hits,
        "cache_misses": misses,
    }


def _cold_kernel() -> Dict[str, object]:
    """Workload 3: every instance a cold cache miss, one solve per kernel."""
    make = lambda: cold_miss_meeting(12, 400, 18, seed=9)

    def solve_with_kernel(kernel: str):
        default_mckp_cache().clear()
        cfg = SolverConfig(granularity_kbps=GRANULARITY, kernel=kernel)
        start = time.perf_counter()
        solution, stats = GsoSolver(cfg).solve_with_stats(make())
        return solution, stats, time.perf_counter() - start

    py_sol, py_stats, py_s = solve_with_kernel("python")
    np_sol, np_stats, np_s = solve_with_kernel("numpy")
    assert pickle.dumps(np_sol) == pickle.dumps(py_sol), (
        "numpy kernel solution diverged from the python oracle"
    )
    assert np_stats.engine.cache_hits == 0, "workload is not cold"
    assert np_stats.engine.deduped == 0, "workload is not dedup-free"
    assert np_stats.engine.batched_solves == np_stats.engine.cache_misses
    return {
        "subscribers": 400,
        "instances": np_stats.engine.cache_misses,
        "batches": np_stats.engine.batches,
        "python_s": round(py_s, 4),
        "numpy_s": round(np_s, 4),
        "speedup": round(py_s / np_s, 2),
    }


def _compare(
    result: dict, baseline: dict, workloads: tuple
) -> List[str]:
    """Baseline comparison; returns failure descriptions."""
    failures: List[str] = []
    for name in workloads:
        base = baseline["workloads"][name]["speedup"]
        floor = base * (1.0 - REGRESSION_BUDGET)
        current = result["workloads"][name]["speedup"]
        if current < floor:
            failures.append(
                f"{name} speedup {current:.2f}x < floor {floor:.2f}x "
                f"(baseline {base:.2f}x)"
            )
    return failures


def test_solver_speedup():
    gallery = _fig6c_gallery()
    rounds = _fig12_rounds()
    kernel = _cold_kernel()
    result = {
        "schema": BENCH_SCHEMA,
        "granularity_kbps": GRANULARITY,
        "workloads": {"fig6c_gallery": gallery, "fig12_rounds": rounds},
    }
    result6 = {
        "schema": BENCH6_SCHEMA,
        "granularity_kbps": GRANULARITY,
        "workloads": {"cold_kernel": kernel},
    }
    OUT_DIR.mkdir(exist_ok=True)
    RESULT_PATH.write_text(
        json.dumps(result, indent=2, sort_keys=True) + "\n"
    )
    RESULT6_PATH.write_text(
        json.dumps(result6, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"fig6c_gallery  : {gallery['base_s']:.3f} s -> "
        f"{gallery['engine_s']:.3f} s  = {gallery['speedup']:.2f}x  "
        f"(floor {GALLERY_FLOOR:.1f}x; {gallery['iterations']} iterations, "
        f"{gallery['deduped']} deduped, {gallery['step1_skipped']} "
        f"dirty-set skips, {gallery['cache_hits']} cache hits)",
        f"fig12_rounds   : {rounds['base_s']:.3f} s -> "
        f"{rounds['engine_s']:.3f} s  = {rounds['speedup']:.2f}x  "
        f"(floor {ROUNDS_FLOOR:.1f}x; {rounds['rounds']} rounds, "
        f"{rounds['cache_hits']} cache hits / "
        f"{rounds['cache_misses']} misses)",
        f"cold_kernel    : {kernel['python_s']:.3f} s -> "
        f"{kernel['numpy_s']:.3f} s  = {kernel['speedup']:.2f}x  "
        f"(floor {KERNEL_FLOOR:.1f}x; {kernel['instances']} cold instances "
        f"in {kernel['batches']} batch(es), python kernel vs numpy kernel)",
        "equivalence    : every engine solution pickle-identical to the "
        "incremental=False baseline; numpy kernel pickle-identical to "
        "the python oracle",
        f"wrote {RESULT_PATH.relative_to(OUT_DIR.parent)} and "
        f"{RESULT6_PATH.relative_to(OUT_DIR.parent)}",
    ]

    failures: List[str] = []
    gates = [
        (BASELINE_PATH, result, ("fig6c_gallery", "fig12_rounds")),
        (BASELINE6_PATH, result6, ("cold_kernel",)),
    ]
    compared = False
    for baseline_path, current, workloads in gates:
        if baseline_path.exists():
            compared = True
            baseline = json.loads(baseline_path.read_text())
            failures.extend(_compare(current, baseline, workloads))
    if compared:
        lines.append(
            "gate: "
            + ("FAIL — " + "; ".join(failures) if failures else "PASS")
        )
    else:
        lines.append("no committed baseline — comparison skipped")
    emit("solver_speedup", lines)
    if failures and os.environ.get("REPRO_PERF_GATE") == "1":
        raise AssertionError(
            "solver speedup gate failed: " + "; ".join(failures)
        )

    assert gallery["speedup"] >= GALLERY_FLOOR, (
        f"fig6c_gallery speedup {gallery['speedup']:.2f}x "
        f"below the {GALLERY_FLOOR:.1f}x floor"
    )
    assert rounds["speedup"] >= ROUNDS_FLOOR, (
        f"fig12_rounds speedup {rounds['speedup']:.2f}x "
        f"below the {ROUNDS_FLOOR:.1f}x floor"
    )
    assert kernel["speedup"] >= KERNEL_FLOOR, (
        f"cold_kernel speedup {kernel['speedup']:.2f}x "
        f"below the {KERNEL_FLOOR:.1f}x floor"
    )
