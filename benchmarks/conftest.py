"""Benchmark-session observability: every benchmark records its timings
through the shared metrics registry (``_harness.BENCH_REGISTRY``).

The session fixture installs the registry process-wide so all solver /
controller / fleet instrumentation inside the benchmarks lands in one
place; the autouse per-test fixture wall-clocks each benchmark into the
``repro_benchmark_seconds{benchmark=...}`` histogram.  At session end the
aggregate snapshot is written to ``benchmarks/out/metrics_snapshot.prom``.
"""

from __future__ import annotations

import time

import pytest

from repro.obs.registry import get_registry, set_registry

import _harness


@pytest.fixture(scope="session", autouse=True)
def _obs_registry_session():
    previous = get_registry()
    set_registry(_harness.BENCH_REGISTRY)
    yield
    set_registry(previous)
    _harness.write_metrics_snapshot()


@pytest.fixture(autouse=True)
def _obs_benchmark_timer(request):
    start = time.perf_counter()
    yield
    _harness.record_benchmark_timing(
        request.node.name, time.perf_counter() - start
    )
