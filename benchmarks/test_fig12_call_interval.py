"""Fig. 12: CDF of the controller's call interval.

The deployment statistics: minimum 1 s, maximum 3 s, mean ~1.8 s.  Two
sources regenerate the distribution:

* the analytic/process model (:class:`repro.deploy.IntervalProcess`) at
  fleet scale;
* the *actual* controller runtime inside a packet-level meeting whose
  links fluctuate, cross-checking that the implemented trigger policy
  produces intervals inside the same envelope.
"""

import random

import pytest

from repro.conference import ClientSpec, MeetingSpec
from repro.conference.runner import MeetingRunner
from repro.deploy import IntervalProcess, empirical_cdf
from repro.net.trace import BandwidthStep, BandwidthTrace

from _harness import emit, table


def run_process():
    process = IntervalProcess()
    rng = random.Random(12)
    samples = process.sample_many(50_000, rng)
    return process, samples


def run_live_meeting():
    """A meeting with a fluctuating downlink: real controller intervals."""
    steps = [
        BandwidthStep(t, kbps)
        for t, kbps in zip(
            range(5, 115, 5),
            [1800, 900, 2400, 700, 2000, 1100, 2600, 800, 1900, 1000,
             2500, 750, 2100, 950, 2300, 850, 1700, 1200, 2200, 900,
             2400, 800],
        )
    ]
    spec = MeetingSpec(
        clients=[
            ClientSpec("pub", 5000, 5000),
            ClientSpec(
                "sub",
                5000,
                2500,
                publishes=False,
                downlink_trace=BandwidthTrace(steps),
            ),
        ],
        mode="gso",
        duration_s=115.0,
        warmup_s=5.0,
    )
    report = MeetingRunner(spec).run()
    return report.call_intervals


@pytest.mark.benchmark(group="fig12")
def test_fig12_call_interval_cdf(benchmark):
    (process, samples), live = benchmark.pedantic(
        lambda: (run_process(), run_live_meeting()), rounds=1, iterations=1
    )
    cdf_points = [1.0, 1.2, 1.5, 1.8, 2.1, 2.5, 2.9, 3.0]
    rows = [
        [f"{t:.1f}s", f"{process.cdf(t):.3f}"]
        for t in cdf_points
    ]
    mean_sampled = sum(samples) / len(samples)
    emit(
        "fig12_call_interval",
        table(["t", "CDF"], rows)
        + [
            "",
            f"process mean: {process.mean():.2f}s (paper: ~1.8s)",
            f"sampled mean: {mean_sampled:.2f}s over {len(samples)} draws",
            f"live-meeting intervals: n={len(live)}, "
            f"mean={sum(live)/len(live):.2f}s, "
            f"min={min(live):.2f}s, max={max(live):.2f}s",
        ],
    )
    # Envelope: [1 s, 3 s] everywhere, in both sources.
    assert min(samples) >= 1.0 and max(samples) <= 3.0
    assert min(live) >= 1.0 - 1e-6 and max(live) <= 3.0 + 1e-6
    # Means near the deployment's 1.8 s.
    assert abs(process.mean() - 1.8) < 0.2
    assert 1.0 <= sum(live) / len(live) <= 3.0
    # CDF edges.
    assert process.cdf(0.99) == 0.0
    assert process.cdf(3.0) == 1.0