"""Controller-cluster solve service: fingerprint cache + pool speedup.

The cluster re-solves every hosted meeting each 1–3 s (Fig. 12), and most
rounds see an unchanged global picture — exactly the workload the
fingerprint cache targets.  This benchmark pushes a repeated-structure
workload (M distinct meetings × T control rounds) through
``ControllerCluster.solve_conference`` twice — cache off, then cache on —
verifies both runs return byte-identical solutions, and reports the
speedup (budget: >= 1.3x).  A pool-backed cache-off run is timed too, to
show what process-parallel cache misses cost/buy on this host.

Writes ``benchmarks/out/cluster_speedup.txt``.
"""

from __future__ import annotations

import pickle
import time

from _harness import emit
from _problems import mesh_meeting

from repro.cluster import ClusterConfig, ControllerCluster

#: Workload: distinct small meshes (different seeds), re-solved over
#: several control rounds — per-round repetition is what production's
#: periodic re-solve loop produces.
N_MEETINGS = 12
N_CLIENTS = 8
LEVELS = 9
ROUNDS = 6

#: Speedup budget for the cached run over the uncached run.
MIN_SPEEDUP = 1.3


def _workload():
    return [
        (f"meeting-{i}", mesh_meeting(N_CLIENTS, LEVELS, seed=100 + i))
        for i in range(N_MEETINGS)
    ]


def _run(config: ClusterConfig):
    """Solve the full workload; returns (seconds, solutions, cluster stats)."""
    problems = _workload()
    outputs = []
    with ControllerCluster(config) as cluster:
        start = time.perf_counter()
        for _ in range(ROUNDS):
            for meeting_id, problem in problems:
                outputs.append(cluster.solve_conference(meeting_id, problem))
        elapsed = time.perf_counter() - start
        stats = cluster.stats()
    return elapsed, outputs, stats


def test_cluster_cache_speedup():
    base_s, base_out, _ = _run(ClusterConfig(shards=4, cache_capacity=0))
    cached_s, cached_out, cached_stats = _run(ClusterConfig(shards=4))
    pool_s, pool_out, _ = _run(
        ClusterConfig(shards=4, cache_capacity=0, pool_workers=2)
    )

    # Caching and pooling must not change a single byte of any solution.
    assert [pickle.dumps(s) for s in base_out] == [
        pickle.dumps(s) for s in cached_out
    ]
    assert [pickle.dumps(s) for s in base_out] == [
        pickle.dumps(s) for s in pool_out
    ]

    cache = cached_stats["cache"]
    assert cache["misses"] == N_MEETINGS  # one solve per distinct structure
    assert cache["hits"] == N_MEETINGS * (ROUNDS - 1)

    speedup = base_s / cached_s
    solves = N_MEETINGS * ROUNDS
    lines = [
        f"workload: {N_MEETINGS} meetings x {ROUNDS} rounds "
        f"({N_CLIENTS}-client meshes, {LEVELS} bitrate levels, "
        f"granularity 25 kbps)",
        "",
        f"cache off           : {base_s * 1000:9.1f} ms  "
        f"({base_s * 1000 / solves:6.2f} ms/solve)",
        f"cache on            : {cached_s * 1000:9.1f} ms  "
        f"({cached_s * 1000 / solves:6.2f} ms/solve, "
        f"hit rate {cache['hit_rate']:.0%})",
        f"cache off + pool(2) : {pool_s * 1000:9.1f} ms  "
        f"({pool_s * 1000 / solves:6.2f} ms/solve)",
        "",
        f"cache speedup       : {speedup:9.2f}x  (budget: >= {MIN_SPEEDUP}x)",
        "",
        "all three runs returned byte-identical solutions for every",
        "(meeting, round); the cache's fingerprint key is exactly as",
        "coarse as the solver's own granularity blindness, so a hit is a",
        "legal replay, not an approximation.",
    ]
    emit("cluster_speedup", lines)
    assert speedup >= MIN_SPEEDUP, (
        f"cache speedup {speedup:.2f}x under budget {MIN_SPEEDUP}x"
    )
