"""Problem generators for the Fig. 6 algorithm benchmarks."""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.core.constraints import Bandwidth, Problem, Subscription
from repro.core.ladder import qoe_utility
from repro.core.types import PAPER_RESOLUTIONS, Resolution, StreamSpec


def ladder_with_levels(total_levels: int) -> List[StreamSpec]:
    """A ladder with ``total_levels`` rungs spread over the paper's three
    resolutions (matching Fig. 6b's "number of bitrate levels" axis)."""
    ranges = {
        Resolution.P720: (900, 1500),
        Resolution.P360: (400, 800),
        Resolution.P180: (100, 300),
    }
    per_res = {res: total_levels // 3 for res in PAPER_RESOLUTIONS}
    for k in range(total_levels % 3):
        per_res[PAPER_RESOLUTIONS[k]] += 1
    used = set()
    streams: List[StreamSpec] = []
    for res in PAPER_RESOLUTIONS:
        n = per_res[res]
        if n == 0:
            continue
        lo, hi = ranges[res]
        rates = (
            [hi]
            if n == 1
            else [round(lo + k * (hi - lo) / (n - 1)) for k in range(n)]
        )
        for rate in rates:
            while rate in used:
                rate -= 1
            used.add(rate)
            streams.append(StreamSpec(rate, res, qoe_utility(rate)))
    return streams


def mesh_meeting(
    n_clients: int,
    total_levels: int,
    seed: int = 1,
) -> Problem:
    """A symmetric full-mesh meeting (Fig. 6a/6b workload)."""
    rng = random.Random(seed)
    ladder = ladder_with_levels(total_levels)
    clients = [f"C{k}" for k in range(n_clients)]
    bandwidth = {
        c: Bandwidth(
            uplink_kbps=rng.choice([1200, 2500, 5000]),
            downlink_kbps=rng.choice([800, 1500, 3000, 6000]),
        )
        for c in clients
    }
    subs = [
        Subscription(a, b, Resolution.P720)
        for a in clients
        for b in clients
        if a != b
    ]
    return Problem({c: ladder for c in clients}, bandwidth, subs)


def fanout_meeting(
    n_publishers: int,
    n_subscribers: int,
    total_levels: int,
    seed: int = 1,
) -> Problem:
    """Disjoint publishers/subscribers (Fig. 6c's (pubs, subs, bitrates)
    tuples): every subscriber follows every publisher."""
    rng = random.Random(seed)
    ladder = ladder_with_levels(total_levels)
    pubs = [f"P{k}" for k in range(n_publishers)]
    subs = [f"S{k}" for k in range(n_subscribers)]
    bandwidth = {}
    for p in pubs:
        bandwidth[p] = Bandwidth(rng.choice([2000, 3500, 5000]), 500)
    for s in subs:
        bandwidth[s] = Bandwidth(500, rng.choice([1000, 2000, 4000, 8000]))
    edges = [
        Subscription(s, p, Resolution.P720) for s in subs for p in pubs
    ]
    return Problem({p: ladder for p in pubs}, bandwidth, edges)


def gallery_meeting(
    n_publishers: int,
    n_subscribers: int,
    total_levels: int,
    seed: int = 1,
) -> Problem:
    """A Fig. 6c-style gallery view with constrained uplinks.

    Every subscriber follows every publisher; subscriber downlinks come
    from a handful of plan tiers, so Step-1 MCKP instances repeat heavily
    within one iteration (the dedup workload).  Publisher uplinks are
    tight enough that many publishers cannot carry their top rung, so the
    KMR loop runs one reduction per overloaded publisher — a genuinely
    multi-iteration solve (the dirty-set workload).
    """
    rng = random.Random(seed)
    ladder = ladder_with_levels(total_levels)
    pubs = [f"P{k}" for k in range(n_publishers)]
    subs = [f"S{k}" for k in range(n_subscribers)]
    bandwidth = {}
    for p in pubs:
        bandwidth[p] = Bandwidth(rng.choice([700, 850, 1100]), 500)
    for s in subs:
        downlink = rng.choice([8_000, 16_000, 24_000, 40_000])
        bandwidth[s] = Bandwidth(500, downlink)
    edges = [
        Subscription(s, p, Resolution.P720) for s in subs for p in pubs
    ]
    return Problem({p: ladder for p in pubs}, bandwidth, edges)


def cold_miss_meeting(
    n_publishers: int,
    n_subscribers: int,
    total_levels: int,
    seed: int = 1,
    spacing_kbps: int = 37,
) -> Problem:
    """A gallery where every subscriber's MCKP instance is distinct.

    Downlinks strictly increase by ``spacing_kbps`` per subscriber, so at
    any DP granularity below the spacing every subscriber lands in its
    own capacity bucket: no intra-step dedup, no instance-cache hit — a
    pure cold cache-miss workload that measures raw kernel throughput.
    Publisher uplinks are generous, so the KMR loop converges without
    reductions and the measurement is one knapsack step over
    ``n_subscribers`` distinct DP instances.
    """
    rng = random.Random(seed)
    ladder = ladder_with_levels(total_levels)
    pubs = [f"P{k}" for k in range(n_publishers)]
    subs = [f"S{k}" for k in range(n_subscribers)]
    bandwidth = {}
    for p in pubs:
        bandwidth[p] = Bandwidth(rng.choice([8000, 10_000, 12_000]), 500)
    for k, s in enumerate(subs):
        bandwidth[s] = Bandwidth(500, 2_000 + spacing_kbps * k)
    edges = [
        Subscription(s, p, Resolution.P720) for s in subs for p in pubs
    ]
    return Problem({p: ladder for p in pubs}, bandwidth, edges)


def breakout_meeting(
    n_rooms: int,
    room_size: int,
    total_levels: int,
    seed: int = 1,
) -> Problem:
    """Breakout rooms plus one global speaker: partial followership.

    Every client publishes and follows only its own room's publishers
    plus the shared speaker.  A reduction inside one room dirties only
    that room's subscribers, so the incremental solver's dirty set is a
    small fraction of the meeting — the workload where dirty-set Step 1
    dominates the other cache layers.
    """
    rng = random.Random(seed)
    ladder = ladder_with_levels(total_levels)
    speaker = "SPK"
    bandwidth = {speaker: Bandwidth(2500, 1000)}
    feasible = {speaker: ladder}
    edges: List[Subscription] = []
    for r in range(n_rooms):
        members = [f"R{r}_{k}" for k in range(room_size)]
        for m in members:
            feasible[m] = ladder
            bandwidth[m] = Bandwidth(
                uplink_kbps=rng.choice([700, 900, 1400]),
                downlink_kbps=rng.choice([2000, 4000, 8000]),
            )
        for a in members:
            edges.append(Subscription(a, speaker, Resolution.P720))
            for b in members:
                if a != b:
                    edges.append(Subscription(a, b, Resolution.P720))
    return Problem(feasible, bandwidth, edges)
