"""Media plane substrate: sources, codec model, playback, accessing nodes."""

from .audio import (
    AUDIO_BITRATE_KBPS,
    AudioReceiver,
    AudioSender,
    VOICE_STALL_LOSS_THRESHOLD,
)
from .codec import (
    CpuModel,
    EncodedFrame,
    KEYFRAME_SIZE_FACTOR,
    MTU_PAYLOAD_BYTES,
    SimulcastEncoder,
    packetize,
)
from .jitter_buffer import (
    PlaybackMetrics,
    STALL_GAP_S,
    VideoJitterBuffer,
    compute_playback_metrics,
)
from .sfu import AccessingNode, is_rtcp
from .source import SourceConfig, VideoSource

__all__ = [
    "AUDIO_BITRATE_KBPS",
    "AccessingNode",
    "AudioReceiver",
    "AudioSender",
    "CpuModel",
    "EncodedFrame",
    "KEYFRAME_SIZE_FACTOR",
    "MTU_PAYLOAD_BYTES",
    "PlaybackMetrics",
    "STALL_GAP_S",
    "SimulcastEncoder",
    "SourceConfig",
    "VOICE_STALL_LOSS_THRESHOLD",
    "VideoJitterBuffer",
    "VideoSource",
    "compute_playback_metrics",
    "is_rtcp",
    "packetize",
]
