"""Receiver-side playback model: frame assembly, stalls, framerate.

The quality metrics of the paper's evaluation are *receiver-side playback*
metrics:

* **video stall** — "the percentage of video playback intervals, in which
  the maximum delay between two consecutive frames is larger than 200 ms"
  (footnote 9);
* **framerate** — delivered (rendered) frames per second.

:class:`VideoJitterBuffer` reassembles RTP packets into frames per SSRC run
(packets of one frame share a timestamp; the marker bit ends the frame),
declares frames lost when their packets never complete within the playout
deadline, and records render times; :class:`PlaybackMetrics` turns render
times into the paper's interval metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..rtp.packet import RtpPacket, seq_distance

#: The paper's stall threshold: >200 ms between consecutive rendered frames.
STALL_GAP_S = 0.200

#: Metric accounting interval (playback intervals of 1 s).
INTERVAL_S = 1.0


@dataclass
class _PendingFrame:
    """A frame being reassembled from its RTP packets."""

    timestamp: int
    first_arrival_s: float
    seqs: Set[int] = field(default_factory=set)
    marker_seq: Optional[int] = None
    min_seq: Optional[int] = None
    bytes_received: int = 0

    def add(self, packet: RtpPacket, now_s: float) -> None:
        """Account one packet into the frame under reassembly."""
        self.seqs.add(packet.seq)
        self.bytes_received += len(packet.payload)
        if packet.marker:
            self.marker_seq = packet.seq
        if self.min_seq is None or seq_distance(packet.seq, self.min_seq) < 2**15:
            if self.min_seq is None or seq_distance(self.min_seq, packet.seq) > 2**15:
                self.min_seq = packet.seq

    def is_complete(self) -> bool:
        """Complete when the marker arrived and no seq holes remain."""
        if self.marker_seq is None or self.min_seq is None:
            return False
        span = seq_distance(self.min_seq, self.marker_seq) + 1
        return len(self.seqs) >= span


class VideoJitterBuffer:
    """Frame reassembly and render-time tracking for one received stream.

    Frames render on an *adaptive playout schedule*: each frame targets
    ``capture_time + playout_offset`` where the offset tracks observed
    end-to-end lateness (completion time minus capture time) — growing
    immediately when frames arrive later than the current offset and
    decaying slowly when the path calms down.  This is how real de-jitter
    buffers convert path jitter into constant added latency instead of
    render gaps.  Incomplete frames are abandoned once the loss deadline
    passes, matching a real-time decoder skipping forward.

    Args:
        playout_delay_s: minimum playout offset (de-jitter floor).
        loss_deadline_s: how long an incomplete frame may block newer ones.
        max_playout_s: ceiling on the adaptive offset (interactivity cap).
    """

    #: Safety margin added above observed lateness.
    _OFFSET_MARGIN_S = 0.02
    #: Multiplicative decay of the offset per rendered frame.
    _OFFSET_DECAY = 0.998

    def __init__(
        self,
        playout_delay_s: float = 0.05,
        loss_deadline_s: float = 0.45,
        max_playout_s: float = 0.6,
    ) -> None:
        self.playout_delay_s = playout_delay_s
        self.loss_deadline_s = loss_deadline_s
        self.max_playout_s = max_playout_s
        self._pending: Dict[int, _PendingFrame] = {}
        self.render_times: List[float] = []
        self.rendered_bytes = 0
        self.frames_lost = 0
        self._last_rendered_ts: Optional[int] = None
        self._playout_offset_s = playout_delay_s

    def on_packet(self, packet: RtpPacket, now_s: float) -> Optional[float]:
        """Feed one RTP packet.

        Returns:
            The render time if this packet completed a frame, else None.
        """
        if self._last_rendered_ts is not None:
            behind = (self._last_rendered_ts - packet.timestamp) % 2**32
            if behind < 2**31 and (
                behind > 0 or packet.timestamp == self._last_rendered_ts
            ):
                # Late packet of an already-skipped frame, or a duplicate /
                # retransmission of the frame just rendered.
                return None
        self._expire_stale(now_s, except_ts=packet.timestamp)
        frame = self._pending.get(packet.timestamp)
        if frame is None:
            frame = _PendingFrame(packet.timestamp, first_arrival_s=now_s)
            self._pending[packet.timestamp] = frame
        frame.add(packet, now_s)
        if not frame.is_complete():
            return None
        # Adapt the playout offset from this frame's end-to-end lateness
        # (completion time relative to its RTP capture timestamp).
        capture_s = packet.timestamp / 90_000.0
        lateness = now_s - capture_s
        if 0 <= lateness <= self.max_playout_s:
            wanted = lateness + self._OFFSET_MARGIN_S
            if wanted > self._playout_offset_s:
                self._playout_offset_s = wanted
            else:
                self._playout_offset_s = max(
                    self.playout_delay_s,
                    self._playout_offset_s * self._OFFSET_DECAY,
                )
            render_time = max(now_s, capture_s + self._playout_offset_s)
        else:
            # Timestamp wrapped or frame arrived absurdly late: render now.
            render_time = max(
                now_s, frame.first_arrival_s + self.playout_delay_s
            )
        self._render(frame, render_time)
        return render_time

    def _render(self, frame: _PendingFrame, render_time: float) -> None:
        self._pending.pop(frame.timestamp, None)
        self.render_times.append(render_time)
        self.rendered_bytes += frame.bytes_received
        self._last_rendered_ts = frame.timestamp
        # Any older pending frame was skipped over.
        for ts in list(self._pending):
            if (frame.timestamp - ts) % 2**32 < 2**31 and ts != frame.timestamp:
                del self._pending[ts]
                self.frames_lost += 1

    def _expire_stale(self, now_s: float, except_ts: Optional[int] = None) -> None:
        for ts in list(self._pending):
            if ts == except_ts:
                continue
            if now_s - self._pending[ts].first_arrival_s > self.loss_deadline_s:
                del self._pending[ts]
                self.frames_lost += 1


@dataclass
class PlaybackMetrics:
    """Interval metrics computed from render times (the paper's footnotes).

    Attributes:
        duration_s: length of the observation window.
        rendered_frames: frames rendered in the window.
        stall_intervals: 1 s intervals containing a >200 ms render gap.
        total_intervals: 1 s intervals in the window.
    """

    duration_s: float
    rendered_frames: int
    stall_intervals: int
    total_intervals: int
    rendered_kbps: float

    @property
    def framerate(self) -> float:
        """Rendered frames per second over the window."""
        if self.duration_s <= 0:
            return 0.0
        return self.rendered_frames / self.duration_s

    @property
    def stall_rate(self) -> float:
        """Fraction of playback intervals that contained a stall."""
        if self.total_intervals == 0:
            return 0.0
        return self.stall_intervals / self.total_intervals


def compute_playback_metrics(
    render_times: List[float],
    window_start_s: float,
    window_end_s: float,
    rendered_bytes: int = 0,
    stall_gap_s: float = STALL_GAP_S,
    interval_s: float = INTERVAL_S,
) -> PlaybackMetrics:
    """Turn render timestamps into the paper's stall/framerate metrics.

    A playback interval [k, k+1) stalls if the maximum gap between
    consecutive renders *overlapping the interval* exceeds ``stall_gap_s``.
    A window with zero renders counts every interval as stalled.
    """
    duration = max(0.0, window_end_s - window_start_s)
    times = sorted(t for t in render_times if window_start_s <= t <= window_end_s)
    n_intervals = max(1, int(round(duration / interval_s)))
    if not times:
        return PlaybackMetrics(
            duration_s=duration,
            rendered_frames=0,
            stall_intervals=n_intervals,
            total_intervals=n_intervals,
            rendered_kbps=0.0,
        )
    # Build gap spans: (gap_start, gap_end) including window edges.
    spans: List[Tuple[float, float]] = []
    prev = window_start_s
    for t in times:
        spans.append((prev, t))
        prev = t
    spans.append((prev, window_end_s))
    stalled = 0
    for k in range(n_intervals):
        lo = window_start_s + k * interval_s
        hi = lo + interval_s
        worst = 0.0
        for start, end in spans:
            if end <= lo or start >= hi:
                continue
            worst = max(worst, end - start)
        if worst > stall_gap_s:
            stalled += 1
    kbps = rendered_bytes * 8.0 / duration / 1000.0 if duration > 0 else 0.0
    return PlaybackMetrics(
        duration_s=duration,
        rendered_frames=len(times),
        stall_intervals=stalled,
        total_intervals=n_intervals,
        rendered_kbps=kbps,
    )
