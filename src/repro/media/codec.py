"""Synthetic simulcast encoder and its CPU cost model.

The GSO controller never touches pixels: what matters is that a publisher
emits one RTP stream per configured resolution at the configured bitrate,
with keyframes, packetization, and a CPU cost that scales with the encoding
work.  This module provides exactly that:

* :class:`SimulcastEncoder` — turns source frame ticks into
  :class:`EncodedFrame` objects per active encoding, sized so the stream
  averages its target bitrate (keyframes cost a configurable multiple);
* :func:`packetize` — splits a frame into MTU-sized RTP packets with
  shared timestamp and a marker on the last packet (RFC 3550 video
  convention);
* :class:`CpuModel` — per-frame encode/decode cycle costs by resolution
  and bitrate, used to reproduce Fig. 9's CPU comparison.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..core.types import Resolution
from ..rtp.packet import VIDEO_CLOCK_HZ, RtpPacket

#: Maximum RTP payload bytes per packet (typical 1200-byte MTU budget).
MTU_PAYLOAD_BYTES = 1200

#: A keyframe is this many times larger than a delta frame.  Real-time
#: encoders constrain keyframe sizes on constrained links; 4x matches a
#: rate-controlled H.264 intra frame better than an unconstrained one.
KEYFRAME_SIZE_FACTOR = 4.0


@dataclass(frozen=True)
class EncodedFrame:
    """One encoded video frame of one simulcast encoding."""

    resolution: Resolution
    frame_index: int
    size_bytes: int
    is_keyframe: bool
    capture_time_s: float


@dataclass
class EncoderStats:
    """Accumulated encoder-side accounting."""

    frames_encoded: int = 0
    bytes_encoded: int = 0
    keyframes: int = 0


class SimulcastEncoder:
    """Parallel encodings of one source, reconfigurable at runtime.

    The active configuration is a mapping resolution -> target kbps; GSO
    feedback (TMMBR) rewrites it via :meth:`configure`.  Frame sizes are
    deterministic: delta frames are sized so that, with the periodic
    keyframes included, the long-run average rate equals the target.

    Args:
        fps: source frame cadence (frame sizes derive from it).
        keyframe_interval_s: keyframe period per encoding.
    """

    def __init__(self, fps: float = 30.0, keyframe_interval_s: float = 4.0) -> None:
        if fps <= 0:
            raise ValueError("fps must be positive")
        if keyframe_interval_s <= 0:
            raise ValueError("keyframe interval must be positive")
        self.fps = fps
        self.keyframe_interval_frames = max(1, round(keyframe_interval_s * fps))
        self._targets: Dict[Resolution, int] = {}
        self._frames_since_key: Dict[Resolution, int] = {}
        self._forced_key: set = set()
        self.stats = EncoderStats()

    # ------------------------------------------------------------------ #
    # Configuration (the TMMBR execution point)
    # ------------------------------------------------------------------ #

    def configure(self, targets: Mapping[Resolution, int]) -> None:
        """Set the active encodings; resolutions absent are stopped.

        A target of 0 kbps also stops that encoding (the TMMBR
        zero-mantissa convention).  Keyframe cadences of concurrent
        encodings are phase-staggered so their 6x-sized keyframes never
        land on the same frame tick (which would burst the uplink).
        """
        new_targets = {
            res: kbps for res, kbps in targets.items() if kbps > 0
        }
        for res in new_targets:
            if res not in self._targets:
                # A newly (re)started encoding leads with a keyframe, then
                # settles onto a per-resolution phase offset.
                self._forced_key.add(res)
                stagger = (
                    sorted(new_targets).index(res)
                    * self.keyframe_interval_frames
                    // max(1, len(new_targets))
                )
                self._frames_since_key[res] = stagger
        for res in list(self._frames_since_key):
            if res not in new_targets:
                del self._frames_since_key[res]
                self._forced_key.discard(res)
        self._targets = new_targets

    def set_bitrate(self, resolution: Resolution, kbps: int) -> None:
        """Adjust (or stop, with 0) a single encoding."""
        targets = dict(self._targets)
        if kbps > 0:
            targets[resolution] = kbps
        else:
            targets.pop(resolution, None)
        self.configure(targets)

    @property
    def active_encodings(self) -> Dict[Resolution, int]:
        """The current resolution -> kbps configuration."""
        return dict(self._targets)

    @property
    def total_target_kbps(self) -> int:
        """Sum of all active encodings' target bitrates."""
        return sum(self._targets.values())

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    def delta_frame_bytes(self, kbps: int) -> int:
        """Size of a delta frame such that the stream averages ``kbps``.

        With one keyframe (K x larger) every N frames the average frame
        carries ``(N - 1 + K) / N`` delta-frame budgets, so delta frames
        shrink accordingly.
        """
        n = self.keyframe_interval_frames
        bytes_per_frame_avg = kbps * 1000.0 / 8.0 / self.fps
        return max(1, round(bytes_per_frame_avg * n / (n - 1 + KEYFRAME_SIZE_FACTOR)))

    def encode(self, frame_index: int, now_s: float) -> List[EncodedFrame]:
        """Encode one source tick into frames for every active encoding."""
        frames: List[EncodedFrame] = []
        for res in sorted(self._targets, reverse=True):
            kbps = self._targets[res]
            since = self._frames_since_key.get(res, 0) + 1
            is_key = (
                since >= self.keyframe_interval_frames
                or res in self._forced_key
            )
            self._forced_key.discard(res)
            self._frames_since_key[res] = 0 if is_key else since
            base = self.delta_frame_bytes(kbps)
            size = round(base * KEYFRAME_SIZE_FACTOR) if is_key else base
            frames.append(
                EncodedFrame(
                    resolution=res,
                    frame_index=frame_index,
                    size_bytes=size,
                    is_keyframe=is_key,
                    capture_time_s=now_s,
                )
            )
            self.stats.frames_encoded += 1
            self.stats.bytes_encoded += size
            if is_key:
                self.stats.keyframes += 1
        return frames

    def request_keyframe(self, resolution: Resolution) -> None:
        """Force the next frame of one encoding to be a keyframe (used by
        the SFU when switching a subscriber onto this stream)."""
        if resolution in self._targets:
            self._forced_key.add(resolution)


def packetize(
    frame: EncodedFrame,
    ssrc: int,
    seq_start: int,
    payload_type: int = 96,
) -> List[RtpPacket]:
    """Split an encoded frame into RTP packets.

    All packets share the frame's RTP timestamp (90 kHz clock); the last
    packet carries the marker bit.  Payload bytes are synthetic zeros of
    the right length — receivers account sizes, not content.
    """
    timestamp = int(frame.capture_time_s * VIDEO_CLOCK_HZ) % 2**32
    remaining = frame.size_bytes
    packets: List[RtpPacket] = []
    seq = seq_start
    while remaining > 0:
        chunk = min(remaining, MTU_PAYLOAD_BYTES)
        remaining -= chunk
        packets.append(
            RtpPacket(
                ssrc=ssrc,
                seq=seq % 2**16,
                timestamp=timestamp,
                payload_type=payload_type,
                marker=(remaining == 0),
                payload=bytes(chunk),
            )
        )
        seq += 1
    return packets


@dataclass(frozen=True)
class CpuModel:
    """Per-frame CPU cost model (mega-cycles), reproducing Fig. 9's units.

    Encoding cost grows with pixel count and mildly with bitrate; decoding
    costs a fraction of encoding.  The absolute scale is calibrated so a
    single 720p30 encode lands near the ~15 % utilization a Huawei-P30-
    class SoC exhibits; only the GSO-vs-non-GSO *delta* matters for the
    reproduction.
    """

    #: Mega-cycles to encode one 720p delta frame at the reference bitrate.
    encode_ref_mcycles: float = 6.0
    #: Decode cost relative to encode cost at equal resolution.
    decode_ratio: float = 0.35
    #: Extra encode cost per doubling of bitrate over the reference.
    bitrate_exponent: float = 0.20
    #: Reference bitrate for the 720p encode cost.
    ref_kbps: float = 1500.0
    #: Device budget in mega-cycles per second (a mid-range mobile SoC).
    device_mcycles_per_s: float = 2_000.0

    def encode_frame_mcycles(self, resolution: Resolution, kbps: float) -> float:
        """Mega-cycles to encode one frame at (resolution, kbps)."""
        pixel_scale = resolution.pixels / Resolution.P720.pixels
        rate_scale = max(kbps / self.ref_kbps, 0.05) ** self.bitrate_exponent
        return self.encode_ref_mcycles * pixel_scale * rate_scale

    def decode_frame_mcycles(self, resolution: Resolution, kbps: float) -> float:
        """Mega-cycles to decode one frame at (resolution, kbps)."""
        return self.decode_ratio * self.encode_frame_mcycles(resolution, kbps)

    def encode_utilization(
        self, encodings: Mapping[Resolution, int], fps: float
    ) -> float:
        """Fraction of the device budget spent encoding ``encodings``."""
        per_second = sum(
            self.encode_frame_mcycles(res, kbps) * fps
            for res, kbps in encodings.items()
        )
        return per_second / self.device_mcycles_per_s

    def decode_utilization(
        self, streams: Mapping[Resolution, int], fps: float
    ) -> float:
        """Fraction of the device budget spent decoding received streams.

        ``streams`` may repeat resolutions across publishers — pass one
        entry per received stream (see callers) or aggregate costs
        externally; this helper treats the mapping as one stream per key.
        """
        per_second = sum(
            self.decode_frame_mcycles(res, kbps) * fps
            for res, kbps in streams.items()
        )
        return per_second / self.device_mcycles_per_s
