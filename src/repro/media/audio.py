"""Audio stream model and the voice-stall metric.

Audio is not orchestrated by GSO (Fig. 9 shows its CPU impact is nil), but
it shares the links with video: the paper's headline voice-stall
improvement comes from video no longer congesting the path.  The audio
model is therefore deliberately simple — a constant-bitrate packet stream —
while the receiver implements the paper's metric exactly:

    "Voice stall is measured as the percentage of audio playback intervals
    whose audio packet loss is larger than 10 %." (footnote 10)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..net.simulator import PeriodicTask, Simulator
from ..rtp.packet import AUDIO_CLOCK_HZ, AUDIO_PAYLOAD_TYPE, RtpPacket

#: Opus-like constant audio bitrate.
AUDIO_BITRATE_KBPS = 32

#: 20 ms audio frames -> 50 packets per second.
AUDIO_FRAME_S = 0.020

#: Loss fraction above which an interval counts as a voice stall.
VOICE_STALL_LOSS_THRESHOLD = 0.10

#: Voice-stall accounting interval.
VOICE_INTERVAL_S = 1.0


class AudioSender:
    """Constant-bitrate audio packet source."""

    def __init__(
        self,
        sim: Simulator,
        ssrc: int,
        send: Callable[[RtpPacket], None],
    ) -> None:
        self._sim = sim
        self._ssrc = ssrc
        self._send = send
        self._seq = 0
        self._task: Optional[PeriodicTask] = None
        self.packets_sent = 0

    @property
    def payload_bytes(self) -> int:
        """Audio payload bytes per 20 ms frame."""
        return int(AUDIO_BITRATE_KBPS * 1000 / 8 * AUDIO_FRAME_S)

    def start(self, offset_s: float = 0.0) -> None:
        """Begin producing frames (idempotent)."""
        if self._task is not None:
            return
        self._task = PeriodicTask(
            self._sim, AUDIO_FRAME_S, self._tick, start_offset=offset_s
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        packet = RtpPacket(
            ssrc=self._ssrc,
            seq=self._seq % 2**16,
            timestamp=int(self._sim.now * AUDIO_CLOCK_HZ) % 2**32,
            payload_type=AUDIO_PAYLOAD_TYPE,
            marker=False,
            payload=bytes(self.payload_bytes),
        )
        self._seq += 1
        self.packets_sent += 1
        self._send(packet)


class AudioReceiver:
    """Tracks per-interval audio loss for the voice-stall metric."""

    def __init__(self) -> None:
        #: interval index -> packets received.
        self._received: Dict[int, int] = {}
        self._expected_per_interval = round(VOICE_INTERVAL_S / AUDIO_FRAME_S)

    def on_packet(self, packet: RtpPacket, now_s: float) -> None:
        """Record one arriving packet."""
        interval = int(now_s / VOICE_INTERVAL_S)
        self._received[interval] = self._received.get(interval, 0) + 1

    def voice_stall_rate(self, window_start_s: float, window_end_s: float) -> float:
        """Fraction of intervals in the window with >10 % audio loss."""
        first = int(window_start_s / VOICE_INTERVAL_S)
        last = int(window_end_s / VOICE_INTERVAL_S)
        if last <= first:
            return 0.0
        stalled = 0
        total = 0
        for interval in range(first, last):
            total += 1
            got = self._received.get(interval, 0)
            loss = 1.0 - got / self._expected_per_interval
            if loss > VOICE_STALL_LOSS_THRESHOLD:
                stalled += 1
        return stalled / total if total else 0.0
