"""The accessing node: media-plane packet switching (Sec. 3).

An accessing node "provid[es] media access to clients and rout[es] media
data based on instructions from the control plane".  Responsibilities
implemented here:

* **demux** incoming datagrams from clients into RTP media vs. RTCP;
* **selective forwarding**: per (subscriber, publisher-entity) the control
  plane installs which video SSRC to forward; audio fans out to every
  other attached participant;
* **inter-node relay**: packets for subscribers homed on a different
  accessing node travel over the node-to-node link;
* **TWCC both ways**: the node rewrites the transport-wide sequence
  extension on every forwarded packet (per-transport semantics, like a
  real SFU), echoes feedback for client uplinks, and consumes feedback
  about its own downlinks;
* **downlink bandwidth estimation**: the node is the *sender* on client
  downlinks, so per Sec. 4.2 it runs the sender-side (GCC) estimator per
  downlink; the conference node reads the values off directly;
* **RTCP plumbing**: SEMB reports and GSO TMMBN acks from clients bubble
  up to the control plane; GSO TMMBR requests are pushed down to clients.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..cc.gcc import GccEstimator
from ..cc.twcc import TwccReceiver, TwccSender
from ..core.types import ClientId
from ..net.link import Link
from ..net.packet import Packet, packet_for_bytes
from ..net.simulator import PeriodicTask, Simulator
from ..rtp.nack import GenericNack, NackTracker, RetransmissionCache, is_nack
from ..rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket
from ..rtp.remb import RembPacket, is_remb
from ..rtp.rtcp import PT_APP, PT_PSFB, PT_RTPFB, TwccFeedback, parse_common_header

#: How often the node sends TWCC feedback for each client uplink.
TWCC_FEEDBACK_INTERVAL_S = 0.1


def is_rtcp(data: bytes) -> bool:
    """Standard RTP/RTCP demux: RTCP packet types occupy 200..206."""
    return len(data) >= 2 and 200 <= data[1] <= 206


@dataclass
class _ClientPort:
    """Per-attached-client state on an accessing node."""

    downlink: Link
    #: Sender-side bookkeeping for the node->client transport.
    down_twcc: TwccSender = field(default_factory=TwccSender)
    down_estimator: GccEstimator = field(default_factory=GccEstimator)
    #: Receiver-side bookkeeping for the client->node transport.
    up_twcc: TwccReceiver = field(default_factory=TwccReceiver)
    #: publisher entity -> forwarded video SSRC (None = nothing).
    video_selection: Dict[ClientId, Optional[int]] = field(default_factory=dict)
    #: Rolling (time, bytes) log of recent sends for the estimate cap.
    recent_sends: deque = field(default_factory=deque)

    def note_send(self, now: float, size_bytes: int) -> None:
        """Record one downlink send for the rate window."""
        self.recent_sends.append((now, size_bytes))
        cutoff = now - 1.0
        while self.recent_sends and self.recent_sends[0][0] < cutoff:
            self.recent_sends.popleft()

    def send_rate_kbps(self, now: float) -> float:
        """Send rate over the trailing second."""
        cutoff = now - 1.0
        total = sum(b for t, b in self.recent_sends if t >= cutoff)
        return total * 8.0 / 1000.0


class AccessingNode:
    """One media-plane node.

    Args:
        sim: the event loop.
        name: node id.
        on_rtcp_app_upstream: hook called with (client_id, app_packet_bytes)
            for RTCP APP packets the control plane consumes (SEMB, TMMBN).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        on_rtcp_app_upstream: Optional[Callable[[ClientId, bytes], None]] = None,
    ) -> None:
        self._sim = sim
        self.name = name
        self._clients: Dict[ClientId, _ClientPort] = {}
        self._peers: Dict[str, Tuple["AccessingNode", Link]] = {}
        self._remote_clients: Dict[ClientId, str] = {}
        #: Last ingest time per video SSRC (stream-liveness watchdogs).
        self.last_video_ingest_s: Dict[int, float] = {}
        #: Last ingest time of ANY packet per client (outage detection).
        self.last_client_ingest_s: Dict[ClientId, float] = {}
        #: Latest REMB (receiver-estimated downlink) per client, kbps.
        self.remb_kbps: Dict[ClientId, int] = {}
        #: Per peer node: the video SSRCs its local subscribers selected
        #: (pushed by peers on every selection change) — drives selective
        #: inter-node relay.
        self._peer_interest: Dict[str, set] = {}
        self._on_rtcp_app = on_rtcp_app_upstream
        self.forwarded_packets = 0
        #: Cache of media ingested from publishers (answers downlink NACKs).
        self.rtx_cache = RetransmissionCache()
        #: Uplink gap detection per publishing client.
        self._uplink_nack: Dict[ClientId, NackTracker] = {}
        #: ssrc -> publishing client (learned from ingest, for NACK routing).
        self._ssrc_origin: Dict[int, ClientId] = {}
        self._feedback_task = PeriodicTask(
            sim, TWCC_FEEDBACK_INTERVAL_S, self._send_twcc_feedback
        )
        self._nack_task = PeriodicTask(
            sim, 0.02, self._send_due_uplink_nacks, start_offset=0.01
        )

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach_client(self, client: ClientId, downlink: Link) -> None:
        """Home a client on this node (downlink: node -> client)."""
        if client in self._clients:
            raise ValueError(f"client {client!r} already attached to {self.name}")
        self._clients[client] = _ClientPort(downlink=downlink)

    def detach_client(self, client: ClientId) -> None:
        """Remove a departed client and its forwarding state."""
        self._clients.pop(client, None)
        for port in self._clients.values():
            port.video_selection.pop(client, None)

    def add_peer(self, peer: "AccessingNode", link_to_peer: Link) -> None:
        """Connect another accessing node (link: this node -> peer)."""
        self._peers[peer.name] = (peer, link_to_peer)
        link_to_peer.connect(
            lambda packet, now, p=peer: p.on_packet_from_peer(packet, now)
        )
        # Exchange current interest sets (control-plane side channel).
        peer.set_peer_interest(self.name, self._local_interest())

    def _local_interest(self) -> set:
        """All video SSRCs some locally attached subscriber selected."""
        interest: set = set()
        for port in self._clients.values():
            interest.update(
                ssrc for ssrc in port.video_selection.values() if ssrc
            )
        return interest

    def set_peer_interest(self, peer_name: str, ssrcs: set) -> None:
        """A peer announces which video SSRCs its subscribers want."""
        self._peer_interest[peer_name] = set(ssrcs)

    def _broadcast_interest(self) -> None:
        for peer, _link in self._peers.values():
            peer.set_peer_interest(self.name, self._local_interest())

    def register_remote_client(self, client: ClientId, node_name: str) -> None:
        """Record that a subscriber is homed on a peer node.

        Kept for topology bookkeeping/diagnostics; media routing itself is
        automatic (audio fans out to every peer; video follows the
        interest sets peers push on selection changes).
        """
        if node_name not in self._peers:
            raise ValueError(f"unknown peer node {node_name!r}")
        self._remote_clients[client] = node_name

    @property
    def attached_clients(self) -> List[ClientId]:
        """Locally attached client ids, sorted."""
        return sorted(self._clients)

    # ------------------------------------------------------------------ #
    # Control-plane interface
    # ------------------------------------------------------------------ #

    def set_video_forwarding(
        self, subscriber: ClientId, publisher: ClientId, ssrc: Optional[int]
    ) -> None:
        """Install which of ``publisher``'s video SSRCs flows to ``subscriber``."""
        port = self._clients.get(subscriber)
        if port is None:
            raise ValueError(f"subscriber {subscriber!r} not attached here")
        if ssrc is None:
            port.video_selection.pop(publisher, None)
        else:
            port.video_selection[publisher] = ssrc
        self._broadcast_interest()

    def video_selection(
        self, subscriber: ClientId, publisher: ClientId
    ) -> Optional[int]:
        """The SSRC currently forwarded for (subscriber, publisher)."""
        port = self._clients.get(subscriber)
        if port is None:
            return None
        return port.video_selection.get(publisher)

    def downlink_estimate_kbps(self, client: ClientId) -> float:
        """The node's sender-side estimate of a client's downlink.

        Like the client uplink estimate, the raw GCC value is capped at a
        multiple of what the node actually sends on this downlink — an
        estimate cannot be validated beyond the traffic that probed it.
        """
        port = self._clients[client]
        raw = port.down_estimator.estimate_kbps()
        sending = port.send_rate_kbps(self._sim.now)
        if sending <= 0:
            return raw
        return min(raw, max(3.0 * sending, 600.0))

    def stream_alive(
        self, ssrc: Optional[int], now: float, within_s: float = 2.0
    ) -> bool:
        """Whether a video SSRC has been ingested recently."""
        if ssrc is None:
            return False
        last = self.last_video_ingest_s.get(ssrc)
        return last is not None and now - last <= within_s

    def client_alive(
        self, client: ClientId, now: float, within_s: float = 2.0
    ) -> bool:
        """Whether ANY packet (media, audio, RTCP) arrived from a client
        recently — distinguishes stream failures from network outages."""
        last = self.last_client_ingest_s.get(client)
        return last is not None and now - last <= within_s

    def send_rtcp_to_client(self, client: ClientId, rtcp_bytes: bytes) -> None:
        """Push an RTCP packet (e.g. a GSO TMMBR) down to a client."""
        port = self._clients.get(client)
        if port is None:
            raise ValueError(f"client {client!r} not attached here")
        port.downlink.send(
            packet_for_bytes(rtcp_bytes, src=self.name, dst=client)
        )

    # ------------------------------------------------------------------ #
    # Data path
    # ------------------------------------------------------------------ #

    def on_packet_from_client(
        self, client: ClientId, packet: Packet, now: float
    ) -> None:
        """Uplink ingress: demux and forward."""
        data: bytes = packet.payload
        self.last_client_ingest_s[client] = now
        if is_rtcp(data):
            self._handle_rtcp(client, data)
            return
        rtp = RtpPacket.parse(data)
        port = self._clients.get(client)
        if port is not None and rtp.twcc_seq is not None:
            port.up_twcc.on_packet(rtp.twcc_seq, now)
        if rtp.payload_type not in (AUDIO_PAYLOAD_TYPE, 127):
            self._ssrc_origin[rtp.ssrc] = client
            self.last_video_ingest_s[rtp.ssrc] = now
            tracker = self._uplink_nack.setdefault(client, NackTracker())
            tracker.on_packet(rtp.ssrc, rtp.seq, now)
            self.rtx_cache.store(rtp.with_twcc_seq(None))
        self._forward_media(client, rtp)

    def on_packet_from_peer(self, packet: Packet, now: float) -> None:
        """Relay ingress: (origin_client, RtpPacket) from a peer node.

        Audio fans out to every local participant except the origin; video
        is delivered to the local subscribers whose selection matches the
        SSRC.
        """
        origin, rtp = packet.payload
        if rtp.payload_type == AUDIO_PAYLOAD_TYPE:
            for sub, port in self._clients.items():
                if sub != origin:
                    self._deliver(sub, port, rtp)
            return
        for sub, port in self._clients.items():
            if rtp.ssrc in port.video_selection.values():
                self._deliver(sub, port, rtp)

    def _forward_media(self, publisher: ClientId, rtp: RtpPacket) -> None:
        if rtp.payload_type == 127:
            return  # padding-only probe packets terminate at the node
        if rtp.payload_type == AUDIO_PAYLOAD_TYPE:
            # Audio fans out to every other participant, local and (via
            # one relay copy per peer node) remote.
            for sub, port in self._clients.items():
                if sub != publisher:
                    self._deliver(sub, port, rtp)
            for node_name in self._peers:
                self._relay(node_name, publisher, rtp)
            return
        # Video: forward only where the selection table says so.  The
        # selection is keyed by publisher *entity*; matching on SSRC value
        # covers camera, screen and virtual entities alike.
        for sub, port in self._clients.items():
            if rtp.ssrc in port.video_selection.values():
                self._deliver(sub, port, rtp)
        # One relay copy per interested peer node (inter-node multicast).
        for node_name, interest in self._peer_interest.items():
            if rtp.ssrc in interest:
                self._relay(node_name, publisher, rtp)

    def _deliver(self, client: ClientId, port: _ClientPort, rtp: RtpPacket) -> None:
        data = rtp.with_twcc_seq(None).serialize()
        out = packet_for_bytes(data, src=self.name, dst=client)
        twcc_seq = port.down_twcc.register_send(out.size_bytes + 8, self._sim.now)
        port.note_send(self._sim.now, out.size_bytes + 8)
        # Rewrite the transport-wide sequence for this hop, like a real SFU.
        data = rtp.with_twcc_seq(twcc_seq).serialize()
        out = packet_for_bytes(data, src=self.name, dst=client)
        port.downlink.send(out)
        self.forwarded_packets += 1

    def _relay(self, node_name: str, origin: ClientId, rtp: RtpPacket) -> None:
        peer, link = self._peers[node_name]
        link.send(
            Packet(
                payload=(origin, rtp),
                size_bytes=rtp.wire_size + 28,
                src=self.name,
                dst=node_name,
            )
        )

    # ------------------------------------------------------------------ #
    # RTCP
    # ------------------------------------------------------------------ #

    def remb_estimate_kbps(self, client: ClientId) -> Optional[int]:
        """The client's latest receiver-side downlink estimate, if any."""
        return self.remb_kbps.get(client)

    def _handle_rtcp(self, client: ClientId, data: bytes) -> None:
        _, packet_type, _ = parse_common_header(data)
        if packet_type == PT_PSFB and is_remb(data):
            self.remb_kbps[client] = RembPacket.parse(data).bitrate_kbps
            return
        if packet_type == PT_RTPFB and is_nack(data):
            # A subscriber lost forwarded packets: retransmit from cache.
            nack = GenericNack.parse(data)
            port = self._clients.get(client)
            if port is None:
                return
            for seq in nack.seqs:
                cached = self.rtx_cache.lookup(nack.media_ssrc, seq)
                if cached is not None:
                    self._deliver(client, port, cached)
            return
        if packet_type == PT_RTPFB:
            # TWCC feedback about OUR downlink to this client.
            port = self._clients.get(client)
            if port is None:
                return
            feedback = TwccFeedback.parse(data)
            samples = port.down_twcc.on_feedback(feedback)
            port.down_estimator.on_feedback(samples)
            if port.down_twcc.lost_reported + port.down_twcc.acked_reported > 0:
                port.down_estimator.on_loss_report(
                    port.down_twcc.recent_loss_fraction()
                )
            return
        if packet_type == PT_APP and self._on_rtcp_app is not None:
            # SEMB uplink reports and GSO TMMBN acks go to the control plane.
            self._on_rtcp_app(client, data)

    def _send_due_uplink_nacks(self) -> None:
        """NACK publishing clients for holes in their ingested streams."""
        for client, tracker in self._uplink_nack.items():
            if client not in self._clients:
                continue
            for ssrc, seqs in tracker.due_requests(self._sim.now):
                nack = GenericNack(
                    sender_ssrc=0, media_ssrc=ssrc, seqs=tuple(seqs)
                )
                self.send_rtcp_to_client(client, nack.serialize())

    def _send_twcc_feedback(self) -> None:
        """Periodic TWCC feedback to every client about its uplink."""
        for client, port in self._clients.items():
            feedback = port.up_twcc.build_feedback()
            if feedback is None:
                continue
            self.send_rtcp_to_client(client, feedback.serialize())
