"""Video source model: a camera or screen producing raw frames on a cadence.

The encoder (:mod:`repro.media.codec`) consumes these ticks; the source
itself only defines *when* frames exist and which capture resolution is
available (a publisher cannot simulcast a resolution above its capture).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..core.types import Resolution
from ..net.simulator import PeriodicTask, Simulator


@dataclass(frozen=True)
class SourceConfig:
    """Static properties of a capture source."""

    fps: float = 30.0
    capture_resolution: Resolution = Resolution.P720
    #: Screen content compresses differently and often runs at lower fps.
    is_screen: bool = False

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")


class VideoSource:
    """Drives frame ticks into a callback at the configured cadence.

    Args:
        sim: the event loop.
        config: capture properties.
        on_frame: called once per captured frame with the frame index.
    """

    def __init__(
        self,
        sim: Simulator,
        config: SourceConfig,
        on_frame: Callable[[int], None],
    ) -> None:
        self._config = config
        self._on_frame = on_frame
        self._frame_index = 0
        self._task: Optional[PeriodicTask] = None
        self._sim = sim

    @property
    def config(self) -> SourceConfig:
        """The immutable source configuration."""
        return self._config

    def start(self, offset_s: float = 0.0) -> None:
        """Begin producing frames (idempotent)."""
        if self._task is not None:
            return
        self._task = PeriodicTask(
            self._sim,
            interval=1.0 / self._config.fps,
            callback=self._tick,
            start_offset=offset_s,
        )

    def stop(self) -> None:
        """Stop the periodic activity (idempotent)."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _tick(self) -> None:
        self._on_frame(self._frame_index)
        self._frame_index += 1

    @property
    def frames_produced(self) -> int:
        """Frames generated so far."""
        return self._frame_index
