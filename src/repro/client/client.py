"""The conference client: publisher/subscriber endpoint (user plane).

A :class:`ConferenceClient` is everything that runs on a participant's
device in the reproduction:

* **publish path** — a video source drives the simulcast encoder; encoded
  frames are packetized per stream SSRC and paced onto the uplink; audio
  runs beside video;
* **configuration execution** — GSO TMMBR requests arriving in RTCP APP
  packets reconfigure the encoder (bitrate per resolution, zero = stop) and
  are acknowledged with TMMBN (Sec. 4.3);
* **uplink estimation** — a sender-side GCC estimator fed by TWCC feedback
  from the accessing node, with pacer probe bursts correcting small-stream
  over-estimation (Sec. 7), reported upstream via SEMB under time+event
  triggered rate limiting (Sec. 4.2, Sec. 7);
* **receive path** — per-SSRC jitter buffers produce render times for the
  stall/framerate metrics; the audio receiver tracks voice stalls; TWCC
  arrivals are echoed so the node can estimate the downlink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..cc.gcc import GccConfig, GccEstimator
from ..cc.pacer import Pacer, PacerConfig
from ..cc.receiver_estimate import ReceiverEstimator
from ..cc.reporting import ReportScheduler, ReportSchedulerConfig
from ..cc.twcc import TwccReceiver, TwccSender
from ..core.types import ClientId, Resolution
from ..media.audio import AudioReceiver, AudioSender
from ..media.codec import SimulcastEncoder, packetize
from ..media.jitter_buffer import VideoJitterBuffer
from ..media.sfu import is_rtcp
from ..media.source import SourceConfig, VideoSource
from ..net.link import Link
from ..net.packet import Packet, packet_for_bytes
from ..net.simulator import PeriodicTask, Simulator
from ..rtp.nack import GenericNack, NackTracker, RetransmissionCache, is_nack
from ..rtp.packet import AUDIO_PAYLOAD_TYPE, RtpPacket
from ..rtp.rtcp import AppPacket, PT_APP, PT_RTPFB, TwccFeedback, parse_common_header
from ..rtp.remb import RembPacket
from ..rtp.semb import SEMB_NAME, SembReport
from ..rtp.tmmbr import GSO_TMMBR_NAME, GsoTmmbn, GsoTmmbr


@dataclass
class ClientConfig:
    """Per-client behaviour knobs."""

    fps: float = 30.0
    keyframe_interval_s: float = 4.0
    #: Initial uplink estimate for the GCC estimator.
    initial_uplink_kbps: float = 1_000.0
    #: Enable pacer probe bursts (Sec. 7 over-estimation fix).
    probing_enabled: bool = True
    #: SEMB reporting limits.
    report: ReportSchedulerConfig = field(default_factory=ReportSchedulerConfig)
    #: How often the client evaluates probing and reporting.
    estimator_tick_s: float = 0.5
    #: How often TWCC feedback for the downlink is sent.
    twcc_feedback_interval_s: float = 0.1
    #: Enable classic receiver-side estimation + REMB reports (used by the
    #: receiver-driven competitor archetype; GSO relies on sender-side
    #: estimation instead, per Sec. 4.2).
    remb_enabled: bool = False


class ConferenceClient:
    """One participant endpoint.

    Args:
        sim: the event loop.
        client_id: this participant's id.
        uplink: the link from this client toward its accessing node.
        ssrcs: SSRC per video resolution (negotiated via simulcastInfo),
            plus this client's audio and RTCP SSRCs.
        audio_ssrc: SSRC of the client's audio stream.
        rtcp_ssrc: the client's RTCP sender SSRC.
        config: behaviour knobs.
    """

    def __init__(
        self,
        sim: Simulator,
        client_id: ClientId,
        uplink: Link,
        ssrcs: Mapping[Resolution, int],
        audio_ssrc: int,
        rtcp_ssrc: int,
        config: Optional[ClientConfig] = None,
    ) -> None:
        self._sim = sim
        self.client_id = client_id
        self._uplink = uplink
        self.config = config or ClientConfig()
        self._video_ssrcs: Dict[Resolution, int] = dict(ssrcs)
        self._resolution_of_ssrc = {v: k for k, v in self._video_ssrcs.items()}
        self._audio_ssrc = audio_ssrc
        self._rtcp_ssrc = rtcp_ssrc

        # Publish path.
        self.encoder = SimulcastEncoder(
            fps=self.config.fps,
            keyframe_interval_s=self.config.keyframe_interval_s,
        )
        self._seq_per_ssrc: Dict[int, int] = {}
        self._source = VideoSource(
            sim, SourceConfig(fps=self.config.fps), self._on_source_frame
        )
        self._audio = AudioSender(sim, audio_ssrc, self._send_rtp)
        self.uplink_twcc = TwccSender()
        self.uplink_estimator = GccEstimator(
            GccConfig(initial_rate_kbps=self.config.initial_uplink_kbps)
        )
        self.pacer = Pacer(
            sim,
            send=self._transmit_paced,
            target_kbps=self.config.initial_uplink_kbps,
        )
        self._report_scheduler = ReportScheduler(self.config.report)
        self._probe_seq = 0
        #: Send-side retransmission cache (answers NACKs from the node).
        self.rtx_cache = RetransmissionCache()

        # Receive path.
        self.jitter_buffers: Dict[int, VideoJitterBuffer] = {}
        self.audio_receiver = AudioReceiver()
        self.downlink_twcc = TwccReceiver(sender_ssrc=rtcp_ssrc)
        self.received_video_bytes: Dict[int, int] = {}
        #: Receive-side loss repair: NACK the node for downlink holes.
        self.nack_tracker = NackTracker()
        #: Classic receiver-side downlink estimation (REMB mode only).
        self.receiver_estimator = ReceiverEstimator()
        self._remb_counters = (0, 0)  # (packets_seen, holes_seen) snapshot

        # Hooks the harness / control plane can observe.
        self.on_semb_sent: Optional[Callable[[SembReport], None]] = None
        self.applied_configurations: List[Dict[Resolution, int]] = []

        PeriodicTask(
            sim, self.config.estimator_tick_s, self._estimator_tick,
            start_offset=0.25,
        )
        PeriodicTask(
            sim,
            self.config.twcc_feedback_interval_s,
            self._send_downlink_twcc_feedback,
            start_offset=0.05,
        )
        PeriodicTask(sim, 0.02, self._send_due_nacks, start_offset=0.015)
        if self.config.remb_enabled:
            PeriodicTask(sim, 1.0, self._send_remb, start_offset=0.9)

    # ------------------------------------------------------------------ #
    # Publish path
    # ------------------------------------------------------------------ #

    def start_media(self, offset_s: float = 0.0) -> None:
        """Begin producing audio and (if configured) video."""
        self._source.start(offset_s)
        self._audio.start(offset_s)

    def stop_media(self) -> None:
        """Stop producing audio and video."""
        self._source.stop()
        self._audio.stop()

    def _on_source_frame(self, frame_index: int) -> None:
        for frame in self.encoder.encode(frame_index, self._sim.now):
            ssrc = self._video_ssrcs.get(frame.resolution)
            if ssrc is None:
                continue
            seq_start = self._seq_per_ssrc.get(ssrc, 0)
            packets = packetize(frame, ssrc=ssrc, seq_start=seq_start)
            self._seq_per_ssrc[ssrc] = (seq_start + len(packets)) % 2**16
            for rtp in packets:
                self._pace_rtp(rtp)
        # Keep the pacer tracking the encoder's configured total.
        total = self.encoder.total_target_kbps
        if total > 0:
            self.pacer.set_target_kbps(total)

    def _pace_rtp(self, rtp: RtpPacket) -> None:
        """Queue an RTP packet; the TWCC sequence is stamped at drain time
        (the on-wire moment), so pacer queueing is never mistaken for
        network queueing by the delay-based estimator."""
        self.pacer.enqueue(
            Packet(
                payload=rtp,
                size_bytes=rtp.wire_size + 8 + 28,
                src=self.client_id,
                dst="node",
            )
        )

    def _transmit_paced(self, packet: Packet) -> None:
        """Pacer drain hook: stamp TWCC, serialize, put on the wire."""
        rtp: RtpPacket = packet.payload
        if rtp.payload_type not in (AUDIO_PAYLOAD_TYPE, 127):
            self.rtx_cache.store(rtp.with_twcc_seq(None))
        twcc_seq = self.uplink_twcc.register_send(
            packet.size_bytes, self._sim.now
        )
        data = rtp.with_twcc_seq(twcc_seq).serialize()
        self._uplink.send(
            packet_for_bytes(data, src=self.client_id, dst="node")
        )

    def _send_rtp(self, rtp: RtpPacket) -> None:
        """Audio goes out unpaced (tiny, latency-critical) but TWCC-tagged."""
        twcc_seq = self.uplink_twcc.register_send(
            rtp.wire_size + 8 + 28, self._sim.now
        )
        data = rtp.with_twcc_seq(twcc_seq).serialize()
        self._uplink.send(
            packet_for_bytes(data, src=self.client_id, dst="node")
        )

    # ------------------------------------------------------------------ #
    # Configuration execution (TMMBR)
    # ------------------------------------------------------------------ #

    def apply_tmmbr(self, request: GsoTmmbr) -> GsoTmmbn:
        """Reconfigure the encoder per a GSO TMMBR and build the TMMBN."""
        targets = dict(self.encoder.active_encodings)
        for entry in request.entries:
            resolution = self._resolution_of_ssrc.get(entry.ssrc)
            if resolution is None:
                continue  # not one of our streams
            kbps = entry.bitrate_bps // 1000
            if kbps > 0:
                targets[resolution] = kbps
            else:
                targets.pop(resolution, None)
        self.encoder.configure(targets)
        self.applied_configurations.append(dict(targets))
        return GsoTmmbn.acknowledge(request, sender_ssrc=self._rtcp_ssrc)

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def on_downlink_packet(self, packet: Packet, now: float) -> None:
        """Entry point wired to the downlink link's delivery callback."""
        data: bytes = packet.payload
        if is_rtcp(data):
            self._handle_rtcp(data)
            return
        rtp = RtpPacket.parse(data)
        if rtp.twcc_seq is not None:
            self.downlink_twcc.on_packet(rtp.twcc_seq, now)
        if rtp.payload_type == AUDIO_PAYLOAD_TYPE:
            self.audio_receiver.on_packet(rtp, now)
            return
        self.nack_tracker.on_packet(rtp.ssrc, rtp.seq, now)
        if self.config.remb_enabled:
            self.receiver_estimator.on_packet(packet.size_bytes, now)
        buffer = self.jitter_buffers.get(rtp.ssrc)
        if buffer is None:
            buffer = VideoJitterBuffer()
            self.jitter_buffers[rtp.ssrc] = buffer
        buffer.on_packet(rtp, now)
        self.received_video_bytes[rtp.ssrc] = (
            self.received_video_bytes.get(rtp.ssrc, 0) + len(rtp.payload)
        )

    def _handle_rtcp(self, data: bytes) -> None:
        _, packet_type, _ = parse_common_header(data)
        if packet_type == PT_RTPFB and is_nack(data):
            # The node lost some of our uplink packets: retransmit.
            nack = GenericNack.parse(data)
            for seq in nack.seqs:
                cached = self.rtx_cache.lookup(nack.media_ssrc, seq)
                if cached is not None:
                    self._transmit_paced(
                        Packet(
                            payload=cached,
                            size_bytes=cached.wire_size + 8 + 28,
                            src=self.client_id,
                            dst="node",
                        )
                    )
            return
        if packet_type == PT_RTPFB:
            feedback = TwccFeedback.parse(data)
            samples = self.uplink_twcc.on_feedback(feedback)
            self.uplink_estimator.on_feedback(samples)
            total = self.uplink_twcc.lost_reported + self.uplink_twcc.acked_reported
            if total > 0:
                self.uplink_estimator.on_loss_report(
                    self.uplink_twcc.recent_loss_fraction()
                )
            return
        if packet_type == PT_APP:
            app = AppPacket.parse(data)
            if app.name == GSO_TMMBR_NAME:
                notification = self.apply_tmmbr(GsoTmmbr.from_app_packet(app))
                self._uplink.send(
                    packet_for_bytes(
                        notification.to_app_packet().serialize(),
                        src=self.client_id,
                        dst="node",
                    )
                )

    # ------------------------------------------------------------------ #
    # Estimation, probing, reporting
    # ------------------------------------------------------------------ #

    def uplink_estimate_kbps(self) -> float:
        """The sender-side uplink estimate, sanity-capped by send rate.

        A GCC estimate can only be *validated* up to what is actually sent
        (Sec. 7's small-stream over-estimation lesson).  Like WebRTC, the
        raw estimate is capped at a multiple of the current send rate; the
        pacer's probe bursts are what legitimately push the cap upward.
        """
        raw = self.uplink_estimator.estimate_kbps()
        sending = self.encoder.total_target_kbps
        if sending <= 0:
            return raw
        return min(raw, max(3.0 * sending, 600.0))

    def _estimator_tick(self) -> None:
        self._apply_local_send_clamp()
        estimate = self.uplink_estimate_kbps()
        if self.config.probing_enabled:
            sending = self.encoder.total_target_kbps
            # Probe when the estimate has crept well beyond what we send —
            # exactly the small-stream over-estimation situation.
            if sending > 0 and estimate > 1.5 * sending:
                launched = self.pacer.maybe_probe(
                    estimate, self._make_probe_packet
                )
                if launched:
                    # Evaluate the cluster once its feedback is in.
                    self._sim.schedule(0.7, self._evaluate_probe)
        if self._report_scheduler.should_report(self._sim.now, estimate):
            self._send_semb(estimate)

    def _apply_local_send_clamp(self) -> None:
        """Never send above the local uplink estimate (Sec. 7 safety).

        TMMBR configurations are computed from the controller's last known
        global picture; if the uplink has since collapsed (and SEMB reports
        are themselves being lost on the congested link), blindly obeying
        the stale configuration keeps the link wedged.  Like a real WebRTC
        sender, the encoder output is capped at what the local bandwidth
        estimator can currently justify, scaling layer bitrates down
        proportionally (resolutions are kept; the controller will re-plan
        once reports flow again).
        """
        targets = self.encoder.active_encodings
        total = sum(targets.values())
        if total <= 0:
            return
        usable = max(50.0, self.uplink_estimator.estimate_kbps() * 0.9 - 50.0)
        if total <= usable:
            return
        scale = usable / total
        clamped = {
            res: max(30, int(kbps * scale)) for res, kbps in targets.items()
        }
        self.encoder.configure(clamped)

    def _evaluate_probe(self) -> None:
        """Judge the last probe cluster (Sec. 7 over-estimation fix).

        The cluster ran at a multiple of the current estimate; if it left a
        visible delay spike or loss, the delivered rate is the capacity
        ceiling — otherwise the path proved it can carry more.
        """
        est = self.uplink_estimator
        delivered = est.receive_rate_kbps()
        if delivered is None or est.sample_count < 150:
            return  # not enough history to judge against the jitter floor
        # Congestion-specific judgment: a standing queue (jitter-robust
        # windowed minimum), or a p90 delay shift far above the path's
        # typical jitter.  Plain random loss or jitter must NOT cap the
        # estimate — that misjudgment is what Sec. 7's probing fixes.
        spike_floor = max(0.04, 6.0 * est.typical_jitter_s())
        congested = (
            est.queuing_delay_s() > 0.04
            or est.peak_queuing_delay_s() > spike_floor
        )
        est.on_probe_result(delivered, congested)

    def _make_probe_packet(self, k: int) -> Packet:
        """Probe padding rides an RTP packet on the lowest video SSRC.

        TWCC stamping happens in :meth:`_transmit_paced` when the probe is
        actually put on the wire.
        """
        ssrc = min(self._video_ssrcs.values()) if self._video_ssrcs else self._audio_ssrc
        rtp = RtpPacket(
            ssrc=ssrc,
            seq=(50_000 + self._probe_seq) % 2**16,
            timestamp=int(self._sim.now * 90_000) % 2**32,
            payload_type=127,  # padding-only payload type
            payload=bytes(self.pacer.config.probe_packet_bytes),
        )
        self._probe_seq += 1
        return Packet(
            payload=rtp,
            size_bytes=rtp.wire_size + 8 + 28,
            src=self.client_id,
            dst="node",
        )

    def _send_semb(self, estimate_kbps: float) -> None:
        report = SembReport(
            sender_ssrc=self._rtcp_ssrc,
            bitrate_bps=int(estimate_kbps * 1000),
            media_ssrcs=tuple(sorted(self._video_ssrcs.values())),
        )
        self._uplink.send(
            packet_for_bytes(
                report.to_app_packet().serialize(),
                src=self.client_id,
                dst="node",
            )
        )
        if self.on_semb_sent is not None:
            self.on_semb_sent(report)

    def _send_due_nacks(self) -> None:
        """Request retransmission of downlink holes from the node."""
        for ssrc, seqs in self.nack_tracker.due_requests(self._sim.now):
            nack = GenericNack(
                sender_ssrc=self._rtcp_ssrc,
                media_ssrc=ssrc,
                seqs=tuple(seqs),
            )
            self._uplink.send(
                packet_for_bytes(
                    nack.serialize(), src=self.client_id, dst="node"
                )
            )

    def _send_remb(self) -> None:
        """Classic receiver-driven downlink report (REMB mode only)."""
        seen, holes = (
            self.nack_tracker.packets_seen,
            self.nack_tracker.holes_seen,
        )
        prev_seen, prev_holes = self._remb_counters
        self._remb_counters = (seen, holes)
        d_seen = seen - prev_seen
        d_holes = holes - prev_holes
        loss = d_holes / max(1, d_seen + d_holes)
        estimate = self.receiver_estimator.update(loss, self._sim.now)
        packet = RembPacket(
            sender_ssrc=self._rtcp_ssrc, bitrate_bps=int(estimate * 1000)
        )
        self._uplink.send(
            packet_for_bytes(
                packet.serialize(), src=self.client_id, dst="node"
            )
        )

    def _send_downlink_twcc_feedback(self) -> None:
        feedback = self.downlink_twcc.build_feedback()
        if feedback is None:
            return
        self._uplink.send(
            packet_for_bytes(
                feedback.serialize(), src=self.client_id, dst="node"
            )
        )

    # ------------------------------------------------------------------ #
    # Introspection for metrics
    # ------------------------------------------------------------------ #

    def render_times_all(self) -> List[float]:
        """Merged render times across all received video streams of one
        publisher view (callers usually track per-SSRC instead)."""
        times: List[float] = []
        for buffer in self.jitter_buffers.values():
            times.extend(buffer.render_times)
        return sorted(times)

    def render_times_for(self, ssrcs: List[int]) -> List[float]:
        """Render times across a set of SSRCs (one publisher's simulcast)."""
        times: List[float] = []
        for ssrc in ssrcs:
            buffer = self.jitter_buffers.get(ssrc)
            if buffer is not None:
                times.extend(buffer.render_times)
        return sorted(times)
