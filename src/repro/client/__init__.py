"""User plane: conference clients and the baseline template policies."""

from .client import ClientConfig, ConferenceClient
from .policies import (
    COARSE_LAYERS,
    LARGE_MEETING_RULES,
    LocalDownlinkSwitcher,
    SMALL_MEETING_RULES,
    TemplateRule,
    TemplateUplinkPolicy,
)

__all__ = [
    "COARSE_LAYERS",
    "ClientConfig",
    "ConferenceClient",
    "LARGE_MEETING_RULES",
    "LocalDownlinkSwitcher",
    "SMALL_MEETING_RULES",
    "TemplateRule",
    "TemplateUplinkPolicy",
]
