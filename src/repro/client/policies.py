"""Template-based uplink stream policies — the non-GSO baseline behaviour.

State-of-the-art simulcast (Sec. 1) drives publishers with template
policies: "the uplink policy and downlink policy are isolated, where a
publisher decides what to push based on his/her local view of the upstream
network and the video resolution captured", with 2-3 coarse bitrate levels
and adaptation rules tuned per participant-count bucket.

:class:`TemplateUplinkPolicy` reproduces that behaviour (modelled on the
Amazon Chime / Chromium simulcast allocators the paper cites): given only
the *local* uplink estimate and the participant count, it decides which of
the coarse simulcast layers to enable.  The paper's footnote 2 example —
Chime disables the 600 kbps 360p stream when uplink < 300 kbps for sub-6
person calls — is the kind of rule encoded here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.types import Resolution

#: The classic coarse 3-layer ladder used by template policies.
COARSE_LAYERS: Tuple[Tuple[Resolution, int], ...] = (
    (Resolution.P720, 1500),
    (Resolution.P360, 600),
    (Resolution.P180, 300),
)


@dataclass(frozen=True)
class TemplateRule:
    """One row of a template policy: enabled layers for an estimate range.

    Attributes:
        min_uplink_kbps: the rule applies when the local uplink estimate is
            at least this value (rules are checked highest-first).
        layers: the (resolution, kbps) encodings to enable.
    """

    min_uplink_kbps: int
    layers: Tuple[Tuple[Resolution, int], ...]


#: Default rules for small meetings (<= 6 participants): push everything
#: the uplink can plausibly carry, with headroom factor baked into the
#: thresholds.  Mirrors Chromium's simulcast_rate_allocator behaviour.
SMALL_MEETING_RULES: Tuple[TemplateRule, ...] = (
    TemplateRule(2600, COARSE_LAYERS),
    TemplateRule(1100, COARSE_LAYERS[1:]),
    TemplateRule(350, COARSE_LAYERS[2:]),
    TemplateRule(0, ()),
)

#: Rules for big meetings: the 720p layer is dropped outright (thumbnail
#: walls dominate) and thresholds shift down.
LARGE_MEETING_RULES: Tuple[TemplateRule, ...] = (
    TemplateRule(1100, COARSE_LAYERS[1:]),
    TemplateRule(350, COARSE_LAYERS[2:]),
    TemplateRule(0, ()),
)


class TemplateUplinkPolicy:
    """The local, uncoordinated uplink policy of classic simulcast.

    Args:
        small_meeting_max: participant count up to which the small-meeting
            template applies (the paper notes templates "can only cover
            cases of a small number of participants (typically smaller
            than 6)").
    """

    def __init__(self, small_meeting_max: int = 6) -> None:
        self.small_meeting_max = small_meeting_max

    def select_layers(
        self, uplink_estimate_kbps: float, participant_count: int
    ) -> Dict[Resolution, int]:
        """Choose the encodings to publish from the template tables.

        Note what this policy *cannot* see: who actually subscribes, the
        receivers' downlinks, or other publishers — the root cause of the
        Fig. 3 pathologies.
        """
        rules = (
            SMALL_MEETING_RULES
            if participant_count <= self.small_meeting_max
            else LARGE_MEETING_RULES
        )
        for rule in rules:
            if uplink_estimate_kbps >= rule.min_uplink_kbps:
                return dict(rule.layers)
        return {}


class LocalDownlinkSwitcher:
    """The SFU-local stream switching of classic simulcast.

    Per subscriber, split the *locally estimated* downlink evenly across
    the publishers the subscriber watches, then pick the largest simulcast
    layer fitting each share.  This is the "fragmented network view"
    switching the paper contrasts GSO against: no coordination with
    publishers, coarse layers only.
    """

    def __init__(self, headroom: float = 0.9) -> None:
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        self.headroom = headroom

    def select_stream(
        self,
        downlink_estimate_kbps: float,
        available_layers: Dict[Resolution, int],
        n_watched_publishers: int,
        max_resolution: Resolution = Resolution.P720,
    ) -> Optional[Resolution]:
        """Pick the layer to forward from one publisher to one subscriber.

        Returns:
            The chosen resolution, or None to forward nothing.
        """
        if n_watched_publishers < 1 or not available_layers:
            return None
        share = downlink_estimate_kbps * self.headroom / n_watched_publishers
        candidates = sorted(
            (
                (res, kbps)
                for res, kbps in available_layers.items()
                if res <= max_resolution
            ),
            key=lambda pair: -pair[1],
        )
        for res, kbps in candidates:
            if kbps <= share:
                return res
        # Nothing fits the fair share: fall back to the smallest layer if
        # it at least fits the whole downlink (better than a black tile).
        if candidates and candidates[-1][1] <= downlink_estimate_kbps:
            return candidates[-1][0]
        return None
