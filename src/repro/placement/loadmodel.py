"""The per-shard load model: deterministic cost accounting for placement.

*Tetris* (PAPERS.md) frames conference hosting as a packing problem:
meetings are items with very different sizes, shards are bins with a
budget, and the placer needs a *cost* for each item before it can pack.
This module supplies that cost and the book-keeping around it:

* :func:`meeting_cost` — a deterministic cost estimate for one meeting's
  KMR solve, derived only from the problem's structure (never from
  wall-clock measurements, so seeded placement runs stay byte-identical);
* :func:`conference_cost` — the same estimate when only the meeting size
  is known (the vectorized fleet model's path);
* :class:`ShardLoadModel` — per-shard assigned-cost totals maintained by
  the cluster as meetings register, resubmit, migrate and leave;
* :func:`load_signals` — the observability view: the deterministic cost
  joined with live queue depths and the solve-latency p95 from the obs
  time-series store.  Signals feed dashboards and operators; placement
  decisions use the deterministic cost only.

Cost model: one KMR iteration runs one MCKP per subscriber over its
followed publishers, so per-iteration work scales with the subscription
edge count, and the iteration bound scales with the publisher count
(Sec. 5).  ``cost = |subscriptions| + |publishers|`` captures both; for
the full-mesh meetings the fleet samples this is exactly ``n**2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

from ..core.constraints import Problem

if TYPE_CHECKING:  # placement -> cluster is typing-only (no runtime cycle)
    from ..cluster.cluster import ControllerCluster
    from ..obs.timeseries import TimeSeriesStore

#: Cost assumed for a meeting registered before its first problem arrives
#: (a minimal two-party call: 2 subscriptions + 2 publishers).
DEFAULT_MEETING_COST = 4.0


def meeting_cost(problem: Problem) -> float:
    """Deterministic solve-cost estimate for one meeting's problem.

    Derived purely from problem structure so identical seeded runs place
    identically; see the module docs for the model.
    """
    return float(
        max(1, len(problem.subscriptions) + len(problem.publishers))
    )


def conference_cost(size: int) -> float:
    """The :func:`meeting_cost` of a full-mesh meeting of ``size``
    participants (``size * (size - 1)`` subscriptions + ``size``
    publishers = ``size ** 2``)."""
    return float(max(1, size) ** 2)


class ShardLoadModel:
    """Per-shard assigned-cost totals, updated as meetings move.

    The model is pure book-keeping: the cluster calls :meth:`assign` /
    :meth:`update_cost` / :meth:`move` / :meth:`release` as meetings
    register, resubmit with a new picture, migrate, or leave, and the
    placement policies read :meth:`loads` when choosing a shard.
    """

    def __init__(self, shards: Optional[List[str]] = None) -> None:
        self._loads: Dict[str, float] = {s: 0.0 for s in (shards or [])}
        #: meeting_id -> (shard, cost)
        self._meetings: Dict[str, Tuple[str, float]] = {}

    # -- shard lifecycle ------------------------------------------------- #

    def add_shard(self, shard: str) -> None:
        """Start tracking a (new or restarted) shard."""
        self._loads.setdefault(shard, 0.0)

    def remove_shard(self, shard: str) -> None:
        """Stop tracking an (empty) shard; meetings must have moved off."""
        if self._loads.get(shard, 0.0) == 0.0:
            self._loads.pop(shard, None)

    # -- meeting lifecycle ----------------------------------------------- #

    def assign(self, meeting_id: str, shard: str, cost: float) -> None:
        """Home a meeting (first placement, or idempotent re-assign)."""
        self.release(meeting_id)
        self._loads[shard] = self._loads.get(shard, 0.0) + cost
        self._meetings[meeting_id] = (shard, cost)

    def update_cost(self, meeting_id: str, cost: float) -> None:
        """Refresh a meeting's cost after its picture changed (churn)."""
        entry = self._meetings.get(meeting_id)
        if entry is None:
            return
        shard, old = entry
        self._loads[shard] = self._loads.get(shard, 0.0) - old + cost
        self._meetings[meeting_id] = (shard, cost)

    def move(self, meeting_id: str, new_shard: str) -> None:
        """Transfer a meeting's cost between shards (migration)."""
        entry = self._meetings.get(meeting_id)
        if entry is None:
            return
        shard, cost = entry
        self._loads[shard] = self._loads.get(shard, 0.0) - cost
        self._loads[new_shard] = self._loads.get(new_shard, 0.0) + cost
        self._meetings[meeting_id] = (new_shard, cost)

    def release(self, meeting_id: str) -> None:
        """Forget a meeting entirely."""
        entry = self._meetings.pop(meeting_id, None)
        if entry is not None:
            shard, cost = entry
            self._loads[shard] = self._loads.get(shard, 0.0) - cost

    # -- reads ----------------------------------------------------------- #

    def load(self, shard: str) -> float:
        """Total assigned cost on one shard (0.0 when untracked)."""
        return self._loads.get(shard, 0.0)

    def loads(self, shards: Optional[List[str]] = None) -> Dict[str, float]:
        """Assigned cost per shard (restricted to ``shards`` when given)."""
        if shards is None:
            return dict(self._loads)
        return {s: self._loads.get(s, 0.0) for s in shards}

    def cost_of(self, meeting_id: str) -> float:
        """One meeting's tracked cost (DEFAULT_MEETING_COST if unknown)."""
        entry = self._meetings.get(meeting_id)
        return DEFAULT_MEETING_COST if entry is None else entry[1]

    def shard_of(self, meeting_id: str) -> Optional[str]:
        """The shard a tracked meeting sits on (None if untracked)."""
        entry = self._meetings.get(meeting_id)
        return None if entry is None else entry[0]

    def meetings_on(self, shard: str) -> List[Tuple[str, float]]:
        """(meeting_id, cost) pairs homed on one shard, sorted by id."""
        return sorted(
            (mid, cost)
            for mid, (s, cost) in self._meetings.items()
            if s == shard
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly view (the cluster's ``stats()['placement']``)."""
        return {
            "loads": {s: round(v, 3) for s, v in sorted(self._loads.items())},
            "meetings": len(self._meetings),
            "total_cost": round(sum(self._loads.values()), 3),
        }


@dataclass(frozen=True)
class LoadSignals:
    """One shard's combined load view: the deterministic cost the placer
    uses plus the live/observed signals operators watch."""

    shard: str
    #: Deterministic assigned cost (drives placement and hot detection).
    assigned_cost: float
    #: Meetings currently homed on the shard.
    meetings: int
    #: Live scheduler backlog (pending solve requests).
    queue_depth: int
    #: p95 of the sampled solve-latency series from the obs time-series
    #: store, in seconds (None without a store / samples) — wall-clock,
    #: so advisory only.
    solve_p95_s: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard": self.shard,
            "assigned_cost": round(self.assigned_cost, 3),
            "meetings": self.meetings,
            "queue_depth": self.queue_depth,
            "solve_p95_s": (
                None if self.solve_p95_s is None
                else round(self.solve_p95_s, 6)
            ),
        }


def load_signals(
    cluster: "ControllerCluster",
    store: Optional["TimeSeriesStore"] = None,
) -> List[LoadSignals]:
    """Join the deterministic load model with live queue depths and the
    time-series solve-latency p95, one row per live shard."""
    from ..obs import names as obs_names
    from ..obs.registry import get_registry

    p95: Optional[float] = None
    if store is not None:
        stats = store.window(obs_names.CLUSTER_SOLVE_SECONDS)
        if stats.count:
            p95 = stats.p95
    if p95 is None:
        reg = get_registry()
        if reg.enabled:
            hist = reg.histogram(obs_names.CLUSTER_SOLVE_SECONDS)
            if hist.count:
                p95 = hist.percentile(95)
    rows: List[LoadSignals] = []
    for shard in cluster.live_shards:
        worker = cluster._shards[shard]
        meetings = cluster.load_model.meetings_on(shard)
        rows.append(
            LoadSignals(
                shard=shard,
                assigned_cost=cluster.load_model.load(shard),
                meetings=len(meetings),
                queue_depth=worker.scheduler.queue_depth,
                solve_p95_s=p95,
            )
        )
    return rows
