"""Hot-shard detection and live drain: Tetris's defrag loop.

Packing only helps if placements stay good after churn: meetings grow
(screen shares start, galleries fill) and a shard that fit yesterday
can breach its budget today.  :class:`HotShardDetector` watches the
deterministic per-shard load model and *drains* over-budget shards by
live-migrating their heaviest meetings onto the emptiest peers, through
:meth:`~repro.cluster.cluster.ControllerCluster.migrate_meeting` — the
fallback-then-reconverge path, so no meeting goes dark mid-move.

Moves are accepted only when they strictly reduce the source shard's
load below what the target would reach, which makes each rebalance round
a monotone improvement: the loop cannot ping-pong a meeting between two
shards, and it terminates at a fixpoint where either every shard is
within budget or no single move helps (e.g. one meeting alone exceeds
the budget).  Everything derives from the deterministic load model, so
seeded runs rebalance identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..obs import names as obs_names
from ..obs.spans import span

if TYPE_CHECKING:  # placement -> cluster is typing-only (no runtime cycle)
    from ..cluster.cluster import ControllerCluster, ServedSolution


@dataclass
class RebalanceResult:
    """What one :meth:`HotShardDetector.rebalance` round did."""

    #: (meeting_id, source_shard, target_shard, cost) per migration.
    moves: List[Tuple[str, str, str, float]] = field(default_factory=list)
    #: Degraded (single-stream fallback) solutions served mid-move, in
    #: move order — callers deliver these like any other served batch.
    served: List["ServedSolution"] = field(default_factory=list)
    #: Shards still over budget at the fixpoint (no improving move left).
    hot_after: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "moves": [
                {
                    "meeting": mid,
                    "from": src,
                    "to": dst,
                    "cost": round(cost, 3),
                }
                for mid, src, dst, cost in self.moves
            ],
            "served": len(self.served),
            "hot_after": list(self.hot_after),
        }


class HotShardDetector:
    """Drains shards whose assigned cost exceeds the budget.

    Args:
        budget: per-shard assigned-cost budget; ``<= 0`` disables the
            detector (every :meth:`rebalance` is a no-op).
        max_moves_per_round: cap on migrations per rebalance call, so a
            badly skewed fleet drains over several ticks instead of
            serving one giant fallback burst.
    """

    def __init__(self, budget: float, max_moves_per_round: int = 8) -> None:
        if max_moves_per_round < 1:
            raise ValueError("max_moves_per_round must be >= 1")
        self.budget = float(budget)
        self.max_moves_per_round = int(max_moves_per_round)

    # ------------------------------------------------------------------ #

    def hot_shards(self, cluster: "ControllerCluster") -> List[str]:
        """Live shards currently over budget, hottest first."""
        if self.budget <= 0:
            return []
        loads = cluster.load_model.loads(cluster.live_shards)
        return [
            s
            for s, load in sorted(loads.items(), key=lambda kv: (-kv[1], kv[0]))
            if load > self.budget
        ]

    def _best_move(
        self, cluster: "ControllerCluster", source: str
    ) -> Optional[Tuple[str, str, float]]:
        """The best single migration off ``source``: move the largest
        meeting whose transfer strictly improves the packing, to the
        least-loaded other shard.  None when no move helps."""
        live = cluster.live_shards
        others = [s for s in live if s != source]
        if not others:
            return None
        loads = cluster.load_model.loads(live)
        target = min(others, key=lambda s: (loads[s], s))
        # Largest-first drains fastest; require strict improvement so the
        # round converges (the target must end up below where the source
        # started).
        for mid, cost in sorted(
            cluster.load_model.meetings_on(source),
            key=lambda mc: (-mc[1], mc[0]),
        ):
            if loads[target] + cost < loads[source]:
                return (mid, target, cost)
        return None

    def rebalance(
        self,
        cluster: "ControllerCluster",
        now_s: float,
        reason: str = "hot_shard",
    ) -> RebalanceResult:
        """Run one drain round: migrate up to ``max_moves_per_round``
        meetings off over-budget shards, hottest shard first."""
        result = RebalanceResult()
        if self.budget <= 0:
            return result
        with span(obs_names.SPAN_PLACEMENT_REBALANCE):
            while len(result.moves) < self.max_moves_per_round:
                moved = False
                for source in self.hot_shards(cluster):
                    best = self._best_move(cluster, source)
                    if best is None:
                        continue
                    mid, target, cost = best
                    served = cluster.migrate_meeting(
                        mid, target, now_s, reason=reason
                    )
                    result.moves.append((mid, source, target, cost))
                    if served is not None:
                        result.served.append(served)
                    moved = True
                    break
                if not moved:
                    break
            result.hot_after = self.hot_shards(cluster)
        return result

    def drainable(self, cluster: "ControllerCluster", shard: str) -> bool:
        """True when ``shard`` still has an improving move available —
        i.e. a further :meth:`rebalance` round would keep draining it."""
        return self._best_move(cluster, shard) is not None
