"""Fleet placement: load-aware meeting packing, live migration, and
SLO-driven shard autoscaling (the *Tetris* layer above ``cluster/``).

See ``docs/PLACEMENT.md`` for the full design.
"""

from .loadmodel import (
    DEFAULT_MEETING_COST,
    LoadSignals,
    ShardLoadModel,
    conference_cost,
    load_signals,
    meeting_cost,
)
from .policies import (
    POLICIES,
    POLICY_BEST_FIT,
    POLICY_HASH,
    POLICY_LEAST_LOADED,
    BestFitPolicy,
    HashPolicy,
    LeastLoadedPolicy,
    PlacementPolicy,
    get_policy,
)
from .migration import HotShardDetector, RebalanceResult
from .autoscaler import AutoscaleAction, AutoscalerConfig, ShardAutoscaler

__all__ = [
    "DEFAULT_MEETING_COST",
    "LoadSignals",
    "ShardLoadModel",
    "conference_cost",
    "load_signals",
    "meeting_cost",
    "POLICIES",
    "POLICY_BEST_FIT",
    "POLICY_HASH",
    "POLICY_LEAST_LOADED",
    "BestFitPolicy",
    "HashPolicy",
    "LeastLoadedPolicy",
    "PlacementPolicy",
    "get_policy",
    "HotShardDetector",
    "RebalanceResult",
    "AutoscaleAction",
    "AutoscalerConfig",
    "ShardAutoscaler",
]
