"""Pluggable placement policies: where does a new meeting go?

One interface, three strategies (PAPERS.md *Tetris*):

* ``hash`` — the consistent-hash ring, unchanged: load-blind but
  minimal-movement under shard churn.  The byte-identical baseline every
  pre-placement workload keeps.
* ``best_fit`` — Tetris-style packing: among shards that can take the
  meeting *without breaching the per-shard cost budget*, pick the
  fullest (tightest remaining fit).  Packs heavy meetings tightly and
  leaves headroom for the next heavy arrival.
* ``least_loaded`` — always the emptiest shard: best instantaneous
  balance, but fragments headroom (no bin-packing discipline).

Every policy is deterministic: decisions derive only from the meeting
id, its deterministic cost estimate, and the current assigned-cost loads
— never from wall-clock signals — so seeded runs place identically.
Ties break lexicographically by shard name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Sequence, Tuple

if TYPE_CHECKING:  # placement -> cluster is typing-only (no runtime cycle)
    from ..cluster.hashring import ConsistentHashRing

#: Registered policy names, in documentation order.
POLICY_HASH = "hash"
POLICY_BEST_FIT = "best_fit"
POLICY_LEAST_LOADED = "least_loaded"

POLICIES: Tuple[str, ...] = (POLICY_HASH, POLICY_BEST_FIT, POLICY_LEAST_LOADED)


class PlacementPolicy:
    """The placement interface: one meeting in, one shard out."""

    #: Stable registry name.
    name: str = "base"
    #: True when ring membership drives ownership (meetings re-home on
    #: ring growth); packing policies keep placements sticky instead.
    uses_ring: bool = False

    def choose(
        self,
        meeting_id: str,
        cost: float,
        shards: Sequence[str],
        loads: Mapping[str, float],
        budget: float,
        ring: "ConsistentHashRing",
    ) -> str:
        """Pick the shard for one meeting.

        Args:
            meeting_id: the meeting being placed.
            cost: its deterministic cost estimate
                (:func:`~repro.placement.loadmodel.meeting_cost`).
            shards: live shard names, sorted.
            loads: current assigned cost per live shard.
            budget: per-shard cost budget (0 = unbounded).
            ring: the cluster's consistent-hash ring (the ``hash``
                policy's source of truth).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


def _least_loaded(
    shards: Sequence[str], loads: Mapping[str, float]
) -> str:
    return min(shards, key=lambda s: (loads.get(s, 0.0), s))


class HashPolicy(PlacementPolicy):
    """Today's baseline: the consistent-hash ring decides."""

    name = POLICY_HASH
    uses_ring = True

    def choose(self, meeting_id, cost, shards, loads, budget, ring) -> str:
        return ring.node_for(meeting_id)


class BestFitPolicy(PlacementPolicy):
    """Tetris packing: the fullest shard that still fits under budget.

    With no budget (``budget <= 0``) or when nothing fits, it degrades
    to least-loaded — overflow lands where it hurts least.
    """

    name = POLICY_BEST_FIT

    def choose(self, meeting_id, cost, shards, loads, budget, ring) -> str:
        if not shards:
            raise ValueError("no live shards to place on")
        if budget > 0:
            feasible = [
                s for s in shards if loads.get(s, 0.0) + cost <= budget
            ]
            if feasible:
                # Tightest fit: highest current load; ties -> first name.
                return max(
                    feasible,
                    key=lambda s: (loads.get(s, 0.0), *_name_desc(s)),
                )
        return _least_loaded(shards, loads)


def _name_desc(name: str) -> Tuple[int, ...]:
    """Invert a name's sort order so ``max`` breaks ties toward the
    lexicographically *smallest* shard name."""
    return tuple(-b for b in name.encode("utf-8"))


class LeastLoadedPolicy(PlacementPolicy):
    """Always the emptiest shard (by assigned cost)."""

    name = POLICY_LEAST_LOADED

    def choose(self, meeting_id, cost, shards, loads, budget, ring) -> str:
        if not shards:
            raise ValueError("no live shards to place on")
        return _least_loaded(shards, loads)


_POLICY_TYPES: Dict[str, type] = {
    POLICY_HASH: HashPolicy,
    POLICY_BEST_FIT: BestFitPolicy,
    POLICY_LEAST_LOADED: LeastLoadedPolicy,
}


def get_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy by name.

    Raises:
        ValueError: for an unknown policy name (message lists the
            known ones).
    """
    try:
        return _POLICY_TYPES[name]()
    except KeyError:
        known = ", ".join(POLICIES)
        raise ValueError(
            f"unknown placement policy {name!r}; known: {known}"
        ) from None
