"""SLO-driven shard autoscaling: burn → grow, sustained idle → shrink.

The PR 4 SLO engine already classifies every report window into OK /
WARN / BURN verdicts (:class:`~repro.obs.slo.SloVerdict`, with
``fast_burn`` marking budget-burn-rate breaches).  This module closes
the loop: a fast-burning latency SLO adds a shard; a fleet whose total
assigned cost would comfortably fit on fewer shards for several
consecutive observations drains the emptiest shard (live migration,
no degraded serves) and retires it.

Scale-in is deliberately the slow path — it requires ``idle_rounds``
consecutive idle observations and drains *before* killing, so the
``kill_shard`` that follows finds an empty shard and serves zero
fallbacks.  All decisions derive from verdicts and the deterministic
load model, so seeded runs scale identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence

from ..obs import names as obs_names
from ..obs.registry import get_registry

if TYPE_CHECKING:  # placement -> cluster is typing-only (no runtime cycle)
    from ..cluster.cluster import ControllerCluster
    from ..obs.slo import SloVerdict


@dataclass(frozen=True)
class AutoscalerConfig:
    """Bounds and thresholds for :class:`ShardAutoscaler`."""

    min_shards: int = 1
    max_shards: int = 16
    #: Per-shard cost budget used to judge idleness (usually the same
    #: budget the hot-shard detector enforces); <= 0 disables scale-in.
    shard_cost_budget: float = 0.0
    #: Scale in when total assigned cost < this fraction of the budget
    #: the *remaining* shards would offer after removing one.
    idle_utilization: float = 0.3
    #: Consecutive idle observations required before scaling in.
    idle_rounds: int = 3

    def __post_init__(self) -> None:
        if self.min_shards < 1:
            raise ValueError("min_shards must be >= 1")
        if self.max_shards < self.min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 < self.idle_utilization < 1.0:
            raise ValueError("idle_utilization must be in (0, 1)")
        if self.idle_rounds < 1:
            raise ValueError("idle_rounds must be >= 1")


@dataclass(frozen=True)
class AutoscaleAction:
    """One scaling decision, for reports and tests."""

    action: str  # "add" | "remove"
    shard: str
    reason: str

    def to_dict(self) -> Dict[str, str]:
        return {"action": self.action, "shard": self.shard,
                "reason": self.reason}


class ShardAutoscaler:
    """Turns SLO verdicts + the load model into add/kill_shard calls."""

    def __init__(
        self,
        cluster: "ControllerCluster",
        config: AutoscalerConfig = AutoscalerConfig(),
    ) -> None:
        self.cluster = cluster
        self.config = config
        self._idle_streak = 0
        #: action name -> count, deterministic mirror of the obs counter.
        self.actions: Dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def _burning(self, verdicts: Sequence["SloVerdict"]) -> List[str]:
        return sorted(v.name for v in verdicts if v.fast_burn)

    def _idle(self) -> bool:
        cfg = self.config
        if cfg.shard_cost_budget <= 0:
            return False
        live = self.cluster.live_shards
        if len(live) <= cfg.min_shards:
            return False
        total = sum(self.cluster.load_model.loads(live).values())
        capacity_after = cfg.shard_cost_budget * (len(live) - 1)
        return total < cfg.idle_utilization * capacity_after

    def _record(self, action: AutoscaleAction) -> None:
        self.actions[action.action] = self.actions.get(action.action, 0) + 1
        reg = get_registry()
        if reg.enabled:
            reg.counter(
                obs_names.AUTOSCALE_ACTIONS, action=action.action
            ).inc()

    def observe(
        self, verdicts: Sequence["SloVerdict"], now_s: float
    ) -> List[AutoscaleAction]:
        """Digest one SLO report; returns the actions taken (possibly
        none).  At most one scaling action per observation — scaling is
        damped, not reactive per-verdict."""
        cluster = self.cluster
        cfg = self.config
        actions: List[AutoscaleAction] = []

        burning = self._burning(verdicts)
        if burning:
            self._idle_streak = 0
            if len(cluster.live_shards) < cfg.max_shards:
                name = cluster.add_shard(None, now_s)
                action = AutoscaleAction(
                    action="add", shard=name,
                    reason="slo_burn:" + ",".join(burning),
                )
                self._record(action)
                actions.append(action)
            return actions

        if self._idle():
            self._idle_streak += 1
            if self._idle_streak >= cfg.idle_rounds:
                self._idle_streak = 0
                live = cluster.live_shards
                loads = cluster.load_model.loads(live)
                # Retire the emptiest shard: drain it live (no degraded
                # serves), then kill_shard finds it empty.
                victim = min(live, key=lambda s: (loads[s], s))
                for mid, _cost in cluster.load_model.meetings_on(victim):
                    others = [s for s in cluster.live_shards if s != victim]
                    target = min(
                        others,
                        key=lambda s: (cluster.load_model.load(s), s),
                    )
                    cluster.migrate_meeting(
                        mid, target, now_s, reason="scale_in", degrade=False
                    )
                cluster.kill_shard(victim, now_s)
                action = AutoscaleAction(
                    action="remove", shard=victim, reason="sustained_idle"
                )
                self._record(action)
                actions.append(action)
        else:
            self._idle_streak = 0
        return actions

    def stats(self) -> Dict[str, object]:
        return {
            "actions": dict(sorted(self.actions.items())),
            "idle_streak": self._idle_streak,
            "config": {
                "min_shards": self.config.min_shards,
                "max_shards": self.config.max_shards,
                "shard_cost_budget": self.config.shard_cost_budget,
                "idle_utilization": self.config.idle_utilization,
                "idle_rounds": self.config.idle_rounds,
            },
        }
