"""Controller call-interval process (Fig. 12).

Fig. 12 plots the CDF of the gap between consecutive control-algorithm
invocations across the production fleet: minimum 1 s, maximum 3 s, mean
about 1.8 s.  The gap distribution follows from the trigger policy
(:class:`~repro.control.gso_controller.GsoControllerRuntime`) applied to
the network-change event process of a meeting:

* significant bandwidth-change events arrive randomly (Poisson with a
  per-meeting rate that depends on how volatile its links are);
* an event pulls the next solve in, but never sooner than ``min_interval``
  after the previous one;
* with no event, the periodic trigger fires at ``max_interval``.

Under this policy a gap is ``clamp(E, min, max)`` where ``E`` is the wait
for the first event after the last solve — giving the truncated
exponential-with-atoms CDF this module computes both analytically and by
Monte Carlo sampling.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class IntervalProcess:
    """The trigger-policy interval distribution.

    Args:
        event_rate_hz: Poisson rate of significant network-change events.
            The default 0.55 Hz makes the mean interval ~1.8 s, matching
            the deployment (Sec. 6).
        min_interval_s / max_interval_s: the trigger-policy clamps.
    """

    event_rate_hz: float = 0.55
    min_interval_s: float = 1.0
    max_interval_s: float = 3.0

    def __post_init__(self) -> None:
        if self.event_rate_hz <= 0:
            raise ValueError("event rate must be positive")
        if not 0 < self.min_interval_s <= self.max_interval_s:
            raise ValueError("need 0 < min <= max interval")

    # ------------------------------------------------------------------ #
    # Analytic form
    # ------------------------------------------------------------------ #

    def cdf(self, t: float) -> float:
        """P(interval <= t) for the clamped exponential."""
        lam = self.event_rate_hz
        lo, hi = self.min_interval_s, self.max_interval_s
        if t < lo:
            return 0.0
        if t >= hi:
            return 1.0
        # Atom at lo: all events arriving before lo clamp up to it.
        return 1.0 - math.exp(-lam * t)

    def mean(self) -> float:
        """E[clamp(Exp(lambda), lo, hi)] in closed form."""
        lam = self.event_rate_hz
        lo, hi = self.min_interval_s, self.max_interval_s
        # E = lo*P(E<lo) + int_lo^hi t f(t) dt + hi*P(E>hi)
        p_lo = 1.0 - math.exp(-lam * lo)
        p_hi = math.exp(-lam * hi)
        middle = (
            (lo + 1.0 / lam) * math.exp(-lam * lo)
            - (hi + 1.0 / lam) * math.exp(-lam * hi)
        )
        return lo * p_lo + middle + hi * p_hi

    # ------------------------------------------------------------------ #
    # Sampling
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random) -> float:
        """Draw one call interval."""
        wait = rng.expovariate(self.event_rate_hz)
        return min(self.max_interval_s, max(self.min_interval_s, wait))

    def sample_many(self, n: int, rng: random.Random) -> List[float]:
        """Draw n call intervals."""
        return [self.sample(rng) for _ in range(n)]


def empirical_cdf(samples: Sequence[float], points: int = 50) -> List[Tuple[float, float]]:
    """(t, P(interval <= t)) pairs over the sample range."""
    if not samples:
        return []
    ordered = sorted(samples)
    lo, hi = ordered[0], ordered[-1]
    result: List[Tuple[float, float]] = []
    for k in range(points + 1):
        t = lo + (hi - lo) * k / points
        count = sum(1 for s in ordered if s <= t)
        result.append((t, count / len(ordered)))
    return result
