"""Vectorized fleet model: 10^5+ synthetic users as numpy populations.

The scalar :class:`~repro.deploy.fleet.FleetSampler` orchestrates each
conference through the real solver — right for the Figs. 10-11 quality
studies, far too slow for fleet-*placement* questions ("how many
meetings/sec can N shards sustain under policy P?").  This module keeps
the same population model but vectorizes it:

* :func:`sample_population` — one numpy draw for 10^5+ clients (profile
  mixture, uplink/downlink/loss), mirroring ``FleetSampler``'s per-client
  draws;
* :func:`score_subscribers_batch` — the exact
  :func:`~repro.deploy.fleet.score_subscriber` arithmetic on arrays
  (parity-pinned by tests);
* :func:`sample_fleet` — a meeting-size workload with the production
  shape: a mass of small calls (the geometric tail) plus a handful of
  webinar-scale meetings that dominate solve cost;
* :func:`place_fleet` — the workload pushed through the *real* placement
  policies (:mod:`repro.placement.policies`) and the real consistent-hash
  ring, meeting by meeting;
* :func:`sustainable_rate` — the analytic throughput frontier: the
  largest fleet-wide solve rate (meetings/sec) whose p95 solve latency
  stays inside the ``solve_latency_p95`` SLO, found by bisection on a
  deterministic queueing model (service scales with the load model's
  meeting cost; a shard's backlog inflates latency by ``1/(1-rho)``).

Everything is seeded ``numpy.random.default_rng`` plus pure arithmetic —
no wall clock anywhere — so two invocations with the same seed are
byte-identical, which is what lets CI gate the best_fit/hash throughput
ratio (``BENCH_PR7.json``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.hashring import ConsistentHashRing
from ..placement.loadmodel import conference_cost
from ..placement.policies import get_policy
from .fleet import DEFAULT_PROFILES, NetworkProfile

#: Seconds of shard CPU per unit of meeting cost (one subscription edge /
#: publisher) in the analytic model.  Calibrated so a webinar-scale solve
#: (~cost 3*10^4) costs tens of milliseconds, matching the measured
#: BENCH_PR6 kernel scale.
SEC_PER_COST = 1e-6

#: Headroom multiplier for the default per-shard budget: a perfectly
#: balanced packing plus 5 % slack.
BUDGET_HEADROOM = 1.05


# --------------------------------------------------------------------- #
# Populations
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Population:
    """Vectorized client draws (parallel arrays, one row per client)."""

    profile: np.ndarray  # int index into profiles
    uplink_kbps: np.ndarray  # float
    downlink_kbps: np.ndarray  # float
    loss_rate: np.ndarray  # float

    @property
    def users(self) -> int:
        return int(self.profile.shape[0])


def sample_population(
    seed: int,
    users: int,
    profiles: Sequence[NetworkProfile] = DEFAULT_PROFILES,
    day_quality: float = 1.0,
) -> Population:
    """Draw ``users`` clients from the profile mixture in one shot."""
    if users < 1:
        raise ValueError("users must be >= 1")
    rng = np.random.default_rng(seed)
    weights = np.asarray([p.weight for p in profiles], dtype=np.float64)
    weights = weights / weights.sum()
    idx = rng.choice(len(profiles), size=users, p=weights)
    up_lo = np.asarray([p.uplink_kbps[0] for p in profiles], dtype=np.float64)
    up_hi = np.asarray([p.uplink_kbps[1] for p in profiles], dtype=np.float64)
    dn_lo = np.asarray(
        [p.downlink_kbps[0] for p in profiles], dtype=np.float64
    )
    dn_hi = np.asarray(
        [p.downlink_kbps[1] for p in profiles], dtype=np.float64
    )
    ls_lo = np.asarray([p.loss_rate[0] for p in profiles], dtype=np.float64)
    ls_hi = np.asarray([p.loss_rate[1] for p in profiles], dtype=np.float64)
    u = rng.random(users)
    up = (up_lo[idx] + u * (up_hi[idx] - up_lo[idx])) * day_quality
    u = rng.random(users)
    down = (dn_lo[idx] + u * (dn_hi[idx] - dn_lo[idx])) * day_quality
    u = rng.random(users)
    loss = ls_lo[idx] + u * (ls_hi[idx] - ls_lo[idx])
    return Population(
        profile=idx,
        uplink_kbps=np.maximum(100.0, np.floor(up)),
        downlink_kbps=np.maximum(150.0, np.floor(down)),
        loss_rate=loss,
    )


def score_subscribers_batch(
    utilization: np.ndarray,
    loss_rate: np.ndarray,
    delivered_fps: float = 30.0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`~repro.deploy.fleet.score_subscriber` on arrays.

    Returns (video_stall, voice_stall, framerate) arrays; element ``i``
    matches the scalar function exactly (pinned by a parity test).
    """
    utilization = np.asarray(utilization, dtype=np.float64)
    loss_rate = np.asarray(loss_rate, dtype=np.float64)
    over = np.maximum(0.0, utilization - 0.9)
    video = np.minimum(1.0, 2.5 * over**1.5) + np.minimum(
        0.6, 5.0 * loss_rate
    )
    video = np.minimum(1.0, video)
    overload = np.maximum(0.0, utilization - 1.0)
    voice = np.minimum(
        1.0, 0.8 * overload + 8.0 * np.maximum(0.0, loss_rate - 0.015)
    )
    fps = (
        delivered_fps
        * (1.0 - np.minimum(0.6, 2.0 * overload))
        * (1.0 - np.minimum(0.5, 2.0 * loss_rate))
        * (1.0 - 0.4 * video)
    )
    return video, voice, fps


# --------------------------------------------------------------------- #
# Fleet workloads
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FleetWorkload:
    """A sampled set of concurrent meetings (sizes + solve costs)."""

    sizes: np.ndarray  # int participants per meeting
    costs: np.ndarray  # float, conference_cost(size)

    @property
    def meetings(self) -> int:
        return int(self.sizes.shape[0])

    @property
    def users(self) -> int:
        return int(self.sizes.sum())

    def meeting_id(self, index: int) -> str:
        """Stable meeting id for ring hashing."""
        return f"vm-{index}"


def sample_fleet(
    seed: int,
    users: int = 100_000,
    mean_size: float = 4.0,
    max_size: int = 50,
    webinars: int = 16,
    webinar_size: Tuple[int, int] = (150, 190),
) -> FleetWorkload:
    """Sample meetings until ``users`` participants are hosted.

    Small meetings follow the scalar sampler's ``2 + exponential tail``
    law (zero tail at ``mean_size <= 2``, mirroring ``FleetSampler``);
    ``webinars`` giant meetings model the webinar/all-hands mass that
    dominates solve cost in production fleets, shuffled uniformly into
    the arrival order.
    """
    if users < 2:
        raise ValueError("users must be >= 2")
    if mean_size < 2:
        raise ValueError("mean meeting size must be >= 2")
    if webinars < 0:
        raise ValueError("webinars must be >= 0")
    rng = np.random.default_rng(seed)
    web_sizes = (
        rng.integers(webinar_size[0], webinar_size[1] + 1, size=webinars)
        if webinars
        else np.empty(0, dtype=np.int64)
    )
    remaining = max(0, users - int(web_sizes.sum()))
    # Mean small-meeting size is ~mean_size, so oversample then trim.
    est = max(16, int(remaining / max(2.0, mean_size) * 1.25))
    sizes: List[np.ndarray] = []
    hosted = 0
    while hosted < remaining:
        if mean_size <= 2:
            extra = np.zeros(est)
        else:
            extra = rng.exponential(mean_size - 2.0, size=est)
        batch = np.minimum(max_size, 2 + extra.astype(np.int64))
        sizes.append(batch)
        hosted += int(batch.sum())
    small = np.concatenate(sizes) if sizes else np.empty(0, dtype=np.int64)
    if small.size:
        cut = int(np.searchsorted(np.cumsum(small), remaining)) + 1
        small = small[:cut]
    all_sizes = np.concatenate([small, web_sizes])
    order = rng.permutation(all_sizes.shape[0])
    all_sizes = all_sizes[order]
    costs = np.asarray(
        [conference_cost(int(s)) for s in all_sizes], dtype=np.float64
    )
    return FleetWorkload(sizes=all_sizes, costs=costs)


# --------------------------------------------------------------------- #
# Placement + the throughput frontier
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class FleetPlacement:
    """A workload placed onto shards by one policy."""

    policy: str
    shard_names: Tuple[str, ...]
    #: meeting index -> shard index
    assignment: np.ndarray
    #: total assigned cost per shard
    shard_cost: np.ndarray
    budget: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "shards": len(self.shard_names),
            "budget": round(self.budget, 3),
            "shard_cost_max": round(float(self.shard_cost.max()), 3),
            "shard_cost_mean": round(float(self.shard_cost.mean()), 3),
            "imbalance": round(
                float(self.shard_cost.max() / max(1e-9, self.shard_cost.mean())),
                4,
            ),
        }


def place_fleet(
    workload: FleetWorkload,
    policy: str = "hash",
    shards: int = 16,
    budget: Optional[float] = None,
    vnodes: int = 64,
) -> FleetPlacement:
    """Run the workload through a real placement policy, in arrival order.

    Uses the same :mod:`repro.placement.policies` objects and the same
    consistent-hash ring as the live cluster, so the model measures the
    actual decision procedure, not an idealized stand-in.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    names = [f"shard-{i}" for i in range(shards)]
    live = sorted(names)
    index = {name: i for i, name in enumerate(names)}
    if budget is None:
        budget = BUDGET_HEADROOM * float(workload.costs.sum()) / shards
    pol = get_policy(policy)
    ring = ConsistentHashRing(names, vnodes=vnodes)
    loads = {name: 0.0 for name in names}
    assignment = np.empty(workload.meetings, dtype=np.int64)
    for i in range(workload.meetings):
        cost = float(workload.costs[i])
        shard = pol.choose(
            workload.meeting_id(i), cost, live, loads, budget, ring
        )
        loads[shard] += cost
        assignment[i] = index[shard]
    shard_cost = np.bincount(
        assignment, weights=workload.costs, minlength=shards
    )
    return FleetPlacement(
        policy=policy,
        shard_names=tuple(names),
        assignment=assignment,
        shard_cost=shard_cost,
        budget=budget,
    )


def sustainable_rate(
    workload: FleetWorkload,
    placement: FleetPlacement,
    slo_p95_s: float = 0.25,
    sec_per_cost: float = SEC_PER_COST,
    iterations: int = 60,
    service_s: Optional[np.ndarray] = None,
) -> float:
    """Max fleet-wide solve rate (meetings/sec) at the p95 solve SLO.

    Model: solve requests arrive fleet-wide at rate ``lam``, spread
    uniformly over hosted meetings; a meeting's solve costs
    ``cost * sec_per_cost`` seconds on its shard, and a shard at
    utilization ``rho`` stretches every resident solve by ``1/(1-rho)``
    (the standard single-server queueing inflation).  The p95 is taken
    over all meetings' solve latencies; bisection finds the largest
    ``lam`` that keeps it inside the SLO.  Pure arithmetic on the seeded
    workload — no wall clock — so the result is byte-deterministic.

    ``service_s`` overrides the analytic per-meeting service times with
    measured ones (e.g. drawn from a recorded
    ``repro.latency_profile/v1`` — see
    ``deploy.ingress_stream.measured_service_times``); shard demand
    then follows the measured times too.
    """
    n = workload.meetings
    if service_s is not None:
        service = np.asarray(service_s, dtype=np.float64)
        if service.shape != (n,):
            raise ValueError(
                f"service_s must have shape ({n},), got {service.shape}"
            )
    else:
        service = workload.costs * sec_per_cost
    if service_s is not None:
        per_shard_demand = (
            np.bincount(
                placement.assignment,
                weights=service,
                minlength=len(placement.shard_cost),
            )
            / n
        )
    else:
        per_shard_demand = placement.shard_cost * sec_per_cost / n
    max_demand = float(per_shard_demand.max())
    if max_demand <= 0.0:
        return 0.0
    if float(np.percentile(service, 95)) > slo_p95_s:
        return 0.0  # the SLO is unmeetable even on an idle fleet
    shard_of = placement.assignment
    lo, hi = 0.0, 1.0 / max_demand  # hi saturates the hottest shard
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        rho = mid * per_shard_demand
        headroom = 1.0 - rho[shard_of]
        lat = np.where(
            headroom > 1e-12, service / np.maximum(headroom, 1e-12), np.inf
        )
        if float(np.percentile(lat, 95)) <= slo_p95_s:
            lo = mid
        else:
            hi = mid
    return lo


def throughput_report(
    seed: int,
    users: int = 100_000,
    shards: int = 16,
    policies: Sequence[str] = ("hash", "best_fit", "least_loaded"),
    slo_p95_s: float = 0.25,
    **workload_kwargs,
) -> Dict[str, object]:
    """One deterministic fleet-throughput comparison across policies."""
    workload = sample_fleet(seed, users=users, **workload_kwargs)
    rows: Dict[str, object] = {}
    rates: Dict[str, float] = {}
    for policy in policies:
        placement = place_fleet(workload, policy=policy, shards=shards)
        rate = sustainable_rate(workload, placement, slo_p95_s=slo_p95_s)
        rates[policy] = rate
        rows[policy] = {
            **placement.to_dict(),
            "meetings_per_s": round(rate, 3),
        }
    report: Dict[str, object] = {
        "seed": seed,
        "users": workload.users,
        "meetings": workload.meetings,
        "shards": shards,
        "slo_p95_s": slo_p95_s,
        "policies": rows,
    }
    if "hash" in rates and rates["hash"] > 0:
        for policy, rate in rates.items():
            if policy != "hash":
                report[f"speedup_{policy}_vs_hash"] = round(
                    rate / rates["hash"], 4
                )
    return report
