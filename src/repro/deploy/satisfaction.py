"""User-satisfaction model (Fig. 11).

The paper reports the "user satisfaction score (the percentage of users'
positive feedback)" improving 7.2 % across the rollout.  Satisfaction is
modelled as a logistic function of the experience metrics: users tolerate
small degradation, then turn negative quickly once stalls become common —
the same saturating shape Fig. 1's complaint mix implies (stalls dominate
reported issues).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from .rollout import DailyPoint


@dataclass(frozen=True)
class SatisfactionModel:
    """Maps daily experience metrics to a satisfaction score in (0, 1).

    ``score = sigmoid(bias - w_v*video_stall - w_a*voice_stall
    - w_f*(1 - framerate/30))`` — weights reflect Fig. 1's complaint mix
    (video stalls 29 %, voice stalls 23 %, blurry 18 %).
    """

    bias: float = 2.2
    video_weight: float = 9.0
    voice_weight: float = 7.0
    framerate_weight: float = 4.0
    nominal_fps: float = 30.0

    def score(self, video_stall: float, voice_stall: float, framerate: float) -> float:
        """Satisfaction in (0, 1) for one day's experience metrics."""
        x = (
            self.bias
            - self.video_weight * video_stall
            - self.voice_weight * voice_stall
            - self.framerate_weight * max(0.0, 1.0 - framerate / self.nominal_fps)
        )
        return 1.0 / (1.0 + math.exp(-x))

    def daily_scores(self, points: Sequence[DailyPoint]) -> List[float]:
        """Satisfaction score per daily point."""
        return [
            self.score(p.video_stall, p.voice_stall, p.framerate)
            for p in points
        ]


def satisfaction_improvement(
    points: Sequence[DailyPoint], model: SatisfactionModel = SatisfactionModel()
) -> float:
    """Relative satisfaction gain from pre-deployment to full coverage."""
    before = [
        model.score(p.video_stall, p.voice_stall, p.framerate)
        for p in points
        if p.coverage == 0.0
    ]
    after = [
        model.score(p.video_stall, p.voice_stall, p.framerate)
        for p in points
        if p.coverage >= 1.0
    ]
    if not before or not after:
        raise ValueError("need both pre-deployment and full-coverage days")
    return (sum(after) / len(after)) / (sum(before) / len(before)) - 1.0
