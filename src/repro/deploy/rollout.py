"""Deployment rollout: the Fig. 10/11 timeline machinery.

The paper's schedule: initial deployment on 2021-11-20, coverage growing
until full-scale on 2021-12-20, with daily metrics plotted from 2021-10-01
to 2022-01-14.  :class:`RolloutSchedule` maps dates to GSO coverage;
:class:`DeploymentSimulation` runs the fleet sampler day by day, assigning
each sampled conference to GSO with probability equal to that day's
coverage, and aggregates the daily averages the figures plot.
"""

from __future__ import annotations

import datetime as dt
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from .fleet import ConferenceMetrics, ConferenceScorer, FleetSampler

if TYPE_CHECKING:  # deploy -> cluster is a soft, runtime-optional edge
    from ..cluster import ControllerCluster

#: The paper's dates.
OBSERVATION_START = dt.date(2021, 10, 1)
DEPLOY_START = dt.date(2021, 11, 20)
DEPLOY_FULL = dt.date(2021, 12, 20)
OBSERVATION_END = dt.date(2022, 1, 14)


@dataclass(frozen=True)
class RolloutSchedule:
    """Linear coverage ramp between two dates."""

    start: dt.date = DEPLOY_START
    full: dt.date = DEPLOY_FULL

    def __post_init__(self) -> None:
        if self.full <= self.start:
            raise ValueError("full-scale date must follow the start date")

    def coverage(self, day: dt.date) -> float:
        """Fraction of conferences orchestrated by GSO on ``day``."""
        if day < self.start:
            return 0.0
        if day >= self.full:
            return 1.0
        span = (self.full - self.start).days
        return (day - self.start).days / span


@dataclass
class DailyPoint:
    """One day's aggregated metrics.

    ``video_stall_p95`` is the 95th percentile across the day's sampled
    conferences — the paper's motivation for a control-theoretic design is
    exactly "the long tail performance", so the fleet simulation tracks the
    tail alongside the mean.
    """

    day: dt.date
    coverage: float
    video_stall: float
    voice_stall: float
    framerate: float
    conferences: int
    video_stall_p95: float = 0.0
    voice_stall_p95: float = 0.0


def day_quality(day: dt.date, rng: random.Random) -> float:
    """Network-quality factor for one day.

    Weekends are slightly better (less enterprise congestion), plus small
    i.i.d. daily noise — enough texture that the Fig. 10 curves look like
    telemetry rather than two flat lines.
    """
    weekend = day.weekday() >= 5
    base = 1.06 if weekend else 1.0
    return base * rng.uniform(0.96, 1.04)


class DeploymentSimulation:
    """Day-by-day fleet simulation of the rollout window.

    Args:
        seed: master seed (per-day and per-conference RNGs derive
            deterministically from it by name, never from shared state).
        conferences_per_day: sampled meetings per day (the paper samples
            1M/day; a few hundred give stable daily means here).
        schedule: the coverage ramp.
        levels_per_resolution: GSO ladder depth.
        cluster: optional :class:`~repro.cluster.ControllerCluster` to run
            every GSO solve through (sharded solve service with the
            fingerprint cache); ``None`` solves in-process.
    """

    def __init__(
        self,
        seed: int = 7,
        conferences_per_day: int = 300,
        schedule: Optional[RolloutSchedule] = None,
        levels_per_resolution: int = 5,
        cluster: Optional["ControllerCluster"] = None,
    ) -> None:
        if conferences_per_day < 1:
            raise ValueError("need at least one conference per day")
        self._seed = seed
        self._per_day = conferences_per_day
        self.schedule = schedule or RolloutSchedule()
        self._scorer = ConferenceScorer(
            levels_per_resolution=levels_per_resolution, cluster=cluster
        )

    def _conference_rng(self, day: dt.date, index: int) -> random.Random:
        """Derive one conference's private RNG.

        Seeded by name — ``(master seed, day, index)`` — so every
        conference's draw is independent of every other: re-ordering,
        skipping, or sharding the day's conferences across cluster workers
        reproduces byte-identical samples.  (String seeding is stable
        across processes, unlike ``hash()``-derived seeds.)
        """
        return random.Random(f"fleet:{self._seed}:{day.toordinal()}:{index}")

    def run(
        self,
        start: dt.date = OBSERVATION_START,
        end: dt.date = OBSERVATION_END,
    ) -> List[DailyPoint]:
        """Simulate every day in [start, end]."""
        points: List[DailyPoint] = []
        day = start
        while day <= end:
            points.append(self.run_day(day))
            day += dt.timedelta(days=1)
        return points

    def run_day(self, day: dt.date) -> DailyPoint:
        """Sample and score one day's conferences.

        Day-level effects (quality factor) use a per-day RNG; each
        conference then samples and rolls its GSO assignment from its own
        :meth:`_conference_rng`, so per-conference results do not depend
        on evaluation order.
        """
        day_rng = random.Random(f"fleet:{self._seed}:day:{day.toordinal()}")
        sampler = FleetSampler(day_rng)
        coverage = self.schedule.coverage(day)
        quality = day_quality(day, day_rng)
        stalls: List[float] = []
        voices: List[float] = []
        fpss: List[float] = []
        for i in range(self._per_day):
            conf_rng = self._conference_rng(day, i)
            conf = sampler.sample_conference(day_quality=quality, rng=conf_rng)
            if conf_rng.random() < coverage:
                metrics = self._scorer.score_gso(
                    conf, conference_id=f"{day.isoformat()}:{i}"
                )
            else:
                metrics = self._scorer.score_nongso(conf)
            stalls.append(metrics.video_stall)
            voices.append(metrics.voice_stall)
            fpss.append(metrics.framerate)
        n = len(stalls)

        def p95(values: List[float]) -> float:
            """95th percentile (nearest-rank)."""
            ordered = sorted(values)
            return ordered[min(n - 1, int(0.95 * n))]

        return DailyPoint(
            day=day,
            coverage=coverage,
            video_stall=sum(stalls) / n,
            voice_stall=sum(voices) / n,
            framerate=sum(fpss) / n,
            conferences=n,
            video_stall_p95=p95(stalls),
            voice_stall_p95=p95(voices),
        )


def normalize(series: Sequence[float]) -> List[float]:
    """Normalize a metric series against its maximum (the paper's
    confidentiality normalization)."""
    peak = max(series) if series else 1.0
    if peak <= 0:
        return [0.0 for _ in series]
    return [v / peak for v in series]


def improvement(points: Sequence[DailyPoint]) -> Dict[str, float]:
    """Before/after improvement percentages (the paper's headline numbers).

    "Before" averages the pre-deployment days; "after" averages the days at
    full coverage.
    """
    before = [p for p in points if p.coverage == 0.0]
    after = [p for p in points if p.coverage >= 1.0]
    if not before or not after:
        raise ValueError("need both pre-deployment and full-coverage days")

    def mean(values: List[float]) -> float:
        """Arithmetic mean."""
        return sum(values) / len(values)

    video_before = mean([p.video_stall for p in before])
    video_after = mean([p.video_stall for p in after])
    voice_before = mean([p.voice_stall for p in before])
    voice_after = mean([p.voice_stall for p in after])
    fps_before = mean([p.framerate for p in before])
    fps_after = mean([p.framerate for p in after])
    return {
        "video_stall_reduction": 1.0 - video_after / video_before,
        "voice_stall_reduction": 1.0 - voice_after / voice_before,
        "framerate_improvement": fps_after / fps_before - 1.0,
    }
