"""Fleet simulation: the population model behind Figs. 10-11.

The paper's deployment figures aggregate ~1 million conferences per day of
production telemetry.  Packet-level simulation at that scale is not
feasible (nor needed — the figures plot daily *averages*), so the fleet
model samples synthetic conferences and scores each one analytically:

* per conference, client access networks are drawn from a heterogeneous
  mixture (good / average / slow-link / lossy profiles, plus day-level
  noise and a weekday/weekend seasonality);
* the conference is then *actually orchestrated* — by the real GSO solver
  or by the real non-GSO template policy + local switcher — so the daily
  metric differences come from the genuine algorithms, not from curves;
* the resulting per-subscriber utilization, mismatch and loss map to the
  paper's three metrics (video stall, voice stall, framerate) through a
  small queueing-motivated scoring model (see :func:`score_subscriber`).

The scoring model is calibrated so the GSO/non-GSO gap lands in the
neighbourhood the paper reports (−35 % video stall, −50 % voice stall,
+6 % framerate at full coverage); the *trend vs. coverage* shape is then
produced by the rollout schedule, not hand-drawn.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # deploy -> cluster is a soft, runtime-optional edge
    from ..cluster import ControllerCluster

from ..client.policies import LocalDownlinkSwitcher, TemplateUplinkPolicy
from ..core.constraints import Bandwidth, Problem, Subscription
from ..core.ladder import make_ladder
from ..core.solver import GsoSolver, SolverConfig
from ..core.types import ClientId, Resolution
from ..obs import names as obs_names
from ..obs.registry import get_registry

#: Audio wire rate reserved per participant (kbps).
AUDIO_KBPS = 45

#: Wire overhead multiplier on media bitrates (RTP + extension + IP/UDP).
WIRE_OVERHEAD = 1.05


@dataclass(frozen=True)
class NetworkProfile:
    """One access-network archetype in the population mixture."""

    name: str
    uplink_kbps: Tuple[int, int]  # (lo, hi) uniform range
    downlink_kbps: Tuple[int, int]
    loss_rate: Tuple[float, float]
    weight: float


#: The population mixture.  Shares follow the intuition of Sec. 2.2: most
#: users are fine; enough are slow that big meetings almost always contain
#: one ("as meeting size grows, the likelihood of someone in the room
#: having a slow link increases").
DEFAULT_PROFILES: Tuple[NetworkProfile, ...] = (
    NetworkProfile("fiber", (4000, 10000), (8000, 20000), (0.0, 0.002), 0.35),
    NetworkProfile("cable", (1500, 4000), (3000, 8000), (0.0, 0.005), 0.30),
    NetworkProfile("mobile", (600, 1500), (1000, 3000), (0.002, 0.02), 0.25),
    NetworkProfile("slow", (200, 600), (300, 1200), (0.01, 0.06), 0.10),
)


@dataclass(frozen=True)
class SampledClient:
    """One sampled participant's access network."""

    client_id: ClientId
    uplink_kbps: int
    downlink_kbps: int
    loss_rate: float
    profile: str


@dataclass(frozen=True)
class SampledConference:
    """One sampled meeting."""

    clients: Tuple[SampledClient, ...]

    @property
    def size(self) -> int:
        """Number of participants."""
        return len(self.clients)


@dataclass
class ConferenceMetrics:
    """The paper's three per-conference averages."""

    video_stall: float
    voice_stall: float
    framerate: float


class FleetSampler:
    """Draws conferences from the population model.

    Args:
        rng: randomness source.
        profiles: the network mixture.
        mean_size: mean meeting size (sizes are 2 + a geometric tail,
            capped) — most meetings are small, a few are very large.
        max_size: meeting size cap (keeps the per-conference solve cheap).
    """

    def __init__(
        self,
        rng: random.Random,
        profiles: Sequence[NetworkProfile] = DEFAULT_PROFILES,
        mean_size: float = 4.0,
        max_size: int = 30,
    ) -> None:
        if mean_size < 2:
            raise ValueError("mean meeting size must be >= 2")
        self._rng = rng
        self._profiles = list(profiles)
        self._weights = [p.weight for p in profiles]
        self._mean_size = mean_size
        self._max_size = max_size

    def sample_conference(
        self,
        day_quality: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> SampledConference:
        """Draw one conference.

        Args:
            day_quality: multiplicative network-quality factor for the day
                (models weekday load, seasonal effects; 1.0 = baseline).
            rng: per-conference randomness source overriding the sampler's
                own stream.  Passing one seeded ``random.Random`` per
                conference makes each draw independent of every other —
                the property cluster-parallel fleet runs rely on (the same
                conference id samples the same conference no matter which
                shard draws it, or in what order).
        """
        rng = rng if rng is not None else self._rng
        # mean_size == 2 means no geometric tail at all: every meeting is
        # a two-party call (expovariate(1/0) would divide by zero).
        if self._mean_size <= 2:
            extra = 0.0
        else:
            extra = rng.expovariate(1.0 / (self._mean_size - 2))
        size = min(self._max_size, 2 + int(extra))
        clients = []
        for k in range(size):
            profile = rng.choices(self._profiles, self._weights)[0]
            up = rng.uniform(*profile.uplink_kbps) * day_quality
            down = rng.uniform(*profile.downlink_kbps) * day_quality
            loss = rng.uniform(*profile.loss_rate)
            clients.append(
                SampledClient(
                    client_id=f"c{k}",
                    uplink_kbps=max(100, int(up)),
                    downlink_kbps=max(150, int(down)),
                    loss_rate=loss,
                    profile=profile.name,
                )
            )
        return SampledConference(clients=tuple(clients))


def score_subscriber(
    utilization: float, loss_rate: float, delivered_fps: float = 30.0
) -> Tuple[float, float, float]:
    """Map downlink utilization + path loss to (video stall, voice stall,
    framerate) for one subscriber.

    The mapping is queueing-motivated: below ~90 % utilization a link is
    healthy; between 90-100 % transient queues cause occasional >200 ms
    gaps; above 100 % the link sheds the excess as sustained stalls, and
    audio (sharing the queue) starts to break up.  Random path loss adds
    stalls for video (frame losses) and voice (loss bursts) independently
    of utilization.
    """
    over = max(0.0, utilization - 0.9)
    video_stall = min(1.0, 2.5 * over**1.5) + min(0.6, 5.0 * loss_rate)
    video_stall = min(1.0, video_stall)
    overload = max(0.0, utilization - 1.0)
    voice_stall = min(1.0, 0.8 * overload + 8.0 * max(0.0, loss_rate - 0.015))
    fps = (
        delivered_fps
        * (1.0 - min(0.6, 2.0 * overload))
        * (1.0 - min(0.5, 2.0 * loss_rate))
        * (1.0 - 0.4 * video_stall)
    )
    return video_stall, voice_stall, fps


class ConferenceScorer:
    """Scores one sampled conference under GSO or non-GSO orchestration.

    Args:
        levels_per_resolution: GSO ladder depth.
        cluster: optional :class:`~repro.cluster.ControllerCluster`; when
            set, GSO solves route through the cluster's solve service
            (sharding + fingerprint cache + pool) instead of a private
            solver.  The cluster must be configured with the same solver
            granularity (25 kbps) for solutions to match the direct path.
    """

    def __init__(
        self,
        levels_per_resolution: int = 5,
        cluster: Optional["ControllerCluster"] = None,
    ) -> None:
        self._gso_ladder = make_ladder(levels_per_resolution=levels_per_resolution)
        self._solver = GsoSolver(SolverConfig(granularity_kbps=25))
        self._template = TemplateUplinkPolicy()
        self._switcher = LocalDownlinkSwitcher()
        self._cluster = cluster
        self._conference_seq = 0

    # ------------------------------------------------------------------ #
    # GSO path: the real solver decides who gets what
    # ------------------------------------------------------------------ #

    def score_gso(
        self, conf: SampledConference, conference_id: Optional[str] = None
    ) -> ConferenceMetrics:
        """Score the conference under GSO orchestration (real solver).

        Args:
            conf: the sampled conference.
            conference_id: stable meeting id for cluster routing (shard
                placement and cache accounting); auto-generated when
                omitted.
        """
        problem = self._gso_problem(conf)
        if self._cluster is not None:
            if conference_id is None:
                conference_id = f"fleet-conf-{self._conference_seq}"
                self._conference_seq += 1
            solution = self._cluster.solve_conference(conference_id, problem)
        else:
            solution = self._solver.solve(problem)
        loads: Dict[ClientId, float] = {c.client_id: 0.0 for c in conf.clients}
        coverage: Dict[ClientId, float] = {}
        for c in conf.clients:
            delivered = len(solution.assignments.get(c.client_id, {}))
            coverage[c.client_id] = delivered / max(1, conf.size - 1)
        for sub, per_pub in solution.assignments.items():
            for stream in per_pub.values():
                loads[sub] += stream.bitrate_kbps * WIRE_OVERHEAD
        self._record_satisfaction("gso", coverage)
        return self._aggregate(conf, loads, coverage)

    def _gso_problem(self, conf: SampledConference) -> Problem:
        subs = [
            Subscription(a.client_id, b.client_id, Resolution.P720)
            for a in conf.clients
            for b in conf.clients
            if a.client_id != b.client_id
        ]
        bandwidth = {
            c.client_id: Bandwidth(
                # The controller sees slightly conservative, audio-protected
                # budgets, as in the live system.
                uplink_kbps=int(c.uplink_kbps * 0.93),
                downlink_kbps=int(c.downlink_kbps * 0.93),
                audio_protection_kbps=AUDIO_KBPS,
            )
            for c in conf.clients
        }
        return Problem(
            feasible_streams={c.client_id: self._gso_ladder for c in conf.clients},
            bandwidth=bandwidth,
            subscriptions=subs,
        )

    # ------------------------------------------------------------------ #
    # Non-GSO path: template uplink policy + SFU-local switching
    # ------------------------------------------------------------------ #

    def score_nongso(self, conf: SampledConference) -> ConferenceMetrics:
        """Score the conference under template-policy simulcast."""
        n = conf.size
        published: Dict[ClientId, Dict[Resolution, int]] = {}
        for c in conf.clients:
            # Local view only: the template sees the local uplink estimate
            # (taken as the true capacity — estimation noise favours the
            # baseline here).
            published[c.client_id] = self._template.select_layers(
                c.uplink_kbps, participant_count=n
            )
        loads: Dict[ClientId, float] = {}
        coverage: Dict[ClientId, float] = {}
        for sub in conf.clients:
            total = 0.0
            delivered = 0
            watched = [c for c in conf.clients if c.client_id != sub.client_id]
            for pub in watched:
                resolution = self._switcher.select_stream(
                    downlink_estimate_kbps=sub.downlink_kbps,
                    available_layers=published[pub.client_id],
                    n_watched_publishers=len(watched),
                    max_resolution=Resolution.P720,
                )
                if resolution is not None:
                    total += (
                        published[pub.client_id][resolution] * WIRE_OVERHEAD
                    )
                    delivered += 1
            loads[sub.client_id] = total
            coverage[sub.client_id] = delivered / max(1, len(watched))
        self._record_satisfaction("nongso", coverage)
        return self._aggregate(conf, loads, coverage)

    # ------------------------------------------------------------------ #
    # Shared aggregation
    # ------------------------------------------------------------------ #

    @staticmethod
    def _record_satisfaction(scheme: str, coverage: Dict[ClientId, float]) -> None:
        """Record the conference's stream-satisfaction ratio (Fig. 11)."""
        reg = get_registry()
        if not reg.enabled or not coverage:
            return
        ratio = sum(coverage.values()) / len(coverage)
        reg.counter(obs_names.FLEET_CONFERENCES, scheme=scheme).inc()
        reg.histogram(obs_names.FLEET_SATISFACTION, scheme=scheme).observe(ratio)
        reg.gauge(obs_names.FLEET_LAST_SATISFACTION, scheme=scheme).set(ratio)

    def _aggregate(
        self,
        conf: SampledConference,
        video_loads: Dict[ClientId, float],
        view_coverage: Dict[ClientId, float],
    ) -> ConferenceMetrics:
        stalls: List[float] = []
        voices: List[float] = []
        fpss: List[float] = []
        by_id = {c.client_id: c for c in conf.clients}
        for cid, load in video_loads.items():
            client = by_id[cid]
            audio_in = AUDIO_KBPS * min(conf.size - 1, 5)  # top-5 audio mix
            utilization = (load + audio_in) / max(client.downlink_kbps, 1)
            v, a, f = score_subscriber(utilization, client.loss_rate)
            stalls.append(v)
            voices.append(a)
            # Views with no stream at all deliver zero frames.
            fpss.append(f * view_coverage.get(cid, 1.0))
        count = max(1, len(stalls))
        return ConferenceMetrics(
            video_stall=sum(stalls) / count,
            voice_stall=sum(voices) / count,
            framerate=sum(fpss) / count,
        )
