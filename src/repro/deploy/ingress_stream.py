"""Fleet-scale ingress streams: 10^5-user event loads for the plane.

:mod:`repro.deploy.vectorfleet` answers "how many solves per second can
the fleet sustain" analytically; this module asks the *event-driven*
question: how many stream events per second can one ingress plane
dispatch, coalesce and decide while virtual p95 decision latency stays
interactive.  The fleet workload sampler provides the meeting mix; a
:class:`ModeledBackend` replaces the real solver with the same
``SEC_PER_COST`` analytic service-time model the placement frontier
uses, so a 20k-meeting stream runs in seconds of wall clock while the
plane machinery (mailboxes, windows, executor slots) is exercised for
real.

Everything is seeded and virtual-time only: the canonical result dict
is byte-identical across double runs, and wall-clock throughput is
reported separately (never digested).
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..cluster.scheduler import SolveScheduler
from ..obs.tracing import STAGE_SOLVE, LatencyProfile
from ..ingress.aio import SimRuntime
from ..ingress.events import SembReport, StreamEvent
from ..ingress.plane import (
    BackendDecision,
    IngressBackend,
    IngressConfig,
    IngressPlane,
)
from .vectorfleet import SEC_PER_COST, FleetWorkload, sample_fleet


@dataclass
class FleetStreamConfig:
    """Sizing of one fleet-scale ingress run.

    The envelope is deliberately tighter than the Fig. 12 meeting
    envelope: at fleet scale the plane paces *dispatch*, not per-meeting
    solve cadence, and the benchmark's latency gate is interactive
    (p95 <= 0.25 s).
    """

    duration_s: float = 2.0
    report_interval_s: float = 1.0
    min_interval_s: float = 0.05
    max_interval_s: float = 0.25
    mailbox_capacity: int = 4
    solve_slots: int = 128
    max_in_flight: int = 512
    sec_per_cost: float = SEC_PER_COST
    service_floor_s: float = 1e-4
    #: "analytic" (SEC_PER_COST closed form, the default) or "measured"
    #: (sample solve service times from a recorded latency profile).
    service_mode: str = "analytic"
    #: Seed for the measured mode's per-decision profile draws.
    profile_seed: int = 0

    def to_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "report_interval_s": self.report_interval_s,
            "min_interval_s": self.min_interval_s,
            "max_interval_s": self.max_interval_s,
            "mailbox_capacity": self.mailbox_capacity,
            "solve_slots": self.solve_slots,
            "max_in_flight": self.max_in_flight,
            "sec_per_cost": self.sec_per_cost,
            "service_floor_s": self.service_floor_s,
            "service_mode": self.service_mode,
            "profile_seed": self.profile_seed,
        }


class ModeledBackend(IngressBackend):
    """Modeled decision engine over a sampled fleet workload.

    Payloads are solve costs; decisions are content-free but
    deterministically tagged (per-meeting counters), so double runs
    produce identical decision streams.  Service times come from one of
    two models:

    * **analytic** (default) — the placement frontier's ``SEC_PER_COST``
      closed form (an M/M/1-style cost-proportional service time);
    * **measured** — seeded draws from a recorded
      ``repro.latency_profile/v1`` solve-stage distribution
      (``repro.obs.tracing.LatencyProfile``), closing the loop between
      the real solve pool's observed latency and the modeled fleet.
      Draws are keyed by ``(meeting, nth service)`` so they are
      independent of scheduling order — the byte-determinism contract
      survives executor interleaving.
    """

    def __init__(
        self,
        workload: FleetWorkload,
        config: FleetStreamConfig,
        profile: Optional["LatencyProfile"] = None,
    ) -> None:
        if config.service_mode not in ("analytic", "measured"):
            raise ValueError(
                f"unknown service_mode {config.service_mode!r}"
            )
        if config.service_mode == "measured" and profile is None:
            raise ValueError("measured service_mode requires a profile")
        self.workload = workload
        self.config = config
        self.profile = profile
        self.min_interval_s = config.min_interval_s
        self.max_interval_s = config.max_interval_s
        self._pacer = SolveScheduler(
            min_interval_s=config.min_interval_s,
            max_interval_s=config.max_interval_s,
        )
        self._decisions: Dict[str, int] = {}
        self._draws: Dict[str, int] = {}
        self.sheds = 0

    def apply_event(self, event: StreamEvent) -> None:
        return  # fleet SEMB reports carry load, not state mutations

    def payload(self, meeting: str) -> float:
        return float(self.workload.costs[int(meeting.split("-", 1)[1])])

    def service_s(self, meeting: str, payload: object) -> float:
        if self.config.service_mode == "measured":
            n = self._draws.get(meeting, 0) + 1
            self._draws[meeting] = n
            assert self.profile is not None
            drawn = self.profile.sample(
                STAGE_SOLVE,
                key=f"{meeting}#{n}",
                seed=self.config.profile_seed,
            )
            return max(self.config.service_floor_s, drawn)
        return max(
            self.config.service_floor_s,
            float(payload) * self.config.sec_per_cost,
        )

    def backpressure_window_s(
        self, meeting: str, depth: int, capacity: int
    ) -> float:
        return self._pacer.backpressure_window_s(depth, capacity)

    def over_budget(self, meeting: str, in_flight: int) -> bool:
        return in_flight >= self.config.max_in_flight

    def _tag(self, meeting: str) -> str:
        n = self._decisions.get(meeting, 0) + 1
        self._decisions[meeting] = n
        return f"{meeting}#{n}"

    def decide(self, meeting, payload, now_s, trigger, cid):
        return BackendDecision(source="solve", digest=self._tag(meeting))

    def shed(self, meeting, payload, now_s, trigger, cid):
        self.sheds += 1
        return BackendDecision(source="shed", digest=self._tag(meeting))


def generate_fleet_stream(
    seed: int,
    workload: FleetWorkload,
    config: Optional[FleetStreamConfig] = None,
) -> List[StreamEvent]:
    """One seeded SEMB round per meeting per report interval, vectorized.

    Each meeting reports at a random phase inside every interval, so
    arrivals spread uniformly instead of thundering at round boundaries.
    Events are sorted by ``(time, meeting index)`` and numbered — the
    stable offer order the plane's determinism contract needs.
    """
    cfg = config or FleetStreamConfig()
    meetings = workload.meetings
    rounds = max(1, int(cfg.duration_s / cfg.report_interval_s))
    rng = np.random.default_rng(seed)
    # One phase draw per meeting per round: shape (rounds, meetings).
    phases = rng.random((rounds, meetings)) * cfg.report_interval_s
    base = (
        np.arange(rounds, dtype=np.float64)[:, None] * cfg.report_interval_s
    )
    times = np.round((base + phases).ravel(), 6)
    meeting_idx = np.tile(np.arange(meetings), rounds)
    order = np.lexsort((meeting_idx, times))
    return [
        SembReport(
            at_s=float(times[i]),
            meeting=workload.meeting_id(int(meeting_idx[i])),
            seq=int(seq),
        )
        for seq, i in enumerate(order)
    ]


def run_fleet_ingress(
    seed: int,
    users: int = 100_000,
    config: Optional[FleetStreamConfig] = None,
    workload: Optional[FleetWorkload] = None,
    profile: Optional[LatencyProfile] = None,
) -> dict:
    """Drive a fleet-scale SEMB stream through one ingress plane.

    Returns a result dict with two sections: ``canonical`` (virtual-time
    only; byte-identical across same-seed runs — compare
    :func:`canonical_digest` for the determinism gate) and ``wall``
    (host timing: dispatch throughput in events per wall second).

    ``profile`` supplies the measured solve-latency distribution when
    ``config.service_mode == "measured"``.
    """
    cfg = config or FleetStreamConfig()
    fleet = workload if workload is not None else sample_fleet(seed, users)
    stream = generate_fleet_stream(seed, fleet, cfg)
    runtime = SimRuntime()
    backend = ModeledBackend(fleet, cfg, profile=profile)
    plane = IngressPlane(
        runtime,
        backend,
        IngressConfig(
            mailbox_capacity=cfg.mailbox_capacity,
            solve_slots=cfg.solve_slots,
            service_s_per_cost=cfg.sec_per_cost,
            service_floor_s=cfg.service_floor_s,
            idle_refresh=False,
            drain_s=cfg.max_interval_s + 1.0,
        ),
    )
    start = time.perf_counter()
    plane.run_stream(stream, duration_s=cfg.duration_s)
    elapsed = time.perf_counter() - start
    stats = plane.stats
    canonical = {
        "schema": "repro.fleet_ingress/v1",
        "seed": seed,
        "users": fleet.users,
        "meetings": fleet.meetings,
        "config": cfg.to_dict(),
        "profile_digest": profile.digest() if profile is not None else "",
        "events": len(stream),
        "offered": stats.offered,
        "decisions": stats.decisions,
        "coalesced": stats.coalesced,
        "shed": stats.shed,
        "evicted": stats.evicted,
        "max_mailbox_depth": stats.max_mailbox_depth,
        "latency": {
            "p50_s": round(plane.latency_percentile_s(0.50), 6),
            "p95_s": round(plane.latency_percentile_s(0.95), 6),
            "max_s": round(
                max((d.latency_s for d in plane.decisions), default=0.0), 6
            ),
        },
    }
    return {
        "canonical": canonical,
        "wall": {
            "elapsed_s": elapsed,
            "events_per_sec": (len(stream) / elapsed) if elapsed > 0 else 0.0,
            "decisions_per_sec": (
                (stats.decisions / elapsed) if elapsed > 0 else 0.0
            ),
        },
    }


def canonical_digest(result: dict) -> str:
    """SHA-256 over the canonical (virtual-time) half of one result."""
    payload = json.dumps(
        result["canonical"], sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def measured_service_times(
    workload: FleetWorkload,
    profile: LatencyProfile,
    seed: int = 0,
) -> np.ndarray:
    """Per-meeting solve service times drawn from a measured profile.

    One seeded draw per meeting (keyed by meeting id), suitable as the
    ``service_s`` override of
    :func:`repro.deploy.vectorfleet.sustainable_rate`.
    """
    return np.array(
        [
            profile.sample(
                STAGE_SOLVE, key=workload.meeting_id(i), seed=seed
            )
            for i in range(workload.meetings)
        ],
        dtype=np.float64,
    )


def sustainable_rate_report(
    seed: int,
    users: int = 100_000,
    shards: int = 16,
    slo_p95_s: float = 0.25,
    profile: Optional[LatencyProfile] = None,
) -> dict:
    """Analytic vs measured sustainable-rate comparison for one fleet.

    Computes the max sustainable fleet-wide solve rate under the p95
    SLO twice: with the analytic ``SEC_PER_COST`` service model, and —
    when ``profile`` is given — with per-meeting service times drawn
    from the measured solve-stage distribution.  Byte-deterministic for
    a given (seed, users, shards, profile).
    """
    from .vectorfleet import place_fleet, sustainable_rate

    fleet = sample_fleet(seed, users)
    placement = place_fleet(fleet, shards=shards)
    report: dict = {
        "schema": "repro.sustainable_rate/v1",
        "seed": seed,
        "users": fleet.users,
        "meetings": fleet.meetings,
        "shards": shards,
        "slo_p95_s": slo_p95_s,
        "analytic": {
            "rate_per_s": round(
                sustainable_rate(fleet, placement, slo_p95_s=slo_p95_s), 6
            ),
        },
    }
    if profile is not None:
        service = measured_service_times(fleet, profile, seed=seed)
        report["measured"] = {
            "profile_digest": profile.digest(),
            "service_p50_s": round(float(np.percentile(service, 50)), 6),
            "service_p95_s": round(float(np.percentile(service, 95)), 6),
            "rate_per_s": round(
                sustainable_rate(
                    fleet,
                    placement,
                    slo_p95_s=slo_p95_s,
                    service_s=service,
                ),
                6,
            ),
        }
    return report
