"""Deployment-scale simulation: the Figs. 10-12 substrate."""

from .fleet import (
    ConferenceMetrics,
    ConferenceScorer,
    DEFAULT_PROFILES,
    FleetSampler,
    NetworkProfile,
    SampledClient,
    SampledConference,
    score_subscriber,
)
from .intervals import IntervalProcess, empirical_cdf
from .rollout import (
    DEPLOY_FULL,
    DEPLOY_START,
    DailyPoint,
    DeploymentSimulation,
    OBSERVATION_END,
    OBSERVATION_START,
    RolloutSchedule,
    improvement,
    normalize,
)
from .satisfaction import SatisfactionModel, satisfaction_improvement
from .vectorfleet import (
    FleetPlacement,
    FleetWorkload,
    Population,
    place_fleet,
    sample_fleet,
    sample_population,
    score_subscribers_batch,
    sustainable_rate,
    throughput_report,
)

__all__ = [
    "ConferenceMetrics",
    "ConferenceScorer",
    "DEFAULT_PROFILES",
    "DEPLOY_FULL",
    "DEPLOY_START",
    "DailyPoint",
    "DeploymentSimulation",
    "FleetPlacement",
    "FleetSampler",
    "FleetWorkload",
    "IntervalProcess",
    "NetworkProfile",
    "OBSERVATION_END",
    "OBSERVATION_START",
    "Population",
    "RolloutSchedule",
    "SampledClient",
    "SampledConference",
    "SatisfactionModel",
    "empirical_cdf",
    "improvement",
    "normalize",
    "place_fleet",
    "sample_fleet",
    "sample_population",
    "satisfaction_improvement",
    "score_subscriber",
    "score_subscribers_batch",
    "sustainable_rate",
    "throughput_report",
]
