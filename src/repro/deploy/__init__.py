"""Deployment-scale simulation: the Figs. 10-12 substrate."""

from .fleet import (
    ConferenceMetrics,
    ConferenceScorer,
    DEFAULT_PROFILES,
    FleetSampler,
    NetworkProfile,
    SampledClient,
    SampledConference,
    score_subscriber,
)
from .intervals import IntervalProcess, empirical_cdf
from .rollout import (
    DEPLOY_FULL,
    DEPLOY_START,
    DailyPoint,
    DeploymentSimulation,
    OBSERVATION_END,
    OBSERVATION_START,
    RolloutSchedule,
    improvement,
    normalize,
)
from .satisfaction import SatisfactionModel, satisfaction_improvement

__all__ = [
    "ConferenceMetrics",
    "ConferenceScorer",
    "DEFAULT_PROFILES",
    "DEPLOY_FULL",
    "DEPLOY_START",
    "DailyPoint",
    "DeploymentSimulation",
    "FleetSampler",
    "IntervalProcess",
    "NetworkProfile",
    "OBSERVATION_END",
    "OBSERVATION_START",
    "RolloutSchedule",
    "SampledClient",
    "SampledConference",
    "SatisfactionModel",
    "empirical_cdf",
    "improvement",
    "normalize",
    "satisfaction_improvement",
    "score_subscriber",
]
