"""Fundamental value types for the GSO control algorithm.

The controller reasons about *streams*: a publisher encodes its video source
several times in parallel (simulcast), one encoding per resolution, each at a
bitrate chosen from a fine-grained ladder.  The algorithm in Sec. 4.1 of the
paper manipulates three things per stream: its bitrate, its resolution, and
its QoE utility weight.  This module defines those value types plus the
identifiers used throughout the library.

All bitrates are integer kilobits per second (kbps).  The paper reports
bitrates in Kbps/Mbps; integer kbps keeps the knapsack arithmetic exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

#: Clients are identified by short strings ("A", "client-17", ...).
ClientId = str


class Resolution(enum.IntEnum):
    """Vertical video resolution of a simulcast encoding.

    The integer value is the number of scan lines, so resolutions order
    naturally: ``Resolution.P180 < Resolution.P360 < Resolution.P720``.
    The paper's examples use the 720/360/180 triple; the algorithm is
    "readily extensible to more than three resolutions" (footnote 5), so we
    include the neighbouring rungs used by common simulcast ladders as well.
    """

    P90 = 90
    P180 = 180
    P270 = 270
    P360 = 360
    P540 = 540
    P720 = 720
    P1080 = 1080

    @property
    def pixels(self) -> int:
        """Approximate pixel count assuming a 16:9 aspect ratio."""
        width = self.value * 16 // 9
        return width * self.value

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value}p"


#: The paper's canonical three-level resolution set (Fig. 5, Table 1).
PAPER_RESOLUTIONS: Tuple[Resolution, ...] = (
    Resolution.P720,
    Resolution.P360,
    Resolution.P180,
)


@dataclass(frozen=True, order=True)
class StreamSpec:
    """One feasible simulcast encoding: a (bitrate, resolution, QoE) triple.

    Instances are immutable and hashable so they can live in the sets the
    algorithm manipulates (``S_i``, ``S_ii'``, ``D_i'`` ...).  Ordering is by
    ``(bitrate, resolution)`` which gives a stable, meaningful sort: the
    paper's merge step picks minima by bitrate.

    Attributes:
        bitrate_kbps: target encoder output rate in kbps.  Also the knapsack
            *weight* of the stream.
        resolution: the encoding's resolution.  Codec capability allows at
            most one concurrently published stream per resolution.
        qoe: the QoE utility weight — the knapsack *value*.  Sec. 4.4 requires
            small streams to have a higher QoE/bitrate ratio so they are
            protected when streams compete.
    """

    bitrate_kbps: int
    resolution: Resolution
    qoe: float = field(compare=False)

    def __post_init__(self) -> None:
        if self.bitrate_kbps <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate_kbps}")
        if self.qoe < 0:
            raise ValueError(f"QoE weight must be non-negative, got {self.qoe}")

    @property
    def qoe_per_kbps(self) -> float:
        """QoE utility per kbps — the small-stream protection ratio."""
        return self.qoe / self.bitrate_kbps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StreamSpec({self.bitrate_kbps}kbps@{self.resolution}, qoe={self.qoe:g})"


@dataclass(frozen=True)
class StreamKey:
    """Identifies a published stream on the wire: (publisher, resolution).

    Sec. 4.2: *"we assign a different synchronization source (SSRC) for each
    stream resolution"* — so (publisher, resolution) is the unit that TMMBR
    feedback addresses, independent of the bitrate currently configured.
    """

    publisher: ClientId
    resolution: Resolution


class Role(enum.Flag):
    """Which conference roles a client currently plays."""

    NONE = 0
    PUBLISHER = enum.auto()
    SUBSCRIBER = enum.auto()
    BOTH = PUBLISHER | SUBSCRIBER


class StreamClass(enum.Enum):
    """Kind of a published source, used for priority weighting (Sec. 4.4)."""

    CAMERA = "camera"
    SCREEN = "screen"
    THUMBNAIL = "thumbnail"


def validate_feasible_set(streams: Iterable[StreamSpec]) -> List[StreamSpec]:
    """Validate and normalize a publisher's feasible stream set ``S_i``.

    Checks the invariants the algorithm relies on:

    * bitrates are unique (each bitrate maps to a unique resolution and QoE,
      per Sec. 4.1's definition of ``Res_i`` and ``QoE_i`` as functions);
    * within a resolution, a higher bitrate never has lower QoE.

    Returns the streams sorted by descending bitrate (the order Fig. 5 draws
    them in).

    Raises:
        ValueError: if any invariant is violated.
    """
    ordered = sorted(streams, key=lambda s: (-s.bitrate_kbps, -s.resolution))
    seen_bitrates: Dict[int, StreamSpec] = {}
    for s in ordered:
        if s.bitrate_kbps in seen_bitrates:
            raise ValueError(
                f"duplicate bitrate {s.bitrate_kbps}kbps in feasible set: "
                f"{s} vs {seen_bitrates[s.bitrate_kbps]}"
            )
        seen_bitrates[s.bitrate_kbps] = s
    by_res: Dict[Resolution, List[StreamSpec]] = {}
    for s in ordered:
        by_res.setdefault(s.resolution, []).append(s)
    for res, group in by_res.items():
        # group is sorted by descending bitrate already.
        for hi, lo in zip(group, group[1:]):
            if hi.qoe < lo.qoe:
                raise ValueError(
                    f"QoE not monotone within {res}: {hi} has lower QoE than {lo}"
                )
    return ordered


def streams_at_resolution(
    streams: Iterable[StreamSpec], resolution: Resolution
) -> List[StreamSpec]:
    """Return the subset of ``streams`` at exactly ``resolution`` (``S_i^R``)."""
    return [s for s in streams if s.resolution == resolution]


def streams_up_to_resolution(
    streams: Iterable[StreamSpec], max_resolution: Resolution
) -> List[StreamSpec]:
    """Return the subscription-feasible subset ``S_ii'``.

    Sec. 4.1: the subscriber indicates the maximum resolution ``R_ii'`` it is
    willing to accept, so ``S_ii' = {s in S_i : Res_i(s) <= R_ii'}``.
    """
    return [s for s in streams if s.resolution <= max_resolution]
