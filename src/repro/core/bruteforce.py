"""Brute-force solvers: the Fig. 6 comparator and a joint test oracle.

The paper benchmarks its control algorithm against "the brute-force
algorithm" on computation time and *QoE optimality* — the ratio of the Eq. 1
objective achieved by GSO vs. brute force.  Two flavours live here:

* :func:`solve_step1_bruteforce` — exact enumeration of each subscriber's
  multi-choice knapsack (Eq. 1-4).  Runtime is exponential in the number of
  followed publishers and bitrate levels; this is the comparator whose
  running time Fig. 6a/6b plots.
* :func:`solve_joint_bruteforce` — exact enumeration of the *entire* joint
  problem (downlink + codec + uplink constraints simultaneously).  Doubly
  exponential and only usable on toy instances; it is the ground-truth
  oracle the integration tests validate the KMR solver against.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from .constraints import Problem, Subscription
from .knapsack import Requests, knapsack_step
from .solution import PolicyEntry, Solution
from .types import ClientId, Resolution, StreamSpec


def solve_step1_bruteforce(problem: Problem) -> Requests:
    """Solve Step 1 (Eq. 1-4) for every subscriber by exact enumeration."""
    return knapsack_step(problem, exhaustive=True)


def step1_objective(requests: Requests) -> float:
    """The Eq. 1 objective summed over subscribers (QoE-optimality numerator)."""
    return sum(
        stream.qoe
        for per_pub in requests.values()
        for stream in per_pub.values()
    )


def _edge_options(
    problem: Problem, edge: Subscription
) -> List[Optional[StreamSpec]]:
    """All choices for one subscription edge: any feasible stream, or skip."""
    options: List[Optional[StreamSpec]] = [None]
    options.extend(problem.feasible_for_edge(edge))
    return options


def _joint_feasible(
    problem: Problem,
    edges: Sequence[Subscription],
    combo: Sequence[Optional[StreamSpec]],
) -> Optional[float]:
    """Check a full edge assignment against all constraint families.

    Returns the total QoE if feasible, else ``None``.  Publisher-side rules:
    all streams taken from one publisher at one resolution must be the *same*
    bitrate (single encoding per resolution), and the distinct encodings of a
    publisher must fit its uplink.
    """
    downlink: Dict[ClientId, int] = {}
    published: Dict[ClientId, Dict[Resolution, int]] = {}
    total_qoe = 0.0
    for edge, stream in zip(edges, combo):
        if stream is None:
            continue
        downlink[edge.subscriber] = (
            downlink.get(edge.subscriber, 0) + stream.bitrate_kbps
        )
        if downlink[edge.subscriber] > problem.downlink_budget(edge.subscriber):
            return None
        per_res = published.setdefault(edge.publisher, {})
        existing = per_res.get(stream.resolution)
        if existing is not None and existing != stream.bitrate_kbps:
            return None  # two different encodings at one resolution
        per_res[stream.resolution] = stream.bitrate_kbps
        total_qoe += stream.qoe
    for pub, per_res in published.items():
        if sum(per_res.values()) > problem.uplink_budget(pub):
            return None
    return total_qoe


def solve_joint_bruteforce(problem: Problem) -> Solution:
    """Exactly solve the whole orchestration problem by enumeration.

    Complexity is the product over all subscription edges of
    ``|S_ii'| + 1`` — use only on toy instances (<= ~6 edges with short
    ladders).  The returned solution validates against the problem.
    """
    edges: List[Subscription] = sorted(
        problem.subscriptions, key=lambda e: (e.subscriber, e.publisher)
    )
    option_lists = [_edge_options(problem, e) for e in edges]
    n_combos = 1
    for opts in option_lists:
        n_combos *= len(opts)
    if n_combos > 5_000_000:
        raise ValueError(
            f"joint brute force would enumerate {n_combos} combinations; "
            f"instance too large"
        )
    best_qoe = -1.0
    best_combo: Optional[Tuple[Optional[StreamSpec], ...]] = None
    for combo in itertools.product(*option_lists):
        qoe = _joint_feasible(problem, edges, combo)
        if qoe is not None and qoe > best_qoe:
            best_qoe = qoe
            best_combo = combo
    assert best_combo is not None, "empty assignment is always feasible"

    policies: Dict[ClientId, Dict[Resolution, PolicyEntry]] = {}
    assignments: Dict[ClientId, Dict[ClientId, StreamSpec]] = {}
    audience: Dict[Tuple[ClientId, Resolution], set] = {}
    chosen: Dict[Tuple[ClientId, Resolution], StreamSpec] = {}
    for edge, stream in zip(edges, best_combo):
        if stream is None:
            continue
        key = (edge.publisher, stream.resolution)
        chosen[key] = stream
        audience.setdefault(key, set()).add(edge.subscriber)
        assignments.setdefault(edge.subscriber, {})[edge.publisher] = stream
    for (pub, res), stream in chosen.items():
        policies.setdefault(pub, {})[res] = PolicyEntry(
            stream=stream, audience=frozenset(audience[(pub, res)])
        )
    return Solution(policies=policies, assignments=assignments, iterations=1)
