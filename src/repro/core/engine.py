"""The incremental, memoized solve engine behind the KMR hot path.

The KMR loop re-runs Step 1 (the per-subscriber MCKPs) on every
iteration, yet a Step-3 reduction shrinks only **one** publisher's
feasible set — and inside a single iteration, homogeneous meetings
(Fig. 6c: gallery view, every subscriber following every publisher from
the same plan tier) produce the *same* MCKP instance over and over.
This module supplies the memoization layers that exploit both kinds of
repetition without changing a single byte of any
:class:`~repro.core.solution.Solution`:

* **instance fingerprinting** — :func:`instance_key` canonicalizes one
  subscriber's ``(classes, capacity, granularity)`` MCKP instance to a
  hashable key.  The DP only ever sees ``capacity // granularity`` grid
  slots (weights are rounded *up* onto the grid), so the key stores the
  slot count, not the raw capacity: two downlinks in the same bucket are
  provably indistinguishable to the solver — the same argument
  ``Problem.fingerprint`` makes for whole problems, applied per
  subscriber;
* **a process-wide bounded LRU cache** — :class:`MckpInstanceCache`
  mirrors the cluster's fingerprint-keyed solution cache
  (``repro.cluster.cache``) one level down: it survives across KMR
  iterations, solver instances and controller rounds, so a small
  bandwidth delta that misses the whole-``Problem`` fingerprint still
  hits on every subscriber whose own instance did not change.
  ``MckpSolution`` is frozen (tuple picks), so entries are shared
  without copying;
* **per-solve accounting** — :class:`EngineStats` counts what each layer
  saved; :class:`~repro.core.solver.SolveStats` carries it per solve and
  the metrics named in ``repro.obs.names`` aggregate it process-wide.

The *dirty-set* layer (re-solving only the subscribers that follow the
reduced publisher between iterations) lives in
:class:`~repro.core.solver.GsoSolver`; the reverse index it needs is
``Problem.subscribers_of``.  All layers are gated by
``SolverConfig(incremental=...)`` — the ``incremental=False`` path is
the differential baseline the equivalence tests compare against.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..obs import names as obs_names
from ..obs.registry import get_registry
from .mckp import Item, MckpSolution

#: Canonical identity of one MCKP instance: (granularity, capacity grid
#: slots, the per-class item tuples).  Hashable; equal keys imply the DP
#: returns the identical :class:`MckpSolution` (same picks, value, weight).
InstanceKey = Tuple[int, int, Tuple[Tuple[Item, ...], ...]]


def instance_key(
    classes: Sequence[Tuple[Item, ...]],
    capacity: int,
    granularity: int,
) -> InstanceKey:
    """Canonicalize an MCKP instance for dedup/cache lookup.

    The capacity enters as ``capacity // granularity`` (the DP's slot
    count): item weights are rounded up onto the grid, so the DP cannot
    distinguish capacities within one granularity bucket — and because a
    chosen combination's true weight is bounded by ``slots *
    granularity <= capacity``, the returned solution is feasible for
    every capacity in the bucket.  Sharing across the bucket is a legal
    replay, not an approximation.
    """
    return (granularity, capacity // granularity, tuple(classes))


@dataclass
class EngineStats:
    """What the engine's layers saved during one solve.

    Attributes:
        step1_solved: subscriber instances freshly built this solve
            (iteration 1 plus every dirty re-solve).
        step1_skipped: subscriber re-solves avoided by the dirty-set
            (clean subscribers whose previous requests were reused).
        deduped: subscriber instances answered by another subscriber's
            solve within the same knapsack step.
        cache_hits: instances answered by the process-wide LRU cache.
        cache_misses: instances that actually ran the DP.
        batched_solves: cache-miss instances solved through the batched
            kernel entry point (``solve_mckp_dp_batch``); at most
            ``cache_misses``.
        batches: batched-solve calls issued (one per knapsack step that
            had any cache miss).
    """

    step1_solved: int = 0
    step1_skipped: int = 0
    deduped: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batched_solves: int = 0
    batches: int = 0

    @property
    def dp_solves_avoided(self) -> int:
        """Step-1 DP runs the three layers saved, combined."""
        return self.step1_skipped + self.deduped + self.cache_hits


@dataclass
class InstanceCacheStats:
    """Hit/miss accounting of one :class:`MckpInstanceCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits / lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


class MckpInstanceCache:
    """Bounded LRU cache of MCKP solutions, keyed by instance identity.

    The per-subscriber sibling of the cluster's
    :class:`~repro.cluster.cache.SolutionCache`: where that cache needs
    the *whole meeting* to repeat, this one hits whenever a *single
    subscriber's* instance repeats — across KMR iterations, across
    controller rounds, and across entirely different meetings that share
    ladder shapes and plan-tier downlinks.  Values are frozen
    :class:`MckpSolution` objects and are shared without copying.

    Args:
        capacity: maximum retained entries; least-recently-used entries
            are evicted beyond it.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[InstanceKey, MckpSolution]" = OrderedDict()
        self.stats = InstanceCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: InstanceKey) -> bool:
        return key in self._entries

    def get(self, key: InstanceKey) -> Optional[MckpSolution]:
        """Look up an instance; the hit is the cached object itself."""
        cached = self._entries.get(key)
        reg = get_registry()
        if cached is None:
            self.stats.misses += 1
            if reg.enabled:
                reg.counter(obs_names.MCKP_CACHE, result="miss").inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if reg.enabled:
            reg.counter(obs_names.MCKP_CACHE, result="hit").inc()
        return cached

    def put(self, key: InstanceKey, solution: MckpSolution) -> None:
        """Insert (or refresh) a solution under its instance key."""
        self._entries[key] = solution
        self._entries.move_to_end(key)
        evicted = 0
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            evicted += 1
        self.stats.evictions += evicted
        reg = get_registry()
        if reg.enabled:
            if evicted:
                reg.counter(obs_names.MCKP_CACHE_EVICTIONS).inc(evicted)
            reg.gauge(obs_names.MCKP_CACHE_ENTRIES).set(len(self._entries))

    def clear(self) -> None:
        """Drop every entry (stats are kept)."""
        self._entries.clear()

    def snapshot(self) -> dict:
        """JSON-friendly stats view (mirrors the cluster cache's shape)."""
        return {
            "entries": len(self._entries),
            "capacity": self.capacity,
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "evictions": self.stats.evictions,
            "hit_rate": self.stats.hit_rate,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MckpInstanceCache(entries={len(self._entries)}/{self.capacity}, "
            f"hit_rate={self.stats.hit_rate:.2f})"
        )


#: The process-wide cache every incremental solver shares by default.
_DEFAULT_CACHE = MckpInstanceCache()


def default_mckp_cache() -> MckpInstanceCache:
    """The process-wide instance cache (one per process, pool workers
    included — each worker process warms its own)."""
    return _DEFAULT_CACHE
