"""The GSO control algorithm: the Knapsack-Merge-Reduction iteration loop.

This is the paper's core contribution (Sec. 4.1).  Each iteration:

1. **Knapsack** — per-subscriber MCKP over the current feasible sets
   (downlink + subscription constraints);
2. **Merge** — per-publisher, collapse same-resolution requests to the
   minimum bitrate (codec capability constraints);
3. **Reduction** — per-publisher uplink check; fix by lowering bitrates, or
   delete the highest offending resolution from one publisher's feasible set
   and start over.

Convergence: every iteration either terminates or strictly shrinks one
publisher's feasible set by a whole resolution, so the iteration count is
bounded by ``sum_i |resolutions(S_i)|`` (the paper's "number of publishers
times the number of resolutions").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs import names as obs_names
from ..obs import trace as obs_trace
from ..obs.registry import get_registry
from ..obs.spans import span
from .constraints import Problem
from .engine import EngineStats, default_mckp_cache
from .knapsack import Requests, knapsack_step
from .mckp import KERNELS, default_kernel
from .merge import merge_step
from .reduction import reduction_step
from .solution import PolicyEntry, Solution
from .types import ClientId, Resolution, StreamSpec


@dataclass(frozen=True)
class SolverConfig:
    """Tuning knobs of the GSO solver.

    Attributes:
        granularity_kbps: capacity grid step of the knapsack DP.  1 is
            exact; production-sized meetings can trade a bounded QoE loss
            for speed with 10-50 kbps grids.
        exhaustive_step1: solve Step 1 with exact enumeration instead of DP.
            Exponential — only for the brute-force comparison (Fig. 6) and
            small test oracles.
        max_iterations: hard safety cap on KMR iterations; ``None`` derives
            the theoretical bound from the problem.
        stickiness: relative QoE bonus for keeping a subscriber's incumbent
            resolution from a publisher (switch damping).  Only effective
            when an ``incumbent`` map is passed to :meth:`GsoSolver.solve`.
        incremental: run Step 1 through the memoized engine
            (:mod:`repro.core.engine`): dirty-set re-solves across KMR
            iterations, intra-iteration instance dedup, and the
            process-wide MCKP cache.  Byte-identical Solutions either
            way; ``False`` is the escape hatch / differential baseline.
            Ignored (treated as ``False``) under ``exhaustive_step1``.
        kernel: MCKP DP execution kernel — ``"numpy"`` (the array-based
            sweeps, the default) or ``"python"`` (the pure-Python
            differential oracle).  Byte-identical Solutions either way,
            mirroring ``incremental``.  Defaults to the ``REPRO_KERNEL``
            environment variable, falling back to ``"numpy"``.
    """

    granularity_kbps: int = 1
    exhaustive_step1: bool = False
    max_iterations: Optional[int] = None
    stickiness: float = 0.10
    incremental: bool = True
    kernel: str = field(default_factory=default_kernel)

    def __post_init__(self) -> None:
        if self.granularity_kbps < 1:
            raise ValueError("granularity_kbps must be >= 1")
        if self.max_iterations is not None and self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.stickiness < 0:
            raise ValueError("stickiness must be non-negative")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )


@dataclass
class SolveStats:
    """Diagnostics from one solve, consumed by the Fig. 6 benchmarks."""

    iterations: int = 0
    reductions: List[Tuple[ClientId, Resolution]] = field(default_factory=list)
    wall_time_s: float = 0.0
    engine: EngineStats = field(default_factory=EngineStats)
    kernel: str = ""


def _iteration_bound(problem: Problem) -> int:
    """The paper's convergence bound: publishers x their resolution counts."""
    total = 0
    for pub in problem.publishers:
        total += len({s.resolution for s in problem.feasible_streams[pub]})
    return max(1, total + 1)


def _build_solution(
    problem: Problem,
    requests: Requests,
    policies: Mapping[ClientId, Mapping[Resolution, PolicyEntry]],
    iterations: int,
    reduced: List[Tuple[ClientId, Resolution]],
) -> Solution:
    """Assemble the Solution's two views from the final policies.

    Assignment *resolutions* come from the final Step-1 requests (keyed by
    the literal — possibly virtual — publisher id each subscriber asked),
    but the *bitrates* come from the final policies: merging and fixing may
    have lowered bitrates below what subscribers originally asked for, and
    the lowered stream is what they receive.
    """
    assignments: Dict[ClientId, Dict[ClientId, StreamSpec]] = {}
    for sub, per_pub in requests.items():
        for literal_pub, requested in per_pub.items():
            canonical = problem.canonical(literal_pub)
            entry = policies.get(canonical, {}).get(requested.resolution)
            assert entry is not None and sub in entry.audience, (
                f"request {sub!r}<-{literal_pub!r}@{requested.resolution} "
                f"not covered by final policies"
            )
            assignments.setdefault(sub, {})[literal_pub] = entry.stream
    final_policies: Dict[ClientId, Dict[Resolution, PolicyEntry]] = {
        pub: dict(entries) for pub, entries in policies.items()
    }
    return Solution(
        policies=final_policies,
        assignments=assignments,
        iterations=iterations,
        reduced=list(reduced),
    )


class GsoSolver:
    """Solves the global stream orchestration problem.

    Typical use::

        solver = GsoSolver()
        solution = solver.solve(problem)
        solution.validate(problem)

    The solver is stateless between calls; per-call diagnostics are exposed
    via :meth:`solve_with_stats`.
    """

    def __init__(self, config: Optional[SolverConfig] = None) -> None:
        self.config = config or SolverConfig()

    def solve(
        self,
        problem: Problem,
        incumbent: Optional[Mapping[Tuple[ClientId, ClientId], Resolution]] = None,
    ) -> Solution:
        """Solve and return only the solution (see :meth:`solve_with_stats`)."""
        solution, _ = self.solve_with_stats(problem, incumbent=incumbent)
        return solution

    def solve_with_stats(
        self,
        problem: Problem,
        incumbent: Optional[Mapping[Tuple[ClientId, ClientId], Resolution]] = None,
    ) -> Tuple[Solution, SolveStats]:
        """Run the KMR loop to termination.

        Returns:
            ``(solution, stats)``.  The solution always satisfies all three
            constraint families; publishers whose every resolution was
            reduced away simply publish nothing.

        Raises:
            RuntimeError: if the iteration cap is hit — by the convergence
                argument this indicates a bug, not a hard instance.
        """
        cfg = self.config
        stats = SolveStats(kernel=cfg.kernel)
        reg = get_registry()
        collector = obs_trace.active_collector()
        trace = (
            collector.begin_solve(
                publishers=len(problem.publishers),
                subscribers=len(problem.subscribers),
                granularity_kbps=cfg.granularity_kbps,
            )
            if collector is not None
            else None
        )
        if reg.enabled:
            reg.counter(obs_names.KMR_SOLVES).inc()
        start = time.perf_counter()
        feasible: Dict[ClientId, List[StreamSpec]] = {
            pub: list(streams) for pub, streams in problem.feasible_streams.items()
        }
        cap = cfg.max_iterations or _iteration_bound(problem)
        reduced: List[Tuple[ClientId, Resolution]] = []
        inc_map = dict(incumbent) if incumbent else None
        stickiness = cfg.stickiness if incumbent else 0.0
        use_engine = cfg.incremental and not cfg.exhaustive_step1
        cache = default_mckp_cache() if use_engine else None
        requests: Requests = {}
        with span(obs_names.SPAN_KMR_SOLVE):
            for iteration in range(1, cap + 1):
                stats.iterations = iteration
                t0 = time.perf_counter()
                if use_engine and iteration > 1:
                    # A reduction shrank exactly one publisher's feasible
                    # set; only its followers can see a changed instance.
                    dirty = problem.subscribers_of(reduced[-1][0])
                    skipped = len(problem.subscribers) - len(dirty)
                    stats.engine.step1_skipped += skipped
                    if reg.enabled:
                        if skipped:
                            reg.counter(obs_names.KMR_STEP1_SKIPPED).inc(
                                skipped
                            )
                        reg.histogram(
                            obs_names.KMR_DIRTY_SET_SIZE
                        ).observe(len(dirty))
                    with span(obs_names.SPAN_KMR_KNAPSACK_DIRTY):
                        requests.update(
                            knapsack_step(
                                problem,
                                feasible=feasible,
                                granularity=cfg.granularity_kbps,
                                incumbent=inc_map,
                                stickiness=stickiness,
                                subscribers=dirty,
                                dedup=True,
                                cache=cache,
                                stats=stats.engine,
                                kernel=cfg.kernel,
                            )
                        )
                else:
                    with span(obs_names.SPAN_KMR_KNAPSACK):
                        requests = knapsack_step(
                            problem,
                            feasible=feasible,
                            granularity=cfg.granularity_kbps,
                            exhaustive=cfg.exhaustive_step1,
                            incumbent=inc_map,
                            stickiness=stickiness,
                            dedup=use_engine,
                            cache=cache,
                            stats=stats.engine if use_engine else None,
                            kernel=cfg.kernel,
                        )
                t1 = time.perf_counter()
                with span(obs_names.SPAN_KMR_MERGE):
                    policies = merge_step(problem, requests)
                t2 = time.perf_counter()
                with span(obs_names.SPAN_KMR_REDUCTION):
                    outcome = reduction_step(
                        problem,
                        policies,
                        feasible,
                        granularity=cfg.granularity_kbps,
                        kernel=cfg.kernel,
                    )
                t3 = time.perf_counter()
                if trace is not None:
                    record = obs_trace.IterationRecord(
                        iteration=iteration,
                        knapsack_values={
                            sub: sum(s.qoe for s in per_pub.values())
                            for sub, per_pub in requests.items()
                        },
                        requests_total=sum(
                            len(per_pub) for per_pub in requests.values()
                        ),
                        merged_ladders={
                            str(pub): {
                                res.name: entry.bitrate_kbps
                                for res, entry in entries.items()
                            }
                            for pub, entries in policies.items()
                        },
                        deletion=(
                            None
                            if outcome.solved
                            else (str(outcome.reduce[0]), outcome.reduce[1].name)
                        ),
                        step_seconds={
                            "knapsack": t1 - t0,
                            "merge": t2 - t1,
                            "reduction": t3 - t2,
                        },
                    )
                    trace.iterations.append(record)
                if outcome.solved:
                    stats.reductions = reduced
                    stats.wall_time_s = time.perf_counter() - start
                    solution = _build_solution(
                        problem, requests, outcome.policies, iteration, reduced
                    )
                    self._record_convergence(
                        reg, trace, stats, reduced, obs_trace.REASON_SOLVED
                    )
                    return solution, stats
                pub, res = outcome.reduce
                feasible[pub] = [s for s in feasible[pub] if s.resolution != res]
                reduced.append((pub, res))
                if reg.enabled:
                    reg.counter(obs_names.KMR_REDUCTIONS).inc()
        stats.wall_time_s = time.perf_counter() - start
        self._record_convergence(
            reg, trace, stats, reduced, obs_trace.REASON_ITERATION_CAP
        )
        raise RuntimeError(
            f"KMR loop failed to converge within {cap} iterations; "
            f"reductions so far: {reduced}"
        )

    @staticmethod
    def _record_convergence(
        reg,
        trace: Optional["obs_trace.SolveTrace"],
        stats: SolveStats,
        reduced: List[Tuple[ClientId, Resolution]],
        reason: str,
    ) -> None:
        """Finalize the obs outputs of one solve (metrics + trace)."""
        if reg.enabled:
            reg.counter(obs_names.KMR_ITERATIONS_TOTAL).inc(stats.iterations)
            reg.histogram(obs_names.KMR_ITERATIONS).observe(stats.iterations)
            reg.histogram(obs_names.KMR_SOLVE_SECONDS).observe(stats.wall_time_s)
            reg.counter(obs_names.KMR_CONVERGENCE, reason=reason).inc()
        if trace is not None:
            trace.convergence_reason = reason
            trace.total_iterations = stats.iterations
            trace.reductions = [(str(p), r.name) for p, r in reduced]
            trace.wall_time_s = stats.wall_time_s


def solve(problem: Problem, config: Optional[SolverConfig] = None) -> Solution:
    """Module-level convenience wrapper around :class:`GsoSolver`."""
    return GsoSolver(config).solve(problem)
