"""Upgrade hysteresis against video-quality oscillation (Sec. 7).

Bandwidth estimates on slow links fluctuate; feeding them straight into the
solver makes configured bitrates bounce, which users perceive as quality
oscillation.  The paper's lesson:

    "we mark a video stream that has been downgraded, and when the
    controller later determines that an upgrade is needed, we only allow
    such an upgrade if the bandwidth increase has surpassed a threshold to
    filter out the noisy fluctuations in measurements."

:class:`UpgradeDamper` implements that filter at the measurement boundary:
it tracks, per client and direction, the bandwidth level at which the last
downgrade happened and clamps *reported* bandwidth until the raw measurement
clears the old level by a configurable margin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .types import ClientId


@dataclass
class _LinkState:
    """Damping state of one (client, direction) link."""

    #: Last bandwidth value released to the controller.
    released_kbps: Optional[int] = None
    #: True once a downgrade has been observed (the paper's "mark").
    downgraded: bool = False


@dataclass
class UpgradeDamper:
    """Clamps bandwidth upgrades until they clear a confidence threshold.

    Downgrades (lower measurements) always pass through immediately —
    reacting slowly to congestion would cause stalls.  Upgrades after a
    downgrade pass only once the measurement exceeds the previously released
    value by ``upgrade_margin`` (relative) — until then the old value is
    re-released.

    Attributes:
        upgrade_margin: required relative increase, e.g. 0.15 means the new
            measurement must exceed the released value by 15 %.
    """

    upgrade_margin: float = 0.15
    _links: Dict[Tuple[ClientId, str], _LinkState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.upgrade_margin < 0:
            raise ValueError("upgrade_margin must be non-negative")

    def filter(self, client: ClientId, direction: str, measured_kbps: int) -> int:
        """Pass one measurement through the damper.

        Args:
            client: the client the measurement belongs to.
            direction: "uplink" or "downlink".
            measured_kbps: the raw estimator output.

        Returns:
            The bandwidth value the controller should use.
        """
        if direction not in ("uplink", "downlink"):
            raise ValueError(f"unknown direction {direction!r}")
        if measured_kbps < 0:
            raise ValueError("measured bandwidth must be non-negative")
        state = self._links.setdefault((client, direction), _LinkState())
        if state.released_kbps is None:
            state.released_kbps = measured_kbps
            return measured_kbps
        if measured_kbps < state.released_kbps:
            # Downgrade: release immediately and mark the stream.
            state.released_kbps = measured_kbps
            state.downgraded = True
            return measured_kbps
        if not state.downgraded:
            # Never downgraded: upgrades flow freely.
            state.released_kbps = measured_kbps
            return measured_kbps
        threshold = state.released_kbps * (1.0 + self.upgrade_margin)
        if measured_kbps >= threshold:
            # Confident upgrade: release and clear the mark.
            state.released_kbps = measured_kbps
            state.downgraded = False
            return measured_kbps
        return state.released_kbps

    def reset(self, client: ClientId) -> None:
        """Drop all damping state of one client (e.g. on rejoin)."""
        for key in [k for k in self._links if k[0] == client]:
            del self._links[key]
