"""Bitrate-ladder construction and QoE utility curves.

GSO-Simulcast supports "up to 15 bitrate levels" (Sec. 1, Sec. 6), spread
across the resolutions a device's codec can produce.  This module builds such
ladders and assigns QoE utility weights with the property Sec. 4.4 calls out:

    "we want to make sure that small streams have a higher QoE utility vs.
    bitrate ratio than large streams, so that small streams are protected."

Two ladders matter for reproduction:

* :func:`paper_ladder` — the exact 9-level ladder of Table 1 (used by the
  worked examples and their tests);
* :func:`make_ladder` — a parametric generator used by the evaluation
  benchmarks (Fig. 6 sweeps the number of bitrate levels 2..8 and uses 9/18
  levels in the large-scale experiment).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .types import PAPER_RESOLUTIONS, Resolution, StreamSpec, validate_feasible_set

#: Table 1's ladder: resolution -> [(bitrate_kbps, qoe), ...] high to low.
PAPER_LADDER_TABLE: Dict[Resolution, Tuple[Tuple[int, float], ...]] = {
    Resolution.P720: ((1500, 1200.0), (1300, 1050.0), (1000, 750.0)),
    Resolution.P360: ((800, 700.0), (600, 530.0), (500, 440.0), (400, 360.0)),
    Resolution.P180: ((300, 300.0), (100, 100.0)),
}

#: Sensible bitrate operating ranges per resolution (kbps), used when
#: generating parametric ladders.  Chosen to bracket the paper's Table 1
#: values and common WebRTC simulcast defaults.
DEFAULT_BITRATE_RANGES: Dict[Resolution, Tuple[int, int]] = {
    Resolution.P1080: (1800, 4000),
    Resolution.P720: (900, 1500),
    Resolution.P540: (600, 1200),
    Resolution.P360: (400, 800),
    Resolution.P270: (250, 500),
    Resolution.P180: (100, 300),
    Resolution.P90: (50, 150),
}


def paper_ladder() -> List[StreamSpec]:
    """The exact 9-level ladder from Table 1 of the paper."""
    streams = [
        StreamSpec(bitrate_kbps=rate, resolution=res, qoe=qoe)
        for res, pairs in PAPER_LADDER_TABLE.items()
        for rate, qoe in pairs
    ]
    return validate_feasible_set(streams)


def qoe_utility(bitrate_kbps: int, exponent: float = 0.85, scale: float = 1.0) -> float:
    """Concave QoE utility of a stream bitrate.

    A power law ``scale * bitrate**exponent`` with ``exponent < 1`` gives a
    *strictly decreasing* QoE/bitrate ratio, which is exactly the
    small-stream-protection property of Sec. 4.4.  The default exponent is
    fitted so the paper's Table 1 (300kbps -> 300, 1500kbps -> 1200) is
    approximated: 1200/300 = 4 = (1500/300)**x  =>  x = log(4)/log(5) ~ 0.861.

    Args:
        bitrate_kbps: stream bitrate.
        exponent: concavity; must lie in (0, 1] to protect small streams.
        scale: multiplicative factor applied to the utility.

    Returns:
        The QoE utility weight (dimensionless).
    """
    if not 0 < exponent <= 1:
        raise ValueError(f"exponent must be in (0, 1], got {exponent}")
    return scale * bitrate_kbps**exponent


def make_ladder(
    resolutions: Sequence[Resolution] = PAPER_RESOLUTIONS,
    levels_per_resolution: int = 5,
    qoe_exponent: float = 0.85,
    qoe_scale: float = 1.0,
    bitrate_ranges: Optional[Dict[Resolution, Tuple[int, int]]] = None,
) -> List[StreamSpec]:
    """Build a fine-grained simulcast ladder.

    Bitrate levels are spaced evenly inside each resolution's operating
    range.  With the defaults (3 resolutions x 5 levels) this yields the
    15-level configuration the production deployment supports (Sec. 6).
    Bitrates are de-duplicated across resolutions by nudging collisions down
    1 kbps, preserving the "each bitrate is associated with a unique
    resolution" modelling assumption of Sec. 4.1.

    Args:
        resolutions: resolutions of the simulcast encodings, any order.
        levels_per_resolution: number of bitrate rungs per resolution (>= 1).
        qoe_exponent: concavity of the QoE curve (see :func:`qoe_utility`).
        qoe_scale: QoE scale factor (used by priority weighting).
        bitrate_ranges: optional override of the per-resolution (lo, hi)
            bitrate ranges in kbps.

    Returns:
        The validated feasible stream set, sorted by descending bitrate.
    """
    if levels_per_resolution < 1:
        raise ValueError("levels_per_resolution must be >= 1")
    ranges = dict(DEFAULT_BITRATE_RANGES)
    if bitrate_ranges:
        ranges.update(bitrate_ranges)
    used: set = set()
    streams: List[StreamSpec] = []
    for res in sorted(set(resolutions), reverse=True):
        lo, hi = ranges[res]
        if levels_per_resolution == 1:
            rates = [hi]
        else:
            step = (hi - lo) / (levels_per_resolution - 1)
            rates = [round(lo + k * step) for k in range(levels_per_resolution)]
        for rate in rates:
            while rate in used:
                rate -= 1
            if rate <= 0:
                raise ValueError(
                    f"cannot fit {levels_per_resolution} distinct levels in "
                    f"range {ranges[res]} for {res}"
                )
            used.add(rate)
            streams.append(
                StreamSpec(
                    bitrate_kbps=rate,
                    resolution=res,
                    qoe=qoe_utility(rate, qoe_exponent, qoe_scale),
                )
            )
    return validate_feasible_set(streams)


def coarse_ladder(
    resolutions: Sequence[Resolution] = PAPER_RESOLUTIONS,
    qoe_exponent: float = 0.85,
) -> List[StreamSpec]:
    """A classic coarse 3-level simulcast ladder (one rung per resolution).

    This mirrors the template policies the paper criticizes (Sec. 1: "They
    support only few coarse-grained bitrate levels (typically 2-3 levels)"),
    e.g. Chromium's simulcast rate allocator.  Used by the non-GSO baseline.
    """
    return make_ladder(
        resolutions=resolutions,
        levels_per_resolution=1,
        qoe_exponent=qoe_exponent,
    )


def scale_qoe(streams: Sequence[StreamSpec], factor: float) -> List[StreamSpec]:
    """Return a copy of ``streams`` with every QoE weight multiplied.

    This is the priority-weighting primitive of Sec. 4.4: "we can give the
    host's or speaker's streams higher QoE weights".
    """
    if factor <= 0:
        raise ValueError(f"priority factor must be positive, got {factor}")
    return [
        StreamSpec(s.bitrate_kbps, s.resolution, s.qoe * factor) for s in streams
    ]
