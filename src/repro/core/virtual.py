"""Multi-stream subscription via virtual publishers (Sec. 4.4).

The Step-1 MCKP is zero-or-one per (subscriber, publisher) pair.  When a
subscriber needs *two* streams from one source — the "speaker first" feature
(a high-resolution close-up *plus* a thumbnail of the active speaker) — the
paper adds a virtual publisher ``X'`` so Step 1 still sees one stream per
class, and merges ``X'`` back into ``X`` at the start of Step 2.

Screen shares are different: a screen video and a camera video "have
different SSRC and will not be merged" (footnote 6), i.e. the screen is a
separate publisher *entity* with its own ladder — but it shares the client's
uplink, which the Step-3 owner aggregation handles.

This module provides builder helpers that perform both expansions on top of
a plain problem description.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from .constraints import Bandwidth, Problem, Subscription
from .types import ClientId, Resolution, StreamSpec

#: Suffix conventions for derived publisher ids.
VIRTUAL_SUFFIX = "#virtual"
SCREEN_SUFFIX = ":screen"


def virtual_id(publisher: ClientId, tag: str = "") -> ClientId:
    """The id of a virtual publisher aliasing ``publisher``."""
    return f"{publisher}{VIRTUAL_SUFFIX}{tag}"


def screen_id(client: ClientId) -> ClientId:
    """The id of a client's screen-share publisher entity."""
    return f"{client}{SCREEN_SUFFIX}"


@dataclass(frozen=True)
class DualSubscription:
    """A speaker-first request: two streams from one publisher.

    Attributes:
        subscriber: the receiving client.
        publisher: the source both streams come from.
        primary_max: resolution cap of the main (close-up) stream.
        secondary_max: resolution cap of the extra (thumbnail) stream.
    """

    subscriber: ClientId
    publisher: ClientId
    primary_max: Resolution = Resolution.P720
    secondary_max: Resolution = Resolution.P180


class ProblemBuilder:
    """Incremental construction of orchestration problems.

    Handles the bookkeeping for virtual publishers (speaker-first) and
    screen-share entities so user code never touches ``aliases``/``owners``
    directly::

        builder = ProblemBuilder()
        builder.add_client("A", Bandwidth(5000, 3000), ladder)
        builder.add_client("B", Bandwidth(5000, 5000), ladder)
        builder.subscribe("A", "B", max_resolution=Resolution.P720)
        builder.subscribe_dual("B", "A")            # speaker-first
        builder.add_screen_share("A", screen_ladder)
        builder.subscribe("B", screen_id("A"))
        problem = builder.build()
    """

    def __init__(self) -> None:
        self._feasible: Dict[ClientId, List[StreamSpec]] = {}
        self._bandwidth: Dict[ClientId, Bandwidth] = {}
        self._subscriptions: List[Subscription] = []
        self._aliases: Dict[ClientId, ClientId] = {}
        self._owners: Dict[ClientId, ClientId] = {}

    def add_client(
        self,
        client: ClientId,
        bandwidth: Bandwidth,
        streams: Optional[Sequence[StreamSpec]] = None,
    ) -> "ProblemBuilder":
        """Register a client; with ``streams`` it also publishes a camera."""
        if client in self._bandwidth:
            raise ValueError(f"client {client!r} already added")
        self._bandwidth[client] = bandwidth
        if streams is not None:
            self._feasible[client] = list(streams)
        return self

    def add_screen_share(
        self, client: ClientId, streams: Sequence[StreamSpec]
    ) -> ClientId:
        """Attach a screen-share source to an existing client.

        Returns the screen entity id to subscribe to.  The entity shares the
        client's uplink (owner aggregation in Step 3) but is never merged
        with the camera (distinct SSRC).
        """
        if client not in self._bandwidth:
            raise ValueError(f"unknown client {client!r}")
        sid = screen_id(client)
        if sid in self._feasible:
            raise ValueError(f"{client!r} already shares a screen")
        self._feasible[sid] = list(streams)
        self._owners[sid] = client
        return sid

    def subscribe(
        self,
        subscriber: ClientId,
        publisher: ClientId,
        max_resolution: Resolution = Resolution.P720,
    ) -> "ProblemBuilder":
        """Add a plain subscription edge."""
        self._subscriptions.append(
            Subscription(subscriber, publisher, max_resolution)
        )
        return self

    def subscribe_dual(
        self,
        subscriber: ClientId,
        publisher: ClientId,
        primary_max: Resolution = Resolution.P720,
        secondary_max: Resolution = Resolution.P180,
    ) -> ClientId:
        """Add a speaker-first dual subscription (Sec. 4.4).

        The primary stream is a plain edge; the secondary stream goes
        through a virtual publisher that Step 2 merges back.  Returns the
        virtual publisher id (useful for inspecting assignments).
        """
        vid = virtual_id(publisher, tag=f"@{subscriber}")
        if vid not in self._aliases:
            self._aliases[vid] = publisher
        self._subscriptions.append(
            Subscription(subscriber, publisher, primary_max)
        )
        self._subscriptions.append(Subscription(subscriber, vid, secondary_max))
        return vid

    def build(self) -> Problem:
        """Materialize the (validated) :class:`Problem`."""
        return Problem(
            feasible_streams=self._feasible,
            bandwidth=self._bandwidth,
            subscriptions=self._subscriptions,
            aliases=self._aliases,
            owners=self._owners,
        )
