"""Stream priority management (Sec. 4.4, "Stream priority").

Priorities enter the optimization purely through QoE utility weights: the
Step-1 knapsack then naturally prefers high-priority streams when bandwidth
is scarce.  Two properties are engineered here:

* the host's / active speaker's / screen-share streams get multiplied QoE
  weights so they survive competition;
* small streams keep a higher QoE-per-kbps ratio than large ones so that two
  competing streams are both kept at reduced bitrates rather than one being
  dropped ("we prefer to accommodate both with reduced bitrate than to drop
  one stream while conceding to the other").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Sequence

from .ladder import scale_qoe
from .types import ClientId, StreamClass, StreamSpec


#: Default priority multipliers by source kind.  Screen shares outrank
#: speakers, which outrank ordinary cameras; thumbnails are deprioritized.
DEFAULT_PRIORITY_FACTORS: Dict[StreamClass, float] = {
    StreamClass.SCREEN: 4.0,
    StreamClass.CAMERA: 1.0,
    StreamClass.THUMBNAIL: 0.5,
}

#: Extra multiplier applied to whoever currently speaks / hosts.
SPEAKER_BOOST: float = 2.0
HOST_BOOST: float = 1.5


@dataclass
class PriorityPolicy:
    """Assigns QoE multipliers to publishers.

    Attributes:
        speaker: the client currently speaking (or None).
        host: the meeting host (or None).
        stream_classes: per publisher, the kind of source it publishes.
            Missing publishers default to CAMERA.
        factors: multiplier per stream class.
    """

    speaker: ClientId = ""
    host: ClientId = ""
    stream_classes: Dict[ClientId, StreamClass] = field(default_factory=dict)
    factors: Dict[StreamClass, float] = field(
        default_factory=lambda: dict(DEFAULT_PRIORITY_FACTORS)
    )

    def factor_for(self, publisher: ClientId) -> float:
        """The total QoE multiplier for one publisher's streams."""
        kind = self.stream_classes.get(publisher, StreamClass.CAMERA)
        factor = self.factors.get(kind, 1.0)
        if publisher == self.speaker:
            factor *= SPEAKER_BOOST
        if publisher == self.host:
            factor *= HOST_BOOST
        return factor

    def apply(
        self, feasible_streams: Mapping[ClientId, Sequence[StreamSpec]]
    ) -> Dict[ClientId, List[StreamSpec]]:
        """Return per-publisher feasible sets with priority-weighted QoE."""
        weighted: Dict[ClientId, List[StreamSpec]] = {}
        for pub, streams in feasible_streams.items():
            factor = self.factor_for(pub)
            if factor == 1.0:
                weighted[pub] = list(streams)
            else:
                weighted[pub] = scale_qoe(streams, factor)
        return weighted


def verify_small_stream_protection(
    streams: Iterable[StreamSpec], tolerance: float = 0.01
) -> bool:
    """Check the Sec. 4.4 ratio property on a feasible set.

    "Small streams" compete with "large streams" across resolution tiers, so
    the property checked is: every stream of a *lower resolution* has a
    QoE-per-kbps ratio at least as high as every stream of a *higher
    resolution*, up to a relative ``tolerance``.  (Within one resolution the
    paper's own Table 1 ladder has ratio inversions — 1000 kbps@720p has a
    lower ratio than 1300 kbps@720p — which is fine: within a tier the
    knapsack just walks the rate-utility curve.)
    """
    by_res: Dict[object, List[float]] = {}
    for s in streams:
        by_res.setdefault(s.resolution, []).append(s.qoe_per_kbps)
    resolutions = sorted(by_res)
    for small_res, large_res in zip(resolutions, resolutions[1:]):
        if min(by_res[small_res]) < max(by_res[large_res]) * (1.0 - tolerance):
            return False
    return True
