"""Step 2 (Merge): codec capability constraints (Sec. 4.1.2).

Step 1's per-subscriber requests, inverted to the publisher side, give each
publisher the set ``U_i`` of (subscriber, stream) pairs it is asked to serve
(Eq. 7).  A codec can emit at most one encoding per resolution, so requests
at the same resolution but different bitrates must be *merged*: the paper's
``Meg()`` function (Eq. 10-12) keeps the **minimum** requested bitrate —
lowering a stream can never violate a subscriber's downlink budget, whereas
raising one could.

The output is the potential policy set ``P_i`` per publisher (Eq. 13): at
most one ``(audience, bitrate)`` entry per resolution.

Worked micro-example (the Fig. 5 narration): if Step 1 had B request
``A@720p/1500`` and C request ``A@720p/1200``, the codec constraint forbids
A encoding 720p twice, so ``Meg()`` collapses the group to the minimum —
one 720p encoding at 1200 kbps serving the audience ``{B, C}``.  B loses
300 kbps of quality it could afford, but C's downlink stays respected;
min-merge is the only direction that preserves Step 1's downlink
feasibility unconditionally (Eq. 12's argument).

Merging never consults the uplink: a merged ``P_i`` may well exceed the
publisher's budget.  That check — and the fix/delete escalation when it
fails — is Step 3's job (:mod:`repro.core.reduction`, Eqs. 14-20).  The
merged ladder chosen each iteration is visible per publisher in the KMR
solver trace (``merged_ladders`` in ``docs/OBSERVABILITY.md``'s schema),
and the step's wall clock is recorded under the ``kmr.merge`` span.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from .constraints import Problem
from .knapsack import Requests
from .solution import PolicyEntry
from .types import ClientId, Resolution, StreamSpec

#: Step-2 output: per publisher, per resolution, the merged policy entry.
Policies = Dict[ClientId, Dict[Resolution, PolicyEntry]]


def invert_requests(
    problem: Problem, requests: Requests
) -> Dict[ClientId, List[Tuple[ClientId, StreamSpec]]]:
    """Build ``U_i`` (Eq. 7): per publisher, the (subscriber, stream) pairs.

    Virtual publishers are folded back into their canonical targets here —
    this is exactly the Sec. 4.4 prescription: "at the beginning of Step 2,
    we merge X' with X, so that we treat them again as the same publisher".
    Iteration order is made deterministic by sorting subscribers.
    """
    served: Dict[ClientId, List[Tuple[ClientId, StreamSpec]]] = {}
    for sub in sorted(requests):
        for pub, stream in sorted(requests[sub].items()):
            served.setdefault(problem.canonical(pub), []).append((sub, stream))
    return served


def merge_publisher(
    asked: List[Tuple[ClientId, StreamSpec]],
) -> Dict[Resolution, PolicyEntry]:
    """Apply ``Meg()`` to one publisher's ``U_i``.

    Partitions the requests by resolution (Eq. 8-9) and, for each non-empty
    partition ``U_i^R``, emits a policy entry with audience ``M_i^R`` (all
    requesting subscribers) and bitrate ``s_i^R = min`` over the partition
    (Eq. 11-12).
    """
    by_res: Dict[Resolution, List[Tuple[ClientId, StreamSpec]]] = {}
    for sub, stream in asked:
        by_res.setdefault(stream.resolution, []).append((sub, stream))
    merged: Dict[Resolution, PolicyEntry] = {}
    for res, group in by_res.items():
        floor = min((stream for _, stream in group), key=lambda s: s.bitrate_kbps)
        audience = frozenset(sub for sub, _ in group)
        merged[res] = PolicyEntry(stream=floor, audience=audience)
    return merged


def merge_step(problem: Problem, requests: Requests) -> Policies:
    """Run Step 2 for every publisher.

    Returns the potential policy map ``{publisher: P_i}``.  Publishers nobody
    requested are absent (they will be told to stop publishing — the Fig. 3a
    wasted-uplink fix).
    """
    served = invert_requests(problem, requests)
    return {pub: merge_publisher(asked) for pub, asked in served.items()}
