"""Solution model for the GSO control algorithm.

A solved conference has two complementary views:

* the **publisher view** — per publisher, the *policy* set ``P_i``: for each
  resolution it should encode, the configured bitrate and the audience
  ``M_i^R`` that will receive it (Eq. 10-13);
* the **subscriber view** — per subscriber, which (publisher, stream) pairs
  it receives (the fulfilled version of ``D_i'`` from Eq. 6).

:class:`Solution` holds both, carries solver diagnostics, and can validate
itself against the :class:`~repro.core.constraints.Problem` it solves —
validation is the workhorse of the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

from .constraints import Problem
from .types import ClientId, Resolution, StreamSpec


def _rebuild_policy_entry(stream: StreamSpec, audience: Tuple[ClientId, ...]) -> "PolicyEntry":
    return PolicyEntry(stream, frozenset(audience))


@dataclass(frozen=True)
class PolicyEntry:
    """One publisher policy ``(M_i^R, s_i^R)``: broadcast ``stream`` to ``audience``."""

    stream: StreamSpec
    audience: FrozenSet[ClientId]

    def __reduce__(self):
        # Frozensets serialize in hash-table iteration order, which
        # depends on insertion history — equal audiences built in
        # different processes (e.g. a SolvePool worker vs the parent)
        # can pickle to different bytes, breaking the byte-identity
        # contract the test suite and caches rely on.  Canonicalize to
        # a sorted tuple so equal entries always pickle identically.
        return (_rebuild_policy_entry, (self.stream, tuple(sorted(self.audience))))

    @property
    def resolution(self) -> Resolution:
        """The entry's stream resolution."""
        return self.stream.resolution

    @property
    def bitrate_kbps(self) -> int:
        """The configured bitrate in kbps."""
        return self.stream.bitrate_kbps


@dataclass
class Solution:
    """Output of one GSO solve.

    Attributes:
        policies: per publisher, the entries of ``P_i`` keyed by resolution.
            Publishers with an empty policy are omitted or map to ``{}``.
        assignments: per subscriber, per followed publisher, the stream the
            subscriber will receive.  Publishers whose stream was dropped for
            this subscriber are absent.
        iterations: number of Knapsack-Merge-Reduction iterations executed.
        reduced: the (publisher, resolution) pairs removed by Step-3
            reductions, in order — diagnostics for tests and benchmarks.
    """

    policies: Dict[ClientId, Dict[Resolution, PolicyEntry]]
    assignments: Dict[ClientId, Dict[ClientId, StreamSpec]]
    iterations: int = 1
    reduced: List[Tuple[ClientId, Resolution]] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # Aggregates
    # ------------------------------------------------------------------ #

    def total_qoe(self) -> float:
        """Sum of the QoE utilities of all received streams (Eq. 1 summed
        over subscribers)."""
        return sum(
            stream.qoe
            for per_pub in self.assignments.values()
            for stream in per_pub.values()
        )

    def subscriber_qoe(self, subscriber: ClientId) -> float:
        """QoE utility delivered to one subscriber."""
        return sum(s.qoe for s in self.assignments.get(subscriber, {}).values())

    def uplink_usage_kbps(self, publisher: ClientId) -> int:
        """Total bitrate the publisher is asked to encode and send."""
        return sum(
            e.bitrate_kbps for e in self.policies.get(publisher, {}).values()
        )

    def downlink_usage_kbps(self, subscriber: ClientId) -> int:
        """Total bitrate the subscriber is asked to receive."""
        return sum(
            s.bitrate_kbps for s in self.assignments.get(subscriber, {}).values()
        )

    def published_streams(self, publisher: ClientId) -> List[StreamSpec]:
        """The streams the publisher encodes, high resolution first."""
        entries = self.policies.get(publisher, {})
        return [
            entries[res].stream for res in sorted(entries, reverse=True)
        ]

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def validate(self, problem: Problem) -> None:
        """Check every constraint family of Sec. 4.1 plus internal coherence.

        Raises:
            AssertionError: with a descriptive message on the first violated
                invariant.  (Assertions, not ValueErrors: a failed validation
                is a solver bug, not a user error.)
        """
        # -- Codec capability: policies keyed by resolution are distinct by
        #    construction; check entries agree with their key and that the
        #    configured stream's resolution exists in some feasible set
        #    (bitrates may be any fix from Eq. 16, i.e. feasible bitrates).
        for pub, entries in self.policies.items():
            feasible = problem.feasible_streams.get(pub, [])
            feasible_set = set(feasible)
            for res, entry in entries.items():
                assert entry.resolution == res, (
                    f"policy for {pub!r} keyed {res} holds {entry.resolution}"
                )
                assert entry.stream in feasible_set, (
                    f"{pub!r} configured non-feasible stream {entry.stream}"
                )
                assert entry.audience, (
                    f"{pub!r} publishes {entry.stream} with no audience"
                )

        # -- Uplink budgets (Eq. 14), aggregated per owning client: a camera
        #    source and a screen-share source of one client share its uplink.
        usage_by_owner: Dict[ClientId, int] = {}
        for pub in self.policies:
            owner = problem.owner(pub)
            usage_by_owner[owner] = (
                usage_by_owner.get(owner, 0) + self.uplink_usage_kbps(pub)
            )
        for owner, usage in usage_by_owner.items():
            budget = problem.uplink_budget(owner)
            assert usage <= budget, (
                f"uplink violated for {owner!r}: {usage} > {budget} kbps"
            )

        # -- Downlink budgets (Eq. 2) and subscription constraints.
        for sub, per_pub in self.assignments.items():
            usage = self.downlink_usage_kbps(sub)
            budget = problem.downlink_budget(sub)
            assert usage <= budget, (
                f"downlink violated for {sub!r}: {usage} > {budget} kbps"
            )
            for pub, stream in per_pub.items():
                edge = problem.edge(sub, pub)
                assert edge is not None, (
                    f"{sub!r} assigned a stream from unfollowed {pub!r}"
                )
                assert stream.resolution <= edge.max_resolution, (
                    f"{sub!r} <- {pub!r}: {stream.resolution} exceeds "
                    f"subscription cap {edge.max_resolution}"
                )

        # -- Cross-view coherence: every assignment is backed by a policy
        #    entry (under the canonical publisher id) that includes the
        #    subscriber in its audience, and every audience member holds at
        #    least one matching assignment (possibly via an alias edge).
        for sub, per_pub in self.assignments.items():
            for pub, stream in per_pub.items():
                canonical = problem.canonical(pub)
                entry = self.policies.get(canonical, {}).get(stream.resolution)
                assert entry is not None, (
                    f"{sub!r} assigned {stream} from {pub!r} but no policy"
                )
                assert entry.stream == stream, (
                    f"assignment/policy bitrate mismatch for {pub!r}: "
                    f"{stream} vs {entry.stream}"
                )
                assert sub in entry.audience, (
                    f"{sub!r} missing from audience of {pub!r}@{stream.resolution}"
                )
        for pub, entries in self.policies.items():
            for res, entry in entries.items():
                for member in entry.audience:
                    member_streams = set(
                        self.assignments.get(member, {}).values()
                    )
                    assert entry.stream in member_streams, (
                        f"audience member {member!r} of {pub!r}@{res} lacks "
                        f"assignment {entry.stream}"
                    )

    def summary(self) -> str:
        """Human-readable multi-line summary (used by examples)."""
        lines: List[str] = [f"Solution after {self.iterations} iteration(s)"]
        for pub in sorted(self.policies):
            entries = self.policies[pub]
            if not entries:
                continue
            parts = ", ".join(
                f"{entries[res].bitrate_kbps}kbps@{res}->"
                f"{{{','.join(sorted(entries[res].audience))}}}"
                for res in sorted(entries, reverse=True)
            )
            lines.append(f"  {pub} publishes {parts}")
        lines.append(f"  total QoE: {self.total_qoe():.1f}")
        return "\n".join(lines)
