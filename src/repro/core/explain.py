"""Human-readable traces of the KMR algorithm's decisions.

``explain_solve`` runs the same Knapsack-Merge-Reduction loop as
:class:`~repro.core.solver.GsoSolver` but narrates every decision — which
streams each subscriber's knapsack picked, which requests merged down to
which bitrate, which uplinks needed fixing or reduction.  Fig. 5 of the
paper is exactly this trace drawn as a diagram; in production such traces
are the first tool for "why did client X get 360p?" questions.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from .constraints import Problem
from .knapsack import knapsack_step
from .merge import merge_step
from .reduction import reduction_step
from .solution import Solution
from .solver import SolverConfig, _build_solution
from .types import ClientId, Resolution, StreamSpec


def _fmt_stream(stream: StreamSpec) -> str:
    return f"{stream.bitrate_kbps}kbps@{stream.resolution}"


def explain_solve(
    problem: Problem, config: Optional[SolverConfig] = None
) -> "ExplainedSolve":
    """Solve the problem while collecting a decision trace.

    Returns:
        An :class:`ExplainedSolve` holding the final solution and the
        trace lines; ``str()`` renders the full narration.
    """
    cfg = config or SolverConfig()
    lines: List[str] = []
    feasible: Dict[ClientId, List[StreamSpec]] = {
        pub: list(streams) for pub, streams in problem.feasible_streams.items()
    }
    reduced = []
    solution: Optional[Solution] = None
    max_iterations = (
        sum(
            len({s.resolution for s in problem.feasible_streams[p]})
            for p in problem.publishers
        )
        + 1
    )
    for iteration in range(1, max_iterations + 1):
        lines.append(f"iteration {iteration}")

        requests = knapsack_step(
            problem, feasible=feasible, granularity=cfg.granularity_kbps
        )
        lines.append("  step 1 (knapsack): per-subscriber downlink fills")
        for sub in problem.subscribers:
            budget = problem.downlink_budget(sub)
            picks = requests.get(sub, {})
            if picks:
                detail = ", ".join(
                    f"{pub}:{_fmt_stream(s)}"
                    for pub, s in sorted(picks.items())
                )
            else:
                detail = "nothing fits"
            used = sum(s.bitrate_kbps for s in picks.values())
            lines.append(
                f"    {sub} (budget {budget}kbps, used {used}kbps): {detail}"
            )

        policies = merge_step(problem, requests)
        lines.append("  step 2 (merge): per-publisher codec consolidation")
        for pub in sorted(policies):
            for res in sorted(policies[pub], reverse=True):
                entry = policies[pub][res]
                requested = sorted(
                    s.bitrate_kbps
                    for per in requests.values()
                    for literal, s in per.items()
                    if problem.canonical(literal) == pub
                    and s.resolution == res
                )
                merged_note = (
                    f" (merged from {requested})"
                    if len(set(requested)) > 1
                    else ""
                )
                lines.append(
                    f"    {pub}@{res}: {entry.bitrate_kbps}kbps to "
                    f"{{{', '.join(sorted(entry.audience))}}}{merged_note}"
                )

        outcome = reduction_step(
            problem, policies, feasible, granularity=cfg.granularity_kbps
        )
        lines.append("  step 3 (reduction): uplink checks")
        owners = sorted(
            {problem.owner(pub) for pub in policies}
        )
        for owner in owners:
            asked = sum(
                e.bitrate_kbps
                for pub in policies
                if problem.owner(pub) == owner
                for e in policies[pub].values()
            )
            budget = problem.uplink_budget(owner)
            verdict = "ok" if asked <= budget else "over budget"
            lines.append(
                f"    {owner}: asked {asked}kbps of {budget}kbps -> {verdict}"
            )
        if outcome.solved:
            # Report any bitrate fixes applied relative to the merge output.
            for pub in sorted(outcome.policies):
                for res, entry in outcome.policies[pub].items():
                    merged = policies.get(pub, {}).get(res)
                    if merged is not None and merged.stream != entry.stream:
                        lines.append(
                            f"    fixed {pub}@{res}: "
                            f"{merged.bitrate_kbps} -> {entry.bitrate_kbps}kbps"
                        )
            solution = _build_solution(
                problem, requests, outcome.policies, iteration, reduced
            )
            lines.append("  solution found")
            break
        pub, res = outcome.reduce
        lines.append(
            f"    unfixable: removing {res} from {pub}'s feasible set"
        )
        feasible[pub] = [s for s in feasible[pub] if s.resolution != res]
        reduced.append((pub, res))
    assert solution is not None, "KMR failed to converge (solver bug)"
    lines.append(solution.summary())
    return ExplainedSolve(solution=solution, lines=lines)


class ExplainedSolve:
    """The solution plus its narrated derivation."""

    def __init__(self, solution: Solution, lines: List[str]) -> None:
        self.solution = solution
        self.lines = lines

    def __str__(self) -> str:
        return "\n".join(self.lines)
